"""Tests for the external interval tree (stabbing substrate, paper ref [3])."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosim import BlockDevice, Measurement, Pager
from repro.storage.interval_tree import ExternalIntervalTree, default_fanout


def make_tree(intervals, capacity=16, fanout=None):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    tree = ExternalIntervalTree.build(pager, intervals, fanout=fanout)
    return dev, pager, tree


def brute_stab(intervals, x):
    return sorted(p for l, r, p in intervals if l <= x <= r)


class TestDefaultFanout:
    def test_routing_page_fits(self):
        for capacity in (8, 16, 17, 18, 31, 64, 128, 256):
            b = default_fanout(capacity)
            assert 4 * b + 3 <= max(capacity, 11)  # b >= 2 floor for tiny B
            assert b >= 2

    def test_directory_page_fits(self):
        for capacity in (16, 64, 256):
            b = default_fanout(capacity)
            assert (b - 1) * b // 2 <= capacity


class TestStab:
    def test_empty_tree(self):
        _d, _p, tree = make_tree([])
        assert tree.stab(0) == []

    def test_single_leaf(self):
        intervals = [(0, 5, "a"), (3, 8, "b"), (10, 12, "c")]
        _d, _p, tree = make_tree(intervals)
        assert sorted(p for _l, _r, p in tree.stab(4)) == ["a", "b"]
        assert [p for _l, _r, p in tree.stab(11)] == ["c"]
        assert tree.stab(9) == []

    def test_endpoints_inclusive(self):
        _d, _p, tree = make_tree([(2, 6, "a")])
        assert tree.stab(2) and tree.stab(6)
        assert not tree.stab(1) and not tree.stab(7)

    def test_zero_length_intervals(self):
        _d, _p, tree = make_tree([(5, 5, "pt")] * 3 + [(0, 10, "span")])
        got = [p for _l, _r, p in tree.stab(5)]
        assert sorted(got) == ["pt", "pt", "pt", "span"]
        assert [p for _l, _r, p in tree.stab(4)] == ["span"]

    def test_all_identical_points_chain_leaf(self):
        intervals = [(7, 7, i) for i in range(200)]
        _d, _p, tree = make_tree(intervals, capacity=16)
        assert len(tree.stab(7)) == 200
        assert tree.stab(8) == []

    def test_large_build_correct(self):
        rng = random.Random(42)
        intervals = []
        for i in range(2000):
            l = rng.randrange(0, 10000)
            r = l + rng.randrange(0, 500)
            intervals.append((l, r, i))
        _d, _p, tree = make_tree(intervals, capacity=16)
        for x in [0, 777, 5000, 9999, 10300]:
            got = sorted(p for _l, _r, p in tree.stab(x))
            assert got == brute_stab(intervals, x), x

    def test_stab_exactly_on_boundary(self):
        # Build with a known fanout and probe every distinct endpoint.
        intervals = [(i, i + 10, i) for i in range(0, 300, 3)]
        _d, _p, tree = make_tree(intervals, capacity=16, fanout=3)
        for x in range(0, 310, 5):
            got = sorted(p for _l, _r, p in tree.stab(x))
            assert got == brute_stab(intervals, x), x

    def test_no_duplicates_reported(self):
        intervals = [(0, 1000, i) for i in range(50)]  # all long spanners
        _d, _p, tree = make_tree(intervals + [(i, i + 1, 100 + i) for i in range(500)])
        got = [p for _l, _r, p in tree.stab(500)]
        assert len(got) == len(set(got))


class TestCosts:
    def test_linear_space(self):
        n = 5000
        capacity = 32
        intervals = [(i, i + 50, i) for i in range(n)]
        dev, _p, tree = make_tree(intervals, capacity=capacity)
        assert dev.pages_in_use <= 8 * math.ceil(n / capacity)

    def test_query_io_logarithmic(self):
        n = 20000
        capacity = 64
        rng = random.Random(7)
        intervals = [(i, i + rng.randrange(1, 30), i) for i in range(n)]
        dev, pager, tree = make_tree(intervals, capacity=capacity)
        worst = 0
        for x in range(0, n, 997):
            with pager.operation():
                with Measurement(dev) as m:
                    result = tree.stab(x)
            overhead = m.stats.reads - len(result) // capacity
            worst = max(worst, overhead)
        # height * (routing + directory + ~4 list heads) with log_B n ~ 3.
        assert worst <= 40, worst


class TestInsert:
    def test_insert_into_empty(self):
        dev = BlockDevice(block_capacity=16)
        pager = Pager(dev)
        tree = ExternalIntervalTree(pager)
        tree.insert(0, 10, "a")
        assert [p for _l, _r, p in tree.stab(5)] == ["a"]

    def test_insert_rejects_reversed(self):
        dev = BlockDevice(block_capacity=16)
        pager = Pager(dev)
        tree = ExternalIntervalTree(pager)
        try:
            tree.insert(5, 4, "bad")
            assert False, "expected ValueError"
        except ValueError:
            pass

    def test_insert_many_matches_bruteforce(self):
        rng = random.Random(3)
        intervals = [(i, i + 20, i) for i in range(0, 3000, 3)]
        _d, _p, tree = make_tree(intervals, capacity=16)
        inserted = []
        for j in range(500):
            l = rng.randrange(0, 3100)
            r = l + rng.randrange(0, 40)
            tree.insert(l, r, 10000 + j)
            inserted.append((l, r, 10000 + j))
        everything = intervals + inserted
        for x in [0, 100, 1500, 2999, 3050]:
            got = sorted(p for _l, _r, p in tree.stab(x))
            assert got == brute_stab(everything, x), x

    def test_len_tracks_inserts(self):
        _d, _p, tree = make_tree([(0, 1, "a")])
        assert len(tree) == 1
        tree.insert(2, 3, "b")
        assert len(tree) == 2


@given(
    st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 10)),
        min_size=0,
        max_size=60,
    ),
    st.integers(-2, 52),
)
@settings(max_examples=150, deadline=None)
def test_stab_matches_bruteforce_property(raw, x):
    intervals = [(l, l + w, i) for i, (l, w) in enumerate(raw)]
    _d, _p, tree = make_tree(intervals, capacity=16)
    got = sorted(p for _l, _r, p in tree.stab(x))
    assert got == brute_stab(intervals, x)
