"""Tests for the disjoint-interval index (the paper's C structures)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosim import BlockDevice, Measurement, Pager
from repro.storage.disjoint import DisjointIntervalIndex, IntervalOverlapError


def make_index(intervals=None, capacity=4):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    if intervals is None:
        index = DisjointIntervalIndex(pager)
    else:
        index = DisjointIntervalIndex.build(pager, intervals)
    return dev, pager, index


def ivs(*bounds):
    """Intervals [a, b] with payload equal to their position."""
    return [(a, b, i) for i, (a, b) in enumerate(bounds)]


class TestBuild:
    def test_build_accepts_touching(self):
        _d, _p, index = make_index(ivs((0, 1), (1, 2), (2, 3)))
        assert len(list(index.items())) == 3

    def test_build_rejects_overlap(self):
        with pytest.raises(IntervalOverlapError):
            make_index(ivs((0, 2), (1, 3)))

    def test_build_rejects_containment(self):
        with pytest.raises(IntervalOverlapError):
            make_index(ivs((0, 10), (2, 3)))

    def test_empty_index(self):
        _d, _p, index = make_index([])
        assert index.is_empty()
        assert index.stab(5) == []


class TestQueries:
    def test_stab_hits_interior(self):
        _d, _p, index = make_index(ivs((0, 2), (4, 6)))
        assert [p for _l, _h, p in index.stab(5)] == [1]

    def test_stab_at_touch_point_returns_both(self):
        _d, _p, index = make_index(ivs((0, 2), (2, 4)))
        assert [p for _l, _h, p in index.stab(2)] == [0, 1]

    def test_stab_miss_in_gap(self):
        _d, _p, index = make_index(ivs((0, 2), (4, 6)))
        assert index.stab(3) == []

    def test_overlap_contiguous_run(self):
        _d, _p, index = make_index(ivs((0, 1), (2, 3), (4, 5), (6, 7), (8, 9)))
        got = [p for _l, _h, p in index.overlap(3, 6)]
        assert got == [1, 2, 3]

    def test_overlap_unbounded_below(self):
        _d, _p, index = make_index(ivs((0, 1), (2, 3), (4, 5)))
        got = [p for _l, _h, p in index.overlap(None, 2)]
        assert got == [0, 1]

    def test_overlap_unbounded_above(self):
        _d, _p, index = make_index(ivs((0, 1), (2, 3), (4, 5)))
        got = [p for _l, _h, p in index.overlap(3, None)]
        assert got == [1, 2]

    def test_overlap_full_line(self):
        _d, _p, index = make_index(ivs((0, 1), (2, 3)))
        assert len(list(index.overlap(None, None))) == 2

    def test_predecessor_straddles_query_start(self):
        # [0, 10] starts before a=5 but reaches it.
        _d, _p, index = make_index(ivs((0, 10), (12, 13)))
        got = [p for _l, _h, p in index.overlap(5, 6)]
        assert got == [0]

    def test_predecessor_in_previous_leaf(self):
        # Force many intervals so the predecessor of the located key falls in
        # the previous B+-tree leaf.
        intervals = ivs(*[(10 * i, 10 * i + 9) for i in range(50)])
        _d, _p, index = make_index(intervals, capacity=4)
        got = [p for _l, _h, p in index.overlap(105, 107)]
        assert got == [10]

    def test_query_io_logarithmic(self):
        intervals = ivs(*[(2 * i, 2 * i + 1) for i in range(5000)])
        dev, pager, index = make_index(intervals, capacity=16)
        with pager.operation():
            with Measurement(dev) as m:
                list(index.overlap(5000, 5010))
        assert m.stats.reads <= 8


class TestUpdates:
    def test_insert_and_stab(self):
        _d, _p, index = make_index([])
        index.insert(0, 2, "a")
        index.insert(4, 6, "b")
        assert [p for _l, _h, p in index.stab(1)] == ["a"]

    def test_insert_rejects_overlap(self):
        _d, _p, index = make_index(ivs((0, 4)))
        with pytest.raises(IntervalOverlapError):
            index.insert(3, 5, "bad")

    def test_insert_rejects_empty_interval(self):
        _d, _p, index = make_index([])
        with pytest.raises(ValueError):
            index.insert(5, 4, "bad")

    def test_insert_touching_allowed(self):
        _d, _p, index = make_index(ivs((0, 4)))
        index.insert(4, 6, "ok")
        assert len(list(index.items())) == 2

    def test_delete(self):
        _d, _p, index = make_index(ivs((0, 1), (2, 3)))
        assert index.delete(0, 1)
        assert [p for _l, _h, p in index.items()] == [1]
        assert not index.delete(0, 1)

    def test_destroy_frees_pages(self):
        dev, _p, index = make_index(ivs(*[(2 * i, 2 * i + 1) for i in range(100)]))
        index.destroy()
        assert dev.pages_in_use == 0


@given(
    st.lists(st.integers(0, 60), min_size=0, max_size=30, unique=True),
    st.tuples(st.integers(-5, 65), st.integers(0, 20)),
)
@settings(max_examples=200, deadline=None)
def test_overlap_matches_bruteforce(starts, query):
    """Disjoint intervals [s, s+1) per start; overlap equals a filter."""
    intervals = sorted((s, s + 1, s) for s in starts)
    _d, _p, index = make_index(intervals, capacity=4)
    a, width = query
    b = a + width
    got = sorted(p for _l, _h, p in index.overlap(a, b))
    expected = sorted(s for s in starts if s + 1 >= a and s <= b)
    assert got == expected
