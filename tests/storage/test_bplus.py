"""Tests for the external B+-tree."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosim import BlockDevice, Measurement, Pager
from repro.storage.bplus import BPlusTree


def make_tree(capacity=8, pairs=None):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    if pairs is None:
        tree = BPlusTree.create(pager)
    else:
        tree = BPlusTree.build(pager, pairs)
    return dev, pager, tree


class TestBuild:
    def test_empty_tree(self):
        _dev, _pager, tree = make_tree()
        assert list(tree.items()) == []
        assert tree.min_item() is None
        assert tree.max_item() is None

    def test_bulk_build_roundtrip(self):
        pairs = [(i, f"v{i}") for i in range(100)]
        _dev, _pager, tree = make_tree(pairs=pairs)
        assert list(tree.items()) == pairs
        tree.check_invariants()

    def test_bulk_build_rejects_unsorted(self):
        with pytest.raises(ValueError):
            make_tree(pairs=[(2, "a"), (1, "b")])

    def test_bulk_build_with_duplicates(self):
        pairs = [(1, "a"), (1, "b"), (1, "c"), (2, "d")]
        _dev, _pager, tree = make_tree(pairs=pairs)
        assert sorted(tree.search(1)) == ["a", "b", "c"]
        assert tree.search(2) == ["d"]

    def test_height_is_logarithmic(self):
        n_items = 4096
        _dev, _pager, tree = make_tree(
            capacity=16, pairs=[(i, i) for i in range(n_items)]
        )
        # fill factor >= 2/3 of 16 => height <= ceil(log_10(n)) + 1 or so.
        assert tree.height() <= math.ceil(math.log(n_items, 10)) + 1


class TestSearchAndScan:
    def test_search_missing_key(self):
        _dev, _pager, tree = make_tree(pairs=[(i, i) for i in range(10)])
        assert tree.search(42) == []

    def test_range_scan(self):
        _dev, _pager, tree = make_tree(pairs=[(i, i * 10) for i in range(50)])
        got = list(tree.range_scan(10, 13))
        assert got == [(10, 100), (11, 110), (12, 120), (13, 130)]

    def test_range_scan_empty_window(self):
        _dev, _pager, tree = make_tree(pairs=[(i * 2, i) for i in range(10)])
        assert list(tree.range_scan(19, 19)) == []

    def test_scan_from_between_keys(self):
        _dev, _pager, tree = make_tree(pairs=[(i * 2, i) for i in range(10)])
        first = next(tree.scan_from(3))
        assert first == (4, 2)

    def test_min_max(self):
        _dev, _pager, tree = make_tree(pairs=[(i, i) for i in range(17)])
        assert tree.min_item() == (0, 0)
        assert tree.max_item() == (16, 16)

    def test_locate_and_scan_at(self):
        _dev, _pager, tree = make_tree(pairs=[(i, i) for i in range(40)])
        pid, idx = tree.locate(25)
        got = [k for k, _v in tree.scan_at(pid, idx)]
        assert got == list(range(25, 40))

    def test_scan_at_reverse(self):
        _dev, _pager, tree = make_tree(pairs=[(i, i) for i in range(40)])
        pid, idx = tree.locate(5)
        got = [k for k, _v in tree.scan_at_reverse(pid, idx)]
        assert got == [5, 4, 3, 2, 1, 0]

    def test_query_io_is_logarithmic(self):
        dev, pager, tree = make_tree(capacity=16, pairs=[(i, i) for i in range(10000)])
        with pager.operation():
            with Measurement(dev) as m:
                tree.search(5000)
        assert m.stats.reads <= tree.height() + 1


class TestInsert:
    def test_insert_into_empty(self):
        _dev, _pager, tree = make_tree()
        tree.insert(5, "x")
        assert list(tree.items()) == [(5, "x")]

    def test_insert_many_sorted(self):
        _dev, _pager, tree = make_tree(capacity=4)
        for i in range(200):
            tree.insert(i, i)
        assert [k for k, _ in tree.items()] == list(range(200))
        tree.check_invariants()

    def test_insert_many_reversed(self):
        _dev, _pager, tree = make_tree(capacity=4)
        for i in reversed(range(200)):
            tree.insert(i, i)
        assert [k for k, _ in tree.items()] == list(range(200))
        tree.check_invariants()

    def test_insert_duplicates(self):
        _dev, _pager, tree = make_tree(capacity=4)
        for i in range(30):
            tree.insert(7, i)
        assert len(tree.search(7)) == 30
        tree.check_invariants()

    def test_insert_io_is_logarithmic(self):
        dev, pager, tree = make_tree(capacity=16, pairs=[(i, i) for i in range(10000)])
        with pager.operation():
            with Measurement(dev) as m:
                tree.insert(5000, "new")
        # Root-to-leaf reads plus at most one write per level on splits.
        assert m.stats.total <= 2 * tree.height() + 3

    def test_mixed_insert_build(self):
        _dev, _pager, tree = make_tree(capacity=4, pairs=[(i * 2, i) for i in range(50)])
        for i in range(50):
            tree.insert(i * 2 + 1, -i)
        assert [k for k, _ in tree.items()] == list(range(100))
        tree.check_invariants()


class TestDelete:
    def test_delete_existing(self):
        _dev, _pager, tree = make_tree(pairs=[(i, i) for i in range(10)])
        assert tree.delete(4)
        assert tree.search(4) == []
        assert len(list(tree.items())) == 9

    def test_delete_missing_returns_false(self):
        _dev, _pager, tree = make_tree(pairs=[(i, i) for i in range(10)])
        assert not tree.delete(99)

    def test_delete_with_match(self):
        _dev, _pager, tree = make_tree(pairs=[(1, "a"), (1, "b"), (2, "c")])
        assert tree.delete(1, match=lambda v: v == "b")
        assert tree.search(1) == ["a"]

    def test_delete_everything(self):
        _dev, _pager, tree = make_tree(capacity=4, pairs=[(i, i) for i in range(100)])
        for i in range(100):
            assert tree.delete(i), i
        assert list(tree.items()) == []
        tree.check_invariants()

    def test_delete_releases_pages(self):
        dev, _pager, tree = make_tree(capacity=4, pairs=[(i, i) for i in range(100)])
        for i in range(100):
            tree.delete(i)
        assert dev.pages_in_use <= 2  # empty leaf (+ possibly root)


class TestDestroy:
    def test_destroy_frees_all_pages(self):
        dev, _pager, tree = make_tree(capacity=4, pairs=[(i, i) for i in range(100)])
        tree.destroy()
        assert dev.pages_in_use == 0


class TestSpace:
    def test_linear_space(self):
        n_items = 5000
        capacity = 16
        dev, _pager, tree = make_tree(
            capacity=capacity, pairs=[(i, i) for i in range(n_items)]
        )
        n_blocks_optimal = n_items / capacity
        assert dev.pages_in_use <= 3 * n_blocks_optimal


@given(
    st.lists(
        st.tuples(st.integers(-50, 50), st.booleans()),
        min_size=0,
        max_size=120,
    )
)
@settings(max_examples=200, deadline=None)
def test_bplus_matches_sorted_list_model(ops):
    """Random insert/delete interleavings match a sorted-list model."""
    _dev, _pager, tree = make_tree(capacity=4)
    model = []
    for key, is_insert in ops:
        if is_insert:
            tree.insert(key, key * 2)
            model.append((key, key * 2))
        else:
            removed = tree.delete(key)
            present = any(k == key for k, _ in model)
            assert removed == present
            if present:
                model.remove((key, key * 2))
    model.sort(key=lambda kv: kv[0])
    assert list(tree.items()) == model
    tree.check_invariants()
