"""Additional interval-tree coverage: items(), mixed builds, edge regimes."""

import random

from repro.iosim import BlockDevice, Pager
from repro.storage.interval_tree import ExternalIntervalTree


def make_tree(intervals, capacity=16, fanout=None):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    tree = ExternalIntervalTree.build(pager, intervals, fanout=fanout)
    return dev, pager, tree


class TestItems:
    def test_items_roundtrip(self):
        intervals = [(i, i + 7, i) for i in range(500)]
        _d, _p, tree = make_tree(intervals)
        got = sorted(p for _l, _r, p in tree.items())
        assert got == list(range(500))

    def test_items_exactly_once_with_multislabs(self):
        # Long intervals live in L, R and M lists; items() must not repeat.
        intervals = [(0, 10**6, i) for i in range(40)]
        intervals += [(i * 3, i * 3 + 1, 100 + i) for i in range(400)]
        _d, _p, tree = make_tree(intervals)
        got = [p for _l, _r, p in tree.items()]
        assert len(got) == len(set(got)) == 440

    def test_items_after_inserts(self):
        intervals = [(i, i + 3, i) for i in range(200)]
        _d, _p, tree = make_tree(intervals)
        for j in range(50):
            tree.insert(j * 5, j * 5 + 2, 1000 + j)
        got = sorted(p for _l, _r, p in tree.items())
        assert got == sorted(list(range(200)) + [1000 + j for j in range(50)])

    def test_items_empty(self):
        _d, _p, tree = make_tree([])
        assert list(tree.items()) == []


class TestEdgeRegimes:
    def test_nested_intervals(self):
        # Fully nested intervals: every stab in the core hits them all.
        intervals = [(i, 1000 - i, i) for i in range(300)]
        _d, _p, tree = make_tree(intervals)
        assert len(tree.stab(500)) == 300
        assert len(tree.stab(250)) == 251  # i <= 250
        assert tree.stab(1001) == []

    def test_shifted_staircase(self):
        intervals = [(i, i + 100, i) for i in range(1000)]
        _d, _p, tree = make_tree(intervals)
        got = sorted(p for _l, _r, p in tree.stab(500))
        assert got == list(range(400, 501))

    def test_negative_coordinates(self):
        intervals = [(-1000 + i, -990 + i, i) for i in range(100)]
        _d, _p, tree = make_tree(intervals)
        expected = sorted(p for l, r, p in intervals if l <= -950 <= r)
        assert sorted(p for _l, _r, p in tree.stab(-950)) == expected

    def test_fraction_endpoints(self):
        from fractions import Fraction

        intervals = [
            (Fraction(i, 3), Fraction(i + 5, 3), i) for i in range(90)
        ]
        _d, _p, tree = make_tree(intervals)
        x = Fraction(10)
        expected = sorted(p for l, r, p in intervals if l <= x <= r)
        assert sorted(p for _l, _r, p in tree.stab(x)) == expected

    def test_random_against_bruteforce_with_custom_fanout(self):
        rng = random.Random(11)
        intervals = []
        for i in range(800):
            l = rng.randrange(0, 2000)
            intervals.append((l, l + rng.randrange(0, 300), i))
        for fanout in (2, 3, 5):
            _d, _p, tree = make_tree(intervals, capacity=32, fanout=fanout)
            for x in (0, 555, 1111, 1999, 2299):
                expected = sorted(p for l, r, p in intervals if l <= x <= r)
                assert sorted(p for _l, _r, p in tree.stab(x)) == expected, (
                    fanout, x,
                )
