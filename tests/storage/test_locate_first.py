"""Tests for BPlusTree.locate_first (predicate-boundary descent).

Solution 2's multislab lists depend on it: the search boundary is defined
by evaluating fragments at the query line, not by comparing a fixed key.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iosim import BlockDevice, Measurement, Pager
from repro.storage.bplus import BPlusTree


def make_tree(keys, capacity=4):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    tree = BPlusTree.build(pager, [(k, f"v{k}") for k in sorted(keys)])
    return dev, pager, tree


def first_satisfying(tree, pred):
    pos = tree.locate_first(pred)
    for key, _value in tree.scan_at(*pos):
        return key
    return None


class TestLocateFirst:
    def test_boundary_in_middle(self):
        _d, _p, tree = make_tree(range(100))
        assert first_satisfying(tree, lambda k: k >= 37) == 37

    def test_boundary_at_start(self):
        _d, _p, tree = make_tree(range(10, 20))
        assert first_satisfying(tree, lambda k: k >= 0) == 10

    def test_boundary_past_end(self):
        _d, _p, tree = make_tree(range(10))
        assert first_satisfying(tree, lambda k: k >= 99) is None

    def test_all_satisfy(self):
        _d, _p, tree = make_tree(range(5))
        assert first_satisfying(tree, lambda k: True) == 0

    def test_none_satisfy(self):
        _d, _p, tree = make_tree(range(5))
        assert first_satisfying(tree, lambda k: False) is None

    def test_empty_tree(self):
        _d, _p, tree = make_tree([])
        assert first_satisfying(tree, lambda k: True) is None

    def test_derived_predicate(self):
        # The Solution-2 use case: pred computed from the key's contents.
        keys = [(i, 100 - i) for i in range(50)]
        _d, _p, tree = make_tree(keys, capacity=8)
        # First key whose second component is <= 70, i.e. i >= 30.
        got = first_satisfying(tree, lambda k: k[1] <= 70)
        assert got == (30, 70)

    def test_io_cost_is_height(self):
        dev, pager, tree = make_tree(range(4096), capacity=16)
        with pager.operation():
            with Measurement(dev) as m:
                tree.locate_first(lambda k: k >= 2000)
        assert m.stats.reads <= tree.height() + 1


@given(
    st.sets(st.integers(0, 300), min_size=1, max_size=80),
    st.integers(-10, 310),
)
@settings(max_examples=150, deadline=None)
def test_locate_first_matches_filter(keys, threshold):
    _d, _p, tree = make_tree(keys)
    got = first_satisfying(tree, lambda k: k >= threshold)
    expected = min((k for k in keys if k >= threshold), default=None)
    assert got == expected
