"""Tests for the append-only page chain."""

from repro.iosim import BlockDevice, Measurement, Pager
from repro.storage.chain import PageChain


def make_chain(capacity=4, items=()):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    chain = PageChain.create(pager, items)
    return dev, pager, chain


def test_empty_chain():
    _dev, _pager, chain = make_chain()
    assert chain.to_list() == []
    assert chain.count() == 0


def test_roundtrip_preserves_order():
    _dev, _pager, chain = make_chain(items=range(10))
    assert chain.to_list() == list(range(10))
    assert chain.count() == 10


def test_append_spills_to_new_pages():
    dev, _pager, chain = make_chain(capacity=4, items=range(9))
    assert dev.pages_in_use == 3  # 4 + 4 + 1


def test_head_pid_stable_under_append():
    _dev, _pager, chain = make_chain(capacity=4)
    head = chain.head_pid
    for i in range(20):
        chain.append(i)
    assert chain.head_pid == head
    assert chain.to_list() == list(range(20))


def test_scan_io_is_linear_in_pages():
    dev, pager, chain = make_chain(capacity=4, items=range(16))
    with pager.operation():
        with Measurement(dev) as m:
            list(chain)
    assert m.stats.reads == 4


def test_append_io_is_constant():
    dev, pager, chain = make_chain(capacity=8, items=range(64))
    with pager.operation():
        with Measurement(dev) as m:
            chain.append("x")
    # head + tail reads, tail + head writes at most (plus a possible alloc).
    assert m.stats.total <= 5


def test_destroy_frees_pages():
    dev, _pager, chain = make_chain(capacity=4, items=range(9))
    chain.destroy()
    assert dev.pages_in_use == 0


def test_reattach_by_head_pid():
    _dev, pager, chain = make_chain(capacity=4, items=range(5))
    again = PageChain(pager, chain.head_pid)
    assert again.to_list() == list(range(5))
