"""Smoke tests: every example script must run clean and say what it says."""

import os
import subprocess
import sys


EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "line x=6 intersects" in out
    assert "river" in out


def test_gis_map_overlay():
    out = run_example("gis_map_overlay.py")
    assert "boundaries crossed" in out
    assert "solution2" in out


def test_temporal_versions():
    out = run_example("temporal_versions.py")
    assert "versions valid at t=" in out
    assert "stab-and-filter" in out


def test_constraint_selection():
    out = run_example("constraint_selection.py")
    assert "exact rationals" in out
    assert "σ[x=2000]" in out


def test_io_model_tour():
    out = run_example("io_model_tour.py")
    assert "Growth check" in out
    assert "LRU" in out


def test_figure_gallery():
    out = run_example("figure_gallery.py")
    assert "Figure 1" in out
    assert "external PST" in out
    assert "segment tree G" in out
