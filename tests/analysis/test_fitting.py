"""Tests for the complexity-model fitting layer."""


import pytest

from repro.analysis import (
    MODELS,
    ascii_series,
    best_model,
    fit_model,
    growth_ratio,
    il_star,
    render_fits,
    render_table,
)


def synthesize(model_name, a=3.0, b=2.0, c=5.0, B=64):
    f = MODELS[model_name]
    measurements = []
    for N in (2**10, 2**12, 2**14, 2**16, 2**18):
        for T in (0, 64, 1024):
            cost = a * f(N, B, T) + b * (T / B) + c
            measurements.append((N, B, T, cost))
    return measurements


class TestFitModel:
    def test_recovers_coefficients_exactly(self):
        data = synthesize("log2(n)")
        fit = fit_model(data, "log2(n)")
        assert fit.r_squared > 0.9999
        assert abs(fit.search_coef - 3.0) < 1e-6
        assert abs(fit.output_coef - 2.0) < 1e-6
        assert abs(fit.const - 5.0) < 1e-6

    def test_predict_roundtrip(self):
        data = synthesize("log_B(n)")
        fit = fit_model(data, "log_B(n)")
        N, B, T, cost = data[-1]
        assert abs(fit.predict(N, B, T) - cost) < 1e-6

    def test_too_few_measurements(self):
        with pytest.raises(ValueError):
            fit_model([(1024, 64, 0, 10.0)], "log2(n)")

    def test_describe_mentions_model(self):
        data = synthesize("n")
        fit = fit_model(data, "n")
        assert "n" in fit.describe()
        assert "R²" in fit.describe()


class TestBestModel:
    def test_identifies_logarithmic_data(self):
        data = synthesize("log2(n)")
        ranking = best_model(data)
        # log2(n) data must not be explained best by a linear model.
        assert ranking[0].model != "n"
        assert ranking[0].r_squared > 0.999

    def test_identifies_linear_data(self):
        data = synthesize("n")
        ranking = best_model(data)
        assert ranking[0].model == "n"

    def test_candidates_subset(self):
        data = synthesize("log2(n)")
        ranking = best_model(data, candidates=["log2(n)", "n"])
        assert {fit.model for fit in ranking} == {"log2(n)", "n"}


class TestGrowthRatio:
    def test_logarithmic_growth_is_small(self):
        data = synthesize("log2(n)", b=0.0)
        assert growth_ratio(data) < 3

    def test_linear_growth_tracks_n(self):
        data = synthesize("n", b=0.0, c=0.0)
        assert growth_ratio(data) > 100


class TestIlStar:
    def test_small_constants(self):
        # IL*(B) <= 3 for every realistic block size (the paper's point
        # that the term is negligible).
        for B in (16, 64, 1024, 2**20):
            assert 1 <= il_star(B) <= 3


class TestRendering:
    def test_render_table(self):
        table = render_table(["N", "cost"], [[1024, 12.5], [2048, 14.0]])
        assert "| N" in table.replace("|  N", "| N") or "N" in table
        assert "12.50" in table
        assert "2048" in table

    def test_render_table_integers_unchanged(self):
        table = render_table(["x"], [[3.0]])
        assert " 3 " in table or "| 3 |" in table

    def test_ascii_series(self):
        art = ascii_series("reads", [1, 2], [10.0, 20.0])
        assert "reads" in art
        assert "#" in art

    def test_render_fits(self):
        data = synthesize("log2(n)")
        text = render_fits(best_model(data))
        assert "->" in text
