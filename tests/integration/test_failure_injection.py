"""Failure injection: the simulator must catch cheating and corruption.

The I/O model is only as honest as its enforcement — these tests corrupt
state on purpose and check the storage layer refuses to play along.
"""

import pytest

from repro import SegmentDatabase, Segment, VerticalQuery
from repro.geometry import CrossingError, validate_nct
from repro.iosim import (
    BlockDevice,
    DanglingPageError,
    DoubleFreeError,
    PageOverflowError,
    Pager,
)
from repro.storage.bplus import BPlusTree
from repro.storage.chain import PageChain
from repro.workloads import grid_segments


class TestStorageEnforcement:
    def test_node_cannot_exceed_block_capacity(self):
        dev = BlockDevice(block_capacity=4)
        page = dev.alloc()
        with pytest.raises(PageOverflowError):
            page.put_items(range(5))

    def test_sneaky_mutation_caught_at_write(self):
        dev = BlockDevice(block_capacity=4)
        page = dev.alloc()
        page.put_items([1, 2, 3, 4])
        page.items.append(5)  # bypassing the API
        with pytest.raises(PageOverflowError):
            dev.write(page)

    def test_header_cannot_hold_bulk_data(self):
        from repro.iosim import HEADER_SLOTS

        dev = BlockDevice(block_capacity=4)
        page = dev.alloc()
        with pytest.raises(PageOverflowError):
            for i in range(HEADER_SLOTS + 1):
                page.set_header(f"smuggle{i}", i)

    def test_use_after_free_detected(self):
        dev = BlockDevice(block_capacity=8)
        pager = Pager(dev)
        chain = PageChain.create(pager, [1, 2, 3])
        chain.destroy()
        with pytest.raises(DanglingPageError):
            list(chain)

    def test_double_destroy_detected(self):
        dev = BlockDevice(block_capacity=8)
        pager = Pager(dev)
        tree = BPlusTree.build(pager, [(i, i) for i in range(20)])
        tree.destroy()
        with pytest.raises((DanglingPageError, DoubleFreeError)):
            tree.destroy()

    def test_stale_root_after_destroy(self):
        dev = BlockDevice(block_capacity=8)
        pager = Pager(dev)
        tree = BPlusTree.build(pager, [(i, i) for i in range(50)])
        tree.destroy()
        with pytest.raises(DanglingPageError):
            tree.search(10)


class TestInvariantEnforcement:
    def test_crossing_bulk_load_rejected(self):
        crossing = [
            Segment.from_coords(0, 0, 10, 10, label="a"),
            Segment.from_coords(0, 10, 10, 0, label="b"),
        ]
        with pytest.raises(CrossingError):
            SegmentDatabase.bulk_load(crossing, validate=True)

    def test_collinear_overlap_rejected(self):
        overlapping = [
            Segment.from_coords(0, 0, 10, 0, label="a"),
            Segment.from_coords(5, 0, 15, 0, label="b"),
        ]
        with pytest.raises(CrossingError):
            validate_nct(overlapping)

    def test_validated_insert_rejects_t_cross(self):
        db = SegmentDatabase.bulk_load(
            [Segment.from_coords(0, 0, 10, 0, label="spine")],
            engine="solution1",
            validate=True,
        )
        with pytest.raises(ValueError):
            db.insert(Segment.from_coords(5, -1, 5, 1, label="crosses"))
        # A T-touch is legal:
        db.insert(Segment.from_coords(5, 0, 5, 1, label="touches"))
        assert len(db) == 2

    def test_pst_invariant_checker_catches_corruption(self):
        from repro.core.linebased import ExternalPST
        from repro.workloads import fan

        dev = BlockDevice(block_capacity=4)
        pager = Pager(dev)
        tree = ExternalPST.build(pager, fan(60, seed=1))
        # Corrupt a routing count behind the structure's back.
        root = tree.read_root()
        root.children[0].count += 5
        from repro.core.linebased.node import write_node

        write_node(pager, root.items, root.children, root.low,
                   items_page=pager.fetch(root.pid))
        with pytest.raises(AssertionError):
            tree.check_invariants()

    def test_solution1_weight_checker_catches_corruption(self):
        from repro.core.solution1 import TwoLevelBinaryIndex

        dev = BlockDevice(block_capacity=8)
        pager = Pager(dev)
        index = TwoLevelBinaryIndex.build(pager, grid_segments(100, seed=2))
        root = pager.fetch(index.root_pid)
        root.set_header("weight", root.get_header("weight") + 1)
        pager.write(root)
        with pytest.raises(AssertionError):
            index.check_invariants()


class TestQueryInputValidation:
    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            VerticalQuery.segment(0, 5, 4)

    def test_float_coordinates_rejected_everywhere(self):
        with pytest.raises(TypeError):
            Segment.from_coords(0.5, 0, 1, 1)
        with pytest.raises(TypeError):
            VerticalQuery.line(0.5)

    def test_degenerate_segment_rejected(self):
        with pytest.raises(ValueError):
            Segment.from_coords(3, 3, 3, 3)
