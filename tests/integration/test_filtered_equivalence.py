"""Filtered vs exact-only arithmetic: bit-identical behaviour everywhere.

The float fast path only returns *certified* signs, so switching it off
must not change a single comparison outcome — which means every engine
must report the same segments AND touch exactly the same simulated
blocks in the same order.  This is the acceptance criterion of the
filter design (DESIGN.md §9): any divergence here means an error bound
is wrong.
"""

from fractions import Fraction

import pytest

from repro import SegmentDatabase, Segment
from repro.geometry import exact_only_enabled, reset_filter_stats, set_exact_only
from repro.geometry.filtered import STATS
from repro.workloads import grid_segments, grid_segments_touching, mixed_queries

ENGINES = ("solution1", "solution2", "scan", "stab-filter", "grid", "rtree")


@pytest.fixture(autouse=True)
def _restore_filter_mode():
    prev = exact_only_enabled()
    yield
    set_exact_only(prev)


def run_workload(segments, queries, engine, exact_only):
    set_exact_only(exact_only)
    db = SegmentDatabase.bulk_load(segments, engine=engine, block_capacity=16)
    outcomes = []
    for q in queries:
        before = db.io_stats()
        hits = db.query(q)
        diff = db.io_stats() - before
        outcomes.append(
            (sorted((s.label for s in hits), key=str), diff.reads, diff.writes)
        )
    batch = db.query_batch(queries)
    outcomes.append(
        [sorted((s.label for s in r), key=str) for r in batch]
    )
    outcomes.append(db.io_stats().to_dict())
    return outcomes


@pytest.mark.parametrize("engine", ENGINES)
def test_identical_results_and_ios(engine):
    segments = grid_segments(350, seed=201)
    queries = mixed_queries(segments, 20, selectivity=0.05, seed=202)
    filtered = run_workload(segments, queries, engine, exact_only=False)
    exact = run_workload(segments, queries, engine, exact_only=True)
    assert filtered == exact


@pytest.mark.parametrize("engine", ("solution1", "solution2"))
def test_identical_on_touching_degeneracies(engine):
    # Shared endpoints and T-junctions force exact sign-0 decisions: the
    # dangerous regime for a filter.
    segments = grid_segments_touching(350, seed=203)
    queries = mixed_queries(segments, 20, selectivity=0.05, seed=204)
    filtered = run_workload(segments, queries, engine, exact_only=False)
    exact = run_workload(segments, queries, engine, exact_only=True)
    assert filtered == exact


def test_identical_with_fractional_coordinates():
    # Denominators near 2**53: double conversion is lossy, so only the
    # certified subset of comparisons may take the fast path.
    base = grid_segments(200, seed=205)
    segments = [
        Segment.from_coords(
            s.start.x + Fraction(1, 2 ** 53 - 1),
            s.start.y,
            s.end.x + Fraction(1, 2 ** 53 - 1),
            s.end.y + Fraction(1, 3),
            label=s.label,
        )
        for s in base
    ]
    queries = mixed_queries(segments, 15, selectivity=0.05, seed=206)
    for engine in ("solution1", "solution2"):
        filtered = run_workload(segments, queries, engine, exact_only=False)
        exact = run_workload(segments, queries, engine, exact_only=True)
        assert filtered == exact, engine


def test_fast_path_actually_used():
    # Guard against a silently disabled filter: an integer workload must
    # certify the overwhelming majority of its comparisons.
    segments = grid_segments(350, seed=207)
    queries = mixed_queries(segments, 20, selectivity=0.05, seed=208)
    set_exact_only(False)
    reset_filter_stats()
    db = SegmentDatabase.bulk_load(segments, engine="solution2", block_capacity=16)
    for q in queries:
        db.query(q)
    assert STATS.total > 0
    assert STATS.hit_rate > 0.5
