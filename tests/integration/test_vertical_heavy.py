"""Workloads dominated by vertical segments: the C structures under load.

The cost-anatomy benchmark (E14) shows ordinary workloads barely touch the
on-line interval indexes, because a vertical segment only lands in ``C``
when it sits exactly on a base line / slab boundary.  These tests build
fence-like data where that happens constantly.
"""

import random

import pytest

from repro import SegmentDatabase, Segment, VerticalQuery, vs_intersects
from repro.workloads import mixed_queries


def fence_workload(columns=40, per_column=12, gap=50, seed=1):
    """Vertical "fence posts": many disjoint vertical segments stacked in
    shared x-columns (plus horizontal rails tying the scene together)."""
    rng = random.Random(seed)
    segments = []
    for c in range(columns):
        x = c * gap
        y = 0
        for j in range(per_column):
            height = rng.randint(2, 30)
            segments.append(
                Segment.from_coords(x, y, x, y + height, label=("post", c, j))
            )
            y += height + rng.randint(1, 10)
    # Rails between columns, touching nothing (strictly between posts' x).
    for c in range(columns - 1):
        x = c * gap + gap // 2
        segments.append(
            Segment.from_coords(x - 10, -20, x + 10, -15, label=("rail", c))
        )
    return segments


def oracle(segments, q):
    return sorted((s.label for s in segments if vs_intersects(s, q)), key=str)


@pytest.mark.parametrize("engine", ("solution1", "solution2", "stab-filter", "grid", "rtree"))
def test_fence_queries_match_oracle(engine):
    segments = fence_workload()
    db = SegmentDatabase.bulk_load(segments, engine=engine, block_capacity=16)
    for q in mixed_queries(segments, 20, selectivity=0.05, seed=2):
        assert sorted((s.label for s in db.query(q)), key=str) == oracle(
            segments, q
        ), (engine, q)


@pytest.mark.parametrize("engine", ("solution1", "solution2"))
def test_queries_on_post_columns(engine):
    """Queries exactly on the shared x of a column hit the C structures."""
    segments = fence_workload()
    db = SegmentDatabase.bulk_load(segments, engine=engine, block_capacity=16)
    for x in (0, 50, 1000, 1950):
        for q in (
            VerticalQuery.line(x),
            VerticalQuery.segment(x, 10, 60),
            VerticalQuery.ray_up(x, ylo=100),
        ):
            assert sorted((s.label for s in db.query(q)), key=str) == oracle(
                segments, q
            ), (engine, q)


def test_c_structures_actually_used():
    """At least some query I/O must be attributed to C on this workload."""
    from repro.core.solution1 import TwoLevelBinaryIndex
    from repro.iosim import BlockDevice, Pager

    segments = fence_workload(columns=30, per_column=20)
    dev = BlockDevice(block_capacity=16)
    index = TwoLevelBinaryIndex.build(Pager(dev), segments)
    dev.reset_tags()
    # Probe the exact base lines the first level chose.
    pids = [index.root_pid]
    lines = []
    while pids:
        page = dev.read(pids.pop())
        if page.get_header("kind") == "node":
            lines.append(page.get_header("x"))
            pids.extend([page.get_header("left"), page.get_header("right")])
    dev.reset_tags()
    for c in lines[:8]:
        index.query(VerticalQuery.segment(c, 0, 200))
    assert dev.tag_snapshot().get("C", 0) > 0


def test_fence_updates():
    segments = fence_workload(columns=20, per_column=8)
    db = SegmentDatabase.bulk_load(segments, engine="solution1",
                                   block_capacity=16)
    rng = random.Random(3)
    victims = rng.sample(segments, 40)
    for s in victims:
        assert db.delete(s)
    live = [s for s in segments if s not in victims]
    for q in mixed_queries(segments, 15, seed=4):
        assert sorted((s.label for s in db.query(q)), key=str) == oracle(live, q)
