"""Integration: ``query_batch`` is the sequential loop, only cheaper.

The contract of batched execution (DESIGN.md §8): for every engine,
``db.query_batch(qs)`` returns — per query, in input order — the same
result multiset as ``[db.query(q) for q in qs]``, with and without a
buffer pool; and on the two paper engines the batched I/O never exceeds
the sequential I/O (shared descent only ever removes node fetches).
"""

import pytest

from repro import ENGINES, SegmentDatabase
from repro.workloads import grid_segments, mixed_queries, version_history


def _labels(result):
    return sorted((s.label for s in result), key=str)


def _build(engine, segments, block_capacity, buffer_pages=None):
    return SegmentDatabase.bulk_load(
        segments,
        engine=engine,
        block_capacity=block_capacity,
        buffer_pages=buffer_pages,
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed,block_capacity", [(201, 16), (202, 32), (203, 64)])
def test_batch_equals_sequential(engine, seed, block_capacity):
    segments = grid_segments(350, seed=seed)
    queries = mixed_queries(segments, 24, selectivity=0.05, seed=seed + 1)
    db = _build(engine, segments, block_capacity)
    sequential = [db.query(q) for q in queries]
    batched = db.query_batch(queries)
    assert len(batched) == len(queries)
    for q, seq, bat in zip(queries, sequential, batched):
        assert _labels(bat) == _labels(seq), (engine, q)


@pytest.mark.parametrize("engine", ENGINES)
def test_batch_equals_sequential_with_buffer_pool(engine):
    segments = version_history(25, versions_per_key=15, seed=204)
    queries = mixed_queries(segments, 20, selectivity=0.05, seed=205)
    db = _build(engine, segments, 32, buffer_pages=8)
    sequential = [db.query(q) for q in queries]
    batched = db.query_batch(queries)
    for q, seq, bat in zip(queries, sequential, batched):
        assert _labels(bat) == _labels(seq), (engine, q)
    # Every batch-held pin is released when the batch drains.
    assert db.buffer_pool.pinned_count == 0


@pytest.mark.parametrize("engine", ("solution1", "solution2"))
@pytest.mark.parametrize("block_capacity", (16, 32))
def test_batched_io_not_worse_than_sequential(engine, block_capacity):
    segments = grid_segments(400, seed=206)
    queries = mixed_queries(segments, 32, selectivity=0.05, seed=207)
    db = _build(engine, segments, block_capacity)
    db.reset_io_stats()
    for q in queries:
        db.query(q)
    sequential_io = db.io_stats().total
    db.reset_io_stats()
    db.query_batch(queries)
    batched_io = db.io_stats().total
    assert batched_io <= sequential_io, (engine, batched_io, sequential_io)


@pytest.mark.parametrize("engine", ("solution1", "solution2"))
def test_batch_of_one_costs_like_one_query(engine):
    """A degenerate batch must not be cheaper than the sequential query —
    that would mean batch accounting dedupes what the per-query cost
    model charges (caching masquerading as shared descent)."""
    segments = grid_segments(300, seed=208)
    queries = mixed_queries(segments, 10, selectivity=0.05, seed=209)
    db = _build(engine, segments, 32)
    for q in queries:
        db.reset_io_stats()
        db.query(q)
        one = db.io_stats().total
        db.reset_io_stats()
        db.query_batch([q])
        batched = db.io_stats().total
        assert batched == one, (engine, q, batched, one)


@pytest.mark.parametrize("engine", ENGINES)
def test_empty_batch(engine):
    db = _build(engine, grid_segments(50, seed=210), 16)
    assert db.query_batch([]) == []


@pytest.mark.parametrize("engine", ENGINES)
def test_explain_batch_is_balanced(engine):
    segments = grid_segments(300, seed=211)
    queries = mixed_queries(segments, 16, selectivity=0.05, seed=212)
    db = _build(engine, segments, 32)
    report = db.explain_batch(queries)
    assert report.balanced, report.to_markdown()
    assert report.results == sum(len(r) for r in db.query_batch(queries))
    db.reset_io_stats()
    db.query_batch(queries)
    assert report.io.total == db.io_stats().total


def test_batch_metrics_recorded():
    segments = grid_segments(200, seed=213)
    queries = mixed_queries(segments, 8, selectivity=0.05, seed=214)
    db = _build("solution2", segments, 32, buffer_pages=8)
    metrics = db.enable_metrics()
    db.query_batch(queries)
    snap = metrics.to_dict()
    assert snap["query_batch.count"]["value"] == 1
    assert snap["query_batch.size"]["count"] == 1
    assert snap["query_batch.ios_per_query"]["count"] == 1
    assert snap["buffer.pinned"]["value"] == 0
