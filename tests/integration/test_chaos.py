"""Chaos suite: under injected faults, answers are never silently wrong.

Each round builds the engine under test on a FaultyBlockDevice with a
seeded schedule of transient read errors, in-flight corruption and torn
writes, and replays a query workload next to a fault-free clean twin.
Every single query must end in exactly one of:

* an exact answer equal to the twin's (retries absorbed the faults),
* a typed ``DegradedResult`` whose *content* still equals the twin's
  (served from the fallback copy after quarantine), or
* a typed storage error (loud failure).

A result that is neither degraded nor equal to the twin's is silent
wrongness — the one forbidden outcome.  On failure the schedule's full
injection log is written to ``chaos-artifacts/`` so the exact fault
sequence can be replayed (``FaultSchedule.from_dict``).

``CHAOS_SEED_BASE`` shifts the seed window, letting CI sweep fresh seeds
without a code change.
"""

import json
import os

import pytest

from repro import SegmentDatabase
from repro.iosim import FaultSchedule, RetryPolicy, StorageError
from repro.workloads import grid_segments, mixed_queries

SEED_BASE = int(os.environ.get("CHAOS_SEED_BASE", "1000"))
SEEDS = range(SEED_BASE, SEED_BASE + 5)
ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "chaos-artifacts")


def _dump_artifact(engine, seed, schedule, detail):
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, f"chaos-{engine}-seed{seed}.json")
    with open(path, "w") as fh:
        json.dump({"engine": engine, "seed": seed, "detail": detail,
                   "schedule": schedule.to_dict()}, fh, indent=2, default=str)
    return path


def run_chaos_round(engine, seed):
    segments = grid_segments(250, seed=400)
    queries = mixed_queries(segments, 30, selectivity=0.05, seed=seed)
    schedule = FaultSchedule(
        seed=seed,
        read_error_rate=0.03,
        corrupt_read_rate=0.015,
        torn_write_rate=0.05,
    )
    db = SegmentDatabase.bulk_load(
        segments, engine=engine, block_capacity=16,
        faults=schedule, retry=RetryPolicy(max_retries=3),
    )
    twin = SegmentDatabase.bulk_load(segments, engine=engine,
                                     block_capacity=16)
    outcomes = {"exact": 0, "degraded": 0, "typed_error": 0}
    extra = grid_segments(10, seed=seed + 1)
    inserts = iter(
        type(s).from_coords(s.start.x + 10**7, s.start.y,
                            s.end.x + 10**7, s.end.y, label=("x", seed, i))
        for i, s in enumerate(extra)
    )
    for i, q in enumerate(queries):
        if i % 4 == 0:
            # Interleave journaled inserts so torn writes have a target.
            seg = next(inserts, None)
            if seg is not None:
                try:
                    db.insert(seg)
                    twin.insert(seg)
                except StorageError:
                    # Crash or corruption mid-insert: the journal rolls the
                    # index back (recover() for crashes), the twin never
                    # inserted — the two stay equal.
                    if getattr(db.device, "needs_recovery", False):
                        db.recover()
        expected = sorted((s.label for s in twin.query(q)), key=str)
        try:
            result = db.query(q)
        except StorageError:
            outcomes["typed_error"] += 1
            continue
        got = sorted((s.label for s in result), key=str)
        if got != expected:
            path = _dump_artifact(engine, seed, schedule, {
                "query": str(q),
                "expected": [str(x) for x in expected],
                "got": [str(x) for x in got],
                "degraded": bool(getattr(result, "degraded", False)),
            })
            pytest.fail(
                f"silently wrong answer (engine={engine}, seed={seed}); "
                f"schedule dumped to {path}"
            )
        if getattr(result, "degraded", False):
            outcomes["degraded"] += 1
        else:
            outcomes["exact"] += 1
    # End-of-round integrity: fsck either passes or quarantines loudly.
    report = db.fsck()
    if not report.ok:
        assert report.quarantined, report
    return outcomes, db


@pytest.mark.parametrize("engine", ("solution1", "solution2"))
@pytest.mark.parametrize("seed", list(SEEDS))
def test_never_silently_wrong(engine, seed):
    outcomes, db = run_chaos_round(engine, seed)
    assert sum(outcomes.values()) == 30
    # The round must have actually injected something (rates × volume make
    # an empty round astronomically unlikely; a zero here means the
    # schedule was left disarmed).
    assert db.io_report()["faults"]["faults_injected"] > 0


def test_degradation_produces_typed_results():
    # At a high corruption rate quarantine is near-certain; every fallback
    # answer must carry the degraded marker and a reason.
    segments = grid_segments(200, seed=401)
    queries = mixed_queries(segments, 20, selectivity=0.05, seed=402)
    schedule = FaultSchedule(seed=7, corrupt_read_rate=0.3)
    db = SegmentDatabase.bulk_load(segments, engine="solution2",
                                   block_capacity=16, faults=schedule,
                                   retry=RetryPolicy(max_retries=0))
    twin = SegmentDatabase.bulk_load(segments, engine="solution2",
                                     block_capacity=16)
    degraded = 0
    for q in queries:
        result = db.query(q)
        expected = sorted((s.label for s in twin.query(q)), key=str)
        assert sorted((s.label for s in result), key=str) == expected
        if getattr(result, "degraded", False):
            degraded += 1
            assert result.reason
            assert result.source == "scan-fallback"
    assert degraded > 0
    assert db.quarantined
    assert db.io_report()["degraded_queries"] == degraded


def test_without_degradation_errors_surface():
    segments = grid_segments(150, seed=403)
    queries = mixed_queries(segments, 20, selectivity=0.05, seed=404)
    schedule = FaultSchedule(seed=11, corrupt_read_rate=0.3)
    db = SegmentDatabase.bulk_load(segments, engine="solution1",
                                   block_capacity=16, faults=schedule,
                                   retry=RetryPolicy(max_retries=0),
                                   degrade=False)
    raised = False
    for q in queries:
        try:
            db.query(q)
        except StorageError:
            raised = True
            break
    assert raised, "corruption at this rate must surface without degradation"


def test_rebuild_restores_exact_service():
    segments = grid_segments(200, seed=405)
    queries = mixed_queries(segments, 10, selectivity=0.05, seed=406)
    db = SegmentDatabase.bulk_load(segments, engine="solution1",
                                   block_capacity=16,
                                   faults=FaultSchedule(seed=0))
    twin = SegmentDatabase.bulk_load(segments, engine="solution1",
                                     block_capacity=16)
    victim = sorted(p.page_id for p in db.device.iter_pages())[0]
    db.device.corrupt_page(victim)
    assert not db.fsck().ok
    assert db.quarantined
    with pytest.raises(StorageError):
        db.insert(segments[0])  # updates refused while quarantined
    db.rebuild()
    assert not db.quarantined
    assert db.fsck().ok
    for q in queries:
        result = db.query(q)
        assert not getattr(result, "degraded", False)
        assert sorted((s.label for s in result), key=str) == sorted(
            (s.label for s in twin.query(q)), key=str)
