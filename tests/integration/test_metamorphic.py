"""Metamorphic properties every engine must satisfy.

These need no oracle: they relate an engine's answers to each other.

* **containment** — a sub-segment's answer is a subset of its
  super-segment's, and every segment query's answer is a subset of the
  stabbing query at the same x;
* **union** — two adjacent query segments together report exactly what
  their union reports;
* **insert monotonicity** — inserting can only add to any answer;
* **duplicate-freeness** — no query ever reports a label twice;
* **point decomposition** — a stabbing answer equals the union of answers
  of a partition of the line into rays.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SegmentDatabase, VerticalQuery
from repro.workloads import grid_segments_touching, mixed_queries

ENGINES = ("solution1", "solution2", "stab-filter", "grid", "rtree", "scan")


def labels(result):
    return {s.label for s in result}


def build(engine, seed=1, n=250):
    segments = grid_segments_touching(n, seed=seed)
    return segments, SegmentDatabase.bulk_load(segments, engine=engine,
                                               block_capacity=16)


@pytest.mark.parametrize("engine", ENGINES)
def test_subsegment_containment(engine):
    segments, db = build(engine)
    for x0 in (50, 333, 801):
        narrow = labels(db.query(VerticalQuery.segment(x0, 200, 400)))
        wide = labels(db.query(VerticalQuery.segment(x0, 100, 500)))
        line = labels(db.query(VerticalQuery.line(x0)))
        assert narrow <= wide <= line, (engine, x0)


@pytest.mark.parametrize("engine", ENGINES)
def test_adjacent_union(engine):
    segments, db = build(engine)
    for x0 in (75, 450):
        low = labels(db.query(VerticalQuery.segment(x0, 0, 300)))
        high = labels(db.query(VerticalQuery.segment(x0, 300, 700)))
        union = labels(db.query(VerticalQuery.segment(x0, 0, 700)))
        assert low | high == union, (engine, x0)


@pytest.mark.parametrize("engine", ENGINES)
def test_ray_decomposition_of_line(engine):
    segments, db = build(engine)
    for x0 in (120, 666):
        up = labels(db.query(VerticalQuery.ray_up(x0, ylo=350)))
        down = labels(db.query(VerticalQuery.ray_down(x0, yhi=350)))
        line = labels(db.query(VerticalQuery.line(x0)))
        assert up | down == line, (engine, x0)


@pytest.mark.parametrize("engine", ("solution1", "solution2", "stab-filter", "rtree"))
def test_insert_monotonicity(engine):
    segments, db = build(engine, seed=2)
    queries = mixed_queries(segments, 6, seed=3)
    before = [labels(db.query(q)) for q in queries]
    extra = grid_segments_touching(40, seed=99)
    offset = 10**6  # shift far away so the NCT invariant trivially holds
    from repro.geometry import Segment

    for s in extra:
        db.insert(
            Segment.from_coords(
                s.start.x + offset, s.start.y, s.end.x + offset, s.end.y,
                label=("far",) + (s.label if isinstance(s.label, tuple) else (s.label,)),
            )
        )
    after = [labels(db.query(q)) for q in queries]
    for b, a in zip(before, after):
        assert b <= a, engine


@pytest.mark.parametrize("engine", ENGINES)
def test_no_duplicates_anywhere(engine):
    segments, db = build(engine, seed=4)
    for q in mixed_queries(segments, 20, seed=5):
        got = [s.label for s in db.query(q)]
        assert len(got) == len(set(got)), (engine, q)


@given(st.integers(0, 10**6), st.integers(0, 1000), st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_window_shrinking_property(seed, ylo, height):
    """Shrinking a window never adds answers (hypothesis-driven)."""
    segments = grid_segments_touching(80, cell_size=30, seed=seed)
    db = SegmentDatabase.bulk_load(segments, engine="solution2",
                                   block_capacity=16)
    x0 = 150
    big = labels(db.query(VerticalQuery.segment(x0, ylo, ylo + height + 50)))
    small = labels(db.query(VerticalQuery.segment(x0, ylo + 10,
                                                  ylo + max(10, height))))
    assert small <= big
