"""Integration: every engine answers every workload identically.

The full-scan engine is the oracle; the paper's two structures and the two
indexed baselines must agree with it on every query kind over every
workload family, including after interleaved insertions.
"""

import pytest

from repro import SegmentDatabase
from repro.workloads import (
    delaunay_edges,
    grid_segments,
    grid_segments_touching,
    mixed_queries,
    monotone_polylines,
    version_history,
)

ENGINES = ("solution1", "solution2", "stab-filter", "grid", "rtree")

WORKLOADS = {
    "grid": lambda: grid_segments(400, seed=101),
    "touching": lambda: grid_segments_touching(400, seed=102),
    "polylines": lambda: monotone_polylines(10, points_per_line=40, seed=103),
    "temporal": lambda: version_history(20, versions_per_key=20, seed=104),
    "delaunay": lambda: delaunay_edges(150, seed=105),
}


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("engine", ENGINES)
def test_engine_matches_oracle(workload, engine):
    segments = WORKLOADS[workload]()
    oracle = SegmentDatabase.bulk_load(segments, engine="scan", block_capacity=16)
    db = SegmentDatabase.bulk_load(segments, engine=engine, block_capacity=16)
    for q in mixed_queries(segments, 15, selectivity=0.05, seed=1):
        expected = sorted((s.label for s in oracle.query(q)), key=str)
        got = sorted((s.label for s in db.query(q)), key=str)
        assert got == expected, (workload, engine, q)


@pytest.mark.parametrize("engine", ENGINES)
def test_engine_matches_oracle_after_inserts(engine):
    segments = grid_segments(300, seed=106)
    base, extra = segments[:200], segments[200:]
    oracle = SegmentDatabase.bulk_load(base, engine="scan", block_capacity=16)
    db = SegmentDatabase.bulk_load(base, engine=engine, block_capacity=16)
    queries = mixed_queries(segments, 4, selectivity=0.05, seed=2)
    for i, s in enumerate(extra):
        oracle.insert(s)
        db.insert(s)
        if i % 25 == 0:
            for q in queries:
                expected = sorted((x.label for x in oracle.query(q)), key=str)
                got = sorted((x.label for x in db.query(q)), key=str)
                assert got == expected, (engine, i, q)


@pytest.mark.parametrize("capacity", (4, 16, 64, 256))
def test_block_capacity_never_changes_answers(capacity):
    segments = grid_segments_touching(300, seed=107)
    reference = None
    db = SegmentDatabase.bulk_load(segments, engine="solution2",
                                   block_capacity=capacity)
    got = [
        sorted((s.label for s in db.query(q)), key=str)
        for q in mixed_queries(segments, 10, seed=3)
    ]
    oracle = SegmentDatabase.bulk_load(segments, engine="scan",
                                       block_capacity=capacity)
    expected = [
        sorted((s.label for s in oracle.query(q)), key=str)
        for q in mixed_queries(segments, 10, seed=3)
    ]
    assert got == expected


def test_buffer_pool_never_changes_answers():
    segments = grid_segments(500, seed=108)
    plain = SegmentDatabase.bulk_load(segments, engine="solution2",
                                      block_capacity=16)
    pooled = SegmentDatabase.bulk_load(segments, engine="solution2",
                                       block_capacity=16, buffer_pages=8)
    for q in mixed_queries(segments, 20, seed=4):
        assert sorted((s.label for s in plain.query(q)), key=str) == sorted(
            (s.label for s in pooled.query(q)), key=str
        )


def test_solution1_blocked_and_binary_second_levels_agree():
    from repro.core.solution1 import TwoLevelBinaryIndex
    from repro.iosim import BlockDevice, Pager

    segments = version_history(15, versions_per_key=20, seed=109)
    variants = []
    for blocked in (True, False):
        dev = BlockDevice(block_capacity=16)
        variants.append(TwoLevelBinaryIndex.build(Pager(dev), segments,
                                                  blocked=blocked))
    for q in mixed_queries(segments, 15, seed=5):
        a, b = (sorted((s.label for s in v.query(q)), key=str) for v in variants)
        assert a == b
