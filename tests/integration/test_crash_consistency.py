"""Crash consistency: a crashed update is invisible after recovery.

Updates on a faulty device run inside the device's operation journal, so
a crash at *any* point of an insert or delete must leave the index —
pages and in-memory engine state both — exactly pre-op after
``recover()``, and retrying the operation must land it exactly post-op.
The oracle is the segment set itself: after every crash/recover cycle,
``all_segments()`` is compared against a shadow set maintained in plain
Python, and fsck must report a clean structure.

Covered here:

* every named crash point registered in the two paper engines,
* a ``crash_after_writes`` sweep (crash on the k-th journaled write),
* a long randomized update run (1000+ ops) with crashes injected
  throughout, and
* the external PST's crash points, driven directly through the journal.
"""

import random

import pytest

from repro import SegmentDatabase, Segment
from repro.iosim import FaultSchedule, FaultyBlockDevice, Pager, SimulatedCrash
from repro.workloads import grid_segments

SOLUTION1_POINTS = (
    "solution1.insert.descent",
    "solution1.insert.second-level",
    "solution1.insert.leaf-rebuild",
    "solution1.delete.descent",
    "solution1.delete.second-level",
    "solution1.rebalance",
)
SOLUTION2_POINTS = (
    "solution2.insert.descent",
    "solution2.insert.second-level",
    "solution2.insert.leaf-rebuild",
    "solution2.rebalance",
)


def _labels(db_or_index):
    return sorted((s.label for s in db_or_index.all_segments()), key=str)


def _fresh(i, seed=0):
    # Distinct cells far to the right of the base grid; the growing x
    # offset also skews the tree, which is what forces rebalances.
    # Every 5th segment is a wide one in a high, conflict-free y band:
    # it spans the x-range of everything inserted so far, so it lands in
    # the *second-level* structures of nodes built by earlier leaf
    # rebuilds (narrow segments alone never span an existing line).
    rng = random.Random(seed * 100003 + i)
    if i % 5 == 4:
        y = 5000 + 10 * i
        return Segment.from_coords(10**6 - 50, y, 10**6 + 100 * i + 190,
                                   y + 1, label=("c", seed, i))
    x = 10**6 + 100 * i
    y = rng.randint(0, 1000)
    return Segment.from_coords(x, y, x + rng.randint(1, 90),
                               y + rng.randint(0, 90),
                               label=("c", seed, i))


def _drive_to_crash(db, point, engine, seed):
    """Random updates until the armed crash point fires; returns the op.

    Each op is checked for atomicity on the spot: crash -> recover ->
    pre-op oracle, then redo -> post-op oracle.
    """
    rng = random.Random(seed)
    stored = list(db.all_segments())
    for i in range(600):
        do_delete = (engine == "solution1" and stored and rng.random() < 0.3
                     and "delete" in point)
        oracle = _labels(db)
        if do_delete:
            victim = stored[rng.randrange(len(stored))]
            try:
                assert db.delete(victim)
                stored.remove(victim)
            except SimulatedCrash:
                db.recover()
                assert _labels(db) == oracle, f"{point}: not pre-op"
                assert db.fsck().ok
                assert db.delete(victim)  # redo completes
                oracle.remove(victim.label)
                oracle.sort(key=str)
                assert _labels(db) == oracle, f"{point}: redo not post-op"
                return True
        else:
            seg = _fresh(i, seed)
            try:
                db.insert(seg)
                stored.append(seg)
            except SimulatedCrash:
                db.recover()
                assert _labels(db) == oracle, f"{point}: not pre-op"
                assert db.fsck().ok
                db.insert(seg)  # redo completes
                assert _labels(db) == sorted(oracle + [seg.label], key=str), (
                    f"{point}: redo not post-op")
                return True
    return False


@pytest.mark.parametrize("point", SOLUTION1_POINTS)
def test_solution1_crash_points(point):
    schedule = FaultSchedule(seed=1, crash_points={point: 1})
    db = SegmentDatabase.bulk_load(grid_segments(150, seed=500),
                                   engine="solution1", block_capacity=8,
                                   faults=schedule)
    assert _drive_to_crash(db, point, "solution1", seed=501), (
        f"crash point {point} never fired")
    assert db.fsck().ok


@pytest.mark.parametrize("point", SOLUTION2_POINTS)
def test_solution2_crash_points(point):
    schedule = FaultSchedule(seed=2, crash_points={point: 1})
    # Rebalance needs a node with > IMBALANCE_FACTOR children for one
    # slab to exceed its fair share; the fan-out is capacity//4, so only
    # a larger block makes that reachable.  A 600-segment base then
    # gives the root ~8 slabs, and the skewed inserts overload the
    # rightmost one past the 4x-fair trigger.
    if point == "solution2.rebalance":
        n, capacity = 600, 32
    else:
        n, capacity = 150, 8
    db = SegmentDatabase.bulk_load(grid_segments(n, seed=502),
                                   engine="solution2", block_capacity=capacity,
                                   faults=schedule)
    assert _drive_to_crash(db, point, "solution2", seed=503), (
        f"crash point {point} never fired")
    assert db.fsck().ok


@pytest.mark.parametrize("engine", ("solution1", "solution2"))
def test_crash_after_writes_sweep(engine):
    # Crash on the k-th journaled write of one insert, for every k the
    # insert performs; k beyond the write count means no crash.
    segments = grid_segments(120, seed=504)
    for k in range(1, 12):
        schedule = FaultSchedule(seed=3, crash_after_writes=k)
        db = SegmentDatabase.bulk_load(segments, engine=engine,
                                       block_capacity=8, faults=schedule)
        oracle = _labels(db)
        seg = _fresh(k, seed=505)
        try:
            db.insert(seg)
        except SimulatedCrash:
            db.recover()
            assert _labels(db) == oracle, f"k={k}: not pre-op"
            assert db.fsck().ok, f"k={k}"
            db.insert(seg)
        assert _labels(db) == sorted(oracle + [seg.label], key=str), f"k={k}"


def test_long_randomized_update_run_with_crashes():
    # 1000+ random updates on the dynamic engine; every ~7th op is armed
    # to crash partway through its journaled writes.  The shadow set is
    # the ground truth; any divergence after a recover() is a journal bug.
    schedule = FaultSchedule(seed=6)
    db = SegmentDatabase.bulk_load(grid_segments(200, seed=506),
                                   engine="solution1", block_capacity=8,
                                   faults=schedule)
    rng = random.Random(507)
    shadow = {s.label: s for s in db.all_segments()}
    crashes = 0
    for i in range(1000):
        if rng.random() < 0.15:
            schedule.crash_after_writes = rng.randint(1, 8)
        do_delete = shadow and rng.random() < 0.4
        if do_delete:
            victim = shadow[rng.choice(sorted(shadow, key=str))]
            try:
                assert db.delete(victim)
                del shadow[victim.label]
            except SimulatedCrash:
                crashes += 1
                db.recover()
        else:
            seg = _fresh(i, seed=508)
            try:
                db.insert(seg)
                shadow[seg.label] = seg
            except SimulatedCrash:
                crashes += 1
                db.recover()
        if i % 200 == 199:
            assert _labels(db) == sorted(shadow, key=str), f"diverged at op {i}"
            assert db.fsck(deep=False).ok
    schedule.crash_after_writes = None
    assert crashes >= 20, f"only {crashes} crashes exercised"
    assert _labels(db) == sorted(shadow, key=str)
    report = db.fsck(deep=True)
    assert report.ok, report


# ----------------------------------------------------------------------
# the external PST, journaled directly (it sits outside SegmentDatabase)
# ----------------------------------------------------------------------
def _pst_setup(point, k=1):
    from repro.core.linebased.pst import ExternalPST
    from repro.workloads.linebased import fan

    schedule = FaultSchedule(seed=9, crash_points={point: k})
    device = FaultyBlockDevice(8, schedule=schedule)
    pager = Pager(device)
    with schedule.disarmed():
        pst = ExternalPST.build(pager, fan(120, seed=509))
    return pst, device


def _pst_labels(pst):
    return sorted((s.label for s in pst.all_segments()), key=str)


@pytest.mark.parametrize("point", ("pst.insert.sift", "pst.rebuild"))
def test_pst_insert_crash_points(point):
    from repro.geometry import LineBasedSegment

    pst, device = _pst_setup(point)
    fired = False
    for i in range(400):
        seg = LineBasedSegment(3000 + 2 * i, 3000 + 2 * i, 50 + i,
                               label=("p", i))
        oracle = _pst_labels(pst)
        state = (pst.root_pid, pst.size, pst._updates_since_rebuild)
        try:
            with device.journaled():
                with pst.pager.operation():
                    pst.insert(seg)
        except SimulatedCrash:
            fired = True
            device.rollback_journal()
            pst.root_pid, pst.size, pst._updates_since_rebuild = state
            assert _pst_labels(pst) == oracle, f"{point}: not pre-op"
            pst.check_invariants()
            with device.journaled():
                with pst.pager.operation():
                    pst.insert(seg)  # redo
            assert _pst_labels(pst) == sorted(oracle + [seg.label], key=str)
            break
    assert fired, f"{point} never fired"
    pst.check_invariants()


def test_pst_delete_crash_point():
    pst, device = _pst_setup("pst.delete")
    victims = list(pst.all_segments())
    fired = False
    for victim in victims[:50]:
        oracle = _pst_labels(pst)
        state = (pst.root_pid, pst.size, pst._updates_since_rebuild)
        try:
            with device.journaled():
                with pst.pager.operation():
                    assert pst.delete(victim)
        except SimulatedCrash:
            fired = True
            device.rollback_journal()
            pst.root_pid, pst.size, pst._updates_since_rebuild = state
            assert _pst_labels(pst) == oracle, "pst.delete: not pre-op"
            pst.check_invariants()
            with device.journaled():
                with pst.pager.operation():
                    assert pst.delete(victim)  # redo
            oracle.remove(victim.label)
            assert _pst_labels(pst) == sorted(oracle, key=str)
            break
    assert fired, "pst.delete never fired"
    pst.check_invariants()
