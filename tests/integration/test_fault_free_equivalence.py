"""Fault-free equivalence: the robustness layer must be cost-invisible.

Attaching a fault schedule that injects nothing (all rates zero, still
*armed*) swaps in the checksumming, journaling FaultyBlockDevice.  The
hard contract (DESIGN.md §10) is that this changes nothing observable:
every engine returns bit-identical results AND charges bit-identical I/O
counts per query, per update, and in total, compared to a plain
BlockDevice — checksum verification and journal bookkeeping are free in
the paper's cost model.
"""

import pytest

from repro import SegmentDatabase
from repro.iosim import FaultSchedule, RetryPolicy
from repro.workloads import grid_segments, mixed_queries

ENGINES = ("solution1", "solution2", "scan", "stab-filter", "grid", "rtree")

#: Engines whose insert path is exercised too (all of them support insert).
DYNAMIC = ENGINES
#: Engines supporting deletion.
DELETING = ("solution1", "scan")


def run_workload(segments, queries, engine, faulty, buffer_pages=None):
    kwargs = {}
    if faulty:
        kwargs["faults"] = FaultSchedule(seed=99)  # armed, zero rates
        kwargs["retry"] = RetryPolicy(max_retries=4, backoff_ios=2)
    db = SegmentDatabase.bulk_load(
        segments[:-10], engine=engine, block_capacity=16,
        buffer_pages=buffer_pages, **kwargs
    )
    outcomes = []
    for q in queries:
        before = db.io_stats()
        hits = db.query(q)
        diff = db.io_stats() - before
        outcomes.append(
            (sorted((s.label for s in hits), key=str), diff.reads, diff.writes)
        )
        assert not getattr(hits, "degraded", False)
    if engine in DYNAMIC:
        for s in segments[-10:]:
            before = db.io_stats()
            db.insert(s)
            diff = db.io_stats() - before
            outcomes.append(("insert", diff.reads, diff.writes))
    if engine in DELETING:
        for s in segments[-5:]:
            before = db.io_stats()
            assert db.delete(s)
            diff = db.io_stats() - before
            outcomes.append(("delete", diff.reads, diff.writes))
    batch = db.query_batch(queries)
    outcomes.append([sorted((s.label for s in r), key=str) for r in batch])
    outcomes.append(db.io_stats().to_dict())
    outcomes.append(db.space_in_blocks())
    return outcomes, db


@pytest.mark.parametrize("engine", ENGINES)
def test_identical_results_and_ios(engine):
    segments = grid_segments(350, seed=301)
    queries = mixed_queries(segments[:-10], 20, selectivity=0.05, seed=302)
    faulty, db = run_workload(segments, queries, engine, faulty=True)
    plain, _ = run_workload(segments, queries, engine, faulty=False)
    assert faulty == plain
    # Nothing was injected and nothing degraded.
    report = db.io_report()
    assert report["faults"]["faults_injected"] == 0
    assert report["degraded_queries"] == 0
    assert not report["quarantined"]


@pytest.mark.parametrize("engine", ("solution1", "solution2"))
def test_identical_under_buffer_pool(engine):
    # The pool adds journal_note_read/note_write forwarding; the cache-hit
    # path must stay hit-for-hit identical too.
    segments = grid_segments(300, seed=303)
    queries = mixed_queries(segments[:-10], 15, selectivity=0.05, seed=304)
    faulty, fdb = run_workload(segments, queries, engine, faulty=True,
                               buffer_pages=8)
    plain, pdb = run_workload(segments, queries, engine, faulty=False,
                              buffer_pages=8)
    assert faulty == plain
    assert (fdb.buffer_pool.hits, fdb.buffer_pool.misses) == (
        pdb.buffer_pool.hits, pdb.buffer_pool.misses)


@pytest.mark.parametrize("engine", ("solution1", "solution2"))
def test_fsck_clean_after_fault_free_workload(engine):
    segments = grid_segments(300, seed=305)
    queries = mixed_queries(segments[:-10], 10, selectivity=0.05, seed=306)
    _, db = run_workload(segments, queries, engine, faulty=True)
    report = db.fsck()
    assert report.ok, report
    assert not report.quarantined
