"""Tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main
from repro.workloads import grid_segments
from repro.workloads.files import dump


@pytest.fixture
def segment_file(tmp_path):
    path = str(tmp_path / "segments.tsv")
    dump(grid_segments(25, seed=1), path)
    return path


def test_no_command_prints_usage(capsys):
    assert main([]) == 2
    assert "demo" in capsys.readouterr().out


def test_unknown_command(capsys):
    assert main(["frobnicate"]) == 2
    assert "unknown command" in capsys.readouterr().err


def test_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "VS query" in out
    assert "river" in out


def test_engines(capsys):
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    assert "solution1" in out and "solution2" in out


def test_version(capsys):
    assert main(["version"]) == 0
    assert capsys.readouterr().out.strip()


def test_validate_ok(segment_file, capsys):
    assert main(["validate", segment_file]) == 0
    assert "OK" in capsys.readouterr().out


def test_validate_crossing(tmp_path, capsys):
    path = str(tmp_path / "bad.tsv")
    with open(path, "w") as fh:
        fh.write("0 0 2 2 a\n0 2 2 0 b\n")
    assert main(["validate", path]) == 1
    assert "NOT NCT" in capsys.readouterr().err


def test_query_line(segment_file, capsys):
    assert main(["query", segment_file, "150"]) == 0
    err = capsys.readouterr().err
    assert "block" in err


def test_query_window(segment_file, capsys):
    assert main(["query", segment_file, "150", "0", "500"]) == 0


def test_query_bad_args(capsys):
    assert main(["query", "only-one-arg"]) == 2


def test_query_rational_coordinate(segment_file):
    assert main(["query", segment_file, "301/2"]) == 0


def test_query_with_buffer_reports_hit_rate(segment_file, capsys):
    assert main(["query", segment_file, "150", "--buffer", "8"]) == 0
    assert "buffer hit rate" in capsys.readouterr().err


def test_query_unknown_flag(segment_file, capsys):
    assert main(["query", segment_file, "150", "--frobnicate"]) == 2


def test_query_batch(segment_file, capsys):
    assert main(["query-batch", segment_file, "--count", "16",
                 "--batch-size", "4"]) == 0
    out = capsys.readouterr().out
    assert "batch size 4" in out
    assert "sequential:" in out and "batched:" in out


def test_query_batch_json(segment_file, capsys):
    import json

    assert main(["query-batch", segment_file, "--count", "12", "--seed", "3",
                 "--engine", "solution1", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["engine"] == "solution1"
    assert data["queries"] == 12
    assert data["batch_size"] == 12  # defaults to the whole workload
    assert data["batched_ios"] <= data["sequential_ios"]


def test_query_batch_with_buffer_reports_hit_rate(segment_file, capsys):
    assert main(["query-batch", segment_file, "--count", "8",
                 "--buffer", "8"]) == 0
    assert "buffer hit rate" in capsys.readouterr().out


def test_query_batch_bad_args(capsys):
    assert main(["query-batch"]) == 2
    assert "usage" in capsys.readouterr().err


def test_explain_markdown(segment_file, capsys):
    assert main(["explain", segment_file, "150", "0", "500"]) == 0
    out = capsys.readouterr().out
    assert "EXPLAIN" in out
    assert "balanced" in out
    assert "| phase |" in out


def test_explain_json(segment_file, capsys):
    import json

    assert main(["explain", segment_file, "150", "--json",
                 "--engine", "solution1", "--buffer", "4"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["engine"] == "solution1"
    assert data["balanced"] is True
    assert data["buffer"]["hits"] + data["buffer"]["misses"] >= 0
    assert sum(p["total"] for p in data["phases"].values()) == data["io_total"]


def test_explain_every_engine(segment_file, capsys):
    from repro import ENGINES

    for engine in ENGINES:
        assert main(["explain", segment_file, "150", "--engine", engine]) == 0
        assert "UNBALANCED" not in capsys.readouterr().out


def test_explain_bad_args(capsys):
    assert main(["explain", "only-one-arg"]) == 2


def test_chaos_smoke(segment_file, capsys):
    assert main(["chaos", segment_file, "--seeds", "2", "--count", "8",
                 "--updates", "2", "--block", "16"]) == 0
    out = capsys.readouterr().out
    assert "never-silently-wrong: PASS over 2 seeds" in out
    assert out.count("seed ") == 2


def test_chaos_json_and_dump_schedule(segment_file, tmp_path, capsys):
    import json

    dump = str(tmp_path / "schedule.json")
    assert main(["chaos", segment_file, "--seeds", "1", "--seed", "7",
                 "--count", "6", "--block", "16", "--engine", "solution1",
                 "--dump-schedule", dump, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["silent_wrong"] == 0
    assert len(data["rounds"]) == 1
    assert data["rounds"][0]["seed"] == 7
    with open(dump) as fh:
        saved = json.load(fh)
    assert saved["engine"] == "solution1"
    assert "7" in saved["rounds"] or 7 in saved["rounds"]


def test_chaos_bad_args(capsys):
    assert main(["chaos", "a", "b"]) == 2
    assert "usage" in capsys.readouterr().err


def test_fsck_clean(segment_file, capsys):
    assert main(["fsck", segment_file, "--block", "16", "--updates", "3"]) == 0
    out = capsys.readouterr().out
    assert "fsck" in out and "clean" in out


def test_fsck_detects_corruption(segment_file, capsys):
    assert main(["fsck", segment_file, "--block", "16",
                 "--corrupt-pages", "2"]) == 1
    out = capsys.readouterr().out
    assert "checksum failure" in out and "bit rot" in out


def test_fsck_json(segment_file, capsys):
    import json

    assert main(["fsck", segment_file, "--block", "16", "--engine",
                 "solution1", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is True
    assert data["pages_scanned"] > 0


def test_serve_bench_synchronous(capsys):
    assert main(["serve-bench", "--shards", "2", "--workers", "0",
                 "--segments", "200", "--count", "12",
                 "--batch-size", "4"]) == 0
    out = capsys.readouterr().out
    assert "2 shards" in out
    assert "snapshot save" in out


def test_serve_bench_json_with_workers(capsys):
    import json

    assert main(["serve-bench", "--shards", "2", "--workers", "2",
                 "--segments", "200", "--count", "12", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["shards"] == 2
    assert summary["workers"] == 2
    assert summary["queries"] == 12
    assert summary["queries_per_s"] > 0
    assert summary["io"]["combined"]["total"] > 0


def test_serve_bench_trace_and_slow_log(tmp_path, capsys):
    import json
    import os

    trace_path = str(tmp_path / "out.json")
    assert main(["serve-bench", "--shards", "2", "--workers", "2",
                 "--segments", "200", "--count", "12", "--batch-size", "4",
                 "--trace", trace_path, "--slow-ms", "0", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["trace"]["path"] == trace_path
    assert summary["trace"]["events"] > 0
    assert summary["latency"]["batches"]["count"] == 3
    assert summary["slow_queries"]["recorded"] > 0

    from repro.telemetry import validate_chrome_trace

    with open(trace_path) as fh:
        doc = json.load(fh)
    assert validate_chrome_trace(doc) == []
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    # One trace id spanning parent and worker processes.
    assert {e["args"]["trace_id"] for e in complete} \
        == {summary["trace"]["trace_id"]}
    assert len({e["pid"] for e in complete}) >= 2
    assert os.getpid() in {e["pid"] for e in complete}


def test_trace_command_writes_default_file(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.chdir(tmp_path)
    assert main(["trace", "--shards", "2", "--workers", "0",
                 "--segments", "150", "--count", "8"]) == 0
    out = capsys.readouterr().out
    assert "trace.json" in out
    with open(tmp_path / "trace.json") as fh:
        doc = json.load(fh)
    assert doc["traceEvents"]


def test_serve_bench_keeps_snapshot_dir(tmp_path, capsys):
    import os

    directory = str(tmp_path / "kept")
    assert main(["serve-bench", "--shards", "2", "--segments", "120",
                 "--count", "8", "--dir", directory]) == 0
    capsys.readouterr()
    assert os.path.exists(os.path.join(directory, "manifest.json"))
    assert os.path.exists(os.path.join(directory, "shard-000.snap"))


def test_console_script_entry_point():
    """The ``repro`` console script must resolve to the real main()."""
    import os
    import re
    import sys

    pyproject = os.path.join(os.path.dirname(__file__), "..",
                             "pyproject.toml")
    with open(pyproject) as fh:  # no tomllib on 3.10
        match = re.search(r'^repro\s*=\s*"([\w.]+):(\w+)"', fh.read(), re.M)
    assert match, "pyproject.toml declares no `repro` console script"
    module, func = match.groups()
    __import__(module)
    entry = getattr(sys.modules[module], func)
    assert entry(["version"]) == 0


def test_serve_bench_pickle_transport(capsys):
    import json

    assert main(["serve-bench", "--shards", "2", "--workers", "1",
                 "--segments", "200", "--count", "12",
                 "--transport", "pickle", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["queries"] == 12
    assert "attach" in summary["latency"]["phases_s"]


def test_serve_bench_cache_pages(capsys):
    assert main(["serve-bench", "--shards", "2", "--workers", "1",
                 "--segments", "200", "--count", "12",
                 "--cache-pages", "8"]) == 0
    assert "shards" in capsys.readouterr().out


def test_serve_client_requires_port(capsys):
    assert main(["serve-client"]) == 2
    assert "--port" in capsys.readouterr().err


def test_serve_daemon_lifecycle(tmp_path):
    """Full daemon smoke over a subprocess: ready line, batched client,
    SIGTERM, clean drain report, exit 0."""
    import json
    import os
    import signal
    import subprocess
    import sys

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--segments", "300",
         "--workers", "1", "--shards", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)
    try:
        ready = json.loads(proc.stdout.readline())
        assert ready["ready"] is True
        assert ready["transport"] == "shm"
        port = ready["port"]

        client = subprocess.run(
            [sys.executable, "-m", "repro", "serve-client",
             "--port", str(port), "--segments", "300",
             "--count", "12", "--batch-size", "4", "--json"],
            capture_output=True, env=env, text=True, timeout=60)
        assert client.returncode == 0, client.stderr
        summary = json.loads(client.stdout)
        assert summary["ok"] is True
        assert summary["queries"] == 12
        assert summary["results"] > 0

        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        report = json.loads(out.splitlines()[-1])
        assert report["drained"] is True
        assert report["queries"] == 12
        assert report["rejected"] == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


def test_chaos_serve_oracle_passes(capsys):
    assert main(["chaos-serve", "--seeds", "2", "--count", "16",
                 "--batch-size", "4", "--segments", "150",
                 "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "never-silently-wrong: PASS" in out
    assert "seed" in out


def test_chaos_serve_json_and_dump_schedule(tmp_path, capsys):
    import json

    dump_path = str(tmp_path / "schedules.json")
    assert main(["chaos-serve", "--seeds", "1", "--count", "8",
                 "--batch-size", "4", "--segments", "150",
                 "--workers", "2", "--kill-rate", "0.9",
                 "--dump-schedule", dump_path, "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["failures"] == 0
    round0 = summary["rounds"][0]
    assert round0["batches"] == 2
    assert round0["wrong"] == 0
    assert round0["exact"] + round0["degraded"] + \
        round0["typed_errors"] == round0["batches"]
    with open(dump_path) as fh:
        schedules = json.load(fh)
    assert schedules["rounds"]["0"]["verdict"] == "ok"
    assert "kills" in schedules["rounds"]["0"]["schedules"]


def test_chaos_serve_bad_args(capsys):
    assert main(["chaos-serve", "a", "b"]) == 2
    assert "usage" in capsys.readouterr().err


def test_health_requires_port(capsys):
    assert main(["health"]) == 2
    assert "--port" in capsys.readouterr().err


def test_health_unreachable_daemon_is_typed(capsys):
    assert main(["health", "--port", "1", "--connect-timeout", "0.5"]) == 1
    err = capsys.readouterr().err
    assert "daemon unreachable" in err
    assert "Traceback" not in err


def test_serve_client_connection_failure_is_typed(capsys):
    assert main(["serve-client", "--port", "1",
                 "--connect-timeout", "0.5", "--count", "4"]) == 1
    err = capsys.readouterr().err
    assert "connection failed" in err
    assert "Traceback" not in err


def test_health_against_live_daemon(capsys):
    import json
    import threading

    from repro.serving import ServeDaemon, ShardedSegmentDatabase
    from repro.workloads import grid_segments

    db = ShardedSegmentDatabase.bulk_load(
        grid_segments(150, seed=5), shards=2, block_capacity=16)
    daemon = ServeDaemon(db)
    thread = threading.Thread(
        target=daemon.run, kwargs={"install_signal_handlers": False},
        daemon=True)
    thread.start()
    assert daemon.ready.wait(10)
    try:
        assert main(["health", "--port", str(daemon.port), "--json"]) == 0
        health = json.loads(capsys.readouterr().out)
        assert health["draining"] is False
        assert health["db"]["mode"] == "sync"
        assert main(["health", "--port", str(daemon.port)]) == 0
        assert "draining=False" in capsys.readouterr().out
    finally:
        daemon.request_stop()
        thread.join(timeout=10)
