"""Tests for NCT validation: brute force oracle and plane sweep."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    CrossingError,
    Segment,
    find_crossing_bruteforce,
    find_crossing_sweep,
    segments_cross,
    validate_nct,
)


def seg(x1, y1, x2, y2, label=None):
    return Segment.from_coords(x1, y1, x2, y2, label=label)


class TestBruteForce:
    def test_empty_set(self):
        assert find_crossing_bruteforce([]) is None

    def test_touching_chain_is_clean(self):
        chain = [seg(i, i % 2, i + 1, (i + 1) % 2, label=i) for i in range(10)]
        assert find_crossing_bruteforce(chain) is None

    def test_crossing_found(self):
        pair = find_crossing_bruteforce(
            [seg(0, 0, 2, 2, label="a"), seg(0, 2, 2, 0, label="b")]
        )
        assert pair is not None
        assert segments_cross(*pair)


class TestValidate:
    def test_validate_clean_set(self):
        validate_nct([seg(0, 0, 1, 1), seg(2, 0, 3, 1)])

    def test_validate_raises_with_pair(self):
        with pytest.raises(CrossingError) as exc:
            validate_nct([seg(0, 0, 2, 2, label="a"), seg(0, 2, 2, 0, label="b")])
        labels = {s.label for s in exc.value.pair}
        assert labels == {"a", "b"}

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            validate_nct([], method="magic")

    def test_explicit_methods_agree(self):
        data = [seg(0, 0, 4, 0), seg(1, 0, 1, 3), seg(2, -5, 2, 0), seg(0, 4, 4, 4)]
        validate_nct(data, method="brute")
        validate_nct(data, method="sweep")


class TestSweepDegenerateCases:
    def test_vertical_vertical_overlap(self):
        bad = [seg(1, 0, 1, 4, label="a"), seg(1, 3, 1, 6, label="b")]
        assert find_crossing_sweep(bad) is not None

    def test_vertical_vertical_touch_ok(self):
        good = [seg(1, 0, 1, 4), seg(1, 4, 1, 6)]
        assert find_crossing_sweep(good) is None

    def test_vertical_crossing_diagonal(self):
        bad = [seg(1, -2, 1, 2, label="v"), seg(0, 0, 2, 0, label="h")]
        assert find_crossing_sweep(bad) is not None

    def test_vertical_t_junction_ok(self):
        good = [seg(1, 0, 1, 2), seg(0, 0, 2, 0)]
        assert find_crossing_sweep(good) is None

    def test_shared_endpoint_star_ok(self):
        star = [
            seg(0, 0, 2, 1, label=1),
            seg(0, 0, 2, -1, label=2),
            seg(0, 0, -2, 1, label=3),
            seg(0, 0, 2, 0, label=4),
        ]
        assert find_crossing_sweep(star) is None

    def test_crossing_through_shared_point(self):
        # Two segments crossing exactly at a third segment's endpoint.
        bad = [
            seg(0, 0, 4, 4, label="a"),
            seg(0, 4, 4, 0, label="b"),
            seg(2, 2, 5, 2, label="c"),  # touches both at their crossing
        ]
        assert find_crossing_sweep(bad) is not None

    def test_collinear_overlap_detected(self):
        bad = [seg(0, 0, 3, 3, label="a"), seg(1, 1, 4, 4, label="b")]
        assert find_crossing_sweep(bad) is not None

    def test_collinear_chain_ok(self):
        good = [seg(0, 0, 1, 1), seg(1, 1, 2, 2), seg(2, 2, 3, 3)]
        assert find_crossing_sweep(good) is None


@st.composite
def random_segments(draw):
    """Small random segment sets on an 8x8 grid: degeneracies are frequent."""
    n = draw(st.integers(min_value=2, max_value=8))
    segments = []
    for i in range(n):
        x1 = draw(st.integers(0, 8))
        y1 = draw(st.integers(0, 8))
        x2 = draw(st.integers(0, 8))
        y2 = draw(st.integers(0, 8))
        if (x1, y1) == (x2, y2):
            x2 = x1 + 1
        segments.append(seg(x1, y1, x2, y2, label=i))
    return segments


@given(random_segments())
@settings(max_examples=400, deadline=None)
def test_sweep_agrees_with_bruteforce(segments):
    brute = find_crossing_bruteforce(segments)
    swept = find_crossing_sweep(segments)
    assert (brute is None) == (swept is None)
    if swept is not None:
        assert segments_cross(*swept)
