"""The filtered arithmetic kernel vs the exact ``Fraction`` oracle.

Every kernel must return the exact sign on every input — the float fast
path is only allowed to *certify* signs, never to change them.  The
hypothesis strategies deliberately include adversarial inputs: collinear
triples, shared endpoints, huge numerators, and denominators near 2**53
where double rounding actually flips naive float comparisons.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import LineBasedSegment, Segment
from repro.geometry.filtered import (
    STATS,
    ball,
    compare_interp,
    compare_slopes,
    compare_u_at,
    compare_y_at,
    compare_y_at_pair,
    exact_only_enabled,
    filter_stats,
    reset_filter_stats,
    set_exact_only,
    sign_orientation,
)


def exact_sign(value) -> int:
    return (value > 0) - (value < 0)


@pytest.fixture(autouse=True)
def _filter_on():
    # These tests exercise the fast path deliberately; pin the mode so a
    # REPRO_EXACT_ONLY=1 environment (the exact-only CI job) doesn't
    # invalidate the stats assertions, and restore it afterwards.
    prev = exact_only_enabled()
    set_exact_only(False)
    yield
    set_exact_only(prev)


# Coordinates that stress the filter: small ints (fast path trivially
# certifies), huge ints (beyond 2**53: float conversion is lossy), and
# fractions whose denominators sit near the double mantissa limit.
small = st.integers(-100, 100)
huge = st.integers(-(2 ** 70), 2 ** 70)
near_mantissa = st.builds(
    Fraction,
    st.integers(-(2 ** 60), 2 ** 60),
    st.integers(2 ** 52, 2 ** 53 + 3),
)
coords = st.one_of(small, huge, near_mantissa)


@st.composite
def plane_segment(draw):
    x1 = draw(coords)
    x2 = draw(coords)
    if x1 == x2:
        x2 = x1 + 1
    return Segment.from_coords(x1, draw(coords), x2, draw(coords))


@st.composite
def lb_segment(draw):
    h1 = draw(coords)
    if h1 <= 0:
        h1 = 1 - h1
    return LineBasedSegment(draw(coords), draw(coords), h1)


def x_inside(draw, segment):
    """A query abscissa within the segment's x-span (mix of endpoints,
    midpoint, and arbitrary rationals clamped into range)."""
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return segment.xmin
    if choice == 1:
        return segment.xmax
    if choice == 2:
        return (segment.xmin + segment.xmax) / Fraction(2)
    t = Fraction(draw(st.integers(0, 1000)), 1000)
    return segment.xmin + (segment.xmax - segment.xmin) * t


class TestSignOrientation:
    @given(st.tuples(coords, coords, coords, coords, coords, coords))
    @settings(max_examples=400, deadline=None)
    def test_matches_oracle(self, pts):
        ax, ay, bx, by, cx, cy = pts
        expected = exact_sign((bx - ax) * (cy - ay) - (by - ay) * (cx - ax))
        assert sign_orientation(ax, ay, bx, by, cx, cy) == expected

    @given(coords, coords, coords, coords, st.integers(-5, 5))
    @settings(max_examples=200, deadline=None)
    def test_collinear_triples_give_zero(self, ax, ay, dx, dy, k):
        # c = a + k * (b - a): exactly collinear, the hardest case for a
        # float filter (the true value is 0, so it must always fall back).
        bx, by = ax + dx, ay + dy
        cx, cy = ax + k * dx, ay + k * dy
        assert sign_orientation(ax, ay, bx, by, cx, cy) == 0

    @given(coords, coords, coords, coords, coords, coords)
    @settings(max_examples=200, deadline=None)
    def test_shared_endpoint_antisymmetry(self, ax, ay, bx, by, cx, cy):
        assert sign_orientation(ax, ay, bx, by, cx, cy) == -sign_orientation(
            ax, ay, cx, cy, bx, by
        )


class TestCompareYAt:
    @given(st.data())
    @settings(max_examples=400, deadline=None)
    def test_matches_oracle(self, data):
        s = data.draw(plane_segment())
        x = x_inside(data.draw, s)
        bound = data.draw(coords)
        assert compare_y_at(s, x, bound) == exact_sign(s.y_at(x) - bound)

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_bound_on_segment_gives_zero(self, data):
        # Forced sign-0: the bound IS the exact ordinate.
        s = data.draw(plane_segment())
        x = x_inside(data.draw, s)
        assert compare_y_at(s, x, s.y_at(x)) == 0


class TestCompareYAtPair:
    @given(st.data())
    @settings(max_examples=400, deadline=None)
    def test_matches_oracle(self, data):
        s1 = data.draw(plane_segment())
        s2 = data.draw(plane_segment())
        lo = max(s1.xmin, s2.xmin)
        hi = min(s1.xmax, s2.xmax)
        if lo > hi:
            # Force an overlap by re-rooting s2 at s1's span.
            s2 = Segment.from_coords(s1.xmin, s2.start.y, s1.xmax, s2.end.y)
            lo, hi = s1.xmin, s1.xmax
        t = Fraction(data.draw(st.integers(0, 1000)), 1000)
        x = lo + (hi - lo) * t
        expected = exact_sign(s1.y_at(x) - s2.y_at(x))
        assert compare_y_at_pair(s1, s2, x) == expected

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_shared_endpoint_gives_zero(self, data):
        # Two segments fanning out of one point: equal ordinates there.
        px, py = data.draw(coords), data.draw(coords)
        d1, d2 = data.draw(st.integers(1, 50)), data.draw(st.integers(1, 50))
        s1 = Segment.from_coords(px, py, px + d1, data.draw(coords))
        s2 = Segment.from_coords(px, py, px + d2, data.draw(coords))
        assert compare_y_at_pair(s1, s2, px) == 0


class TestCompareUAt:
    @given(st.data())
    @settings(max_examples=400, deadline=None)
    def test_matches_oracle(self, data):
        s = data.draw(lb_segment())
        t = Fraction(data.draw(st.integers(0, 1000)), 1000)
        h = s.h1 * t
        bound = data.draw(coords)
        assert compare_u_at(s, h, bound) == exact_sign(s.u_at(h) - bound)

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_bound_on_segment_gives_zero(self, data):
        s = data.draw(lb_segment())
        t = Fraction(data.draw(st.integers(0, 1000)), 1000)
        h = s.h1 * t
        assert compare_u_at(s, h, s.u_at(h)) == 0


class TestCompareInterp:
    @given(st.data())
    @settings(max_examples=400, deadline=None)
    def test_matches_oracle(self, data):
        xl = data.draw(coords)
        xr = data.draw(coords)
        if xl == xr:
            xr = xl + 1
        if xl > xr:
            xl, xr = xr, xl
        yl, yr = data.draw(coords), data.draw(coords)
        t = Fraction(data.draw(st.integers(0, 1000)), 1000)
        x = xl + (xr - xl) * t
        bound = data.draw(coords)
        y = yl + Fraction(yr - yl) * Fraction(x - xl, xr - xl)
        assert compare_interp(yl, xl, yr, xr, x, bound) == exact_sign(y - bound)


class TestCompareSlopes:
    @given(st.data())
    @settings(max_examples=400, deadline=None)
    def test_matches_oracle(self, data):
        s1 = data.draw(plane_segment())
        s2 = data.draw(plane_segment())
        slope1 = Fraction(s1.end.y - s1.start.y, s1.end.x - s1.start.x)
        slope2 = Fraction(s2.end.y - s2.start.y, s2.end.x - s2.start.x)
        assert compare_slopes(s1, s2) == exact_sign(slope1 - slope2)

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_parallel_gives_zero(self, data):
        s1 = data.draw(plane_segment())
        shift = data.draw(coords)
        s2 = Segment.from_coords(
            s1.start.x, s1.start.y + shift, s1.end.x, s1.end.y + shift
        )
        assert compare_slopes(s1, s2) == 0


class TestBall:
    @given(coords)
    @settings(max_examples=500, deadline=None)
    def test_radius_bounds_conversion_error(self, value):
        got = ball(value)
        if got is None:
            return  # no finite double approximation: fast path disabled
        v, radius = got
        assert abs(Fraction(v) - Fraction(value)) <= Fraction(radius)

    @given(st.integers(-(2 ** 53), 2 ** 53))
    @settings(max_examples=200, deadline=None)
    def test_small_ints_are_exact(self, value):
        v, radius = ball(value)
        assert radius == 0.0
        assert Fraction(v) == value

    def test_overflow_returns_none(self):
        assert ball(10 ** 400) is None
        assert ball(Fraction(10 ** 400, 3)) is None


class TestModeAndStats:
    def test_exact_only_same_signs(self):
        cases = [
            (Segment.from_coords(0, 0, 7, 13), Fraction(22, 7), Fraction(5, 3)),
            (Segment.from_coords(-(2 ** 60), 1, 2 ** 60, 2), 12345, 1),
        ]
        assert not exact_only_enabled()
        fast = [compare_y_at(s, x, b) for s, x, b in cases]
        set_exact_only(True)
        try:
            assert exact_only_enabled()
            assert [compare_y_at(s, x, b) for s, x, b in cases] == fast
        finally:
            set_exact_only(False)

    def test_stats_count_decisions(self):
        reset_filter_stats()
        s = Segment.from_coords(0, 0, 10, 10)
        assert compare_y_at(s, 5, 3) == 1  # clear separation: fast hit
        assert compare_y_at(s, 5, 5) == 0  # exact tie: must fall back
        assert STATS.fast_hits == 1
        assert STATS.exact_fallbacks == 1
        assert STATS.hit_rate == pytest.approx(0.5)
        snap = filter_stats()
        assert snap["fast_hits"] == 1
        assert snap["exact_fallbacks"] == 1
        assert snap["exact_only"] is False

    def test_exact_only_counts_everything_as_fallback(self):
        reset_filter_stats()
        s = Segment.from_coords(0, 0, 10, 10)
        set_exact_only(True)
        try:
            assert compare_y_at(s, 5, 3) == 1
        finally:
            set_exact_only(False)
        assert STATS.fast_hits == 0
        assert STATS.exact_fallbacks == 1
