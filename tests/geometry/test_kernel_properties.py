"""Hypothesis properties of the vectorized page kernels (DESIGN.md §15).

Every kernel tier — the fused pure-Python loops and the numpy array
expressions — must agree with the scalar reference row for row, *and*
consume the same filtered-arithmetic telemetry (``fast_hits`` /
``exact_fallbacks``): the telemetry feeds E16/E20's hit-rate numbers,
so a tier that certified more or fewer signs than the scalar
short-circuits would silently skew the published measurements even if
its answers were right.

The strategies deliberately reach the awkward pages: verticals, shared
endpoints, duplicate labels, empty pages, rows whose coordinates tie
the query bounds exactly (true sign-0 decisions — the forced exact
fallbacks), and huge coordinates whose float images lose precision.
The numpy tier is exercised by calling it directly with built columns:
engine runs at B=32 never reach ``NUMPY_MIN_ROWS``, so these tests are
its correctness coverage.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    LineBasedSegment,
    Segment,
    VerticalQuery,
    filter_stats,
    reset_filter_stats,
    set_exact_only,
    vs_intersects,
)
from repro.geometry import kernels
from repro.geometry.filtered import exact_only_enabled
from repro.geometry.linebased import HQuery
from repro.core.linebased.search import BELOW, HIT, LEFT, RIGHT, classify

# Coordinate pool: small ints (exact floats), a handful of round-off
# magnets, and huge ints past the 2**53 exact-float range.
coords = st.one_of(
    st.integers(-40, 40),
    st.sampled_from([0, 1, -1, 10**9, -(10**9), (1 << 60) + 1, -(1 << 60) - 3]),
    st.fractions(min_value=-40, max_value=40, max_denominator=7),
)


@st.composite
def lb_segment_st(draw, label=None):
    u0 = draw(coords)
    u1 = draw(coords)
    h1 = abs(draw(coords))
    if h1 == 0 and u0 == u1:
        u1 = u0 + 1
    return LineBasedSegment(u0, u1, h1, label=label)


@st.composite
def lb_page_st(draw):
    rows = draw(st.lists(lb_segment_st(), min_size=0, max_size=24))
    # Duplicate labels / duplicate rows: reuse a prefix of the page.
    if rows and draw(st.booleans()):
        rows = rows + rows[: draw(st.integers(1, len(rows)))]
    return [
        LineBasedSegment(s.u0, s.u1, s.h1, label=i % max(1, len(rows) - 2))
        for i, s in enumerate(rows)
    ]


@st.composite
def hquery_st(draw, anchors=()):
    # Anchor some bounds on page ordinates so exact ties (sign 0) occur.
    pool = coords if not anchors else st.one_of(coords, st.sampled_from(anchors))
    h = abs(draw(pool))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return HQuery.line(h)
    lo, hi = sorted((draw(pool), draw(pool)))
    if kind == 1:
        return HQuery._trusted(h, lo, None)
    if kind == 2:
        return HQuery._trusted(h, None, hi)
    return HQuery.segment(h, lo, hi)


def _scalar_classify_summary(items, query):
    """The scalar reference: per-row ``classify`` folded to the summary
    shape the PST search consumes."""
    hit_rows, last_left, first_right = [], None, None
    for i, s in enumerate(items):
        side = classify(s, query)
        if side == HIT:
            hit_rows.append(i)
        elif side == LEFT:
            last_left = i
        elif side == RIGHT and first_right is None:
            first_right = i
    return hit_rows, last_left, first_right


def _with_stats(fn):
    reset_filter_stats()
    result = fn()
    stats = filter_stats()
    return result, (stats["fast_hits"], stats["exact_fallbacks"])


#: The parity classes compare the float tiers against the scalar
#: reference; under ``REPRO_EXACT_ONLY=1`` those tiers are disabled by
#: design (TestExactOnlyMode proves the dispatchers refuse them), so
#: the comparisons skip rather than fabricate a float run.
needs_float = pytest.mark.skipif(
    exact_only_enabled(),
    reason="float kernel tiers disabled (exact-only mode)")


@needs_float
class TestClassifyKernels:
    @given(lb_page_st(), st.data())
    @settings(max_examples=250, deadline=None)
    def test_fused_matches_scalar(self, items, data):
        anchors = tuple(s.u0 for s in items[:3]) + tuple(s.h1 for s in items[:2])
        query = data.draw(hquery_st(anchors=anchors))
        expected, scalar_stats = _with_stats(
            lambda: _scalar_classify_summary(items, query))
        got, fused_stats = _with_stats(
            lambda: kernels.classify_summary_py(items, query))
        if got is None:  # no usable float bounds: callers run scalar
            return
        assert tuple(got) == tuple(expected)
        assert fused_stats == scalar_stats

    @given(lb_page_st(), st.data())
    @settings(max_examples=250, deadline=None)
    def test_numpy_matches_scalar(self, items, data):
        if not kernels.HAVE_NUMPY:
            pytest.skip("numpy tier absent")
        anchors = tuple(s.u1 for s in items[:3])
        query = data.draw(hquery_st(anchors=anchors))
        expected, scalar_stats = _with_stats(
            lambda: [classify(s, query) for s in items])
        cols = kernels.LBColumns.build(items)
        codes, numpy_stats = _with_stats(
            lambda: kernels.classify_rows(items, query, cols))
        if codes is None:
            return
        names = {kernels.BELOW: BELOW, kernels.LEFT: LEFT,
                 kernels.HIT: HIT, kernels.RIGHT: RIGHT}
        assert [names[int(c)] for c in codes] == expected
        assert numpy_stats == scalar_stats

    def test_empty_page(self):
        query = HQuery.segment(3, -5, 5)
        assert kernels.classify_summary_py([], query) == ([], None, None)
        if kernels.HAVE_NUMPY:
            cols = kernels.LBColumns.build([])
            assert list(kernels.classify_rows([], query, cols)) == []


@st.composite
def plane_segment_st(draw, label=None):
    x1, y1 = draw(coords), draw(coords)
    if draw(st.integers(0, 3)) == 0:
        x2 = x1  # vertical
    else:
        x2 = draw(coords)
    y2 = draw(coords)
    if (x1, y1) == (x2, y2):
        y2 = y2 + 1
    return Segment.from_coords(x1, y1, x2, y2, label=label)


@st.composite
def plane_page_st(draw):
    rows = draw(st.lists(plane_segment_st(), min_size=0, max_size=20))
    if len(rows) >= 2 and draw(st.booleans()):
        # Shared endpoint: second row reuses the first row's start.
        first, second = rows[0], rows[1]
        if first.start != second.end:
            rows[1] = Segment(first.start, second.end, label=second.label)
    return [Segment(s.start, s.end, label=i % max(1, len(rows) - 1))
            for i, s in enumerate(rows)]


@st.composite
def vquery_st(draw, anchors=()):
    pool = coords if not anchors else st.one_of(coords, st.sampled_from(anchors))
    x = draw(pool)
    kind = draw(st.integers(0, 1))
    if kind == 0:
        return VerticalQuery.line(x)
    lo, hi = sorted((draw(pool), draw(pool)))
    return VerticalQuery.segment(x, lo, hi)


@needs_float
class TestIntersectKernels:
    @given(plane_page_st(), st.data())
    @settings(max_examples=250, deadline=None)
    def test_fused_matches_scalar(self, items, data):
        anchors = tuple(s.start.x for s in items[:2]) + tuple(
            s.end.y for s in items[:2])
        query = data.draw(vquery_st(anchors=anchors))
        expected, scalar_stats = _with_stats(
            lambda: [s for s in items if vs_intersects(s, query)])
        got, fused_stats = _with_stats(
            lambda: kernels.intersect_hits_py(items, query))
        if got is None:
            return
        assert got == expected
        assert fused_stats == scalar_stats

    @given(plane_page_st(), st.data())
    @settings(max_examples=250, deadline=None)
    def test_numpy_matches_scalar(self, items, data):
        if not kernels.HAVE_NUMPY:
            pytest.skip("numpy tier absent")
        anchors = tuple(s.start.x for s in items[:2])
        query = data.draw(vquery_st(anchors=anchors))
        expected, scalar_stats = _with_stats(
            lambda: [vs_intersects(s, query) for s in items])
        cols = kernels.SegColumns.build(items)
        mask, numpy_stats = _with_stats(
            lambda: kernels.intersect_rows(items, query, cols))
        if mask is None:
            return
        assert [bool(m) for m in mask] == expected
        assert numpy_stats == scalar_stats

    def test_empty_page(self):
        query = VerticalQuery.segment(0, -3, 3)
        assert kernels.intersect_hits_py([], query) == []


class TestExactOnlyMode:
    """Exact-only mode must bypass every float tier, kernels included."""

    @given(lb_page_st(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_kernels_disabled_and_results_agree(self, items, data):
        query = data.draw(hquery_st())
        baseline = _scalar_classify_summary(items, query)
        prior = exact_only_enabled()
        set_exact_only(True)
        try:
            assert not kernels.vectorized_enabled()
            # The page dispatcher must fall back to the scalar loop and
            # still produce identical answers with zero fast hits.
            reset_filter_stats()
            exact = _scalar_classify_summary(items, query)
            stats = filter_stats()
            assert stats["fast_hits"] == 0
        finally:
            set_exact_only(prior)
        assert exact == baseline

    def test_page_dispatchers_honour_exact_only(self):
        items = [LineBasedSegment(i, i + 2, 5, label=i) for i in range(12)]
        query = HQuery.segment(3, 2, 9)
        if not exact_only_enabled():
            assert kernels.page_classify_summary(None, query, items) is not None
        prior = exact_only_enabled()
        set_exact_only(True)
        try:
            assert not kernels.vectorized_enabled()
            # The page dispatcher must refuse the float tiers entirely
            # (None = caller runs the scalar, exact-arithmetic loop).
            assert kernels.page_classify_summary(None, query, items) is None
        finally:
            set_exact_only(prior)
