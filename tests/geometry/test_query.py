"""Unit tests for generalized vertical queries and the VS predicate."""

from fractions import Fraction

import pytest

from repro.geometry import Segment, VerticalQuery, vs_intersects


def seg(x1, y1, x2, y2):
    return Segment.from_coords(x1, y1, x2, y2)


class TestQueryKinds:
    def test_line(self):
        q = VerticalQuery.line(3)
        assert q.kind == "line"
        assert q.is_stabbing
        assert q.covers_y(-(10**12))

    def test_ray_up(self):
        q = VerticalQuery.ray_up(0, ylo=2)
        assert q.kind == "ray"
        assert q.covers_y(2)
        assert q.covers_y(10**9)
        assert not q.covers_y(1)

    def test_ray_down(self):
        q = VerticalQuery.ray_down(0, yhi=2)
        assert q.kind == "ray"
        assert q.covers_y(2)
        assert not q.covers_y(3)

    def test_segment(self):
        q = VerticalQuery.segment(0, 1, 3)
        assert q.kind == "segment"
        assert not q.is_stabbing
        assert q.covers_y(1) and q.covers_y(3)
        assert not q.covers_y(Fraction(7, 2))

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            VerticalQuery.segment(0, 3, 1)

    def test_interval_overlap(self):
        q = VerticalQuery.segment(0, 1, 3)
        assert q.y_interval_overlaps(3, 5)  # touch at 3
        assert q.y_interval_overlaps(0, 1)  # touch at 1
        assert not q.y_interval_overlaps(4, 5)
        assert not q.y_interval_overlaps(-2, 0)


class TestVSIntersects:
    def test_non_vertical_hit(self):
        s = seg(0, 0, 4, 4)
        assert vs_intersects(s, VerticalQuery.segment(2, 0, 3))

    def test_non_vertical_miss_above(self):
        s = seg(0, 0, 4, 4)
        assert not vs_intersects(s, VerticalQuery.segment(2, 3, 5))

    def test_non_vertical_miss_x_range(self):
        s = seg(0, 0, 4, 4)
        assert not vs_intersects(s, VerticalQuery.segment(5, 0, 10))

    def test_touch_at_query_endpoint_counts(self):
        s = seg(0, 0, 4, 4)
        assert vs_intersects(s, VerticalQuery.segment(2, 2, 5))

    def test_touch_at_segment_endpoint_counts(self):
        s = seg(0, 0, 4, 4)
        assert vs_intersects(s, VerticalQuery.segment(4, 4, 9))

    def test_vertical_segment_overlap(self):
        s = seg(1, 0, 1, 4)
        assert vs_intersects(s, VerticalQuery.segment(1, 2, 3))
        assert vs_intersects(s, VerticalQuery.segment(1, 4, 6))
        assert not vs_intersects(s, VerticalQuery.segment(1, 5, 6))
        assert not vs_intersects(s, VerticalQuery.segment(2, 0, 4))

    def test_stabbing_query_reduces_to_x_span(self):
        s = seg(0, 100, 4, -100)
        assert vs_intersects(s, VerticalQuery.line(0))
        assert vs_intersects(s, VerticalQuery.line(4))
        assert not vs_intersects(s, VerticalQuery.line(5))

    def test_ray_queries(self):
        s = seg(0, 0, 4, 4)
        assert vs_intersects(s, VerticalQuery.ray_up(2, ylo=1))
        assert not vs_intersects(s, VerticalQuery.ray_up(2, ylo=3))
        assert vs_intersects(s, VerticalQuery.ray_down(2, yhi=2))
        assert not vs_intersects(s, VerticalQuery.ray_down(2, yhi=1))

    def test_exact_fraction_intersection(self):
        s = seg(0, 0, 3, 1)  # y at x=1 is exactly 1/3
        assert vs_intersects(s, VerticalQuery.segment(1, Fraction(1, 3), 1))
        assert not vs_intersects(
            s, VerticalQuery.segment(1, Fraction(1, 3) + Fraction(1, 10**12), 1)
        )
