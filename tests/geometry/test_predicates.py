"""Unit tests for exact geometric predicates."""

from fractions import Fraction

import pytest

from repro.geometry import (
    Point,
    Segment,
    on_segment,
    orientation,
    segments_cross,
    segments_intersect,
    segments_touch,
)


def seg(x1, y1, x2, y2, label=None):
    return Segment.from_coords(x1, y1, x2, y2, label=label)


class TestOrientation:
    def test_counterclockwise(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(0, 1)) == 1

    def test_clockwise(self):
        assert orientation(Point(0, 0), Point(0, 1), Point(1, 0)) == -1

    def test_collinear(self):
        assert orientation(Point(0, 0), Point(1, 1), Point(2, 2)) == 0

    def test_exact_with_fractions(self):
        a = Point(0, 0)
        b = Point(Fraction(1, 3), Fraction(1, 3))
        c = Point(Fraction(2, 3), Fraction(2, 3))
        assert orientation(a, b, c) == 0


class TestOnSegment:
    def test_interior_point(self):
        assert on_segment(Point(1, 1), seg(0, 0, 2, 2))

    def test_endpoint(self):
        assert on_segment(Point(0, 0), seg(0, 0, 2, 2))

    def test_collinear_but_outside(self):
        assert not on_segment(Point(3, 3), seg(0, 0, 2, 2))

    def test_off_line(self):
        assert not on_segment(Point(1, 0), seg(0, 0, 2, 2))

    def test_vertical_segment(self):
        assert on_segment(Point(1, 1), seg(1, 0, 1, 2))
        assert not on_segment(Point(1, 3), seg(1, 0, 1, 2))


class TestCrossVsTouch:
    def test_proper_crossing_is_cross(self):
        s1 = seg(0, 0, 2, 2)
        s2 = seg(0, 2, 2, 0)
        assert segments_intersect(s1, s2)
        assert segments_cross(s1, s2)
        assert not segments_touch(s1, s2)

    def test_shared_endpoint_is_touch(self):
        s1 = seg(0, 0, 1, 1)
        s2 = seg(1, 1, 2, 0)
        assert segments_intersect(s1, s2)
        assert segments_touch(s1, s2)
        assert not segments_cross(s1, s2)

    def test_t_junction_is_touch(self):
        spine = seg(0, 0, 2, 0)
        stem = seg(1, 0, 1, 1)
        assert segments_touch(spine, stem)
        assert not segments_cross(spine, stem)

    def test_collinear_overlap_is_cross(self):
        s1 = seg(0, 0, 2, 0)
        s2 = seg(1, 0, 3, 0)
        assert segments_cross(s1, s2)
        assert not segments_touch(s1, s2)

    def test_collinear_containment_is_cross(self):
        outer = seg(0, 0, 3, 0)
        inner = seg(1, 0, 2, 0)
        assert segments_cross(outer, inner)

    def test_collinear_end_to_end_is_touch(self):
        s1 = seg(0, 0, 1, 0)
        s2 = seg(1, 0, 2, 0)
        assert segments_touch(s1, s2)
        assert not segments_cross(s1, s2)

    def test_collinear_overlap_sharing_endpoint_is_cross(self):
        s1 = seg(0, 0, 3, 0)
        s2 = seg(0, 0, 1, 0)
        assert segments_cross(s1, s2)

    def test_disjoint_segments(self):
        s1 = seg(0, 0, 1, 0)
        s2 = seg(0, 1, 1, 1)
        assert not segments_intersect(s1, s2)
        assert not segments_cross(s1, s2)
        assert not segments_touch(s1, s2)

    def test_vertical_crossing_horizontal(self):
        v = seg(1, -1, 1, 1)
        h = seg(0, 0, 2, 0)
        assert segments_cross(v, h)

    def test_vertical_touching_at_endpoint(self):
        v = seg(1, 0, 1, 1)
        h = seg(0, 0, 2, 0)
        assert segments_touch(v, h)
        assert not segments_cross(v, h)

    def test_near_miss_is_exact(self):
        # The segments come within 1/10^9 of each other but do not meet.
        s1 = seg(0, 0, 2, 2)
        s2 = seg(0, Fraction(1, 10**9), 1, Fraction(10**9 + 1, 10**9))
        assert not segments_intersect(s1, s2)

    def test_cross_is_symmetric(self):
        s1 = seg(0, 0, 2, 2)
        s2 = seg(0, 2, 2, 0)
        assert segments_cross(s1, s2) == segments_cross(s2, s1)


class TestSegmentBasics:
    def test_degenerate_segment_rejected(self):
        with pytest.raises(ValueError):
            seg(1, 1, 1, 1)

    def test_endpoints_normalised(self):
        s = seg(2, 0, 0, 0)
        assert s.start == Point(0, 0)
        assert s.end == Point(2, 0)

    def test_float_coordinates_rejected(self):
        with pytest.raises(TypeError):
            Point(0.5, 1)

    def test_bool_coordinates_rejected(self):
        with pytest.raises(TypeError):
            Point(True, 1)

    def test_y_at_is_exact(self):
        s = seg(0, 0, 3, 1)
        assert s.y_at(1) == Fraction(1, 3)
        assert s.y_at(0) == 0
        assert s.y_at(3) == 1

    def test_y_at_outside_range_raises(self):
        with pytest.raises(ValueError):
            seg(0, 0, 1, 1).y_at(2)

    def test_y_at_vertical_raises(self):
        with pytest.raises(ValueError):
            seg(1, 0, 1, 5).y_at(1)

    def test_extents(self):
        s = seg(0, 5, 3, -1)
        assert (s.xmin, s.xmax, s.ymin, s.ymax) == (0, 3, -1, 5)

    def test_label_defaults_to_endpoints(self):
        s = seg(0, 0, 1, 1)
        assert s.label == ((0, 0), (1, 1))

    def test_with_label(self):
        s = seg(0, 0, 1, 1).with_label("road-17")
        assert s.label == "road-17"
