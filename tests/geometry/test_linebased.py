"""Unit tests for line-based segments and constant-height queries."""

from fractions import Fraction

import pytest

from repro.geometry import HQuery, LineBasedSegment, lb_cross, lb_intersects


class TestLineBasedSegment:
    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            LineBasedSegment(0, 1, -1)

    def test_point_rejected(self):
        with pytest.raises(ValueError):
            LineBasedSegment(2, 2, 0)

    def test_on_base_line(self):
        s = LineBasedSegment(0, 5, 0)
        assert s.on_base_line

    def test_u_at_exact(self):
        s = LineBasedSegment(0, 3, 3)
        assert s.u_at(1) == 1
        assert s.u_at(Fraction(1, 2)) == Fraction(1, 2)
        assert s.u_at(0) == 0
        assert s.u_at(3) == 3

    def test_u_at_out_of_range(self):
        s = LineBasedSegment(0, 3, 3)
        with pytest.raises(ValueError):
            s.u_at(4)

    def test_u_at_on_base_line_raises(self):
        with pytest.raises(ValueError):
            LineBasedSegment(0, 5, 0).u_at(0)

    def test_base_order_key_orders_by_base_point(self):
        a = LineBasedSegment(0, 10, 5)
        b = LineBasedSegment(1, -10, 5)
        assert a.base_order_key() < b.base_order_key()

    def test_base_order_key_breaks_ties_by_angle(self):
        # Two segments sharing a base point, fanning out: the one leaning
        # left comes first.
        left = LineBasedSegment(0, -5, 5, label="L")
        right = LineBasedSegment(0, 5, 5, label="R")
        assert left.base_order_key() < right.base_order_key()

    def test_base_order_key_on_line_segments(self):
        going_left = LineBasedSegment(0, -5, 0)
        going_right = LineBasedSegment(0, 5, 0)
        upward = LineBasedSegment(0, 0, 5)
        # On-line leftward < any proper segment at same base < on-line rightward.
        assert going_left.base_order_key() < upward.base_order_key()
        assert upward.base_order_key() < going_right.base_order_key()


class TestHQuery:
    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            HQuery(-1, 0, 1)

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            HQuery(1, 2, 1)

    def test_line_query_unbounded(self):
        q = HQuery.line(2)
        assert q.covers_u(-(10**15)) and q.covers_u(10**15)


class TestLbIntersects:
    def test_hit(self):
        s = LineBasedSegment(0, 4, 4)
        assert lb_intersects(s, HQuery.segment(2, 0, 3))

    def test_query_above_apex_misses(self):
        s = LineBasedSegment(0, 4, 4)
        assert not lb_intersects(s, HQuery.segment(5, -100, 100))

    def test_touch_at_apex_counts(self):
        s = LineBasedSegment(0, 4, 4)
        assert lb_intersects(s, HQuery.segment(4, 4, 10))

    def test_touch_at_base_counts(self):
        s = LineBasedSegment(0, 4, 4)
        assert lb_intersects(s, HQuery.segment(0, -2, 0))

    def test_u_window_misses(self):
        s = LineBasedSegment(0, 4, 4)
        assert not lb_intersects(s, HQuery.segment(2, 3, 10))
        assert not lb_intersects(s, HQuery.segment(2, -10, 1))

    def test_on_line_segment_needs_h_zero(self):
        s = LineBasedSegment(0, 5, 0)
        assert lb_intersects(s, HQuery.segment(0, 4, 9))
        assert not lb_intersects(s, HQuery.segment(1, 4, 9))
        assert not lb_intersects(s, HQuery.segment(0, 6, 9))

    def test_line_kind_query(self):
        s = LineBasedSegment(0, 4, 4)
        assert lb_intersects(s, HQuery.line(2))
        assert not lb_intersects(s, HQuery.line(5))

    def test_exact_boundary(self):
        s = LineBasedSegment(0, 3, 3)  # u at h=1 is exactly 1
        assert lb_intersects(s, HQuery.segment(1, 1, 2))
        assert not lb_intersects(s, HQuery.segment(1, Fraction(10**9 + 1, 10**9), 2))


class TestLbCross:
    def test_fan_does_not_cross(self):
        a = LineBasedSegment(0, -5, 5, label="a")
        b = LineBasedSegment(0, 5, 5, label="b")
        assert not lb_cross(a, b)

    def test_crossing_detected(self):
        a = LineBasedSegment(0, 4, 4, label="a")
        b = LineBasedSegment(2, -2, 4, label="b")
        assert lb_cross(a, b)

    def test_parallel_disjoint(self):
        a = LineBasedSegment(0, 0, 4, label="a")  # vertical-ish in frame
        b = LineBasedSegment(2, 2, 4, label="b")
        assert not lb_cross(a, b)
