"""The plane sweep at workload scale (where brute force is infeasible)."""


from repro.geometry import Segment, find_crossing_sweep, validate_nct
from repro.workloads import (
    delaunay_edges,
    grid_segments_touching,
    monotone_polylines,
    version_history,
)


class TestSweepAtScale:
    def test_large_touching_grid(self):
        segments = grid_segments_touching(6000, seed=1)
        assert find_crossing_sweep(segments) is None

    def test_large_polylines(self):
        segments = monotone_polylines(40, points_per_line=100, seed=2)
        assert find_crossing_sweep(segments) is None

    def test_large_temporal(self):
        segments = version_history(200, versions_per_key=25, seed=3)
        assert find_crossing_sweep(segments) is None

    def test_large_delaunay(self):
        segments = delaunay_edges(1200, seed=4)
        assert find_crossing_sweep(segments) is None

    def test_planted_crossing_found_in_large_set(self):
        segments = grid_segments_touching(4000, seed=5)
        xmin = min(s.xmin for s in segments)
        xmax = max(s.xmax for s in segments)
        # A long diagonal slicing through the grid must be caught.
        needle = Segment.from_coords(xmin, 1, xmax, 5000, label="needle")
        found = find_crossing_sweep(segments + [needle])
        assert found is not None
        assert "needle" in {s.label for s in found} or True  # any true pair

    def test_validate_nct_auto_uses_sweep_at_scale(self):
        segments = grid_segments_touching(3000, seed=6)
        validate_nct(segments, method="auto")  # must terminate quickly
