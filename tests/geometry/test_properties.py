"""Hypothesis properties of the exact geometric predicates."""

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Point,
    Segment,
    VerticalQuery,
    orientation,
    query_as_segment,
    segments_cross,
    segments_intersect,
    segments_touch,
    vs_intersects,
)

coords = st.integers(-50, 50)


@st.composite
def segment_st(draw, label=None):
    x1, y1 = draw(coords), draw(coords)
    x2, y2 = draw(coords), draw(coords)
    assume((x1, y1) != (x2, y2))
    return Segment.from_coords(x1, y1, x2, y2, label=label)


class TestPredicateAlgebra:
    @given(segment_st(1), segment_st(2))
    @settings(max_examples=300, deadline=None)
    def test_intersect_is_symmetric(self, s1, s2):
        assert segments_intersect(s1, s2) == segments_intersect(s2, s1)

    @given(segment_st(1), segment_st(2))
    @settings(max_examples=300, deadline=None)
    def test_cross_touch_partition_intersection(self, s1, s2):
        inter = segments_intersect(s1, s2)
        cross = segments_cross(s1, s2)
        touch = segments_touch(s1, s2)
        # cross and touch are mutually exclusive and exhaust intersection.
        assert not (cross and touch)
        assert inter == (cross or touch)

    @given(segment_st(1), segment_st(2))
    @settings(max_examples=300, deadline=None)
    def test_cross_is_symmetric(self, s1, s2):
        assert segments_cross(s1, s2) == segments_cross(s2, s1)

    @given(segment_st(1))
    @settings(max_examples=100, deadline=None)
    def test_segment_never_crosses_itself(self, s):
        twin = Segment(s.start, s.end, label=2)
        # Identical geometry = collinear full overlap = crossing.
        assert segments_cross(s, twin)

    @given(segment_st(1), st.integers(-60, 60))
    @settings(max_examples=200, deadline=None)
    def test_shared_endpoint_is_touch_not_cross(self, s, dy):
        assume(dy != 0)
        other = Segment(s.end, Point(s.end.x + 1, s.end.y + dy), label=2)
        if segments_intersect(s, other):
            # They can also overlap collinearly; exclude that case.
            if orientation(s.start, s.end, other.end) != 0:
                assert segments_touch(s, other)
                assert not segments_cross(s, other)


class TestOrientationAlgebra:
    @given(
        st.tuples(coords, coords), st.tuples(coords, coords),
        st.tuples(coords, coords),
    )
    @settings(max_examples=300, deadline=None)
    def test_orientation_antisymmetric_in_swap(self, a, b, c):
        pa, pb, pc = Point(*a), Point(*b), Point(*c)
        assert orientation(pa, pb, pc) == -orientation(pa, pc, pb)

    @given(
        st.tuples(coords, coords), st.tuples(coords, coords),
        st.tuples(coords, coords),
    )
    @settings(max_examples=300, deadline=None)
    def test_orientation_cyclic_invariance(self, a, b, c):
        pa, pb, pc = Point(*a), Point(*b), Point(*c)
        assert orientation(pa, pb, pc) == orientation(pb, pc, pa)

    @given(st.tuples(coords, coords), st.tuples(coords, coords),
           st.fractions(min_value=0, max_value=1))
    @settings(max_examples=200, deadline=None)
    def test_points_on_a_line_are_collinear(self, a, b, lam):
        pa, pb = Point(*a), Point(*b)
        assume(pa != pb)
        mid = Point(
            pa.x + Fraction(lam) * (pb.x - pa.x),
            pa.y + Fraction(lam) * (pb.y - pa.y),
        )
        assert orientation(pa, pb, mid) == 0


class TestVSQueryEquivalence:
    @given(segment_st(1), st.integers(-60, 60), st.integers(-60, 60),
           st.integers(1, 50))
    @settings(max_examples=300, deadline=None)
    def test_vs_intersects_equals_plane_intersection(self, s, x0, ylo, dy):
        """The VS predicate agrees with generic segment intersection on the
        materialised vertical query segment (non-degenerate windows)."""
        q = VerticalQuery.segment(x0, ylo, ylo + dy)
        q_exact = query_as_segment(q, ybound=10**6)
        assert vs_intersects(s, q) == segments_intersect(s, q_exact)

    @given(segment_st(1), st.integers(-60, 60))
    @settings(max_examples=200, deadline=None)
    def test_line_query_equals_span_test(self, s, x0):
        assert vs_intersects(s, VerticalQuery.line(x0)) == s.spans_x(x0)
