"""Unit tests for frame transformations."""

from fractions import Fraction

import pytest

from repro.geometry import (
    FixedDirectionFrame,
    Point,
    Segment,
    VerticalBaseFrame,
    VerticalQuery,
    lb_intersects,
    segments_cross,
    segments_intersect,
    vs_intersects,
)


def seg(x1, y1, x2, y2, label=None):
    return Segment.from_coords(x1, y1, x2, y2, label=label)


class TestFixedDirectionFrame:
    def test_roundtrip_point_nonzero_slope(self):
        frame = FixedDirectionFrame(Fraction(2, 3))
        p = Point(Fraction(5, 7), -3)
        assert frame.inverse_point(frame.forward_point(p)) == p

    def test_roundtrip_point_zero_slope(self):
        frame = FixedDirectionFrame(0)
        p = Point(4, -1)
        assert frame.inverse_point(frame.forward_point(p)) == p

    def test_direction_becomes_vertical(self):
        m = Fraction(3, 2)
        frame = FixedDirectionFrame(m)
        a = frame.forward_point(Point(0, 0))
        b = frame.forward_point(Point(2, 3))  # slope 3/2 from the origin
        assert a.x == b.x

    def test_forward_query_builds_vertical_segment(self):
        m = Fraction(1, 2)
        frame = FixedDirectionFrame(m)
        q = frame.forward_query(Point(0, 0), Point(4, 2))
        assert q.kind == "segment"

    def test_forward_query_rejects_wrong_slope(self):
        frame = FixedDirectionFrame(1)
        with pytest.raises(ValueError):
            frame.forward_query(Point(0, 0), Point(1, 2))

    def test_forward_query_line_kind(self):
        frame = FixedDirectionFrame(1)
        q = frame.forward_query(Point(3, 0))
        assert q.kind == "line"

    def test_incidence_preserved(self):
        # A slope-1 query through (1, 0)..(3, 2) against a few segments:
        # answers in the original frame equal answers in the mapped frame.
        m = 1
        frame = FixedDirectionFrame(m)
        query_plane = seg(1, 0, 3, 2, label="q")
        data = [
            seg(0, 2, 4, 0, label="hit"),
            seg(0, 5, 4, 6, label="miss"),
            seg(2, 1, 2, 3, label="touch"),  # touches query at (2, 1)
        ]
        q_vert = frame.forward_query(Point(1, 0), Point(3, 2))
        for s in data:
            plane_hit = segments_intersect(s, query_plane)
            mapped_hit = vs_intersects(frame.forward_segment(s), q_vert)
            assert plane_hit == mapped_hit, s.label

    def test_crossing_preserved(self):
        frame = FixedDirectionFrame(Fraction(-5, 3))
        s1 = seg(0, 0, 2, 2, label=1)
        s2 = seg(0, 2, 2, 0, label=2)
        assert segments_cross(frame.forward_segment(s1), frame.forward_segment(s2))
        s3 = seg(2, 2, 3, 0, label=3)
        assert not segments_cross(frame.forward_segment(s1), frame.forward_segment(s3))


class TestVerticalBaseFrame:
    def test_side_validated(self):
        with pytest.raises(ValueError):
            VerticalBaseFrame(0, "up")

    def test_left_side_mapping(self):
        frame = VerticalBaseFrame(10, "left")
        s = seg(4, 7, 10, 3)  # right endpoint on the base line
        lb = frame.to_line_based(s)
        assert lb.u0 == 3  # y where it meets the line
        assert lb.u1 == 7
        assert lb.h1 == 6  # 10 - 4
        assert lb.payload is s

    def test_right_side_mapping(self):
        frame = VerticalBaseFrame(10, "right")
        s = seg(10, 3, 14, -1)
        lb = frame.to_line_based(s)
        assert lb.u0 == 3
        assert lb.u1 == -1
        assert lb.h1 == 4

    def test_segment_on_wrong_side_rejected(self):
        frame = VerticalBaseFrame(10, "left")
        with pytest.raises(ValueError):
            frame.to_line_based(seg(10, 0, 14, 1))

    def test_segment_not_touching_line_rejected(self):
        frame = VerticalBaseFrame(10, "left")
        with pytest.raises(ValueError):
            frame.to_line_based(seg(0, 0, 5, 5))

    def test_query_mapping(self):
        frame = VerticalBaseFrame(10, "left")
        q = frame.to_hquery(VerticalQuery.segment(7, -1, 4))
        assert q.h == 3
        assert (q.ulo, q.uhi) == (-1, 4)

    def test_query_on_wrong_side_rejected(self):
        frame = VerticalBaseFrame(10, "left")
        with pytest.raises(ValueError):
            frame.to_hquery(VerticalQuery.line(11))

    def test_intersection_preserved_through_frame(self):
        # End-to-end: VS query against a left part == HQuery against its image.
        frame = VerticalBaseFrame(10, "left")
        s = seg(4, 7, 10, 3)
        lb = frame.to_line_based(s)
        for x0, ylo, yhi in [(7, 0, 6), (7, 6, 9), (4, 7, 8), (2, 0, 9), (10, 3, 3)]:
            q = VerticalQuery.segment(x0, ylo, yhi)
            assert vs_intersects(s, q) == lb_intersects(lb, frame.to_hquery(q)), (
                x0,
                ylo,
                yhi,
            )
