"""Serving-layer tests: snapshots, sharding, worker pools."""
