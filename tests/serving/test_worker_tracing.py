"""Cross-process trace propagation and the pooled phase decomposition.

The contract under test: a worker task inherits the parent tracer's
trace id through the pickled :class:`~repro.telemetry.SpanContext`,
records its own timed spans (deserialize / attach / query / serialize),
and ships them back so the parent tracer holds one multi-process
timeline whose phases sum to the parent-observed task wall-clock.
"""

import os

import pytest

from repro import ShardedSegmentDatabase
from repro.serving import TASK_PHASES
from repro.telemetry import (
    to_chrome_trace,
    validate_chrome_trace,
    wall_tracing,
)
from repro.workloads import grid_segments, segment_queries


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    segments = grid_segments(300, seed=51)
    queries = list(segment_queries(segments, 24, seed=52))
    directory = str(tmp_path_factory.mktemp("serving") / "snap")
    ShardedSegmentDatabase.bulk_load(
        segments, shards=2, block_capacity=16).save(directory)
    return directory, queries


def test_worker_spans_share_parent_trace_id(snapshot):
    directory, queries = snapshot
    with ShardedSegmentDatabase.open(directory, workers=1) as served:
        with wall_tracing() as tracer:
            served.query_batch(queries)
        assert tracer.records, "no spans recorded"
        assert {r.trace_id for r in tracer.records} == {tracer.trace_id}
        worker_pids = {r.pid for r in tracer.records} - {os.getpid()}
        assert worker_pids, "no spans came back from the worker process"


def test_pooled_timeline_has_all_phases(snapshot):
    directory, queries = snapshot
    with ShardedSegmentDatabase.open(directory, workers=1) as served:
        with wall_tracing() as tracer:
            served.query_batch(queries)   # cold: includes attach
            served.query_batch(queries)   # warm: no attach
        names = {r.name for r in tracer.records}
        assert set(TASK_PHASES) <= names
        attaches = [r for r in tracer.records if r.name == "attach"]
        # 2 shards, 1 worker process: each shard cold-opens exactly once.
        assert len(attaches) == 2
        # dispatch/collect are parent-side; deserialize/query/serialize
        # worker-side.
        parent_pid = os.getpid()
        for r in tracer.records:
            if r.name in ("dispatch", "collect"):
                assert r.pid == parent_pid, r
            if r.name in ("deserialize", "query", "serialize", "attach"):
                assert r.pid != parent_pid, r


def test_phases_cover_task_wall_clock(snapshot):
    directory, queries = snapshot
    with ShardedSegmentDatabase.open(directory, workers=1) as served:
        for _ in range(3):
            served.query_batch(queries)
        report = served.latency_report()
    assert report["tasks"] == 6  # 3 batches x 2 shards
    assert set(report["phases_s"]) <= set(TASK_PHASES)
    # The decomposition identity: phases explain the parent-observed
    # wall within 10% (slack = untimed gaps inside the worker).
    assert report["phase_coverage"] is not None
    assert 0.9 <= report["phase_coverage"] <= 1.05, report


def test_sync_mode_records_spans_in_parent_process(snapshot):
    directory, queries = snapshot
    with ShardedSegmentDatabase.open(directory, workers=0) as served:
        with wall_tracing() as tracer:
            served.query_batch(queries)
        assert {r.pid for r in tracer.records} == {os.getpid()}
        assert {r.name for r in tracer.records} == {"query"}
        report = served.latency_report()
    assert report["phase_coverage"] == 1.0  # sync: query IS the wall


def test_multiprocess_trace_exports_valid_chrome_json(snapshot):
    directory, queries = snapshot
    with ShardedSegmentDatabase.open(directory, workers=2) as served:
        with wall_tracing() as tracer:
            served.query_batch(queries)
    doc = to_chrome_trace(tracer.records, parent_pid=os.getpid())
    assert validate_chrome_trace(doc) == []
    lanes = {e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M"}
    assert "parent" in lanes
    assert any(name.startswith("worker-") for name in lanes)


@pytest.mark.parametrize("workers", (0, 1))
def test_slow_query_log_crosses_the_process_boundary(snapshot, workers):
    directory, queries = snapshot
    with ShardedSegmentDatabase.open(directory, workers=workers,
                                     slow_query_s=0.0) as served:
        served.query_batch(queries)
        log = served.slow_log
        assert log is not None and len(log) > 0
        entry = log.entries()[0]
        assert entry["kind"] == "query_batch"
        assert entry["latency_s"] >= 0.0
        # The diagnosis ran where the query ran and shipped back as data.
        assert entry["explain"] is not None


def test_no_tracer_means_no_span_overhead(snapshot):
    directory, queries = snapshot
    with ShardedSegmentDatabase.open(directory, workers=1) as served:
        out = served.query_batch(queries)  # no wall_tracing installed
        assert len(out) == len(queries)
        # Phase accounting still works without a tracer.
        assert served.latency_report()["tasks"] == 2
