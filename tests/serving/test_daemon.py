"""ServeDaemon: batching, admission control, graceful drain.

Most tests run the daemon against a stub database in a background
thread — the contract under test is the service layer (framing,
coalescing, backpressure, drain), not the engines.  One integration
test serves a real pool-backed sharded database end-to-end.
"""

import threading
import time

import pytest

from repro import ShardedSegmentDatabase
from repro.serving import ServeClient, ServeDaemon, ServeRejected
from repro.workloads import grid_segments, segment_queries


class EchoDB:
    """query_batch returns each query doubled; records batch sizes."""

    def __init__(self, delay_s=0.0, gate=None):
        self.batches = []
        self.delay_s = delay_s
        self.gate = gate

    def query_batch(self, queries):
        if self.gate is not None:
            self.gate.wait(timeout=10)
        if self.delay_s:
            time.sleep(self.delay_s)
        self.batches.append(len(queries))
        return [q * 2 for q in queries]


class FailingDB:
    def query_batch(self, queries):
        raise RuntimeError("engine exploded")


def _start(daemon):
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    assert daemon.ready.wait(timeout=10), "daemon never bound its port"
    return thread


def _stop(daemon, thread):
    daemon.request_stop()
    thread.join(timeout=10)
    assert not thread.is_alive(), "daemon failed to drain"
    return daemon.drain_report


def test_query_round_trip_and_drain_report():
    db = EchoDB()
    daemon = ServeDaemon(db)
    thread = _start(daemon)
    try:
        with ServeClient(port=daemon.port) as client:
            assert client.ping()["ok"]
            assert client.query_batch([1, 2, 3]) == [2, 4, 6]
            assert client.query_batch([]) == []
            stats = client.stats()
            assert stats["metrics"]["serve.requests"]["value"] == 2
    finally:
        report = _stop(daemon, thread)
    assert report["drained"] is True
    assert report["requests"] == 2
    assert report["queries"] == 3
    assert report["batches"] == 1
    assert report["rejected"] == 0
    assert report["request_s"]["count"] == 1


def test_concurrent_requests_coalesce_into_batches():
    db = EchoDB(delay_s=0.01)
    daemon = ServeDaemon(db, max_batch=8, batch_window_s=0.05)
    thread = _start(daemon)
    results = {}

    def one(i):
        with ServeClient(port=daemon.port) as client:
            results[i] = client.query_batch([i, i + 100])

    try:
        clients = [threading.Thread(target=one, args=(i,)) for i in range(6)]
        for t in clients:
            t.start()
        for t in clients:
            t.join(timeout=10)
    finally:
        report = _stop(daemon, thread)
    # Every client got exactly its own slice back, in order.
    for i in range(6):
        assert results[i] == [2 * i, 2 * (i + 100)], i
    # Coalescing happened: fewer engine batches than requests.
    assert report["batches"] < report["requests"] == 6
    assert sum(db.batches) == 12


def test_admission_control_rejects_past_max_pending():
    gate = threading.Event()
    db = EchoDB(gate=gate)
    daemon = ServeDaemon(db, max_pending=1, max_batch=1, batch_window_s=0.0)
    thread = _start(daemon)
    admitted = []

    def admitted_request(i):
        with ServeClient(port=daemon.port) as client:
            admitted.append(client.query_batch([i]))

    try:
        # First request: pulled by the batcher, blocked on the gate.
        # Second: sits in the queue (fills max_pending=1).
        blocked = [threading.Thread(target=admitted_request, args=(i,))
                   for i in range(2)]
        for t in blocked:
            t.start()
            time.sleep(0.15)
        # Third: the queue is full — immediate typed rejection.
        with ServeClient(port=daemon.port) as client:
            with pytest.raises(ServeRejected, match="overloaded"):
                client.query_batch([99])
        gate.set()
        for t in blocked:
            t.join(timeout=10)
    finally:
        gate.set()
        report = _stop(daemon, thread)
    assert sorted(admitted) == [[0], [2]]
    assert report["rejected"] == 1


def test_engine_failure_answers_instead_of_hanging():
    daemon = ServeDaemon(FailingDB())
    thread = _start(daemon)
    try:
        with ServeClient(port=daemon.port) as client:
            with pytest.raises(ServeRejected, match="engine exploded"):
                client.query_batch([1])
            # The daemon survives the failure.
            assert client.ping()["ok"]
    finally:
        _stop(daemon, thread)


def test_malformed_frame_is_answered_not_fatal():
    daemon = ServeDaemon(EchoDB())
    thread = _start(daemon)
    try:
        import socket
        import struct
        with socket.create_connection(("127.0.0.1", daemon.port),
                                      timeout=10) as sock:
            junk = b"this is not a pickle"
            sock.sendall(struct.pack(">I", len(junk)) + junk)
            header = sock.recv(4)
            assert len(header) == 4
        # Daemon still serves afterwards.
        with ServeClient(port=daemon.port) as client:
            assert client.query_batch([5]) == [10]
    finally:
        _stop(daemon, thread)


def test_drain_finishes_inflight_work():
    db = EchoDB(delay_s=0.2)
    daemon = ServeDaemon(db, batch_window_s=0.0)
    thread = _start(daemon)
    result = {}

    def slow_request():
        with ServeClient(port=daemon.port) as client:
            result["got"] = client.query_batch([7])

    t = threading.Thread(target=slow_request)
    t.start()
    time.sleep(0.05)           # request admitted, engine mid-flight
    report = _stop(daemon, thread)
    t.join(timeout=10)
    assert result["got"] == [14], "drain dropped an in-flight request"
    assert report["drained"] is True


def test_validation():
    with pytest.raises(ValueError):
        ServeDaemon(EchoDB(), max_pending=0)
    with pytest.raises(ValueError):
        ServeDaemon(EchoDB(), max_batch=0)
    with pytest.raises(ValueError):
        ServeDaemon(EchoDB(), batch_window_s=-1)


def test_serves_a_real_sharded_database(tmp_path):
    segments = grid_segments(240, seed=61)
    queries = list(segment_queries(segments, 12, seed=62))
    directory = str(tmp_path / "snap")
    ShardedSegmentDatabase.bulk_load(
        segments, shards=2, block_capacity=16).save(directory)
    with ShardedSegmentDatabase.open(directory, workers=0) as sync:
        expected = sync.query_batch(queries)
    served = ShardedSegmentDatabase.open(directory, workers=1,
                                         transport="shm")
    daemon = ServeDaemon(served)
    thread = _start(daemon)
    try:
        with ServeClient(port=daemon.port) as client:
            got = client.query_batch(queries)
            stats = client.stats()
    finally:
        _stop(daemon, thread)
        served.close()
    assert [sorted(s.label for s in r) for r in got] == \
           [sorted(s.label for s in r) for r in expected]
    assert "latency" in stats  # the pool's phase decomposition rode along


class SlowDB:
    """query_batch stalls long enough to blow any small deadline."""

    def __init__(self, delay_s=0.5):
        self.delay_s = delay_s

    def query_batch(self, queries):
        time.sleep(self.delay_s)
        return [q for q in queries]


def test_deadline_expiry_is_a_typed_error_and_daemon_survives():
    daemon = ServeDaemon(SlowDB(delay_s=0.4), batch_window_s=0.0)
    thread = _start(daemon)
    try:
        with ServeClient(port=daemon.port) as client:
            with pytest.raises(ServeRejected, match="deadline") as excinfo:
                client.query_batch([1, 2], timeout_ms=50)
            assert excinfo.value.error_type == "deadline"
            assert excinfo.value.retryable is False
            # The daemon is not poisoned by the expired request.
            assert client.ping()["ok"]
            assert client.query_batch([3], timeout_ms=5000) == [3]
    finally:
        report = _stop(daemon, thread)
    assert report["deadline_expired"] == 1


def test_bad_timeout_values_are_typed_bad_requests():
    daemon = ServeDaemon(EchoDB())
    thread = _start(daemon)
    try:
        with ServeClient(port=daemon.port) as client:
            for bad in (-1, 0, "soon", True):
                response = client.request(
                    {"kind": "query", "queries": [1], "timeout_ms": bad})
                assert response["ok"] is False, bad
                assert response["error_type"] == "bad-request", bad
                assert response["retryable"] is False, bad
    finally:
        _stop(daemon, thread)


def test_error_frames_carry_type_and_retryability():
    daemon = ServeDaemon(EchoDB())
    thread = _start(daemon)
    try:
        with ServeClient(port=daemon.port) as client:
            response = client.request({"kind": "no-such-kind"})
            assert response["error_type"] == "bad-request"
            assert response["retryable"] is False
            response = client.request(["not", "a", "dict"])
            assert response["error_type"] == "bad-request"
    finally:
        _stop(daemon, thread)


def test_overload_rejection_is_marked_retryable():
    gate = threading.Event()
    db = EchoDB(gate=gate)
    daemon = ServeDaemon(db, max_pending=1, max_batch=1, batch_window_s=0.0)
    thread = _start(daemon)
    try:
        blocked = [threading.Thread(
            target=lambda i=i: ServeClient(port=daemon.port).query_batch([i]))
            for i in range(2)]
        for t in blocked:
            t.start()
            time.sleep(0.15)
        with ServeClient(port=daemon.port) as client:
            with pytest.raises(ServeRejected) as excinfo:
                client.query_batch([99])
            assert excinfo.value.error_type == "overloaded"
            assert excinfo.value.retryable is True
        gate.set()
        for t in blocked:
            t.join(timeout=10)
    finally:
        gate.set()
        _stop(daemon, thread)


def test_health_frame_reports_daemon_and_db_state():
    daemon = ServeDaemon(EchoDB())
    thread = _start(daemon)
    try:
        with ServeClient(port=daemon.port) as client:
            client.query_batch([1])
            health = client.health()
        for key in ("draining", "inflight", "pending", "max_pending",
                    "requests", "rejected", "deadline_expired",
                    "degraded_requests"):
            assert key in health, key
        assert health["draining"] is False
        assert health["requests"] >= 1
        assert "db" not in health  # EchoDB has no health_report
    finally:
        _stop(daemon, thread)


def test_drain_answers_every_request_of_a_coalesced_inflight_batch():
    """SIGTERM-style stop while several clients sit coalesced in ONE
    engine batch: every one of them still gets its exact slice back."""
    db = EchoDB(delay_s=0.3)
    daemon = ServeDaemon(db, max_batch=8, batch_window_s=0.15)
    thread = _start(daemon)
    results = {}

    def one(i):
        with ServeClient(port=daemon.port) as client:
            results[i] = client.query_batch([i, i + 10])

    clients = [threading.Thread(target=one, args=(i,)) for i in range(4)]
    for t in clients:
        t.start()
    time.sleep(0.05)            # all admitted, window still open
    report = _stop(daemon, thread)   # drain while the batch is in flight
    for t in clients:
        t.join(timeout=10)
    for i in range(4):
        assert results.get(i) == [2 * i, 2 * (i + 10)], i
    assert report["drained"] is True
    assert report["batches"] < report["requests"] == 4, \
        "the drain scenario must actually have coalesced"


def test_worker_death_mid_batch_serves_degraded_over_the_wire(tmp_path):
    """A worker SIGKILLed under the daemon: the client receives a typed
    DegradedBatch whose coverage map crossed the wire intact."""
    from repro.serving import RpcChaosSchedule, SupervisorPolicy

    segments = grid_segments(240, seed=63)
    queries = list(segment_queries(segments, 8, seed=64))
    directory = str(tmp_path / "snap")
    ShardedSegmentDatabase.bulk_load(
        segments, shards=2, block_capacity=16).save(directory)
    policy = SupervisorPolicy(max_retries=0, backoff_s=0.01)
    chaos = RpcChaosSchedule(seed=0, worker_kill_rate=1.0)
    with ShardedSegmentDatabase.open(directory, workers=2,
                                     supervisor=policy,
                                     chaos=chaos) as served:
        daemon = ServeDaemon(served)
        thread = _start(daemon)
        try:
            with ServeClient(port=daemon.port) as client:
                got = client.query_batch(queries)
                health = client.health()
        finally:
            report = _stop(daemon, thread)
    assert getattr(got, "degraded", False), "loss must be typed, not hidden"
    assert any(str(v).startswith("down") for v in got.shard_coverage.values())
    assert health["db"]["pool"]["failed_tasks"] > 0
    assert report["degraded_requests"] >= 1


def test_client_rejects_oversized_response_frames():
    import socket
    import struct

    listener = socket.create_server(("127.0.0.1", 0))
    port = listener.getsockname()[1]

    def bogus_server():
        conn, _addr = listener.accept()
        with conn:
            conn.recv(65536)
            conn.sendall(struct.pack(">I", 1 << 31))  # absurd announcement

    server = threading.Thread(target=bogus_server, daemon=True)
    server.start()
    from repro.serving import ServeConnectionError
    try:
        with ServeClient(port=port, retries=0) as client:
            with pytest.raises(ServeConnectionError, match="wire damage"):
                client.ping()
    finally:
        listener.close()
        server.join(timeout=5)
