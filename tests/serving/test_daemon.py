"""ServeDaemon: batching, admission control, graceful drain.

Most tests run the daemon against a stub database in a background
thread — the contract under test is the service layer (framing,
coalescing, backpressure, drain), not the engines.  One integration
test serves a real pool-backed sharded database end-to-end.
"""

import threading
import time

import pytest

from repro import ShardedSegmentDatabase
from repro.serving import ServeClient, ServeDaemon, ServeRejected
from repro.workloads import grid_segments, segment_queries


class EchoDB:
    """query_batch returns each query doubled; records batch sizes."""

    def __init__(self, delay_s=0.0, gate=None):
        self.batches = []
        self.delay_s = delay_s
        self.gate = gate

    def query_batch(self, queries):
        if self.gate is not None:
            self.gate.wait(timeout=10)
        if self.delay_s:
            time.sleep(self.delay_s)
        self.batches.append(len(queries))
        return [q * 2 for q in queries]


class FailingDB:
    def query_batch(self, queries):
        raise RuntimeError("engine exploded")


def _start(daemon):
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    assert daemon.ready.wait(timeout=10), "daemon never bound its port"
    return thread


def _stop(daemon, thread):
    daemon.request_stop()
    thread.join(timeout=10)
    assert not thread.is_alive(), "daemon failed to drain"
    return daemon.drain_report


def test_query_round_trip_and_drain_report():
    db = EchoDB()
    daemon = ServeDaemon(db)
    thread = _start(daemon)
    try:
        with ServeClient(port=daemon.port) as client:
            assert client.ping()["ok"]
            assert client.query_batch([1, 2, 3]) == [2, 4, 6]
            assert client.query_batch([]) == []
            stats = client.stats()
            assert stats["metrics"]["serve.requests"]["value"] == 2
    finally:
        report = _stop(daemon, thread)
    assert report["drained"] is True
    assert report["requests"] == 2
    assert report["queries"] == 3
    assert report["batches"] == 1
    assert report["rejected"] == 0
    assert report["request_s"]["count"] == 1


def test_concurrent_requests_coalesce_into_batches():
    db = EchoDB(delay_s=0.01)
    daemon = ServeDaemon(db, max_batch=8, batch_window_s=0.05)
    thread = _start(daemon)
    results = {}

    def one(i):
        with ServeClient(port=daemon.port) as client:
            results[i] = client.query_batch([i, i + 100])

    try:
        clients = [threading.Thread(target=one, args=(i,)) for i in range(6)]
        for t in clients:
            t.start()
        for t in clients:
            t.join(timeout=10)
    finally:
        report = _stop(daemon, thread)
    # Every client got exactly its own slice back, in order.
    for i in range(6):
        assert results[i] == [2 * i, 2 * (i + 100)], i
    # Coalescing happened: fewer engine batches than requests.
    assert report["batches"] < report["requests"] == 6
    assert sum(db.batches) == 12


def test_admission_control_rejects_past_max_pending():
    gate = threading.Event()
    db = EchoDB(gate=gate)
    daemon = ServeDaemon(db, max_pending=1, max_batch=1, batch_window_s=0.0)
    thread = _start(daemon)
    admitted = []

    def admitted_request(i):
        with ServeClient(port=daemon.port) as client:
            admitted.append(client.query_batch([i]))

    try:
        # First request: pulled by the batcher, blocked on the gate.
        # Second: sits in the queue (fills max_pending=1).
        blocked = [threading.Thread(target=admitted_request, args=(i,))
                   for i in range(2)]
        for t in blocked:
            t.start()
            time.sleep(0.15)
        # Third: the queue is full — immediate typed rejection.
        with ServeClient(port=daemon.port) as client:
            with pytest.raises(ServeRejected, match="overloaded"):
                client.query_batch([99])
        gate.set()
        for t in blocked:
            t.join(timeout=10)
    finally:
        gate.set()
        report = _stop(daemon, thread)
    assert sorted(admitted) == [[0], [2]]
    assert report["rejected"] == 1


def test_engine_failure_answers_instead_of_hanging():
    daemon = ServeDaemon(FailingDB())
    thread = _start(daemon)
    try:
        with ServeClient(port=daemon.port) as client:
            with pytest.raises(ServeRejected, match="engine exploded"):
                client.query_batch([1])
            # The daemon survives the failure.
            assert client.ping()["ok"]
    finally:
        _stop(daemon, thread)


def test_malformed_frame_is_answered_not_fatal():
    daemon = ServeDaemon(EchoDB())
    thread = _start(daemon)
    try:
        import socket
        import struct
        with socket.create_connection(("127.0.0.1", daemon.port),
                                      timeout=10) as sock:
            junk = b"this is not a pickle"
            sock.sendall(struct.pack(">I", len(junk)) + junk)
            header = sock.recv(4)
            assert len(header) == 4
        # Daemon still serves afterwards.
        with ServeClient(port=daemon.port) as client:
            assert client.query_batch([5]) == [10]
    finally:
        _stop(daemon, thread)


def test_drain_finishes_inflight_work():
    db = EchoDB(delay_s=0.2)
    daemon = ServeDaemon(db, batch_window_s=0.0)
    thread = _start(daemon)
    result = {}

    def slow_request():
        with ServeClient(port=daemon.port) as client:
            result["got"] = client.query_batch([7])

    t = threading.Thread(target=slow_request)
    t.start()
    time.sleep(0.05)           # request admitted, engine mid-flight
    report = _stop(daemon, thread)
    t.join(timeout=10)
    assert result["got"] == [14], "drain dropped an in-flight request"
    assert report["drained"] is True


def test_validation():
    with pytest.raises(ValueError):
        ServeDaemon(EchoDB(), max_pending=0)
    with pytest.raises(ValueError):
        ServeDaemon(EchoDB(), max_batch=0)
    with pytest.raises(ValueError):
        ServeDaemon(EchoDB(), batch_window_s=-1)


def test_serves_a_real_sharded_database(tmp_path):
    segments = grid_segments(240, seed=61)
    queries = list(segment_queries(segments, 12, seed=62))
    directory = str(tmp_path / "snap")
    ShardedSegmentDatabase.bulk_load(
        segments, shards=2, block_capacity=16).save(directory)
    with ShardedSegmentDatabase.open(directory, workers=0) as sync:
        expected = sync.query_batch(queries)
    served = ShardedSegmentDatabase.open(directory, workers=1,
                                         transport="shm")
    daemon = ServeDaemon(served)
    thread = _start(daemon)
    try:
        with ServeClient(port=daemon.port) as client:
            got = client.query_batch(queries)
            stats = client.stats()
    finally:
        _stop(daemon, thread)
        served.close()
    assert [sorted(s.label for s in r) for r in got] == \
           [sorted(s.label for s in r) for r in expected]
    assert "latency" in stats  # the pool's phase decomposition rode along
