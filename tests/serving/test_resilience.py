"""Fault-tolerant serving: supervision, breakers, degraded results, chaos.

Three layers under test, bottom up:

* the resilience primitives in isolation — policy backoff math, the
  circuit-breaker state machine (injected clock, no sleeping), and the
  replayability contract of :class:`RpcChaosSchedule`;
* the supervised :class:`ShardWorkerPool` against real SIGKILLed
  workers — respawn + retry to exact answers, bounded exhaustion into
  typed failure results, breaker shedding, and the pinned legacy
  surface (``supervisor=None`` still lets ``BrokenProcessPool`` fly);
* the full RPC stack under seeded chaos — daemon behind a fault-
  injecting proxy, supervised pool being killed underneath — held to
  the never-silently-wrong oracle: every answer is exact, a typed
  degraded subset with an *accurate* shard-coverage map, or a typed
  error.  Never a hang, never a lie.
"""

import threading
import time
from random import Random

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro import DegradedBatch, DegradedResult, ShardedSegmentDatabase
from repro.serving import (
    WORKER_KILL_POINTS,
    ChaosProxy,
    CircuitBreaker,
    RpcChaosSchedule,
    ServeClient,
    ServeConnectionError,
    ServeDaemon,
    ServeRejected,
    ShardDownError,
    SupervisorPolicy,
    shm_available,
)
from repro.serving.resilience import chaos_kill_point
from repro.workloads import grid_segments, segment_queries

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="no multiprocessing.shared_memory")


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    segments = grid_segments(240, seed=71)
    queries = list(segment_queries(segments, 16, seed=72))
    directory = str(tmp_path_factory.mktemp("resilience") / "snap")
    ShardedSegmentDatabase.bulk_load(
        segments, shards=2, block_capacity=16).save(directory)
    with ShardedSegmentDatabase.open(directory, workers=0) as sync:
        expected = [sorted(str(s.label) for s in r)
                    for r in sync.query_batch(queries)]
    return directory, queries, expected


def _labels(results):
    return [sorted(str(s.label) for s in r) for r in results]


# ----------------------------------------------------------------------
# SupervisorPolicy
# ----------------------------------------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        SupervisorPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        SupervisorPolicy(backoff_s=-0.1)
    with pytest.raises(ValueError):
        SupervisorPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        SupervisorPolicy(task_timeout_s=0)
    with pytest.raises(ValueError):
        SupervisorPolicy(breaker_threshold=0)


def test_policy_backoff_doubles_and_caps():
    policy = SupervisorPolicy(backoff_s=0.1, backoff_cap_s=0.35, jitter=0.0)
    rng = Random(0)
    delays = [policy.delay_s(k, rng) for k in (1, 2, 3, 4)]
    assert delays == [0.1, 0.2, 0.35, 0.35]


def test_policy_jitter_is_bounded_and_seeded():
    policy = SupervisorPolicy(backoff_s=0.1, jitter=0.5)
    a = [policy.delay_s(1, Random(3)) for _ in range(1)]
    b = [policy.delay_s(1, Random(3)) for _ in range(1)]
    assert a == b, "same rng state must give the same jittered delay"
    for _ in range(50):
        d = policy.delay_s(1, Random())
        assert 0.1 <= d <= 0.15


def test_policy_round_trips_through_dict():
    policy = SupervisorPolicy(max_retries=5, task_timeout_s=None, seed=9)
    assert SupervisorPolicy.from_dict(policy.to_dict()) == policy


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_breaker_opens_after_threshold_and_recovers():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=2, cooldown_s=5.0, clock=clock)
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure("worker-died")
    assert breaker.state == "closed", "one failure below threshold"
    breaker.record_failure("worker-died")
    assert breaker.state == "open" and not breaker.allow()
    assert breaker.opens == 1
    clock.now += 4.9
    assert breaker.state == "open", "cooldown not over yet"
    clock.now += 0.2
    assert breaker.state == "half-open" and breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.last_error is None


def test_breaker_failed_probe_reopens_with_fresh_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=clock)
    breaker.record_failure("timeout")
    clock.now += 6
    assert breaker.state == "half-open"
    breaker.record_failure("timeout")       # probe failed
    assert breaker.state == "open" and breaker.opens == 2
    clock.now += 4.9
    assert breaker.state == "open", "re-open must restart the cooldown"


def test_breaker_success_resets_consecutive_count():
    breaker = CircuitBreaker(threshold=2, cooldown_s=5.0, clock=FakeClock())
    breaker.record_failure("worker-died")
    breaker.record_success()
    breaker.record_failure("worker-died")
    assert breaker.state == "closed", "non-consecutive failures don't open"


def test_breaker_validation_and_report():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_s=-1)
    report = CircuitBreaker(threshold=3, cooldown_s=1.0).to_dict()
    assert report["state"] == "closed"
    assert report["threshold"] == 3
    assert report["opens"] == 0


# ----------------------------------------------------------------------
# RpcChaosSchedule
# ----------------------------------------------------------------------

def test_chaos_schedule_is_replayable():
    a = RpcChaosSchedule(seed=5, worker_kill_rate=0.5)
    b = RpcChaosSchedule(seed=5, worker_kill_rate=0.5)
    decisions_a = [a.next_worker_kill(shard=i % 2) for i in range(40)]
    decisions_b = [b.next_worker_kill(shard=i % 2) for i in range(40)]
    assert decisions_a == decisions_b
    assert any(decisions_a), "rate 0.5 over 40 draws must kill sometimes"
    assert all(d in WORKER_KILL_POINTS for d in decisions_a if d)
    assert a.history == b.history
    assert all(e["kind"] == "worker-kill" for e in a.history)


def test_chaos_kill_points_fire_once_at_the_named_submission():
    schedule = RpcChaosSchedule(seed=0, kill_points={"worker.mid-query": 3})
    decisions = [schedule.next_worker_kill(shard=0) for _ in range(6)]
    assert decisions == [None, None, "worker.mid-query", None, None, None]
    assert schedule.kills_injected == 1


def test_chaos_max_kills_caps_rate_kills():
    schedule = RpcChaosSchedule(seed=1, worker_kill_rate=1.0, max_kills=2)
    decisions = [schedule.next_worker_kill(shard=0) for _ in range(10)]
    assert sum(1 for d in decisions if d) == 2
    assert schedule.kills_injected == 2


def test_chaos_disarmed_suspends_injection():
    schedule = RpcChaosSchedule(seed=2, worker_kill_rate=1.0,
                                frame_corrupt_rate=1.0)
    with schedule.disarmed():
        assert schedule.next_worker_kill(shard=0) is None
        assert schedule.next_frame_fault() is None
    assert schedule.next_worker_kill(shard=0) is not None


def test_chaos_frame_fault_kinds():
    assert RpcChaosSchedule(seed=0, conn_reset_rate=1.0).next_frame_fault() \
        == "reset"
    assert RpcChaosSchedule(
        seed=0, frame_truncate_rate=1.0).next_frame_fault() == "truncate"
    assert RpcChaosSchedule(
        seed=0, frame_corrupt_rate=1.0).next_frame_fault() == "corrupt"
    assert RpcChaosSchedule(
        seed=0, frame_delay_rate=1.0,
        frame_delay_s=0.01).next_frame_fault() == "delay"
    assert RpcChaosSchedule(seed=0).next_frame_fault() is None


def test_chaos_schedule_round_trips_through_dict():
    schedule = RpcChaosSchedule(seed=11, worker_kill_rate=0.3,
                                kill_points={"worker.start": 2},
                                max_kills=4, frame_corrupt_rate=0.1)
    twin = RpcChaosSchedule.from_dict(schedule.to_dict())
    assert [schedule.next_worker_kill(0) for _ in range(20)] == \
           [twin.next_worker_kill(0) for _ in range(20)]


def test_chaos_kill_point_is_a_no_op_when_untagged():
    # Any SIGKILL here would take the test runner down with it.
    chaos_kill_point("worker.mid-query", None)
    chaos_kill_point("worker.mid-query", "worker.start")


# ----------------------------------------------------------------------
# Supervised worker pool vs real SIGKILLed workers
# ----------------------------------------------------------------------

def test_supervised_pool_recovers_exactly_from_a_mid_query_kill(snapshot):
    directory, queries, expected = snapshot
    policy = SupervisorPolicy(max_retries=2, backoff_s=0.01, seed=3)
    chaos = RpcChaosSchedule(seed=3, kill_points={"worker.mid-query": 1})
    with ShardedSegmentDatabase.open(directory, workers=2,
                                     supervisor=policy,
                                     chaos=chaos) as served:
        results = served.query_batch(queries)
        pool = served._pool
        assert pool.respawns == 1, "the kill must have forced a respawn"
        assert pool.retried_tasks > 0
        assert pool.failed_tasks == 0
    assert not isinstance(results, DegradedBatch)
    assert _labels(results) == expected, "recovery must be bit-exact"


def test_every_kill_point_recovers(snapshot):
    directory, queries, expected = snapshot
    for point in WORKER_KILL_POINTS:
        policy = SupervisorPolicy(max_retries=2, backoff_s=0.01)
        chaos = RpcChaosSchedule(seed=0, kill_points={point: 1})
        with ShardedSegmentDatabase.open(directory, workers=1,
                                         supervisor=policy,
                                         chaos=chaos) as served:
            results = served.query_batch(queries)
            assert served._pool.respawns >= 1, point
        assert _labels(results) == expected, point


def test_retry_exhaustion_degrades_instead_of_raising(snapshot):
    directory, queries, expected = snapshot
    policy = SupervisorPolicy(max_retries=1, backoff_s=0.01,
                              breaker_threshold=3)
    chaos = RpcChaosSchedule(seed=0, worker_kill_rate=1.0)
    with ShardedSegmentDatabase.open(directory, workers=2,
                                     supervisor=policy,
                                     chaos=chaos) as served:
        batch = served.query_batch(queries)
        assert isinstance(batch, DegradedBatch)
        assert not batch.complete
        assert served._pool.failed_tasks > 0
        assert served.degraded_batches == 1
        # Coverage names every routed shard, all down at kill rate 1.
        assert set(batch.shard_coverage) == {0, 1}
        for verdict in batch.shard_coverage.values():
            assert verdict.startswith("down: ")
        for result in batch:
            assert isinstance(result, DegradedResult)
            assert result.source == "shard-down"


def test_degraded_coverage_map_is_accurate_per_query(snapshot):
    """The rigorous oracle: take down exactly one shard and check every
    query against its own routing — queries routed only to the live
    shard must be exact plain lists, queries touching the dead shard
    must be DegradedResults that under-report, never invent.  The
    failure is injected at the pool boundary (a SIGKILL's blast radius
    covers the whole executor, which would make a one-shard outage
    timing-dependent)."""
    directory, queries, expected = snapshot
    from repro.serving import WorkerTaskResult
    from repro.serving.reporting import ShardBatchStats

    with ShardedSegmentDatabase.open(directory, workers=1) as served:
        real = served._pool.query_batches

        def shard0_down(batches):
            out = real({i: qs for i, qs in batches.items() if i != 0})
            if 0 in batches:
                out[0] = WorkerTaskResult(
                    payload=None, stats=ShardBatchStats(),
                    failure="worker-died", error="injected", attempts=2)
            return out

        served._pool.query_batches = shard0_down
        batch = served.query_batch(queries)
        assert isinstance(batch, DegradedBatch)
        assert batch.shard_coverage[1] == "ok"
        assert batch.shard_coverage[0].startswith("down: worker-died")
        for q, result, want in zip(queries, batch, expected):
            routed = list(served.shards_for(q.x))
            answer = sorted(str(s.label) for s in result)
            if 0 in routed:
                assert isinstance(result, DegradedResult), q
                assert set(answer) <= set(want), (
                    f"{q}: degraded result invented segments")
            else:
                assert not isinstance(result, DegradedResult), q
                assert answer == want, f"{q}: untouched query went wrong"


def test_degrade_false_raises_typed_shard_down(snapshot):
    directory, queries, _expected = snapshot
    policy = SupervisorPolicy(max_retries=0, backoff_s=0.01)
    chaos = RpcChaosSchedule(seed=0, worker_kill_rate=1.0)
    with ShardedSegmentDatabase.open(directory, workers=2,
                                     supervisor=policy,
                                     chaos=chaos) as served:
        with pytest.raises(ShardDownError) as excinfo:
            served.query_batch(queries, degrade=False)
    assert excinfo.value.failures
    for kind, _reason in excinfo.value.failures.values():
        assert kind == "worker-died"


def test_explain_batch_refuses_partial_anatomy(snapshot):
    directory, queries, _expected = snapshot
    policy = SupervisorPolicy(max_retries=0, backoff_s=0.01)
    chaos = RpcChaosSchedule(seed=0, worker_kill_rate=1.0)
    with ShardedSegmentDatabase.open(directory, workers=2,
                                     supervisor=policy,
                                     chaos=chaos) as served:
        with pytest.raises(ShardDownError):
            served.explain_batch(queries)


def test_unsupervised_pool_keeps_the_legacy_failure_surface(snapshot):
    directory, queries, _expected = snapshot
    chaos = RpcChaosSchedule(seed=0, worker_kill_rate=1.0)
    with ShardedSegmentDatabase.open(directory, workers=1,
                                     supervisor=None,
                                     chaos=chaos) as served:
        with pytest.raises(BrokenProcessPool):
            served.query_batch(queries)


def test_fault_free_supervised_results_are_bit_identical(snapshot):
    directory, queries, _expected = snapshot
    with ShardedSegmentDatabase.open(directory, workers=2,
                                     supervisor=None) as raw:
        want = raw.query_batch(queries)
        want_io = raw.io_report()
    with ShardedSegmentDatabase.open(directory, workers=2) as supervised:
        got = supervised.query_batch(queries)
        got_io = supervised.io_report()
        assert supervised._pool.respawns == 0
        assert supervised._pool.retried_tasks == 0
    assert type(got) is list, "fault-free must not wrap the batch"
    assert _labels(got) == _labels(want)
    assert got_io["combined"]["reads"] == want_io["combined"]["reads"]


def test_circuit_breaker_sheds_and_half_open_probe_recovers(snapshot):
    directory, queries, expected = snapshot
    policy = SupervisorPolicy(max_retries=0, backoff_s=0.0,
                              breaker_threshold=1, breaker_cooldown_s=0.2)
    chaos = RpcChaosSchedule(seed=0, worker_kill_rate=1.0, max_kills=2)
    with ShardedSegmentDatabase.open(directory, workers=2,
                                     supervisor=policy,
                                     chaos=chaos) as served:
        pool = served._pool
        first = served.query_batch(queries)       # kills land, breakers open
        assert isinstance(first, DegradedBatch)
        health = pool.health()
        assert any(b["state"] in ("open", "half-open")
                   for b in health["breakers"].values())
        shed_before = pool.shed_tasks
        second = served.query_batch(queries)      # open: fail fast, no retry
        assert isinstance(second, DegradedBatch)
        assert pool.shed_tasks > shed_before, "open breaker must shed"
        time.sleep(0.25)                          # cooldown elapses
        third = served.query_batch(queries)       # half-open probe, no kills
        assert _labels(third) == expected, "probe must recover exactly"
        assert all(b["state"] == "closed"
                   for b in pool.health()["breakers"].values())
        assert served.health_report()["pool"]["shed_tasks"] == pool.shed_tasks


def test_pool_health_report_shape(snapshot):
    directory, queries, _expected = snapshot
    with ShardedSegmentDatabase.open(directory, workers=1) as served:
        served.query_batch(queries)
        health = served.health_report()
    assert health["mode"] == "pool"
    assert health["shards"] == 2
    pool = health["pool"]
    for key in ("workers", "alive_workers", "transport", "supervised",
                "respawns", "retried_tasks", "failed_tasks", "shed_tasks",
                "breakers"):
        assert key in pool, key
    assert pool["supervised"] is True
    assert pool["alive_workers"] == 1


# ----------------------------------------------------------------------
# RPC chaos: daemon behind a fault-injecting proxy, pool being killed
# ----------------------------------------------------------------------

def _daemon(db, **kwargs):
    daemon = ServeDaemon(db, **kwargs)
    thread = threading.Thread(
        target=daemon.run, kwargs={"install_signal_handlers": False},
        daemon=True)
    thread.start()
    assert daemon.ready.wait(timeout=10)
    return daemon, thread


def test_rpc_chaos_oracle_never_silently_wrong(snapshot):
    """The crash-point oracle at the RPC layer, over several seeds:
    workers SIGKILLed by schedule, response frames corrupted/truncated/
    reset by the proxy, client armed with timeouts and retries — and
    every answer that comes back is exact or a typed honest subset."""
    directory, queries, expected = snapshot
    for seed in range(3):
        policy = SupervisorPolicy(max_retries=3, backoff_s=0.01,
                                  breaker_cooldown_s=0.1, seed=seed)
        kills = RpcChaosSchedule(seed=seed, worker_kill_rate=0.3)
        frames = RpcChaosSchedule(seed=seed + 100, frame_corrupt_rate=0.2,
                                  frame_truncate_rate=0.1,
                                  conn_reset_rate=0.1)
        with ShardedSegmentDatabase.open(directory, workers=2,
                                         supervisor=policy,
                                         chaos=kills) as served:
            daemon, thread = _daemon(served)
            try:
                with ChaosProxy("127.0.0.1", daemon.port, frames) as proxy:
                    with ServeClient(port=proxy.port, connect_timeout=5,
                                     request_timeout=30, retries=5,
                                     retry_backoff_s=0.01,
                                     seed=seed) as client:
                        for start in range(0, len(queries), 4):
                            want = expected[start:start + 4]
                            try:
                                got = client.query_batch(
                                    queries[start:start + 4])
                            except (ServeRejected,
                                    ServeConnectionError):
                                continue  # loud typed failure: acceptable
                            if getattr(got, "degraded", False):
                                assert any(
                                    str(v).startswith("down")
                                    for v in got.shard_coverage.values()
                                ), "degraded batch with an all-ok map"
                                for result, labels in zip(got, want):
                                    answer = sorted(str(s.label)
                                                    for s in result)
                                    assert set(answer) <= set(labels)
                            else:
                                assert _labels(got) == want, (
                                    f"seed {seed}: silent wrong answer; "
                                    f"kills={kills.history} "
                                    f"frames={frames.history}")
            finally:
                daemon.request_stop()
                thread.join(timeout=10)
        assert not thread.is_alive(), f"seed {seed}: daemon hung in drain"


def test_corrupted_frame_is_a_typed_error_without_retries(snapshot):
    directory, queries, _expected = snapshot
    with ShardedSegmentDatabase.open(directory, workers=0) as served:
        daemon, thread = _daemon(served)
        frames = RpcChaosSchedule(seed=0, frame_corrupt_rate=1.0)
        try:
            with ChaosProxy("127.0.0.1", daemon.port, frames) as proxy:
                with ServeClient(port=proxy.port, retries=0) as client:
                    with pytest.raises(ServeConnectionError,
                                       match="undecodable"):
                        client.query_batch(queries[:2])
        finally:
            daemon.request_stop()
            thread.join(timeout=10)


def test_client_retries_ride_out_connection_resets(snapshot):
    directory, queries, expected = snapshot
    with ShardedSegmentDatabase.open(directory, workers=0) as served:
        daemon, thread = _daemon(served)
        frames = RpcChaosSchedule(seed=4, conn_reset_rate=0.5)
        try:
            with ChaosProxy("127.0.0.1", daemon.port, frames) as proxy:
                with ServeClient(port=proxy.port, retries=6,
                                 retry_backoff_s=0.01) as client:
                    for start in range(0, len(queries), 4):
                        got = client.query_batch(queries[start:start + 4])
                        assert _labels(got) == expected[start:start + 4]
        finally:
            daemon.request_stop()
            thread.join(timeout=10)
    assert frames.frame_faults_injected > 0, "the reset schedule never fired"


def test_chaos_proxy_delay_passes_frames_through_intact(snapshot):
    directory, queries, expected = snapshot
    with ShardedSegmentDatabase.open(directory, workers=0) as served:
        daemon, thread = _daemon(served)
        frames = RpcChaosSchedule(seed=0, frame_delay_rate=1.0,
                                  frame_delay_s=0.05)
        try:
            with ChaosProxy("127.0.0.1", daemon.port, frames) as proxy:
                with ServeClient(port=proxy.port, retries=0) as client:
                    t0 = time.perf_counter()
                    got = client.query_batch(queries[:4])
                    elapsed = time.perf_counter() - t0
            assert _labels(got) == expected[:4]
            assert elapsed >= 0.05, "the delay fault never applied"
        finally:
            daemon.request_stop()
            thread.join(timeout=10)
