"""Save/open round-trip property: a reopened database is indistinguishable
from the one that was saved — same answers, same per-query I/O counts.

The I/O identity is the strong half: it proves ``open()`` restored the
*structure* (page graph, roots, fanout), not just the data, because a
rebuilt index with different page layout would answer identically while
charging different reads.
"""

import random

import pytest

from repro import SegmentDatabase, SnapshotFormatError, VerticalQuery
from repro.iosim import StorageError
from repro.workloads import grid_segments, segment_queries

PAPER_ENGINES = ("solution1", "solution2")
ALL_ENGINES = ("solution1", "solution2", "scan", "stab-filter", "grid",
               "rtree")


def random_workload(seed, n=400, queries=48):
    segments = grid_segments(n, seed=seed)
    qs = list(segment_queries(segments, queries, seed=seed + 1))
    rng = random.Random(seed + 2)
    # Mix in rays and full lines (unbounded windows hit different code
    # paths than the generator's bounded segment queries).
    for _ in range(8):
        base = rng.choice(qs)
        qs.append(VerticalQuery.line(base.x))
        qs.append(VerticalQuery(base.x, base.ylo, None))
    return segments, qs


def per_query_profile(db, queries):
    """[(sorted labels, IOStats diff)] per query, from a cold pool."""
    if db.buffer_pool is not None:
        db.buffer_pool.drop_cache()
    db.reset_io_stats()
    profile = []
    for q in queries:
        before = db.io_stats()
        labels = sorted(str(s.label) for s in db.query(q))
        profile.append((labels, db.io_stats() - before))
    return profile


@pytest.mark.parametrize("engine", PAPER_ENGINES)
@pytest.mark.parametrize("seed", (101, 202))
def test_round_trip_identical_results_and_ios(tmp_path, engine, seed):
    segments, queries = random_workload(seed)
    db = SegmentDatabase.bulk_load(segments, engine=engine,
                                   block_capacity=16, buffer_pages=8)
    path = str(tmp_path / "db.snap")
    db.save(path)
    reopened = SegmentDatabase.open(path, buffer_pages=8)

    assert len(reopened) == len(db)
    assert reopened.engine_name == engine
    original = per_query_profile(db, queries)
    restored = per_query_profile(reopened, queries)
    for q, (want, got) in zip(queries, zip(original, restored)):
        assert got[0] == want[0], f"results diverged on {q}"
        assert got[1] == want[1], f"I/O profile diverged on {q}"


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_round_trip_all_engines_smoke(tmp_path, engine):
    segments, queries = random_workload(7, n=150, queries=16)
    db = SegmentDatabase.bulk_load(segments, engine=engine,
                                   block_capacity=16)
    expected = [sorted(str(s.label) for s in db.query(q)) for q in queries]
    path = str(tmp_path / "db.snap")
    db.save(path)
    reopened = SegmentDatabase.open(path)
    got = [sorted(str(s.label) for s in reopened.query(q)) for q in queries]
    assert got == expected


def test_reopened_database_accepts_inserts(tmp_path):
    from repro import Segment

    segments, queries = random_workload(13, n=120, queries=12)
    db = SegmentDatabase.bulk_load(segments, engine="solution2",
                                   block_capacity=16)
    path = str(tmp_path / "db.snap")
    db.save(path)
    reopened = SegmentDatabase.open(path)
    extra = Segment.from_coords(10**6, 0, 10**6 + 5, 3, label="late")
    reopened.insert(extra)
    db.insert(extra)
    assert len(reopened) == len(db)
    for q in queries + [VerticalQuery.line(10**6 + 1)]:
        assert (sorted(str(s.label) for s in reopened.query(q))
                == sorted(str(s.label) for s in db.query(q)))


def test_open_corrupt_snapshot_raises_typed_error(tmp_path):
    segments, _ = random_workload(5, n=60, queries=4)
    db = SegmentDatabase.bulk_load(segments, engine="solution1",
                                   block_capacity=16)
    path = tmp_path / "db.snap"
    db.save(str(path))
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(SnapshotFormatError):
        SegmentDatabase.open(str(path))


def test_save_refuses_quarantined_database(tmp_path):
    segments, _ = random_workload(5, n=60, queries=4)
    db = SegmentDatabase.bulk_load(segments, engine="solution2",
                                   block_capacity=16)
    db._quarantined = True
    db._quarantine_reason = "test damage"
    with pytest.raises(StorageError, match="cannot save"):
        db.save(str(tmp_path / "db.snap"))
