"""Worker→parent telemetry merge: pooled reports equal synchronous ones.

PR 5 regression under test: the pooled ``io_report()`` used to keep only
the raw IOStats diff, silently dropping the buffer / filter / fault
sub-dicts that the synchronous path reported.  Both back ends now
capture per-batch :class:`~repro.serving.ShardBatchStats` deltas through
the same helper, so the merged pooled report must equal the ``workers=0``
report field for field.
"""

import pytest

from repro import ShardedSegmentDatabase
from repro.serving import ShardBatchStats
from repro.workloads import grid_segments, segment_queries


def serve(directory, queries, workers, buffer_pages=None, batches=2):
    with ShardedSegmentDatabase.open(directory, workers=workers,
                                     buffer_pages=buffer_pages) as served:
        for _ in range(batches):
            served.query_batch(queries)
        return served.io_report()


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    segments = grid_segments(400, seed=81)
    queries = list(segment_queries(segments, 32, seed=82))
    directory = str(tmp_path_factory.mktemp("merge") / "snap")
    ShardedSegmentDatabase.bulk_load(
        segments, shards=3, block_capacity=16).save(directory)
    return directory, queries


def test_pooled_report_equals_sync_report(snapshot):
    """workers=2, no buffer: io and filter counters must match exactly."""
    directory, queries = snapshot
    sync = serve(directory, queries, workers=0)
    pooled = serve(directory, queries, workers=2)
    assert pooled == sync


def test_pooled_report_equals_sync_report_with_buffer(snapshot):
    """workers=1 with a buffer pool: every sub-dict must survive the
    worker→parent merge — buffer hits/misses included (single worker, so
    per-process pool state matches the single-process run)."""
    directory, queries = snapshot
    sync = serve(directory, queries, workers=0, buffer_pages=8)
    pooled = serve(directory, queries, workers=1, buffer_pages=8)
    assert pooled == sync
    for shard in pooled["shards"]:
        assert shard["buffer"] is not None
        assert shard["buffer"]["capacity"] == 8
        assert shard["buffer"]["hits"] + shard["buffer"]["misses"] > 0


def test_report_carries_full_counter_family(snapshot):
    directory, queries = snapshot
    report = serve(directory, queries, workers=2)
    for block in report["shards"] + [report["combined"]]:
        assert {"reads", "writes", "allocs", "frees", "total", "buffer",
                "filter", "faults", "degraded_queries",
                "quarantined"} <= set(block)
    combined = report["combined"]
    assert combined["total"] == sum(s["total"] for s in report["shards"])
    assert combined["filter"]["fast_hits"] == sum(
        s["filter"]["fast_hits"] for s in report["shards"])
    # The generated workload exercises the float fast path.
    assert combined["filter"]["fast_hits"] > 0


def test_shard_batch_stats_add_is_fieldwise():
    a = ShardBatchStats(buffer_hits=3, buffer_misses=1, buffer_capacity=8,
                        filter_fast=10, filter_exact=2,
                        faults={"faults_injected": 1, "state": "armed"},
                        degraded_queries=1)
    b = ShardBatchStats(buffer_hits=2, buffer_misses=2, buffer_capacity=8,
                        buffer_pinned=1, filter_fast=5,
                        faults={"faults_injected": 2, "state": "armed"},
                        quarantined=True)
    c = a + b
    assert c.buffer_hits == 5 and c.buffer_misses == 3
    assert c.buffer_pinned == 1          # point-in-time: latest wins
    assert c.filter_fast == 15 and c.filter_exact == 2
    assert c.faults == {"faults_injected": 3, "state": "armed"}
    assert c.degraded_queries == 1
    assert c.quarantined is True
    report = c.to_report()
    assert report["buffer"]["hit_rate"] == pytest.approx(5 / 8)
    assert report["filter"]["hit_rate"] == pytest.approx(15 / 17)


def test_stats_without_buffer_report_none():
    stats = ShardBatchStats(filter_fast=1)
    report = stats.to_report()
    assert report["buffer"] is None
    assert report["faults"] is None
    assert report["quarantined"] is False
