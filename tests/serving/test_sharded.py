"""ShardedSegmentDatabase: routing, replication policy, persistence, and
worker-pool equivalence.

The replication policy under test: a boundary-crossing segment is stored
in *every* slab it intersects, and the merge step deduplicates by label —
so sharded answers must equal unsharded answers as sets, and contain no
duplicate labels even for queries exactly on a slab boundary.
"""

import json

import pytest

from repro import (
    Segment,
    SegmentDatabase,
    ShardedSegmentDatabase,
    SnapshotFormatError,
    VerticalQuery,
)
from repro.workloads import grid_segments, segment_queries


def workload(seed=31, n=400, queries=48):
    segments = grid_segments(n, seed=seed)
    return segments, list(segment_queries(segments, queries, seed=seed + 1))


def labels(results):
    return [sorted(str(s.label) for s in r) for r in results]


@pytest.mark.parametrize("engine", ("solution1", "solution2"))
@pytest.mark.parametrize("shards", (1, 3))
def test_sharded_equals_unsharded(engine, shards):
    segments, queries = workload()
    flat = SegmentDatabase.bulk_load(segments, engine=engine,
                                     block_capacity=16)
    sharded = ShardedSegmentDatabase.bulk_load(
        segments, shards=shards, engine=engine, block_capacity=16)
    assert len(sharded) == len(flat)
    assert labels(sharded.query_batch(queries)) == labels(
        [flat.query(q) for q in queries])


def test_routing_hits_one_shard_in_general_position():
    segments, queries = workload()
    sharded = ShardedSegmentDatabase.bulk_load(segments, shards=4,
                                               block_capacity=16)
    assert sharded.shard_count == 4
    boundaries = set(sharded.boundaries)
    for q in queries:
        hit = sharded.shards_for(q.x)
        assert len(hit) == (2 if q.x in boundaries else 1), q


def test_boundary_query_dedups_replicated_segments():
    # Segments straddling x=10 replicated into both slabs; a query at the
    # boundary walks both shards and must still report each label once.
    segments = [
        Segment.from_coords(0, y, 20, y + 1, label=f"cross{y}")
        for y in range(0, 40, 4)
    ] + [
        Segment.from_coords(0, y, 9, y + 1, label=f"left{y}")
        for y in range(1, 40, 4)
    ] + [
        Segment.from_coords(11, y, 20, y + 1, label=f"right{y}")
        for y in range(2, 40, 4)
    ]
    flat = SegmentDatabase.bulk_load(segments, block_capacity=8)
    sharded = ShardedSegmentDatabase.bulk_load(segments, shards=2,
                                               block_capacity=8)
    assert sharded.replicated > 0  # the crossers really were replicated
    probes = [VerticalQuery.line(x) for x in (5, 15)]
    probes += [VerticalQuery.line(b) for b in sharded.boundaries]
    for q in probes:
        got = [str(s.label) for s in sharded.query(q)]
        assert len(got) == len(set(got)), f"duplicate labels at {q}"
        assert sorted(got) == sorted(str(s.label) for s in flat.query(q))


def test_empty_batch_and_empty_database():
    segments, _ = workload(n=60, queries=4)
    sharded = ShardedSegmentDatabase.bulk_load(segments, shards=2,
                                               block_capacity=16)
    assert sharded.query_batch([]) == []
    assert sharded.explain_batch([]) == []
    empty = ShardedSegmentDatabase.bulk_load([], shards=3)
    assert len(empty) == 0
    assert empty.query(VerticalQuery.line(5)) == []


def test_io_report_sums_over_shards():
    segments, queries = workload()
    sharded = ShardedSegmentDatabase.bulk_load(segments, shards=3,
                                               block_capacity=16)
    sharded.query_batch(queries)
    report = sharded.io_report()
    assert len(report["shards"]) == 3
    for field in ("reads", "writes", "total"):
        assert report["combined"][field] == sum(
            s[field] for s in report["shards"])
    assert report["combined"]["reads"] > 0


def test_save_open_round_trip_synchronous(tmp_path):
    segments, queries = workload()
    sharded = ShardedSegmentDatabase.bulk_load(segments, shards=3,
                                               block_capacity=16)
    expected = labels(sharded.query_batch(queries))
    directory = str(tmp_path / "sharded")
    manifest = sharded.save(directory)
    assert manifest["shards"] == 3
    assert len(manifest["shard_files"]) == 3

    reopened = ShardedSegmentDatabase.open(directory, workers=0)
    assert reopened.boundaries == sharded.boundaries
    assert len(reopened) == len(sharded)
    assert reopened.replicated == sharded.replicated
    assert labels(reopened.query_batch(queries)) == expected


def test_worker_pool_bit_identical_to_synchronous(tmp_path):
    segments, queries = workload()
    sharded = ShardedSegmentDatabase.bulk_load(segments, shards=2,
                                               block_capacity=16)
    directory = str(tmp_path / "sharded")
    sharded.save(directory)

    sync = ShardedSegmentDatabase.open(directory, workers=0)
    sync_results = sync.query_batch(queries)
    with ShardedSegmentDatabase.open(directory, workers=2) as pooled:
        pooled_results = pooled.query_batch(queries)
        # Bit-identical: same labels in the same order, not just as sets.
        assert ([[str(s.label) for s in r] for r in pooled_results]
                == [[str(s.label) for s in r] for r in sync_results])
        # The workers' shipped-back I/O equals the synchronous charge.
        assert (pooled.io_report()["combined"]
                == sync.io_report()["combined"])

        reports = pooled.explain_batch(queries[:8])
        assert reports and all(r.description.startswith("shard ")
                               for r in reports)
        # Per-shard reports count pre-merge results, so they can only
        # exceed the merged answer (by the replicated duplicates).
        assert sum(r.results for r in reports) >= sum(
            len(r) for r in pooled_results[:8])


def test_open_rejects_damaged_manifest(tmp_path):
    segments, _ = workload(n=60, queries=4)
    sharded = ShardedSegmentDatabase.bulk_load(segments, shards=2,
                                               block_capacity=16)
    directory = tmp_path / "sharded"
    sharded.save(str(directory))

    with pytest.raises(SnapshotFormatError, match="manifest not found"):
        ShardedSegmentDatabase.open(str(tmp_path / "missing"))

    manifest_path = directory / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["format_version"] = 99
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(SnapshotFormatError, match="unsupported manifest"):
        ShardedSegmentDatabase.open(str(directory))

    manifest_path.write_text("{not json")
    with pytest.raises(SnapshotFormatError, match="not JSON"):
        ShardedSegmentDatabase.open(str(directory))


def test_save_from_pool_mode_refuses(tmp_path):
    segments, _ = workload(n=60, queries=4)
    sharded = ShardedSegmentDatabase.bulk_load(segments, shards=2,
                                               block_capacity=16)
    directory = str(tmp_path / "sharded")
    sharded.save(directory)
    with ShardedSegmentDatabase.open(directory, workers=1) as pooled:
        with pytest.raises(ValueError, match="pool-backed"):
            pooled.save(str(tmp_path / "other"))
