"""Shared-memory transport: segment lifecycle, stale reclaim, zero-copy
attach, and the pool-level guarantees the daemon builds on.

The ownership contract under test: the parent creates and unlinks the
segments, workers attach untracked, and nothing survives in ``/dev/shm``
after a pool shuts down — including segments leaked by a previous
process that died without cleanup (deterministic names make them
collide with, and be reclaimed by, the next pool serving the same
snapshot).
"""

import os

import pytest

from repro import SegmentDatabase, ShardedSegmentDatabase
from repro.iosim import ArenaBlockDevice, ArenaView, SnapshotFormatError
from repro.serving import (
    AttachedArena,
    ShardWorkerPool,
    SharedShardArenas,
    segment_name,
    shm_available,
)
from repro.serving.shm import create_segment
from repro.workloads import grid_segments, segment_queries

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="no multiprocessing.shared_memory")


def _dev_shm_segments():
    try:
        return sorted(f for f in os.listdir("/dev/shm")
                      if f.startswith("rpr-"))
    except FileNotFoundError:  # non-Linux: fall back to "can't check"
        return []


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    segments = grid_segments(240, seed=31)
    queries = list(segment_queries(segments, 16, seed=32))
    directory = str(tmp_path_factory.mktemp("shm") / "snap")
    ShardedSegmentDatabase.bulk_load(
        segments, shards=2, block_capacity=16).save(directory)
    return directory, queries


@pytest.fixture(scope="module")
def single_snap(tmp_path_factory):
    segments = grid_segments(120, seed=33)
    db = SegmentDatabase.bulk_load(segments, engine="solution1",
                                   block_capacity=16)
    path = str(tmp_path_factory.mktemp("shm-one") / "one.snap")
    db.save(path)
    return path


def test_segment_names_deterministic_and_distinct(single_snap):
    assert segment_name(single_snap, 0) == segment_name(single_snap, 0)
    assert segment_name(single_snap, 0) != segment_name(single_snap, 1)
    other = os.path.join(os.path.dirname(single_snap), "other.snap")
    assert segment_name(single_snap, 0) != segment_name(other, 0)


def test_create_and_unlink_leaves_nothing(single_snap):
    before = _dev_shm_segments()
    arenas = SharedShardArenas.create([single_snap])
    assert arenas.total_bytes > 0
    assert len(arenas.descriptors) == 1
    name, size = arenas.descriptors[0]
    assert name == segment_name(single_snap, 0)
    arenas.unlink()
    arenas.unlink()  # idempotent
    assert _dev_shm_segments() == before


def test_attached_arena_is_zero_copy(single_snap):
    arenas = SharedShardArenas.create([single_snap])
    try:
        name, size = arenas.descriptors[0]
        attached = AttachedArena(name, size, source=f"shm://{name}")
        assert isinstance(attached.view, ArenaView)
        device = ArenaBlockDevice(attached.view)
        assert device.pages_in_use > 0
        # Pages decode straight out of the shared buffer.
        some_id = next(iter(attached.view.page_ids))
        page = device.read(some_id)
        assert page.items is not None
        # v2 pages may carry zero-copy column views over the segment;
        # drop them (as a worker's exit hook does) and detach cleanly.
        del page, device
        attached.close()
    finally:
        arenas.unlink()


def test_stale_segment_from_dead_process_is_reclaimed(single_snap):
    """A killed serving process leaks its segment; the next pool serving
    the same snapshot must reclaim the name instead of failing."""
    name = segment_name(single_snap, 0)
    stale = create_segment(name, 128)           # the "dead process" left this
    stale.buf[:5] = b"stale"
    stale.close()                               # handle gone, segment leaked
    arenas = SharedShardArenas.create([single_snap])
    try:
        got_name, size = arenas.descriptors[0]
        assert got_name == name
        assert size > 128                       # fresh content, not the relic
        attached = AttachedArena(name, size, source=name)
        assert bytes(attached.view._buf[:8]) != b"stale\x00\x00\x00"
        attached.close()
    finally:
        arenas.unlink()
    assert name not in _dev_shm_segments()


def test_damaged_snapshot_fails_in_parent_without_leaking(single_snap, tmp_path):
    """Corruption surfaces as a typed error in the owning process, and a
    partially-built segment set is torn down."""
    bad = str(tmp_path / "bad.snap")
    with open(single_snap, "rb") as fh:
        payload = fh.read()
    with open(bad, "wb") as fh:
        fh.write(payload[: len(payload) // 2])
    before = _dev_shm_segments()
    with pytest.raises(SnapshotFormatError):
        SharedShardArenas.create([single_snap, bad])
    assert _dev_shm_segments() == before


def test_pool_shutdown_unlinks_segments(snapshot):
    directory, queries = snapshot
    before = _dev_shm_segments()
    with ShardedSegmentDatabase.open(directory, workers=1,
                                     transport="shm") as served:
        assert served._pool.transport == "shm"
        assert served._pool.shared_bytes > 0
        assert len(_dev_shm_segments()) == len(before) + 2
        served.query_batch(queries)
    assert _dev_shm_segments() == before


def test_shm_results_match_sync(snapshot):
    directory, queries = snapshot
    with ShardedSegmentDatabase.open(directory, workers=0) as sync:
        expected = sync.query_batch(queries)
        expected_report = sync.io_report()
    with ShardedSegmentDatabase.open(directory, workers=2,
                                     transport="shm") as served:
        got = served.query_batch(queries)
        got_report = served.io_report()
    assert [sorted(s.label for s in r) for r in got] == \
           [sorted(s.label for s in r) for r in expected]
    # The pooled report merges to exactly the synchronous accounting.
    assert got_report["combined"]["reads"] == \
           expected_report["combined"]["reads"]


def test_shm_transport_records_standard_phases(snapshot):
    directory, queries = snapshot
    with ShardedSegmentDatabase.open(directory, workers=1,
                                     transport="shm") as served:
        served.query_batch(queries)
        served.query_batch(queries)
        report = served.latency_report()
    assert report["phase_coverage"] is not None
    assert 0.9 <= report["phase_coverage"] <= 1.05, report
    assert "attach" in report["phases_s"]


def test_unknown_transport_rejected(snapshot):
    directory, _queries = snapshot
    with pytest.raises(ValueError, match="transport"):
        ShardWorkerPool([], workers=1, transport="carrier-pigeon")


def test_empty_groups_skip_the_executor(snapshot):
    """A shard routed zero queries must not cross the process boundary:
    no pickling, no submit, an immediately-empty result (S2)."""
    directory, queries = snapshot
    with ShardedSegmentDatabase.open(directory, workers=1,
                                     transport="shm") as served:
        pool = served._pool
        submitted = []
        original = pool._executor.submit

        def counting_submit(fn, *args, **kwargs):
            submitted.append(args)
            return original(fn, *args, **kwargs)

        pool._executor.submit = counting_submit
        out = pool.query_batches({0: [], 1: list(queries)})
        assert len(submitted) == 1, "empty group still paid a round-trip"
        assert out[0].payload == []
        assert out[0].stats.io.reads == 0
        assert out[0].phases == {}
        assert sorted(out) == [0, 1]
        # Explain omits silent shards entirely.
        explained = pool.explain_batches({0: [], 1: list(queries)})
        assert list(explained) == [1]
        assert len(submitted) == 2


def test_all_empty_batch_never_touches_workers(snapshot):
    directory, _queries = snapshot
    with ShardedSegmentDatabase.open(directory, workers=1,
                                     transport="shm") as served:
        pool = served._pool
        pool._executor.submit = None  # any submit would raise
        out = pool.query_batches({0: [], 1: []})
        assert out[0].payload == [] and out[1].payload == []


def test_concurrent_pools_do_not_reclaim_each_other(single_snap):
    """Regression: two live pools over the same snapshot.  Before the
    owner lock, the second pool's stale-reclaim unlinked the first's
    deterministic segments mid-serve; now the second must fall back to
    unique names and reclaim nothing."""
    deterministic = segment_name(single_snap, 0)
    first = SharedShardArenas.create([single_snap])
    try:
        assert first.descriptors[0][0] == deterministic
        second = SharedShardArenas.create([single_snap])
        try:
            second_name = second.descriptors[0][0]
            assert second_name != deterministic, (
                "a non-owner pool must not take the deterministic name")
            assert second_name.startswith(deterministic + "-")
        finally:
            second.unlink()
        # The first pool's segment survived the second's full lifecycle.
        name, size = first.descriptors[0]
        attached = AttachedArena(name, size, source=name)
        assert attached.view.page_ids
        attached.close()
    finally:
        first.unlink()
    # With the owner gone, the next pool claims the deterministic name
    # again (and reclaims any stale leftovers under it).
    third = SharedShardArenas.create([single_snap])
    try:
        assert third.descriptors[0][0] == deterministic
    finally:
        third.unlink()
    assert deterministic not in _dev_shm_segments()


def test_owner_lock_survives_only_while_held(single_snap):
    from repro.serving.shm import (acquire_owner_lock, owner_lock_path,
                                   release_owner_lock)

    fd = acquire_owner_lock(single_snap)
    assert fd is not None, "first claimant must win the lock"
    assert acquire_owner_lock(single_snap) is None, (
        "a held lock must refuse a second claimant")
    release_owner_lock(fd)
    fd2 = acquire_owner_lock(single_snap)
    assert fd2 is not None, "a released lock must be claimable again"
    release_owner_lock(fd2)
    # The lock file itself stays — unlinking it would reintroduce the
    # two-owners race (see repro.serving.shm module docstring).
    assert os.path.exists(owner_lock_path(single_snap))
