"""Insertions and deletions on the external PST (Lemma 3 updates)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linebased import ExternalPST
from repro.geometry import HQuery, LineBasedSegment, lb_intersects
from repro.iosim import BlockDevice, Measurement, Pager
from repro.workloads import fan, hqueries


def build(segments, capacity=4, fanout=2):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    tree = ExternalPST.build(pager, segments, fanout=fanout)
    return dev, pager, tree


def oracle(segments, q):
    return sorted(s.label for s in segments if lb_intersects(s, q))


class TestInsert:
    def test_insert_into_empty(self):
        _d, _p, tree = build([])
        s = LineBasedSegment(0, 1, 5, label="x")
        tree.insert(s)
        assert [x.label for x in tree.query(HQuery.line(3))] == ["x"]
        tree.check_invariants()

    def test_insert_taller_than_root(self):
        segments = fan(50, max_height=100, seed=1)
        _d, _p, tree = build(segments)
        sky = LineBasedSegment(10**6, 10**6, 10**9, label="sky")
        tree.insert(sky)
        root = tree.read_root()
        assert any(s.label == "sky" for s in root.items)
        tree.check_invariants()

    def test_insert_batch_matches_oracle(self):
        base = fan(100, seed=2)
        _d, _p, tree = build(base, capacity=4)
        extra = [
            LineBasedSegment(2001 + 20 * i, 2001 + 20 * i + 5, 37 + i, label=("x", i))
            for i in range(60)
        ]
        for s in extra:
            tree.insert(s)
        everything = base + extra
        tree.check_invariants()
        for q in hqueries(everything, 15, selectivity=0.1, seed=3):
            assert sorted(s.label for s in tree.query(q)) == oracle(everything, q)

    def test_insert_io_logarithmic(self):
        capacity = 16
        segments = fan(8192, seed=4)
        dev, pager, tree = build(segments, capacity=capacity)
        worst = 0
        for i in range(32):
            s = LineBasedSegment(200000 + 3 * i, 200000 + 3 * i + 1, 17 + i,
                                 label=("ins", i))
            with pager.operation():
                with Measurement(dev) as m:
                    tree.insert(s)
            worst = max(worst, m.stats.total)
        # height ~ log2(8192/16) = 9; a sift touches O(height) nodes.
        assert worst <= 6 * 9 + 10, worst

    def test_rejects_on_line_insert(self):
        _d, _p, tree = build([])
        try:
            tree.insert(LineBasedSegment(0, 4, 0))
            assert False
        except ValueError:
            pass

    def test_amortised_rebuild_restores_balance(self):
        segments = fan(256, seed=5)
        _d, _p, tree = build(segments, capacity=4)
        for i in range(300):  # exceeds the size/2 rebuild threshold
            tree.insert(
                LineBasedSegment(10**5 + 3 * i, 10**5 + 3 * i + 1, 11, label=("r", i))
            )
        tree.check_invariants()
        assert len(tree) == 556


class TestDelete:
    def test_delete_missing(self):
        segments = fan(20, seed=6)
        _d, _p, tree = build(segments)
        assert not tree.delete(LineBasedSegment(1, 2, 3, label="ghost"))

    def test_delete_from_root(self):
        segments = fan(50, seed=7)
        _d, _p, tree = build(segments, capacity=4)
        root = tree.read_root()
        victim = root.items[0]
        assert tree.delete(victim)
        assert victim.label not in {s.label for s in tree.all_segments()}
        tree.check_invariants()

    def test_delete_everything(self):
        segments = fan(80, seed=8)
        _d, _p, tree = build(segments, capacity=4)
        for s in list(segments):
            assert tree.delete(s), s
        assert len(tree) == 0
        assert tree.query(HQuery.line(0)) == []

    def test_delete_releases_pages(self):
        segments = fan(120, seed=9)
        dev, _p, tree = build(segments, capacity=4)
        for s in list(segments):
            tree.delete(s)
        assert dev.pages_in_use <= 1

    def test_delete_then_query_matches_oracle(self):
        segments = fan(150, seed=10)
        _d, _p, tree = build(segments, capacity=8)
        rng = random.Random(11)
        removed = set()
        victims = rng.sample(segments, 60)
        for s in victims:
            assert tree.delete(s)
            removed.add(s.label)
        remaining = [s for s in segments if s.label not in removed]
        tree.check_invariants()
        for q in hqueries(segments, 15, selectivity=0.1, seed=12):
            assert sorted(s.label for s in tree.query(q)) == oracle(remaining, q)


@given(
    st.integers(0, 10**6),
    st.lists(st.tuples(st.integers(0, 79), st.booleans()), max_size=60),
)
@settings(max_examples=100, deadline=None)
def test_mixed_updates_match_model(seed, ops):
    """Random insert/delete interleavings keep queries oracle-correct."""
    pool = fan(80, max_height=60, seed=seed)
    _d, _p, tree = build([], capacity=4)
    live = {}
    for idx, is_insert in ops:
        s = pool[idx]
        if is_insert and s.label not in live:
            tree.insert(s)
            live[s.label] = s
        elif not is_insert and s.label in live:
            assert tree.delete(s)
            del live[s.label]
    tree.check_invariants()
    q = HQuery.line(30)
    assert sorted(s.label for s in tree.query(q)) == oracle(list(live.values()), q)
