"""Construction invariants of the external PST (paper Figure 3)."""

import math

import pytest

from repro.core.linebased import ExternalPST
from repro.geometry import LineBasedSegment
from repro.iosim import BlockDevice, Pager
from repro.workloads import fan, shared_base_fans, verticals


def build(segments, capacity=4, fanout=2):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    tree = ExternalPST.build(pager, segments, fanout=fanout)
    return dev, pager, tree


class TestBuild:
    def test_empty(self):
        _d, _p, tree = build([])
        assert tree.root_pid is None
        assert len(tree) == 0

    def test_single_leaf(self):
        segments = fan(3, seed=1)
        _d, _p, tree = build(segments)
        assert tree.height() == 1
        assert sorted(s.label for s in tree.all_segments()) == sorted(
            s.label for s in segments
        )

    def test_root_keeps_tallest(self):
        segments = fan(40, seed=2)
        _d, _p, tree = build(segments, capacity=4)
        root = tree.read_root()
        tallest = sorted(segments, key=lambda s: s.h1, reverse=True)[:4]
        assert {s.label for s in root.items} == {s.label for s in tallest}

    def test_low_separates_levels(self):
        segments = fan(100, seed=3)
        _d, _p, tree = build(segments, capacity=4)
        root = tree.read_root()
        min_here = min(s.h1 for s in root.items)
        assert root.low <= min_here
        for child in root.children:
            assert child.top.h1 <= root.low

    def test_items_ordered_by_base_intersection(self):
        segments = fan(50, seed=4)
        _d, _p, tree = build(segments, capacity=8)
        root = tree.read_root()
        keys = [s.base_order_key() for s in root.items]
        assert keys == sorted(keys)

    def test_children_bands_ordered_and_disjoint(self):
        segments = fan(200, seed=5)
        _d, _p, tree = build(segments, capacity=8)
        root = tree.read_root()
        assert len(root.children) == 2
        left, right = root.children
        assert left.max_base < right.min_base

    def test_height_logarithmic(self):
        n = 2048
        capacity = 8
        segments = fan(n, seed=6)
        _d, _p, tree = build(segments, capacity=capacity)
        blocks = n / capacity
        assert tree.height() <= math.ceil(math.log2(blocks)) + 2

    def test_blocked_height_much_smaller(self):
        n = 4096
        capacity = 64
        segments = fan(n, seed=7)
        _d, _p, binary = build(segments, capacity=capacity, fanout=2)
        _d2, _p2, blocked = build(segments, capacity=capacity, fanout=capacity // 4)
        assert blocked.height() < binary.height()
        # log_16(4096/64) = 1.5 levels plus the adaptive bottom levels.
        assert blocked.height() <= 4

    def test_linear_space(self):
        n = 2000
        capacity = 16
        segments = fan(n, seed=8)
        dev, _p, tree = build(segments, capacity=capacity)
        assert dev.pages_in_use <= 3 * math.ceil(n / capacity)

    def test_invariants_after_build(self):
        for workload in (fan(150, seed=9), verticals(90, seed=9),
                         shared_base_fans(20, per_cluster=5, seed=9)):
            _d, _p, tree = build(workload, capacity=4)
            tree.check_invariants()

    def test_rejects_on_line_segments(self):
        with pytest.raises(ValueError):
            build([LineBasedSegment(0, 5, 0)])

    def test_rejects_fanout_one(self):
        dev = BlockDevice(block_capacity=4)
        with pytest.raises(ValueError):
            ExternalPST(Pager(dev), fanout=1)

    def test_binary_nodes_are_single_block(self):
        segments = fan(100, seed=10)
        _d, _p, tree = build(segments, capacity=4, fanout=2)
        root = tree.read_root()
        assert root.routing_pid is None  # routing lives in the header

    def test_blocked_nodes_use_routing_page(self):
        segments = fan(2000, seed=11)
        _d, _p, tree = build(segments, capacity=16, fanout=4)
        root = tree.read_root()
        assert root.routing_pid is not None
