"""Lemma 1's structural guarantee: Report visits O(log n + output) nodes.

Beyond total I/O (tested in test_pst_costs), this pins the paper's sharper
claim: the number of *nodes visited that contain at least one
non-intersected segment* stays O(log n); every other visited node pays for
itself with a full page of output.
"""

from repro.core.linebased import ExternalPST
from repro.core.linebased.search import classify, HIT
from repro.geometry import HQuery
from repro.iosim import BlockDevice, Pager
from repro.workloads import fan, hqueries


class CountingPST(ExternalPST):
    """Counts node visits and classifies each as pure-output or mixed."""

    def __init__(self, pager, fanout=2):
        super().__init__(pager, fanout=fanout)
        self.visits = 0
        self.mixed_visits = 0
        self._query = None

    def read(self, pid):
        node = super().read(pid)
        if self._query is not None:
            self.visits += 1
            kinds = {classify(s, self._query) for s in node.items}
            if kinds - {HIT}:
                self.mixed_visits += 1
        return node

    def counted_query(self, q):
        self.visits = 0
        self.mixed_visits = 0
        self._query = q
        try:
            return self.query(q)
        finally:
            self._query = None


def build(n, capacity=4):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    segments = fan(n, seed=n)
    tree = CountingPST(pager, fanout=2)
    ordered = sorted(segments, key=lambda s: s.base_order_key())
    tree.size = len(ordered)
    tree.root_pid = tree._build_subtree(ordered)
    return segments, tree


def test_mixed_visits_bounded_by_log_plus_t():
    """The paper's exact statement: nodes containing >= 1 non-intersected
    segment number O(log n + t) (a terminal node can hold B-1 hits plus one
    too-short segment, so t — not a pure log — is the right bound)."""
    import math

    capacity = 4
    for n in (512, 2048, 8192):
        segments, tree = build(n, capacity)
        height = math.log2(n / capacity)
        worst_ratio = 0.0
        for q in hqueries(segments, 10, selectivity=0.2, seed=1):
            result = tree.counted_query(q)
            budget = 3 * height + 8 + 2 * (len(result) / capacity)
            worst_ratio = max(worst_ratio, tree.mixed_visits / budget)
        assert worst_ratio <= 1.0, (n, worst_ratio)


def test_mixed_visits_stay_logarithmic_for_tiny_outputs():
    """With near-empty answers the t term vanishes and the boundary-node
    count must collapse to ~2 per level."""
    import math

    capacity = 4
    for n in (512, 2048, 8192):
        segments, tree = build(n, capacity)
        height = math.log2(n / capacity)
        worst = 0
        for q in hqueries(segments, 10, selectivity=0.002, seed=3):
            result = tree.counted_query(q)
            if len(result) <= capacity:
                worst = max(worst, tree.mixed_visits)
        assert worst <= 3 * height + 8, (n, worst)


def test_total_visits_bounded_by_log_plus_output():
    import math

    capacity = 4
    segments, tree = build(4096, capacity)
    height = math.log2(4096 / capacity)
    for q in hqueries(segments, 12, selectivity=0.1, seed=2):
        result = tree.counted_query(q)
        budget = 3 * height + 8 + 2 * (len(result) / capacity)
        assert tree.visits <= budget, (tree.visits, budget, len(result))


def test_empty_answer_visits_only_a_path_bundle():
    import math

    segments, tree = build(4096)
    # A query above every apex: pruned at the root by the height test.
    tall = max(s.h1 for s in segments) + 1
    tree.counted_query(HQuery.segment(tall, 0, 10**9))
    assert tree.visits <= 1
    # A query in a u-range gap: witnesses prune all but one root path.
    gap_u = -10**9
    tree.counted_query(HQuery.segment(1, gap_u, gap_u + 1))
    assert tree.visits <= math.log2(4096 / 4) + 4
