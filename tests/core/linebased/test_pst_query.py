"""Query correctness of the external PST against the brute-force oracle."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linebased import ExternalPST
from repro.geometry import HQuery, LineBasedSegment, lb_intersects
from repro.iosim import BlockDevice, Pager
from repro.workloads import fan, hqueries, shared_base_fans, verticals


def build(segments, capacity=4, fanout=2):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    tree = ExternalPST.build(pager, segments, fanout=fanout)
    return dev, pager, tree


def oracle(segments, q):
    return sorted(s.label for s in segments if lb_intersects(s, q))


class TestReport:
    def test_empty_tree(self):
        _d, _p, tree = build([])
        assert tree.query(HQuery.line(5)) == []

    def test_full_line_query_reports_tall_enough(self):
        segments = fan(60, seed=1)
        _d, _p, tree = build(segments)
        q = HQuery.line(500)
        assert sorted(s.label for s in tree.query(q)) == oracle(segments, q)

    def test_window_query_matches_oracle(self):
        segments = fan(120, seed=2)
        _d, _p, tree = build(segments, capacity=8)
        for q in hqueries(segments, 25, selectivity=0.1, seed=3):
            assert sorted(s.label for s in tree.query(q)) == oracle(segments, q), q

    def test_no_duplicates(self):
        segments = shared_base_fans(15, per_cluster=6, seed=4)
        _d, _p, tree = build(segments, capacity=4)
        for q in hqueries(segments, 10, selectivity=0.3, seed=5):
            got = [s.label for s in tree.query(q)]
            assert len(got) == len(set(got))

    def test_touching_at_apex_counts(self):
        s = LineBasedSegment(0, 4, 4, label="apex")
        _d, _p, tree = build([s])
        assert [x.label for x in tree.query(HQuery.segment(4, 0, 10))] == ["apex"]

    def test_query_at_base_height(self):
        segments = fan(40, seed=6)
        _d, _p, tree = build(segments)
        q = HQuery.line(0)  # every proper segment starts at h=0
        assert len(tree.query(q)) == len(segments)

    def test_query_above_everything(self):
        segments = fan(40, max_height=100, seed=7)
        _d, _p, tree = build(segments)
        assert tree.query(HQuery.line(101)) == []

    def test_ray_window(self):
        segments = fan(80, seed=8)
        _d, _p, tree = build(segments, capacity=8)
        q = HQuery(h=50, ulo=100, uhi=None)  # unbounded right
        assert sorted(s.label for s in tree.query(q)) == oracle(segments, q)
        q2 = HQuery(h=50, ulo=None, uhi=300)
        assert sorted(s.label for s in tree.query(q2)) == oracle(segments, q2)

    def test_blocked_pst_same_answers(self):
        segments = fan(300, seed=9)
        _d1, _p1, binary = build(segments, capacity=16, fanout=2)
        _d2, _p2, blocked = build(segments, capacity=16, fanout=4)
        for q in hqueries(segments, 15, selectivity=0.05, seed=10):
            assert sorted(s.label for s in binary.query(q)) == sorted(
                s.label for s in blocked.query(q)
            )

    def test_shared_base_cluster_queries(self):
        segments = shared_base_fans(12, per_cluster=8, seed=11)
        _d, _p, tree = build(segments, capacity=4)
        for q in hqueries(segments, 20, selectivity=0.2, seed=12):
            assert sorted(s.label for s in tree.query(q)) == oracle(segments, q)

    def test_verticals(self):
        segments = verticals(100, seed=13)
        _d, _p, tree = build(segments, capacity=8)
        for q in hqueries(segments, 15, selectivity=0.1, seed=14):
            assert sorted(s.label for s in tree.query(q)) == oracle(segments, q)


class TestFind:
    def test_find_on_empty(self):
        _d, _p, tree = build([])
        assert tree.find_leftmost(HQuery.line(1)) is None

    def test_find_none_when_no_hit(self):
        segments = fan(30, max_height=100, seed=15)
        _d, _p, tree = build(segments)
        assert tree.find_leftmost(HQuery.line(200)) is None

    def test_find_leftmost_matches_oracle(self):
        segments = fan(150, seed=16)
        _d, _p, tree = build(segments, capacity=8)
        for q in hqueries(segments, 20, selectivity=0.1, seed=17):
            hits = [s for s in segments if lb_intersects(s, q)]
            result = tree.find_leftmost(q)
            if not hits:
                assert result is None
            else:
                expected = min(hits, key=lambda s: s.base_order_key())
                assert result[0] == expected

    def test_find_rightmost_matches_oracle(self):
        segments = fan(150, seed=18)
        _d, _p, tree = build(segments, capacity=8)
        for q in hqueries(segments, 20, selectivity=0.1, seed=19):
            hits = [s for s in segments if lb_intersects(s, q)]
            result = tree.find_rightmost(q)
            if not hits:
                assert result is None
            else:
                expected = max(hits, key=lambda s: s.base_order_key())
                assert result[0] == expected

    def test_find_returns_home_node(self):
        segments = fan(100, seed=20)
        _d, pager, tree = build(segments, capacity=4)
        q = hqueries(segments, 1, selectivity=0.2, seed=21)[0]
        result = tree.find_leftmost(q)
        if result is not None:
            segment, pid = result
            node = tree.read(pid)
            assert segment in node.items


@st.composite
def fan_and_query(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    seed = draw(st.integers(0, 10**6))
    segments = fan(n, max_height=60, seed=seed)
    h = draw(st.integers(0, 70))
    span = 20 * n
    ulo = draw(st.integers(-5, span))
    width = draw(st.integers(0, span))
    return segments, HQuery(h, ulo, ulo + width)


@given(fan_and_query())
@settings(max_examples=250, deadline=None)
def test_pst_query_matches_oracle_property(case):
    segments, q = case
    _d, _p, tree = build(segments, capacity=4)
    assert sorted(s.label for s in tree.query(q)) == oracle(segments, q)


@given(fan_and_query(), st.integers(2, 8))
@settings(max_examples=120, deadline=None)
def test_pst_query_oracle_any_fanout(case, fanout):
    segments, q = case
    _d, _p, tree = build(segments, capacity=8, fanout=fanout)
    assert sorted(s.label for s in tree.query(q)) == oracle(segments, q)
