"""Tests for the LineBasedIndex facade (PST + on-line intervals)."""

import pytest

from repro.core.linebased import LineBasedIndex
from repro.geometry import HQuery, LineBasedSegment, lb_intersects
from repro.iosim import BlockDevice, Pager
from repro.workloads import fan, hqueries, with_on_line_segments


def build(segments, capacity=8, blocked=False, **kw):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    index = LineBasedIndex.build(pager, segments, blocked=blocked, **kw)
    return dev, pager, index


def oracle(segments, q):
    return sorted(s.label for s in segments if lb_intersects(s, q))


class TestMixedSets:
    def test_on_line_segments_reported_at_h0(self):
        segments = with_on_line_segments(fan(30, seed=1), 10, seed=1)
        _d, _p, index = build(segments)
        q = HQuery.line(0)
        assert sorted(s.label for s in index.query(q)) == oracle(segments, q)

    def test_on_line_segments_invisible_above(self):
        segments = with_on_line_segments(fan(30, seed=2), 10, seed=2)
        _d, _p, index = build(segments)
        q = HQuery.line(1)
        got = {s.label for s in index.query(q)}
        assert not any(lbl[0] == "ol" for lbl in got)

    def test_window_at_h0_mixes_both(self):
        segments = with_on_line_segments(fan(50, seed=3), 20, seed=3)
        _d, _p, index = build(segments)
        for q in hqueries(segments, 10, selectivity=0.2, seed=4):
            q0 = HQuery(0, q.ulo, q.uhi)
            assert sorted(s.label for s in index.query(q0)) == oracle(segments, q0)

    def test_len_counts_both(self):
        segments = with_on_line_segments(fan(30, seed=5), 10, seed=5)
        _d, _p, index = build(segments)
        assert len(index) == 40

    def test_all_segments_roundtrip(self):
        segments = with_on_line_segments(fan(25, seed=6), 5, seed=6)
        _d, _p, index = build(segments)
        assert sorted(s.label for s in index.all_segments()) == sorted(
            s.label for s in segments
        )


class TestUpdates:
    def test_insert_dispatch(self):
        _d, _p, index = build([])
        index.insert(LineBasedSegment(0, 5, 0, label="flat"))
        index.insert(LineBasedSegment(10, 12, 7, label="tall"))
        assert len(index) == 2
        # Both are hit at h=0: "tall" plants its base point at u=10.
        got = sorted(s.label for s in index.query(HQuery.segment(0, 0, 20)))
        assert got == ["flat", "tall"]
        # Above the base line only "tall" remains.
        assert [s.label for s in index.query(HQuery.segment(5, 0, 20))] == ["tall"]

    def test_delete_dispatch(self):
        segments = [
            LineBasedSegment(0, 5, 0, label="flat"),
            LineBasedSegment(10, 12, 7, label="tall"),
        ]
        _d, _p, index = build(segments)
        assert index.delete(segments[0])
        assert index.delete(segments[1])
        assert len(index) == 0

    def test_validated_insert_rejects_crossing(self):
        base = [LineBasedSegment(0, 10, 10, label="a")]
        _d, _p, index = build(base, validate_inserts=True)
        with pytest.raises(ValueError):
            index.insert(LineBasedSegment(5, -5, 10, label="crosses"))

    def test_validated_insert_allows_touching(self):
        base = [LineBasedSegment(0, 10, 10, label="a")]
        _d, _p, index = build(base, validate_inserts=True)
        index.insert(LineBasedSegment(0, -10, 10, label="touches"))
        assert len(index) == 2


class TestBlockedVariant:
    def test_blocked_same_answers(self):
        segments = with_on_line_segments(fan(200, seed=7), 30, seed=7)
        _d1, _p1, binary = build(segments, capacity=16)
        _d2, _p2, blocked = build(segments, capacity=16, blocked=True)
        queries = hqueries(segments, 10, selectivity=0.05, seed=8)
        queries.append(HQuery.line(0))
        for q in queries:
            assert sorted(s.label for s in binary.query(q)) == sorted(
                s.label for s in blocked.query(q)
            )

    def test_find_through_facade(self):
        segments = fan(100, seed=9)
        _d, _p, index = build(segments, blocked=True)
        q = hqueries(segments, 1, selectivity=0.3, seed=10)[0]
        hits = [s for s in segments if lb_intersects(s, q)]
        result = index.find_leftmost(q)
        if hits:
            assert result[0] == min(hits, key=lambda s: s.base_order_key())
        else:
            assert result is None
