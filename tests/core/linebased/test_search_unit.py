"""Unit tests for the witness-based search primitives (Figures 8–11).

These pin down the invariant the reconstructed Find/Report rely on:
classification of stored segments against a query, and band pruning by the
tightest witnesses.
"""

from repro.core.linebased.search import BELOW, HIT, LEFT, RIGHT, _Bounds, classify
from repro.geometry import HQuery, LineBasedSegment


def seg(u0, u1, h1, label=None):
    return LineBasedSegment(u0, u1, h1, label=label)


class TestClassify:
    Q = HQuery.segment(4, 10, 20)

    def test_below(self):
        assert classify(seg(0, 0, 3), self.Q) == BELOW

    def test_left_witness(self):
        assert classify(seg(0, 0, 10), self.Q) == LEFT

    def test_right_witness(self):
        assert classify(seg(30, 30, 10), self.Q) == RIGHT

    def test_hit_interior(self):
        assert classify(seg(15, 15, 10), self.Q) == HIT

    def test_hit_at_window_edges(self):
        assert classify(seg(10, 10, 4), self.Q) == HIT  # u = ulo, h = query h
        assert classify(seg(20, 20, 100), self.Q) == HIT  # u = uhi

    def test_slanted_segment_evaluated_at_query_height(self):
        # Base at u=0 but leaning right: at h=4 it reaches u=12 (in window).
        assert classify(seg(0, 24, 8), self.Q) == HIT

    def test_unbounded_window_never_has_witnesses(self):
        line = HQuery.line(4)
        assert classify(seg(-(10**9), -(10**9), 10), line) == HIT
        assert classify(seg(10**9, 10**9, 10), line) == HIT

    def test_ray_window_one_sided(self):
        ray = HQuery(4, ulo=10, uhi=None)
        assert classify(seg(0, 0, 10), ray) == LEFT
        assert classify(seg(10**6, 10**6, 10), ray) == HIT


class TestBounds:
    def test_left_witness_tightens_upward(self):
        bounds = _Bounds()
        bounds.absorb(seg(0, 0, 10), LEFT)
        bounds.absorb(seg(5, 5, 10), LEFT)
        bounds.absorb(seg(2, 2, 10), LEFT)  # looser: ignored
        assert bounds.left == seg(5, 5, 10).base_order_key()

    def test_right_witness_tightens_downward(self):
        bounds = _Bounds()
        bounds.absorb(seg(30, 30, 10), RIGHT)
        bounds.absorb(seg(25, 25, 10), RIGHT)
        bounds.absorb(seg(28, 28, 10), RIGHT)  # looser: ignored
        assert bounds.right == seg(25, 25, 10).base_order_key()

    def test_prunes_band_left(self):
        bounds = _Bounds()
        bounds.absorb(seg(5, 5, 10), LEFT)
        lo = seg(0, 0, 10).base_order_key()
        hi = seg(5, 5, 10).base_order_key()
        assert bounds.prunes_band(lo, hi)  # entirely at-or-left of witness
        hi2 = seg(6, 6, 10).base_order_key()
        assert not bounds.prunes_band(lo, hi2)  # reaches past the witness

    def test_prunes_band_right(self):
        bounds = _Bounds()
        bounds.absorb(seg(25, 25, 10), RIGHT)
        lo = seg(25, 25, 10).base_order_key()
        hi = seg(30, 30, 10).base_order_key()
        assert bounds.prunes_band(lo, hi)
        lo2 = seg(24, 24, 10).base_order_key()
        assert not bounds.prunes_band(lo2, hi)

    def test_no_witnesses_prunes_nothing(self):
        bounds = _Bounds()
        assert not bounds.prunes_band(
            seg(0, 0, 1).base_order_key(), seg(100, 100, 1).base_order_key()
        )

    def test_below_absorption_is_ignored(self):
        bounds = _Bounds()
        bounds.absorb(seg(5, 5, 1), BELOW)
        assert bounds.left is None and bounds.right is None


class TestWitnessSoundness:
    """The pruning rule itself: a witness only ever excludes non-hits."""

    def test_left_witness_excludes_only_misses(self):
        # Non-crossing set: witness w at u=10 (reaching h) proves every
        # segment with a smaller base key that reaches h is left of it.
        q = HQuery.segment(5, 12, 20)
        witness = seg(10, 10, 10, label="w")
        assert classify(witness, q) == LEFT
        # Anything non-crossing with base key below the witness that
        # reaches h=5 must evaluate left of the witness there.
        others = [seg(2, 6, 10, label="a"), seg(9, 3, 6, label="b")]
        for other in others:
            assert other.base_order_key() < witness.base_order_key()
            assert other.u_at(5) <= witness.u_at(5)
            assert classify(other, q) != HIT
