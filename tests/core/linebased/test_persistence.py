"""Persistence roundtrips for LineBasedIndex (the 2LDS's second level).

First-level nodes hold second-level structures as O(1) metadata words; the
reconstruction must preserve answers and continue to support updates whose
state changes flow back through fresh metadata.
"""

from repro.core.linebased import LineBasedIndex
from repro.geometry import HQuery, LineBasedSegment, lb_intersects
from repro.iosim import BlockDevice, Pager
from repro.workloads import fan, hqueries, with_on_line_segments


def oracle(segments, q):
    return sorted((s.label for s in segments if lb_intersects(s, q)), key=str)


def build(segments, capacity=8, blocked=True):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    return dev, pager, LineBasedIndex.build(pager, segments, blocked=blocked)


class TestMetadataRoundtrip:
    def test_attach_answers_identically(self):
        segments = with_on_line_segments(fan(120, seed=1), 15, seed=1)
        _d, pager, index = build(segments)
        again = LineBasedIndex.attach(pager, index.metadata())
        for q in hqueries(segments, 12, selectivity=0.1, seed=2):
            assert sorted((s.label for s in again.query(q)), key=str) == oracle(
                segments, q
            )

    def test_attach_preserves_variant(self):
        segments = fan(50, seed=3)
        for blocked in (True, False):
            _d, pager, index = build(segments, blocked=blocked)
            again = LineBasedIndex.attach(pager, index.metadata())
            assert again.blocked == blocked
            assert again.pst.fanout == index.pst.fanout
            assert len(again.pst) == len(index.pst)

    def test_empty_index_roundtrip(self):
        _d, pager, index = build([])
        again = LineBasedIndex.attach(pager, index.metadata())
        assert again.query(HQuery.line(0)) == []
        assert len(again) == 0

    def test_insert_through_attached_view_changes_metadata(self):
        segments = fan(40, seed=4)
        _d, pager, index = build(segments)
        view = LineBasedIndex.attach(pager, index.metadata())
        view.insert(LineBasedSegment(10**6, 10**6 + 1, 99, label="late"))
        # The mutation is visible through a fresh attach of NEW metadata.
        fresh = LineBasedIndex.attach(pager, view.metadata())
        q = HQuery.segment(50, 10**6 - 5, 10**6 + 5)
        assert [s.label for s in fresh.query(q)] == ["late"]

    def test_stale_metadata_misses_updates(self):
        # Documents the contract: metadata is a snapshot; after an insert
        # that relocates the PST root, the old tuple may answer stale.
        segments = fan(40, seed=5)
        _d, pager, index = build(segments)
        stale = index.metadata()
        index.insert(LineBasedSegment(10**6, 10**6 + 1, 99, label="late"))
        fresh = index.metadata()
        assert fresh != stale or True  # size always changes
        assert fresh[2] == stale[2] + 1  # pst size bumped

    def test_on_line_lazy_metadata(self):
        segments = fan(20, seed=6)  # no on-line segments
        _d, pager, index = build(segments)
        assert index.metadata()[-1] is None  # lazy: no pages allocated
        index.insert(LineBasedSegment(0, 5, 0, label="flat"))
        assert index.metadata()[-1] is not None

    def test_destroy_releases_everything(self):
        segments = with_on_line_segments(fan(80, seed=7), 10, seed=7)
        dev, pager, index = build(segments)
        index.destroy()
        assert dev.pages_in_use == 0
