"""Reproduction of the paper's Figure 2.

A segment query against line-based segments and the 3-sided query on their
endpoint set *differ*: the figure's three cases are

* segment 1 — intersected by the query AND endpoint inside the 3-sided
  region (both queries agree);
* segment 2 — intersected by the query but endpoint OUTSIDE the region
  (a 3-sided query on endpoints would miss it);
* segment 3 — endpoint INSIDE the region but segment NOT intersected
  (a 3-sided query on endpoints would falsely report it).

Despite the mismatch, the PST answers the segment query correctly (that is
Section 2's point: the PST machinery transfers, the query semantics do
not).
"""

from repro.core.linebased import ExternalPST
from repro.geometry import HQuery, LineBasedSegment, lb_intersects
from repro.iosim import BlockDevice, Pager

# Query: height 4, u in [4, 10].
QUERY = HQuery.segment(4, 4, 10)

# The 3-sided region on apexes: u in [4, 10], h >= 4 (open above).
# The three segments are mutually non-crossing (an NCT set).
SEG1 = LineBasedSegment(6, 7, 6, label=1)    # hits query; apex (7, 6) inside
SEG2 = LineBasedSegment(9, 11, 8, label=2)   # hits query at u=10; apex (11, 8) outside
SEG3 = LineBasedSegment(0, 5, 9, label=3)    # apex (5, 9) inside; passes left of query


def apex_in_three_sided(s, q):
    return s.h1 >= q.h and q.ulo <= s.u1 <= q.uhi


def test_segment1_agreement():
    assert lb_intersects(SEG1, QUERY)
    assert apex_in_three_sided(SEG1, QUERY)


def test_segment2_query_hit_but_endpoint_outside():
    assert lb_intersects(SEG2, QUERY)
    assert not apex_in_three_sided(SEG2, QUERY)


def test_segment3_endpoint_inside_but_no_intersection():
    assert not lb_intersects(SEG3, QUERY)
    assert apex_in_three_sided(SEG3, QUERY)


def test_pst_answers_the_segment_query_not_the_3sided_one():
    dev = BlockDevice(block_capacity=2)
    tree = ExternalPST.build(Pager(dev), [SEG1, SEG2, SEG3])
    got = sorted(s.label for s in tree.query(QUERY))
    assert got == [1, 2]  # segment 3 excluded, segment 2 included
