"""Lemma 1/2/3 I/O costs, measured.

The point of the reproduction: queries on the binary PST must cost
``O(log2 n + t)`` I/Os and on the blocked PST ``O(log_B n + t)``, with the
output term paying one I/O per ``B`` reported segments, not one per
segment.
"""

import math

from repro.core.linebased import ExternalPST
from repro.geometry import HQuery
from repro.iosim import BlockDevice, Measurement, Pager
from repro.workloads import fan, hqueries


def build(segments, capacity, fanout):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    tree = ExternalPST.build(pager, segments, fanout=fanout)
    return dev, pager, tree


def query_cost(dev, pager, tree, q):
    with pager.operation():
        with Measurement(dev) as m:
            result = tree.query(q)
    return m.stats.reads, len(result)


class TestBinaryPSTCosts:
    def test_query_io_tracks_log_plus_output(self):
        capacity = 16
        n = 8192
        segments = fan(n, seed=1)
        dev, pager, tree = build(segments, capacity, fanout=2)
        log_term = math.log2(n / capacity)
        for q in hqueries(segments, 12, selectivity=0.02, seed=2):
            reads, t_out = query_cost(dev, pager, tree, q)
            budget = 4 * log_term + 4 * (t_out / capacity) + 6
            assert reads <= budget, (reads, budget, t_out)

    def test_output_term_is_blocked(self):
        """A query reporting k*B segments must not cost ~k*B I/Os."""
        capacity = 32
        segments = fan(4096, seed=3)
        dev, pager, tree = build(segments, capacity, fanout=2)
        q = HQuery.line(0)  # reports everything
        reads, t_out = query_cost(dev, pager, tree, q)
        assert t_out == 4096
        assert reads <= 4 * (t_out / capacity)

    def test_io_grows_logarithmically_with_n(self):
        capacity = 16
        costs = []
        for n in (1024, 4096, 16384):
            segments = fan(n, seed=4)
            dev, pager, tree = build(segments, capacity, fanout=2)
            qs = hqueries(segments, 8, selectivity=0.001, seed=5)
            total = 0
            for q in qs:
                reads, _t = query_cost(dev, pager, tree, q)
                total += reads
            costs.append(total / len(qs))
        # Quadrupling n adds ~2 levels: the increase must be additive and
        # small, nothing like the 4x of a linear scan.
        assert costs[1] - costs[0] <= 14
        assert costs[2] - costs[1] <= 14
        assert costs[2] <= costs[0] + 30


class TestBlockedPSTCosts:
    def test_blocked_beats_binary_on_point_queries(self):
        capacity = 64
        n = 16384
        segments = fan(n, seed=6)
        dev_b, pager_b, binary = build(segments, capacity, fanout=2)
        dev_k, pager_k, blocked = build(segments, capacity, fanout=capacity // 4)
        qs = hqueries(segments, 10, selectivity=0.0005, seed=7)
        cost_binary = sum(query_cost(dev_b, pager_b, binary, q)[0] for q in qs)
        cost_blocked = sum(query_cost(dev_k, pager_k, blocked, q)[0] for q in qs)
        assert cost_blocked < cost_binary

    def test_blocked_io_near_height(self):
        capacity = 64
        segments = fan(16384, seed=8)
        dev, pager, tree = build(segments, capacity, fanout=capacity // 4)
        for q in hqueries(segments, 10, selectivity=0.0005, seed=9):
            reads, t_out = query_cost(dev, pager, tree, q)
            # height <= 3; two pages per node; small straddle factor.
            assert reads <= 8 * tree.height() + 4 * (t_out / capacity) + 4


class TestFindCosts:
    def test_find_is_logarithmic(self):
        capacity = 16
        n = 8192
        segments = fan(n, seed=10)
        dev, pager, tree = build(segments, capacity, fanout=2)
        log_term = math.log2(n / capacity)
        for q in hqueries(segments, 10, selectivity=0.2, seed=11):
            with pager.operation():
                with Measurement(dev) as m:
                    tree.find_leftmost(q)
            # Find never pays the output term.
            assert m.stats.reads <= 5 * log_term + 6, m.stats.reads
