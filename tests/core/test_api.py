"""Tests for the SegmentDatabase facade."""


import pytest

from repro import (
    CrossingError,
    Point,
    Segment,
    SegmentDatabase,
    VerticalQuery,
    vs_intersects,
)
from repro.workloads import grid_segments, mixed_queries


def oracle(segments, q):
    return sorted((s.label for s in segments if vs_intersects(s, q)), key=str)


class TestFacade:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            SegmentDatabase(engine="btree")

    def test_all_engines_agree(self):
        segments = grid_segments(150, seed=1)
        queries = mixed_queries(segments, 12, seed=2)
        dbs = [
            SegmentDatabase.bulk_load(segments, engine=e, block_capacity=16)
            for e in ("solution1", "solution2", "scan", "stab-filter", "grid", "rtree")
        ]
        for q in queries:
            answers = [sorted((s.label for s in db.query(q)), key=str) for db in dbs]
            assert all(a == answers[0] for a in answers), q

    def test_bulk_load_validates_nct(self):
        crossing = [
            Segment.from_coords(0, 0, 2, 2, label="a"),
            Segment.from_coords(0, 2, 2, 0, label="b"),
        ]
        with pytest.raises(CrossingError):
            SegmentDatabase.bulk_load(crossing, validate=True)

    def test_validated_insert_rejects_crossing(self):
        db = SegmentDatabase.bulk_load(
            [Segment.from_coords(0, 0, 4, 4, label="a")],
            engine="solution1",
            validate=True,
        )
        with pytest.raises(ValueError):
            db.insert(Segment.from_coords(0, 4, 4, 0, label="b"))

    def test_io_stats_reset_after_build(self):
        segments = grid_segments(100, seed=3)
        db = SegmentDatabase.bulk_load(segments, block_capacity=16)
        assert db.io_stats().total == 0  # build cost excluded from stats
        db.query(VerticalQuery.line(50))
        assert db.io_stats().reads > 0
        db.reset_io_stats()
        assert db.io_stats().total == 0

    def test_space_in_blocks(self):
        segments = grid_segments(200, seed=4)
        db = SegmentDatabase.bulk_load(segments, block_capacity=16)
        assert db.space_in_blocks() > 0

    def test_stab_shortcut(self):
        segments = grid_segments(80, seed=5)
        db = SegmentDatabase.bulk_load(segments, block_capacity=16)
        q = VerticalQuery.line(150)
        assert sorted((s.label for s in db.stab(150)), key=str) == oracle(segments, q)

    def test_len_and_all_segments(self):
        segments = grid_segments(60, seed=6)
        for engine in ("solution1", "solution2", "scan", "stab-filter", "grid", "rtree"):
            db = SegmentDatabase.bulk_load(segments, engine=engine, block_capacity=16)
            assert len(db) == 60
            assert sorted(s.label for s in db.all_segments()) == sorted(
                s.label for s in segments
            )

    def test_delete_on_solution1(self):
        segments = grid_segments(50, seed=7)
        db = SegmentDatabase.bulk_load(segments, engine="solution1", block_capacity=16)
        assert db.delete(segments[0])
        assert len(db) == 49

    def test_delete_on_solution2_raises(self):
        segments = grid_segments(20, seed=8)
        db = SegmentDatabase.bulk_load(segments, engine="solution2", block_capacity=16)
        with pytest.raises(NotImplementedError):
            db.delete(segments[0])

    def test_buffer_pool_reduces_io(self):
        segments = grid_segments(1000, seed=9)
        queries = mixed_queries(segments, 10, seed=10)
        cold = SegmentDatabase.bulk_load(segments, block_capacity=16)
        warm = SegmentDatabase.bulk_load(segments, block_capacity=16, buffer_pages=256)
        for q in queries:
            cold.query(q)
            warm.query(q)
        assert warm.io_stats().reads < cold.io_stats().reads

    def test_insert_each_engine(self):
        extra = Segment.from_coords(-50, -50, -40, -45, label="x")
        for engine in ("solution1", "solution2", "scan", "stab-filter", "grid", "rtree"):
            db = SegmentDatabase.bulk_load(
                grid_segments(40, seed=11), engine=engine, block_capacity=16
            )
            db.insert(extra)
            assert len(db) == 41
            q = VerticalQuery.segment(-45, -50, -40)
            assert "x" in {s.label for s in db.query(q)}


class TestDirectedQueries:
    def test_slope_one_queries(self):
        # Data: NCT segments; queries with angular coefficient 1.
        data = [
            Segment.from_coords(0, 2, 4, 0, label="hit"),
            Segment.from_coords(0, 5, 4, 6, label="miss"),
            Segment.from_coords(2, 1, 2, 3, label="touch"),
        ]
        db = SegmentDatabase.with_direction(data, slope=1, block_capacity=16)
        got = sorted(
            s.label for s in db.query_through(Point(1, 0), Point(3, 2))
        )
        assert got == ["hit", "touch"]

    def test_reported_segments_are_original_frame(self):
        data = [Segment.from_coords(0, 2, 4, 0, label="hit")]
        db = SegmentDatabase.with_direction(data, slope=1, block_capacity=16)
        (hit,) = db.query_through(Point(1, 0), Point(3, 2))
        assert hit == data[0]

    def test_horizontal_direction(self):
        data = [
            Segment.from_coords(1, 0, 1, 10, label="v1"),
            Segment.from_coords(5, -5, 5, 3, label="v2"),
            Segment.from_coords(7, 4, 9, 8, label="d"),
        ]
        db = SegmentDatabase.with_direction(data, slope=0, block_capacity=16)
        # Horizontal line y = 2 crosses v1 and v2.
        got = sorted(s.label for s in db.query_through(Point(0, 2)))
        assert got == ["v1", "v2"]

    def test_directed_insert(self):
        db = SegmentDatabase.with_direction([], slope=1, block_capacity=16)
        db.insert(Segment.from_coords(0, 2, 4, 0, label="late"))
        assert len(db) == 1
        got = db.query_through(Point(1, 0), Point(3, 2))
        assert [s.label for s in got] == ["late"]

    def test_wrong_slope_rejected(self):
        db = SegmentDatabase.with_direction([], slope=1, block_capacity=16)
        with pytest.raises(ValueError):
            db.query_through(Point(0, 0), Point(1, 5))
