"""Regression: an empty batch must cost nothing.

``query_batch([])`` used to enter the engine's pager operation (ticking
dedupe scopes and, on a faulty device, the journal) even though there was
no work; in a serving loop that polls with possibly-empty batches this
charged I/O for silence.  Both batch entry points now return before
touching the pager.
"""

import pytest

from repro import ENGINES, SegmentDatabase
from repro.workloads import grid_segments


@pytest.fixture(scope="module")
def segments():
    return grid_segments(120, seed=17)


@pytest.mark.parametrize("engine", ENGINES)
def test_empty_query_batch_charges_nothing(segments, engine):
    db = SegmentDatabase.bulk_load(segments, engine=engine,
                                   block_capacity=16)
    db.reset_io_stats()
    assert db.query_batch([]) == []
    assert db.io_stats().total == 0, f"{engine} charged I/O for no queries"


@pytest.mark.parametrize("engine", ("solution1", "solution2"))
def test_empty_explain_batch_is_all_zero(segments, engine):
    db = SegmentDatabase.bulk_load(segments, engine=engine,
                                   block_capacity=16)
    db.reset_io_stats()
    report = db.explain_batch([])
    assert report.results == 0
    assert report.io.total == 0
    assert db.io_stats().total == 0
    assert "batch of 0 queries" in report.description


def test_empty_batch_skips_pager_operation(segments):
    """The early return must not open a pager operation at all: operation
    scopes reset read-dedup state, so an empty batch inside a caller's
    operation would silently change the caller's dedupe accounting."""
    db = SegmentDatabase.bulk_load(segments, engine="solution2",
                                   block_capacity=16)
    depth_seen = []
    original = db.pager.operation

    def spying_operation(*args, **kwargs):
        depth_seen.append(True)
        return original(*args, **kwargs)

    db.pager.operation = spying_operation
    try:
        db.query_batch([])
        db.explain_batch([])
    finally:
        db.pager.operation = original
    assert not depth_seen, "empty batch entered a pager operation"


def test_empty_batch_with_metrics_registry(segments):
    """Metrics attached: the empty batch still answers [] without I/O."""
    db = SegmentDatabase.bulk_load(segments, engine="solution2",
                                   block_capacity=16)
    db.enable_metrics()
    db.reset_io_stats()
    assert db.query_batch([]) == []
    assert db.io_stats().total == 0
