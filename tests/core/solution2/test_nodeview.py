"""Record-chain encoding of Solution 2's first-level nodes."""

from repro.core.solution2.index import _NodeView


def roundtrip(view_setup):
    view = _NodeView(0, [])
    view_setup(view)
    decoded = _NodeView(0, view.records())
    return view, decoded


def test_full_roundtrip():
    def setup(v):
        v.boundaries = [10, 20, 30]
        v.children = [100, 101, 102, 103]
        v.c_roots = [None, 7, None]
        v.l_metas = [("m", i) for i in range(3)]
        v.r_metas = [("r", i) for i in range(3)]
        v.g_pid = 55

    view, decoded = roundtrip(setup)
    assert decoded.boundaries == view.boundaries
    assert decoded.children == view.children
    assert decoded.c_roots == view.c_roots
    assert decoded.l_metas == view.l_metas
    assert decoded.r_metas == view.r_metas
    assert decoded.g_pid == view.g_pid


def test_no_g_roundtrip():
    def setup(v):
        v.boundaries = [5]
        v.children = [1, 2]
        v.c_roots = [None]
        v.l_metas = [("m", 0)]
        v.r_metas = [("r", 0)]
        v.g_pid = None

    _view, decoded = roundtrip(setup)
    assert decoded.g_pid is None
    assert len(decoded.children) == 2


def test_records_are_order_insensitive_per_kind():
    # The decoder appends per kind in record order; kinds may interleave.
    records = [
        ("child", 0, 100),
        ("bound", 0, 10),
        ("g", None, None),
        ("lmeta", 0, ("m", 0)),
        ("child", 1, 101),
        ("rmeta", 0, ("r", 0)),
        ("c", 0, None),
    ]
    view = _NodeView(9, records)
    assert view.boundaries == [10]
    assert view.children == [100, 101]
    assert view.g_pid is None
