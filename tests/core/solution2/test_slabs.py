"""Tests for slab arithmetic and fragment splitting (paper Figures 5–6)."""

from fractions import Fraction

from repro.core.solution2 import (
    boundary_index,
    choose_boundaries,
    slab_of,
    split_segment,
)
from repro.geometry import Segment

BOUNDS = [10, 20, 30, 40]


def seg(x1, y1, x2, y2, label="s"):
    return Segment.from_coords(x1, y1, x2, y2, label=label)


class TestSlabArithmetic:
    def test_slab_of(self):
        assert slab_of(BOUNDS, 5) == 0
        assert slab_of(BOUNDS, 10) == 1  # boundary belongs to the right slab
        assert slab_of(BOUNDS, 15) == 1
        assert slab_of(BOUNDS, 40) == 4
        assert slab_of(BOUNDS, 99) == 4

    def test_boundary_index(self):
        assert boundary_index(BOUNDS, 10) == 1
        assert boundary_index(BOUNDS, 40) == 4
        assert boundary_index(BOUNDS, 15) is None

    def test_choose_boundaries_distinct(self):
        segments = [seg(i, 0, i + 1, 1, label=i) for i in range(50)]
        bounds = choose_boundaries(segments, 4)
        assert bounds == sorted(set(bounds))
        assert len(bounds) <= 4


class TestSplitting:
    def test_spanning_segment_figure6(self):
        # Spans slabs completely: one long fragment + two short ones.
        s = seg(5, 0, 45, 40)
        split = split_segment(BOUNDS, s)
        assert split.on_line is None
        i, left = split.left_short
        assert i == 1
        assert left.h1 == 5  # 10 - 5
        j, right = split.right_short
        assert j == 4
        assert right.h1 == 5  # 45 - 40
        a, c, frag = split.long
        assert (a, c) == (1, 4)
        assert frag.x_left == 10 and frag.x_right == 40
        assert frag.y_at(10) == Fraction(5)
        assert frag.payload is s

    def test_one_boundary_only_two_shorts(self):
        s = seg(15, 0, 25, 10)
        split = split_segment(BOUNDS, s)
        assert split.long is None
        assert split.left_short[0] == 2
        assert split.right_short[0] == 2

    def test_no_boundary_returns_none(self):
        assert split_segment(BOUNDS, seg(11, 0, 19, 5)) is None

    def test_endpoint_on_boundary_no_left_short(self):
        s = seg(10, 0, 35, 25)
        split = split_segment(BOUNDS, s)
        assert split.left_short is None
        assert split.long[0] == 1 and split.long[1] == 3
        assert split.right_short[0] == 3

    def test_endpoint_on_boundary_no_right_short(self):
        s = seg(5, 0, 30, 25)
        split = split_segment(BOUNDS, s)
        assert split.right_short is None
        assert split.left_short[0] == 1
        assert split.long == (1, 3, split.long[2])

    def test_touching_single_boundary_from_left(self):
        s = seg(5, 0, 10, 5)
        split = split_segment(BOUNDS, s)
        assert split.long is None and split.right_short is None
        assert split.left_short[0] == 1

    def test_vertical_on_boundary(self):
        s = seg(20, 3, 20, 9)
        split = split_segment(BOUNDS, s)
        assert split.on_line == (2, (3, 9))
        assert split.left_short is None and split.right_short is None

    def test_vertical_off_boundary(self):
        assert split_segment(BOUNDS, seg(21, 3, 21, 9)) is None

    def test_fragment_count_bound(self):
        # At most 1 long + 2 short fragments per segment (paper's bound).
        for s in [seg(5, 0, 45, 1), seg(12, 0, 38, 1), seg(10, 0, 40, 1)]:
            split = split_segment(BOUNDS, s)
            pieces = sum(
                1
                for p in (split.left_short, split.right_short, split.long)
                if p is not None
            )
            assert pieces <= 3

    def test_fragments_tile_the_segment(self):
        s = seg(5, 0, 45, 40)
        split = split_segment(BOUNDS, s)
        # left short covers [5,10]; long [10,40]; right short [40,45].
        _i, left = split.left_short
        _j, right = split.right_short
        _a, _c, frag = split.long
        assert left.h1 == 5
        assert frag.x_left == 10 and frag.x_right == 40
        assert right.h1 == 5
        # The cut ordinates agree with the original segment.
        assert frag.y_at(10) == s.y_at(10)
        assert frag.y_at(40) == s.y_at(40)
