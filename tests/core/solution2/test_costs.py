"""Theorem 2 costs, measured: O(n log2 B) space; polylog query I/O."""

import math

from repro.core.solution1 import TwoLevelBinaryIndex
from repro.core.solution2 import TwoLevelIntervalIndex
from repro.geometry import Segment
from repro.iosim import BlockDevice, Measurement, Pager
from repro.workloads import grid_segments, segment_queries


def build(segments, capacity=32, fanout=None):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    index = TwoLevelIntervalIndex.build(pager, segments, fanout=fanout)
    return dev, pager, index


class TestSpace:
    def test_space_n_log_b(self):
        capacity = 32
        n = 4000
        segments = grid_segments(n, seed=1)
        dev, _p, _index = build(segments, capacity=capacity)
        n_blocks = n / capacity
        budget = 16 * n_blocks * math.log2(capacity)
        assert dev.pages_in_use <= budget, (dev.pages_in_use, budget)

    def test_space_scales_linearly_in_n(self):
        capacity = 32
        pages = []
        for n in (1500, 3000, 6000):
            segments = grid_segments(n, seed=2)
            dev, _p, _i = build(segments, capacity=capacity)
            pages.append(dev.pages_in_use)
        assert pages[1] / pages[0] < 2.8
        assert pages[2] / pages[1] < 2.8


class TestQueryCost:
    def test_query_io_budget(self):
        capacity = 32
        n = 8192
        segments = grid_segments(n, seed=3)
        dev, pager, index = build(segments, capacity=capacity)
        n_blocks = n / capacity
        level_cost = (
            math.log(n_blocks, capacity) + math.log2(capacity)
        )
        levels = index.height()
        for q in segment_queries(segments, 10, selectivity=0.01, seed=4):
            with Measurement(dev) as m:
                result = index.query(q)
            budget = 10 * levels * level_cost + 8 * (len(result) / capacity) + 20
            assert m.stats.reads <= budget, (m.stats.reads, budget, len(result))

    def test_beats_solution1_at_scale(self):
        """Theorem 2's point: replacing the binary first level by the
        interval tree removes a log factor from queries."""
        capacity = 64
        n = 16384
        segments = grid_segments(n, seed=5)
        dev2, pager2, sol2 = build(segments, capacity=capacity)
        dev1 = BlockDevice(block_capacity=capacity)
        sol1 = TwoLevelBinaryIndex.build(Pager(dev1), segments)
        queries = segment_queries(segments, 10, selectivity=0.002, seed=6)
        cost1 = cost2 = 0
        for q in queries:
            with Measurement(dev1) as m1:
                sol1.query(q)
            cost1 += m1.stats.reads
            with Measurement(dev2) as m2:
                sol2.query(q)
            cost2 += m2.stats.reads
        assert cost2 < cost1, (cost2, cost1)

    def test_growth_is_sublinear(self):
        capacity = 32
        means = []
        for n in (2048, 8192):
            segments = grid_segments(n, seed=7)
            dev, pager, index = build(segments, capacity=capacity)
            qs = segment_queries(segments, 8, selectivity=0.002, seed=8)
            total = 0
            for q in qs:
                with Measurement(dev) as m:
                    index.query(q)
                total += m.stats.reads
            means.append(total / len(qs))
        # 4x data must not cost anywhere near 4x I/O.
        assert means[1] / means[0] < 2.2, means


class TestCascadeAblation:
    def test_bridges_cheaper_on_long_heavy_workload(self):
        import random

        capacity = 64  # b = 16: a deep G with multi-level allocations
        rng = random.Random(42)
        wide = []
        for i in range(4000):
            left = rng.randrange(0, 60000)
            right = left + rng.randrange(10000, 40000)
            wide.append(
                Segment.from_coords(left, 10 * i, right, 10 * i + 3, label=("w", i))
            )
        dev, pager, index = build(wide, capacity=capacity)
        queries = segment_queries(wide, 12, selectivity=0.01, seed=9)
        with_b = without = 0
        for q in queries:
            with Measurement(dev) as m:
                index.query(q, use_bridges=True)
            with_b += m.stats.reads
            with Measurement(dev) as m:
                index.query(q, use_bridges=False)
            without += m.stats.reads
        assert with_b < without, (with_b, without)
