"""Semi-dynamic insertions on Solution 2 (Section 4.3, Theorem 2 iii)."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solution2 import TwoLevelIntervalIndex
from repro.geometry import Segment, VerticalQuery, vs_intersects
from repro.iosim import BlockDevice, Measurement, Pager
from repro.workloads import grid_segments, mixed_queries


def build(segments, capacity=16, fanout=None):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    index = TwoLevelIntervalIndex.build(pager, segments, fanout=fanout)
    return dev, pager, index


def oracle(segments, q):
    return sorted((s.label for s in segments if vs_intersects(s, q)), key=str)


class TestInsert:
    def test_insert_into_empty(self):
        _d, _p, index = build([])
        s = Segment.from_coords(0, 0, 5, 5, label="s")
        index.insert(s)
        assert [x.label for x in index.query(VerticalQuery.line(2))] == ["s"]

    def test_incremental_build_matches_bulk(self):
        segments = grid_segments(200, seed=1)
        _d, _p, incremental = build([])
        for s in segments:
            incremental.insert(s)
        incremental.check_invariants()
        _d2, _p2, bulk = build(segments)
        for q in mixed_queries(segments, 20, seed=2):
            assert sorted(
                (s.label for s in incremental.query(q)), key=str
            ) == sorted((s.label for s in bulk.query(q)), key=str)

    def test_insert_wide_segments_into_g(self):
        segments = grid_segments(300, seed=3)
        _d, _p, index = build(segments, capacity=16)
        wide = []
        for i in range(40):
            s = Segment.from_coords(0, -10 * (i + 1), 5000, -10 * (i + 1) + 5,
                                    label=("wide", i))
            index.insert(s)
            wide.append(s)
        index.check_invariants()
        everything = segments + wide
        for q in mixed_queries(everything, 20, selectivity=0.05, seed=4):
            assert sorted((s.label for s in index.query(q)), key=str) == oracle(
                everything, q
            ), q

    def test_insert_vertical_on_boundary(self):
        segments = grid_segments(300, seed=5)
        _d, _p, index = build(segments, capacity=16)
        view = index._read_view(index.root_pid)
        s_i = view.boundaries[0]
        v = Segment.from_coords(s_i, -500, s_i, -400, label="v")
        index.insert(v)
        q = VerticalQuery.segment(s_i, -450, -440)
        assert [s.label for s in index.query(q)] == ["v"]
        index.check_invariants()

    def test_insert_io_cost(self):
        capacity = 32
        segments = grid_segments(8192, seed=6)
        dev, pager, index = build(segments, capacity=capacity)
        rng = random.Random(7)
        costs = []
        for i in range(64):
            x = rng.randrange(0, 9000)
            y = -(10 + i)
            s = Segment.from_coords(x, y, x + rng.randrange(1, 2000), y,
                                    label=("ins", i))
            with Measurement(dev) as m:
                index.insert(s)
            costs.append(m.stats.total)
        costs.sort()
        median = costs[len(costs) // 2]
        n_blocks = 8192 / capacity
        # log_B n + log2 B plus constants; the median avoids rebuild spikes.
        budget = 10 * (math.log(n_blocks, capacity) + math.log2(capacity)) + 60
        assert median <= budget, (median, budget)

    def test_weight_tracking(self):
        segments = grid_segments(100, seed=8)
        _d, _p, index = build(segments, capacity=16)
        for i in range(30):
            index.insert(
                Segment.from_coords(9 * i, -7, 9 * i + 4, -7, label=("w", i))
            )
        index.check_invariants()
        assert len(index) == 130


@given(
    st.integers(0, 10**6),
    st.integers(1, 40),
)
@settings(max_examples=40, deadline=None)
def test_incremental_always_matches_oracle(seed, n_insert):
    pool = grid_segments(60, cell_size=20, seed=seed)
    base, extra = pool[:20], pool[20 : 20 + n_insert]
    _d, _p, index = build(base, capacity=16, fanout=3)
    for s in extra:
        index.insert(s)
    live = base + extra
    index.check_invariants()
    for q in (VerticalQuery.line(35), VerticalQuery.segment(50, 10, 90)):
        assert sorted((s.label for s in index.query(q)), key=str) == oracle(live, q)
