"""Correctness of Solution 2 against the brute-force oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solution2 import TwoLevelIntervalIndex
from repro.geometry import Segment, VerticalQuery, vs_intersects
from repro.iosim import BlockDevice, Pager
from repro.workloads import (
    grid_segments,
    grid_segments_touching,
    mixed_queries,
    monotone_polylines,
    stabbing_queries,
    version_history,
)


def build(segments, capacity=16, fanout=None, blocked=True):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    index = TwoLevelIntervalIndex.build(pager, segments, fanout=fanout, blocked=blocked)
    return dev, pager, index


def oracle(segments, q):
    return sorted(s.label for s in segments if vs_intersects(s, q))


class TestQueries:
    def test_empty(self):
        _d, _p, index = build([])
        assert index.query(VerticalQuery.line(0)) == []

    def test_leaf_only(self):
        segments = grid_segments(10, seed=1)
        _d, _p, index = build(segments)
        for q in mixed_queries(segments, 9, seed=2):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q)

    def test_grid_workload(self):
        segments = grid_segments(400, seed=3)
        _d, _p, index = build(segments, capacity=16)
        for q in mixed_queries(segments, 30, selectivity=0.05, seed=4):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q), q

    def test_touching_workload(self):
        segments = grid_segments_touching(350, seed=5)
        _d, _p, index = build(segments, capacity=16)
        for q in mixed_queries(segments, 30, selectivity=0.05, seed=6):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q), q

    def test_polyline_workload(self):
        segments = monotone_polylines(8, points_per_line=40, seed=7)
        _d, _p, index = build(segments, capacity=16)
        for q in mixed_queries(segments, 30, selectivity=0.1, seed=8):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q), q

    def test_temporal_workload(self):
        segments = version_history(10, versions_per_key=30, seed=9)
        _d, _p, index = build(segments, capacity=16)
        for q in mixed_queries(segments, 30, selectivity=0.05, seed=10):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q), q

    def test_queries_on_slab_boundaries(self):
        segments = grid_segments(300, seed=11)
        _d, pager, index = build(segments, capacity=16)
        view = index._read_view(index.root_pid)
        for s_i in view.boundaries:
            for q in (
                VerticalQuery.line(s_i),
                VerticalQuery.segment(s_i, 0, 4000),
                VerticalQuery.ray_up(s_i, ylo=500),
            ):
                assert sorted(s.label for s in index.query(q)) == oracle(segments, q), q

    def test_long_fragment_retrieval(self):
        # Wide segments crossing many slabs exercise G specifically.
        wide = [
            Segment.from_coords(0, 10 * i, 5000, 10 * i + 5, label=("w", i))
            for i in range(64)
        ]
        narrow = grid_segments(100, seed=12)
        segments = wide + narrow
        _d, _p, index = build(segments, capacity=16)
        for q in mixed_queries(segments, 25, selectivity=0.1, seed=13):
            assert sorted((s.label for s in index.query(q)), key=str) == sorted(
                oracle(segments, q), key=str
            ), q

    def test_no_duplicates(self):
        segments = grid_segments_touching(200, seed=14)
        _d, _p, index = build(segments, capacity=16)
        for q in stabbing_queries(segments, 20, seed=15):
            got = [s.label for s in index.query(q)]
            assert len(got) == len(set(got))

    def test_ablation_matches(self):
        segments = grid_segments(300, seed=16)
        _d, _p, index = build(segments, capacity=16)
        for q in mixed_queries(segments, 15, seed=17):
            fast = sorted(s.label for s in index.query(q, use_bridges=True))
            slow = sorted(s.label for s in index.query(q, use_bridges=False))
            assert fast == slow

    def test_matches_solution1(self):
        from repro.core.solution1 import TwoLevelBinaryIndex

        segments = version_history(6, versions_per_key=25, seed=18)
        _d1, _p1, sol2 = build(segments, capacity=16)
        dev = BlockDevice(block_capacity=16)
        sol1 = TwoLevelBinaryIndex.build(Pager(dev), segments)
        for q in mixed_queries(segments, 20, seed=19):
            assert sorted(s.label for s in sol2.query(q)) == sorted(
                s.label for s in sol1.query(q)
            )

    def test_invariants_after_build(self):
        segments = grid_segments_touching(250, seed=20)
        _d, _p, index = build(segments, capacity=16)
        index.check_invariants()

    def test_all_segments_roundtrip(self):
        segments = grid_segments(150, seed=21)
        _d, _p, index = build(segments, capacity=16)
        assert sorted(s.label for s in index.all_segments()) == sorted(
            s.label for s in segments
        )

    def test_height_shorter_than_solution1(self):
        from repro.core.solution1 import TwoLevelBinaryIndex

        segments = grid_segments(2000, seed=22)
        _d, _p, sol2 = build(segments, capacity=64)
        dev = BlockDevice(block_capacity=64)
        sol1 = TwoLevelBinaryIndex.build(Pager(dev), segments)
        assert sol2.height() < sol1.height()

    def test_delete_not_supported(self):
        segments = grid_segments(20, seed=23)
        _d, _p, index = build(segments)
        try:
            index.delete(segments[0])
            assert False
        except NotImplementedError:
            pass


@st.composite
def segments_and_query(draw):
    kind = draw(st.sampled_from(["grid", "touch", "temporal"]))
    seed = draw(st.integers(0, 10**6))
    n = draw(st.integers(3, 70))
    if kind == "grid":
        segments = grid_segments(n, cell_size=20, seed=seed)
    elif kind == "touch":
        segments = grid_segments_touching(n, cell_size=20, seed=seed)
    else:
        segments = version_history(max(1, n // 10), versions_per_key=10, seed=seed)
    xmin = min(s.xmin for s in segments)
    xmax = max(s.xmax for s in segments)
    ymin = min(s.ymin for s in segments)
    ymax = max(s.ymax for s in segments)
    x0 = draw(st.integers(int(xmin) - 2, int(xmax) + 2))
    y1 = draw(st.integers(int(ymin) - 2, int(ymax) + 2))
    dy = draw(st.integers(0, int(ymax - ymin) + 4))
    return segments, VerticalQuery.segment(x0, y1, y1 + dy)


@given(segments_and_query())
@settings(max_examples=120, deadline=None)
def test_solution2_matches_oracle_property(case):
    segments, q = case
    _d, _p, index = build(segments, capacity=16, fanout=3)
    assert sorted((s.label for s in index.query(q)), key=str) == sorted(
        oracle(segments, q), key=str
    )
