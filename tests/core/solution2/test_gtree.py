"""Unit tests for the segment tree G with fractional cascading."""

import random

from repro.core.solution2.gtree import GTree
from repro.core.solution2.slabs import LongFragment
from repro.geometry import Segment
from repro.iosim import BlockDevice, Measurement, Pager


def make_fragment(boundaries, i, j, y_at_si, y_at_sj, label):
    """A long fragment spanning boundaries i..j (1-based)."""
    s_i, s_j = boundaries[i - 1], boundaries[j - 1]
    payload = Segment.from_coords(s_i, y_at_si, s_j, y_at_sj, label=label)
    return (i, j, LongFragment(s_i, s_j, y_at_si, y_at_sj, payload))


def build(boundaries, fragments, capacity=8):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    tree = GTree.build(pager, boundaries, fragments)
    return dev, pager, tree


def brute(fragments, x0, ylo, yhi):
    out = set()
    for _i, _j, frag in fragments:
        if frag.x_left <= x0 <= frag.x_right:
            y = frag.y_at(x0)
            if (ylo is None or y >= ylo) and (yhi is None or y <= yhi):
                out.add(frag.payload.label)
    return sorted(out, key=str)


def random_fragments(boundaries, n, seed, y_spread=1000):
    """Non-crossing horizontal-ish fragments at distinct integer heights."""
    rng = random.Random(seed)
    b = len(boundaries)
    heights = rng.sample(range(-y_spread, y_spread), n)
    fragments = []
    for idx, y in enumerate(sorted(heights)):
        i = rng.randint(1, b - 1)
        j = rng.randint(i + 1, b)
        fragments.append(make_fragment(boundaries, i, j, y, y, ("f", idx)))
    return fragments


BOUNDARIES = [0, 10, 20, 30, 40, 50, 60, 70]


class TestBuild:
    def test_no_inner_slabs(self):
        dev = BlockDevice(block_capacity=8)
        assert GTree.build(Pager(dev), [5], []) is None

    def test_empty_g(self):
        _d, _p, g = build(BOUNDARIES, [])
        assert g.query(35, None, None) == []
        g.check_invariants()

    def test_allocation_count_logarithmic(self):
        # A fragment spanning everything allocates at O(log b) nodes, and
        # each stored copy is cut to its allocation node's multislab.
        frag = make_fragment(BOUNDARIES, 1, 8, 5, 5, "wide")
        _d, _p, g = build(BOUNDARIES, [frag])
        g.check_invariants()
        stored = g.real_fragments()
        assert 1 <= len(stored) <= 2 * 3  # 2 per level of a 7-leaf tree
        # The stored pieces tile [s_1, s_8] without overlap.
        spans = sorted((f.x_left, f.x_right) for f in stored)
        assert spans[0][0] == 0 and spans[-1][1] == 70
        for (l1, r1), (l2, r2) in zip(spans, spans[1:]):
            assert r1 == l2

    def test_query_single_fragment(self):
        frag = make_fragment(BOUNDARIES, 2, 5, 100, 200, "f")
        _d, _p, g = build(BOUNDARIES, [frag])
        hits = g.query(25, None, None)
        assert [h.payload.label for h in hits] == ["f"]
        assert g.query(25, 0, 100) == []  # y at 25 is 150
        hits = g.query(25, 145, 155)
        assert [h.payload.label for h in hits] == ["f"]

    def test_query_outside_inner_range(self):
        frag = make_fragment(BOUNDARIES, 1, 8, 5, 5, "wide")
        _d, _p, g = build(BOUNDARIES, [frag])
        assert g.query(-5, None, None) == []
        assert g.query(75, None, None) == []

    def test_query_on_boundary_catches_enders(self):
        # One fragment ends at s_4=30, another starts there.
        ender = make_fragment(BOUNDARIES, 2, 4, 0, 0, "ender")
        starter = make_fragment(BOUNDARIES, 4, 6, 10, 10, "starter")
        _d, _p, g = build(BOUNDARIES, [ender, starter])
        got = sorted(h.payload.label for h in g.query(30, None, None))
        assert got == ["ender", "starter"]

    def test_no_duplicates_on_boundary(self):
        crosser = make_fragment(BOUNDARIES, 2, 6, 0, 0, "crosser")
        _d, _p, g = build(BOUNDARIES, [crosser])
        got = [h.payload.label for h in g.query(30, None, None)]
        assert got == ["crosser"]


class TestQueriesRandom:
    def test_matches_bruteforce(self):
        fragments = random_fragments(BOUNDARIES, 60, seed=1)
        _d, _p, g = build(BOUNDARIES, fragments)
        g.check_invariants()
        rng = random.Random(2)
        for _ in range(40):
            x0 = rng.randint(0, 70)
            ylo = rng.randint(-1100, 1000)
            yhi = ylo + rng.randint(0, 800)
            got = sorted(
                (h.payload.label for h in g.query(x0, ylo, yhi)), key=str
            )
            assert got == brute(fragments, x0, ylo, yhi), (x0, ylo, yhi)

    def test_unbounded_windows(self):
        fragments = random_fragments(BOUNDARIES, 40, seed=3)
        _d, _p, g = build(BOUNDARIES, fragments)
        for x0 in (0, 15, 30, 55, 70):
            for ylo, yhi in [(None, None), (0, None), (None, 0)]:
                got = sorted(
                    (h.payload.label for h in g.query(x0, ylo, yhi)), key=str
                )
                assert got == brute(fragments, x0, ylo, yhi), (x0, ylo, yhi)

    def test_ablation_same_answers(self):
        fragments = random_fragments(BOUNDARIES, 80, seed=4)
        _d, _p, g = build(BOUNDARIES, fragments)
        rng = random.Random(5)
        for _ in range(25):
            x0 = rng.randint(0, 70)
            ylo = rng.randint(-1100, 900)
            yhi = ylo + rng.randint(0, 600)
            with_b = sorted(
                (h.payload.label for h in g.query(x0, ylo, yhi, use_bridges=True)),
                key=str,
            )
            without = sorted(
                (h.payload.label for h in g.query(x0, ylo, yhi, use_bridges=False)),
                key=str,
            )
            assert with_b == without

    def test_augmented_never_reported(self):
        fragments = random_fragments(BOUNDARIES, 50, seed=6)
        _d, _p, g = build(BOUNDARIES, fragments)
        for x0 in (5, 25, 45, 65):
            for h in g.query(x0, None, None):
                assert not h.augmented


class TestBridges:
    def test_d_property_after_build(self):
        fragments = random_fragments(BOUNDARIES, 100, seed=7)
        _d, _p, g = build(BOUNDARIES, fragments)
        g.check_d_property()

    def test_bridges_reduce_io(self):
        boundaries = list(range(0, 1700, 100))  # 17 boundaries, 16 inner slabs
        fragments = random_fragments(boundaries, 3000, seed=8, y_spread=100000)
        capacity = 32
        dev, pager, g = build(boundaries, fragments, capacity=capacity)
        rng = random.Random(9)
        with_bridges = 0
        without = 0
        for _ in range(20):
            x0 = rng.randint(0, 1600)
            ylo = rng.randint(-100000, 90000)
            yhi = ylo + 2000
            with pager.operation():
                with Measurement(dev) as m:
                    g.query(x0, ylo, yhi, use_bridges=True)
            with_bridges += m.stats.reads
            with pager.operation():
                with Measurement(dev) as m:
                    g.query(x0, ylo, yhi, use_bridges=False)
            without += m.stats.reads
        assert with_bridges < without


class TestInsert:
    def test_insert_then_query(self):
        fragments = random_fragments(BOUNDARIES, 30, seed=10)
        _d, _p, g = build(BOUNDARIES, fragments)
        extra = make_fragment(BOUNDARIES, 1, 8, 5000, 5000, "new")
        g.insert(extra[0], extra[1], extra[2])
        got = [h.payload.label for h in g.query(35, 4999, 5001)]
        assert got == ["new"]
        everything = fragments + [extra]
        got = sorted((h.payload.label for h in g.query(35, None, None)), key=str)
        assert got == brute(everything, 35, None, None)

    def test_many_inserts_trigger_bridge_rebuild(self):
        fragments = random_fragments(BOUNDARIES, 40, seed=11)
        dev, pager, g = build(BOUNDARIES, fragments, capacity=8)
        rng = random.Random(12)
        inserted = []
        for k in range(60):
            y = 2000 + 7 * k
            i = rng.randint(1, 7)
            j = rng.randint(i + 1, 8)
            frag = make_fragment(BOUNDARIES, i, j, y, y, ("n", k))
            g.insert(frag[0], frag[1], frag[2])
            inserted.append(frag)
        g.check_invariants()
        everything = fragments + inserted
        for x0 in (5, 25, 45, 65):
            got = sorted((h.payload.label for h in g.query(x0, None, None)), key=str)
            assert got == brute(everything, x0, None, None), x0

    def test_total_count(self):
        fragments = random_fragments(BOUNDARIES, 25, seed=13)
        _d, _p, g = build(BOUNDARIES, fragments)
        assert g.total_count() == 25


def test_destroy_frees_pages():
    fragments = random_fragments(BOUNDARIES, 50, seed=14)
    dev, _p, g = build(BOUNDARIES, fragments)
    g.destroy()
    assert dev.pages_in_use == 0
