"""Deeper dynamics of the G structure: stale hints, rebuilds, d-property
maintenance under insertion streams."""

import random

from repro.core.solution2.gtree import GTree
from repro.core.solution2.slabs import LongFragment
from repro.geometry import Segment
from repro.iosim import BlockDevice, Measurement, Pager

BOUNDARIES = list(range(0, 900, 100))  # 8 inner slabs


def frag(i, j, y, label):
    s_i, s_j = BOUNDARIES[i - 1], BOUNDARIES[j - 1]
    payload = Segment.from_coords(s_i - 1, y, s_j + 1, y, label=label)
    return (i, j, LongFragment(s_i, s_j, y, y, payload))


def fragments(n, seed, y_spread=10**6):
    rng = random.Random(seed)
    out = []
    for idx, y in enumerate(sorted(rng.sample(range(-y_spread, y_spread), n))):
        a = rng.randint(1, len(BOUNDARIES) - 1)
        c = rng.randint(a + 1, len(BOUNDARIES))
        out.append(frag(a, c, y, ("f", idx)))
    return out


def brute(frags, x0, ylo, yhi):
    hits = set()
    for _i, _j, f in frags:
        if f.x_left <= x0 <= f.x_right:
            y = f.y_at(x0)
            if (ylo is None or y >= ylo) and (yhi is None or y <= yhi):
                hits.add(f.payload.label)
    return sorted(hits, key=str)


def build(frags, capacity=8):
    dev = BlockDevice(capacity)
    pager = Pager(dev)
    g = GTree.build(pager, BOUNDARIES, frags)
    return dev, pager, g


class TestStaleHints:
    def test_queries_correct_between_bridge_rebuilds(self):
        """Insertions shift list positions; bridge hints go stale but the
        self-correcting navigation must keep answers exact."""
        base = fragments(60, seed=1)
        dev, pager, g = build(base)
        rng = random.Random(2)
        live = list(base)
        for k in range(40):
            a = rng.randint(1, len(BOUNDARIES) - 1)
            c = rng.randint(a + 1, len(BOUNDARIES))
            extra = frag(a, c, 2_000_000 + 31 * k, ("n", k))
            g.insert(extra[0], extra[1], extra[2])
            live.append(extra)
            if k % 7 == 0:
                for x0 in (50, 250, 550, 850):
                    ylo = rng.randint(-10**6, 2_100_000)
                    got = sorted(
                        (h.payload.label for h in g.query(x0, ylo, ylo + 10**6)),
                        key=str,
                    )
                    assert got == brute(live, x0, ylo, ylo + 10**6), (k, x0)

    def test_manual_bridge_rebuild_is_idempotent(self):
        base = fragments(50, seed=3)
        _dev, _pager, g = build(base)
        g.rebuild_bridges()
        g.rebuild_bridges()
        g.check_invariants()
        g.check_d_property()
        for x0 in (150, 450, 750):
            got = sorted((h.payload.label for h in g.query(x0, None, None)),
                         key=str)
            assert got == brute(base, x0, None, None)

    def test_d_property_restored_after_insert_burst(self):
        base = fragments(40, seed=4)
        _dev, _pager, g = build(base)
        rng = random.Random(5)
        for k in range(30):
            a = rng.randint(1, len(BOUNDARIES) - 1)
            c = rng.randint(a + 1, len(BOUNDARIES))
            f = frag(a, c, 3_000_000 + 17 * k, ("m", k))
            g.insert(f[0], f[1], f[2])
        g.rebuild_bridges()
        g.check_d_property()


class TestCountersAndSpace:
    def test_total_counter_tracks_inserts(self):
        base = fragments(20, seed=6)
        _dev, _pager, g = build(base)
        assert g.total_count() == 20
        f = frag(1, 8, 5_000_000, "wide")
        g.insert(f[0], f[1], f[2])
        assert g.total_count() == 21

    def test_space_freed_and_rebuilt_on_bridge_refresh(self):
        base = fragments(80, seed=7)
        dev, _pager, g = build(base)
        before = dev.pages_in_use
        g.rebuild_bridges()
        after = dev.pages_in_use
        # Same structure rebuilt: space must not creep upward.
        assert after <= before * 1.3

    def test_query_io_reasonable_after_many_inserts(self):
        base = fragments(100, seed=8)
        dev, pager, g = build(base, capacity=16)
        rng = random.Random(9)
        for k in range(80):
            a = rng.randint(1, len(BOUNDARIES) - 1)
            c = rng.randint(a + 1, len(BOUNDARIES))
            f = frag(a, c, 4_000_000 + 13 * k, ("q", k))
            g.insert(f[0], f[1], f[2])
        with pager.operation():
            with Measurement(dev) as m:
                g.query(450, 0, 100)
        assert m.stats.reads <= 40
