"""Reproduction of the paper's Figure 4: a 7-segment NCT set and its 2LDS.

The figure shows seven NCT segments decomposed by the first-level binary
tree (B = 2): segments intersected by the root's median line live in the
root's C/L/R structures, the rest recurse.  The exact geometry of the
figure is not recoverable from the text, so we use a representative
7-segment instance and assert the structural facts the figure illustrates.
"""

from repro.core.solution1 import TwoLevelBinaryIndex
from repro.geometry import Segment, VerticalQuery, vs_intersects
from repro.iosim import BlockDevice, Pager

# Seven NCT segments: three crossing the median region, two on the left,
# two on the right; one vertical segment sits exactly on a splitting line.
SEGMENTS = [
    Segment.from_coords(0, 8, 3, 9, label=1),       # far left
    Segment.from_coords(1, 2, 2, 4, label=2),       # far left
    Segment.from_coords(4, 5, 9, 6, label=3),       # crosses the middle
    Segment.from_coords(5, 1, 8, 3, label=4),       # crosses the middle
    Segment.from_coords(6, 7, 6, 10, label=5),      # vertical
    Segment.from_coords(10, 2, 12, 8, label=6),     # far right
    Segment.from_coords(11, 9, 12, 10, label=7),    # far right
]


def build():
    dev = BlockDevice(block_capacity=2)
    pager = Pager(dev)
    index = TwoLevelBinaryIndex.build(pager, SEGMENTS, blocked=False)
    return dev, pager, index


def test_first_level_is_a_binary_tree_with_leaf_blocks():
    _dev, pager, index = build()
    kinds = {"node": 0, "leaf": 0}
    stack = [index.root_pid]
    while stack:
        page = pager.fetch(stack.pop())
        kind = page.get_header("kind")
        kinds[kind] += 1
        if kind == "node":
            stack.append(page.get_header("left"))
            stack.append(page.get_header("right"))
        else:
            assert len(page.items) <= 2  # leaves hold at most B segments
    assert kinds["node"] >= 1
    assert kinds["leaf"] >= 2


def test_root_stores_segments_meeting_its_line():
    _dev, pager, index = build()
    root = pager.fetch(index.root_pid)
    assert root.get_header("kind") == "node"
    c = root.get_header("x")
    stored_here = set()
    for _lo, _hi, s in index._c_index(root).items():
        stored_here.add(s.label)
        assert s.is_vertical and s.start.x == c
    for side in ("l", "r"):
        for lb in index._lr_index(root, side).all_segments():
            stored_here.add(lb.payload.label)
            assert lb.payload.spans_x(c)
    # Every stored-at-root segment meets the line; nothing else does.
    for s in SEGMENTS:
        assert (s.label in stored_here) == s.spans_x(c)


def test_children_partition_by_side():
    _dev, pager, index = build()
    root = pager.fetch(index.root_pid)
    c = root.get_header("x")
    index.check_invariants()  # bands are checked recursively there
    for s in SEGMENTS:
        if s.xmax < c:
            side = "left"
        elif s.xmin > c:
            side = "right"
        else:
            continue
        found = _subtree_labels(index, pager, root.get_header(side))
        assert s.label in found


def _subtree_labels(index, pager, pid):
    labels = set()
    stack = [pid]
    while stack:
        page = pager.fetch(stack.pop())
        if page.get_header("kind") == "leaf":
            labels.update(s.label for s in page.items)
            continue
        for _lo, _hi, s in index._c_index(page).items():
            labels.add(s.label)
        for side in ("l", "r"):
            for lb in index._lr_index(page, side).all_segments():
                labels.add(lb.payload.label)
        stack.append(page.get_header("left"))
        stack.append(page.get_header("right"))
    return labels


def test_figure4_queries_are_correct():
    _dev, _pager, index = build()
    for x in range(-1, 14):
        for ylo, yhi in [(0, 11), (2, 5), (7, 10), (5, 5)]:
            q = VerticalQuery.segment(x, ylo, yhi)
            expected = sorted(s.label for s in SEGMENTS if vs_intersects(s, q))
            assert sorted(s.label for s in index.query(q)) == expected, q
