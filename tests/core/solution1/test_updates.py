"""Insertions/deletions on Solution 1 (the BB[α]-maintained first level)."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solution1 import TwoLevelBinaryIndex
from repro.geometry import Segment, VerticalQuery, vs_intersects
from repro.iosim import BlockDevice, Measurement, Pager
from repro.workloads import grid_segments, mixed_queries, segment_queries


def build(segments, capacity=8, blocked=True):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    index = TwoLevelBinaryIndex.build(pager, segments, blocked=blocked)
    return dev, pager, index


def oracle(segments, q):
    return sorted(s.label for s in segments if vs_intersects(s, q))


class TestInsert:
    def test_insert_into_empty(self):
        _d, _p, index = build([])
        s = Segment.from_coords(0, 0, 5, 5, label="s")
        index.insert(s)
        assert [x.label for x in index.query(VerticalQuery.line(2))] == ["s"]

    def test_incremental_build_matches_bulk(self):
        segments = grid_segments(150, seed=1)
        _d, _p, incremental = build([])
        for s in segments:
            incremental.insert(s)
        _d2, _p2, bulk = build(segments)
        incremental.check_invariants()
        for q in mixed_queries(segments, 20, seed=2):
            assert sorted(s.label for s in incremental.query(q)) == sorted(
                s.label for s in bulk.query(q)
            )

    def test_insert_crossing_existing_line(self):
        segments = grid_segments(100, seed=3)
        _d, _p, index = build(segments)
        # A long horizontal segment crossing many base lines lands at the
        # first node whose line it spans.
        xs = sorted(x for s in segments for x in (s.xmin, s.xmax))
        big = Segment.from_coords(xs[0] - 1, -50, xs[-1] + 1, -50, label="big")
        index.insert(big)
        index.check_invariants()
        q = VerticalQuery.segment(xs[len(xs) // 2], -60, -40)
        assert "big" in {s.label for s in index.query(q)}

    def test_insert_io_cost(self):
        capacity = 16
        segments = grid_segments(4096, seed=4)
        dev, pager, index = build(segments, capacity=capacity)
        n_blocks = 4096 / capacity
        budget = 14 * math.log2(n_blocks) + 40
        worst = 0
        rng = random.Random(5)
        for i in range(24):
            x = rng.randrange(0, 6000)
            y = -(10 + i)  # below all data: never crosses anything
            s = Segment.from_coords(x, y, x + 3, y, label=("ins", i))
            with Measurement(dev) as m:
                index.insert(s)
            worst = max(worst, m.stats.total)
        # Amortised: rebuilds may spike a single insertion; the bulk of
        # insertions must stay logarithmic.
        assert worst <= 60 * math.log2(n_blocks) + 200

    def test_weight_tracking(self):
        segments = grid_segments(64, seed=6)
        _d, _p, index = build(segments, capacity=4)
        for i in range(20):
            index.insert(Segment.from_coords(7 * i, -9, 7 * i + 3, -9, label=("w", i)))
        index.check_invariants()
        assert len(index) == 84


class TestDelete:
    def test_delete_missing(self):
        segments = grid_segments(30, seed=7)
        _d, _p, index = build(segments)
        ghost = Segment.from_coords(-100, -100, -90, -90, label="ghost")
        assert not index.delete(ghost)

    def test_delete_roundtrip(self):
        segments = grid_segments(120, seed=8)
        _d, _p, index = build(segments, capacity=8)
        rng = random.Random(9)
        victims = rng.sample(segments, 50)
        for s in victims:
            assert index.delete(s), s
        remaining = [s for s in segments if s not in victims]
        index.check_invariants()
        for q in mixed_queries(segments, 20, seed=10):
            assert sorted(s.label for s in index.query(q)) == oracle(remaining, q)

    def test_delete_everything(self):
        segments = grid_segments(60, seed=11)
        _d, _p, index = build(segments, capacity=4)
        for s in segments:
            assert index.delete(s)
        assert len(index) == 0
        assert index.query(VerticalQuery.line(50)) == []

    def test_delete_then_reinsert(self):
        segments = grid_segments(80, seed=12)
        _d, _p, index = build(segments, capacity=8)
        for s in segments[:40]:
            index.delete(s)
        for s in segments[:40]:
            index.insert(s)
        index.check_invariants()
        for q in segment_queries(segments, 10, seed=13):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q)


@given(
    st.integers(0, 10**6),
    st.lists(st.tuples(st.integers(0, 59), st.booleans()), max_size=50),
)
@settings(max_examples=60, deadline=None)
def test_mixed_updates_match_oracle(seed, ops):
    pool = grid_segments(60, cell_size=20, seed=seed)
    _d, _p, index = build([], capacity=4)
    live = {}
    for idx, is_insert in ops:
        s = pool[idx]
        if is_insert and s.label not in live:
            index.insert(s)
            live[s.label] = s
        elif not is_insert and s.label in live:
            assert index.delete(s)
            del live[s.label]
    index.check_invariants()
    for q in (VerticalQuery.line(35), VerticalQuery.segment(50, 10, 90)):
        assert sorted(s.label for s in index.query(q)) == oracle(
            list(live.values()), q
        )
