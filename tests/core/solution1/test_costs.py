"""Theorem 1 costs, measured: O(n) space; O(log2 n · log_B n + t) query."""

import math

from repro.core.solution1 import TwoLevelBinaryIndex
from repro.iosim import BlockDevice, Measurement, Pager
from repro.workloads import grid_segments, segment_queries, stabbing_queries


def build(segments, capacity=16, blocked=True):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    index = TwoLevelBinaryIndex.build(pager, segments, blocked=blocked)
    return dev, pager, index


class TestSpace:
    def test_linear_space(self):
        capacity = 16
        for n in (1000, 4000):
            segments = grid_segments(n, seed=1)
            dev, _p, index = build(segments, capacity=capacity)
            n_blocks = n / capacity
            # Each segment is stored at most twice plus structural overhead.
            assert dev.pages_in_use <= 14 * n_blocks, (n, dev.pages_in_use)

    def test_space_scales_linearly(self):
        capacity = 16
        pages = []
        for n in (1000, 2000, 4000):
            segments = grid_segments(n, seed=2)
            dev, _p, _index = build(segments, capacity=capacity)
            pages.append(dev.pages_in_use)
        # Doubling n should about double the pages (within 35%).
        assert pages[1] / pages[0] < 2.7
        assert pages[2] / pages[1] < 2.7


class TestQueryCost:
    def test_query_io_budget(self):
        capacity = 16
        n = 8192
        segments = grid_segments(n, seed=3)
        dev, pager, index = build(segments, capacity=capacity)
        n_blocks = n / capacity
        levels = math.log2(n_blocks)
        per_level = 3 * math.log(n_blocks, capacity) + 8
        for q in segment_queries(segments, 10, selectivity=0.01, seed=4):
            with Measurement(dev) as m:
                result = index.query(q)
            budget = levels * per_level + 6 * (len(result) / capacity) + 10
            assert m.stats.reads <= budget, (m.stats.reads, budget, len(result))

    def test_growth_is_polylogarithmic(self):
        capacity = 16
        means = []
        for n in (1024, 4096, 16384):
            segments = grid_segments(n, seed=5)
            dev, pager, index = build(segments, capacity=capacity)
            qs = segment_queries(segments, 8, selectivity=0.001, seed=6)
            total = 0
            for q in qs:
                with Measurement(dev) as m:
                    index.query(q)
                total += m.stats.reads
            means.append(total / len(qs))
        # 16x data growth: a linear scan would grow 16x; log^2 growth is
        # under ~2.5x here.
        assert means[2] / means[0] < 4, means

    def test_stabbing_output_dominated(self):
        capacity = 32
        segments = grid_segments(2048, seed=7)
        dev, pager, index = build(segments, capacity=capacity)
        q = stabbing_queries(segments, 1, seed=8)[0]
        with Measurement(dev) as m:
            result = index.query(q)
        if len(result) >= capacity:
            assert m.stats.reads <= 30 * (len(result) / capacity) + 60
