"""Correctness of Solution 1 against the brute-force oracle."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solution1 import TwoLevelBinaryIndex, split_at_line
from repro.geometry import Segment, VerticalQuery, vs_intersects
from repro.iosim import BlockDevice, Pager
from repro.workloads import (
    grid_segments,
    grid_segments_touching,
    mixed_queries,
    monotone_polylines,
    stabbing_queries,
    version_history,
)


def build(segments, capacity=8, blocked=True):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    index = TwoLevelBinaryIndex.build(pager, segments, blocked=blocked)
    return dev, pager, index


def oracle(segments, q):
    return sorted(s.label for s in segments if vs_intersects(s, q))


class TestSplitAtLine:
    def test_strict_crosser_gets_both_parts(self):
        s = Segment.from_coords(0, 0, 10, 10, label="s")
        interval, left, right = split_at_line(s, 4)
        assert interval is None
        assert left is not None and right is not None
        assert left.payload.label == "s"
        assert left.u0 == 4  # y at x=4
        assert left.h1 == 4 and right.h1 == 6

    def test_touching_from_left_only(self):
        s = Segment.from_coords(0, 0, 4, 2, label="s")
        interval, left, right = split_at_line(s, 4)
        assert interval is None and right is None
        assert left.h1 == 4

    def test_vertical_on_line(self):
        s = Segment.from_coords(4, 1, 4, 7, label="s")
        interval, left, right = split_at_line(s, 4)
        assert interval == (1, 7)
        assert left is None and right is None

    def test_vertical_off_line_crossing_impossible(self):
        s = Segment.from_coords(3, 1, 3, 7, label="s")
        with pytest.raises(ValueError):
            split_at_line(s, 4)

    def test_fractional_intersection(self):
        s = Segment.from_coords(0, 0, 3, 1, label="s")
        _i, left, _r = split_at_line(s, 1)
        assert left.u0 == Fraction(1, 3)


class TestQueries:
    def test_empty_index(self):
        _d, _p, index = build([])
        assert index.query(VerticalQuery.line(0)) == []

    def test_small_leaf_only(self):
        segments = grid_segments(5, seed=1)
        _d, _p, index = build(segments, capacity=8)
        for q in mixed_queries(segments, 9, seed=2):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q)

    def test_grid_workload(self):
        segments = grid_segments(300, seed=3)
        _d, _p, index = build(segments, capacity=8)
        for q in mixed_queries(segments, 30, selectivity=0.05, seed=4):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q), q

    def test_touching_workload(self):
        segments = grid_segments_touching(250, seed=5)
        _d, _p, index = build(segments, capacity=8)
        for q in mixed_queries(segments, 30, selectivity=0.05, seed=6):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q), q

    def test_polyline_workload(self):
        segments = monotone_polylines(6, points_per_line=40, seed=7)
        _d, _p, index = build(segments, capacity=8)
        for q in mixed_queries(segments, 30, selectivity=0.1, seed=8):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q), q

    def test_temporal_workload(self):
        segments = version_history(8, versions_per_key=25, seed=9)
        _d, _p, index = build(segments, capacity=8)
        for q in mixed_queries(segments, 30, selectivity=0.05, seed=10):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q), q

    def test_query_exactly_on_base_lines(self):
        segments = grid_segments(200, seed=11)
        _d, pager, index = build(segments, capacity=8)
        # Probe the root line and a few deeper lines explicitly.
        pids = [index.root_pid]
        lines = []
        while pids:
            page = pager.fetch(pids.pop())
            if page.get_header("kind") == "node":
                lines.append(page.get_header("x"))
                pids.append(page.get_header("left"))
                pids.append(page.get_header("right"))
        assert lines
        for c in lines[:10]:
            q = VerticalQuery.line(c)
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q)
            q2 = VerticalQuery.segment(c, 0, 5000)
            assert sorted(s.label for s in index.query(q2)) == oracle(segments, q2)

    def test_no_duplicates_on_line_queries(self):
        segments = grid_segments_touching(150, seed=12)
        _d, _p, index = build(segments, capacity=8)
        for q in stabbing_queries(segments, 20, seed=13):
            got = [s.label for s in index.query(q)]
            assert len(got) == len(set(got))

    def test_vertical_segments_in_data(self):
        segments = [
            Segment.from_coords(5, 0, 5, 10, label="v1"),
            Segment.from_coords(5, 12, 5, 20, label="v2"),
            Segment.from_coords(0, 5, 10, 5, label="h"),
            Segment.from_coords(0, 15, 4, 18, label="d"),
        ]
        _d, _p, index = build(segments, capacity=2)
        for q in [
            VerticalQuery.line(5),
            VerticalQuery.segment(5, 11, 13),
            VerticalQuery.segment(5, 0, 4),
            VerticalQuery.ray_up(5, ylo=13),
        ]:
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q), q

    def test_binary_second_level_matches_blocked(self):
        segments = grid_segments(200, seed=14)
        _d1, _p1, fast = build(segments, capacity=8, blocked=True)
        _d2, _p2, slow = build(segments, capacity=8, blocked=False)
        for q in mixed_queries(segments, 15, seed=15):
            assert sorted(s.label for s in fast.query(q)) == sorted(
                s.label for s in slow.query(q)
            )

    def test_invariants_after_build(self):
        segments = grid_segments_touching(180, seed=16)
        _d, _p, index = build(segments, capacity=8)
        index.check_invariants()

    def test_all_segments_roundtrip(self):
        segments = grid_segments(120, seed=17)
        _d, _p, index = build(segments, capacity=8)
        assert sorted(s.label for s in index.all_segments()) == sorted(
            s.label for s in segments
        )


@st.composite
def segments_and_query(draw):
    kind = draw(st.sampled_from(["grid", "touch", "poly"]))
    seed = draw(st.integers(0, 10**6))
    n = draw(st.integers(3, 60))
    if kind == "grid":
        segments = grid_segments(n, cell_size=20, seed=seed)
    elif kind == "touch":
        segments = grid_segments_touching(n, cell_size=20, seed=seed)
    else:
        segments = monotone_polylines(max(1, n // 10), points_per_line=10, seed=seed)
    xmin = min(s.xmin for s in segments)
    xmax = max(s.xmax for s in segments)
    ymin = min(s.ymin for s in segments)
    ymax = max(s.ymax for s in segments)
    x0 = draw(st.integers(int(xmin) - 2, int(xmax) + 2))
    y1 = draw(st.integers(int(ymin) - 2, int(ymax) + 2))
    dy = draw(st.integers(0, int(ymax - ymin) + 4))
    return segments, VerticalQuery.segment(x0, y1, y1 + dy)


@given(segments_and_query())
@settings(max_examples=150, deadline=None)
def test_solution1_matches_oracle_property(case):
    segments, q = case
    _d, _p, index = build(segments, capacity=4)
    assert sorted(s.label for s in index.query(q)) == oracle(segments, q)
