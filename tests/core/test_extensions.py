"""Tests for the future-work extensions (arbitrary slopes, deletions)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extensions import ArbitraryQueryIndex, TombstoneDeletions
from repro.core.solution2 import TwoLevelIntervalIndex
from repro.geometry import Segment, VerticalQuery, segments_intersect, vs_intersects
from repro.iosim import BlockDevice, Measurement, Pager
from repro.workloads import grid_segments, grid_segments_touching, mixed_queries


def build_arbitrary(segments, capacity=16):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    return dev, pager, ArbitraryQueryIndex.build(pager, segments)


class TestArbitraryQueries:
    def test_matches_bruteforce_random_slopes(self):
        segments = grid_segments(300, seed=1)
        _d, _p, index = build_arbitrary(segments)
        rng = random.Random(2)
        for _ in range(25):
            x1 = rng.randrange(0, 1700)
            y1 = rng.randrange(0, 1700)
            q = Segment.from_coords(
                x1, y1, x1 + rng.randrange(1, 400),
                y1 + rng.randrange(-400, 400) or 7, label="q",
            )
            expected = sorted(
                (s.label for s in segments if segments_intersect(s, q)), key=str
            )
            got = sorted((s.label for s in index.query_segment(q)), key=str)
            assert got == expected, q

    def test_vertical_parity_with_engines(self):
        segments = grid_segments_touching(250, seed=3)
        _d, _p, index = build_arbitrary(segments)
        for q in mixed_queries(segments, 15, seed=4):
            expected = sorted(
                (s.label for s in segments if vs_intersects(s, q)), key=str
            )
            got = sorted((s.label for s in index.query_vertical(q)), key=str)
            assert got == expected, q

    def test_no_duplicates(self):
        # Long segments: stab(a) and the range scan must not double-report.
        segments = [
            Segment.from_coords(0, 5 * i, 2000, 5 * i + 2, label=i)
            for i in range(50)
        ]
        _d, _p, index = build_arbitrary(segments)
        q = Segment.from_coords(500, 0, 900, 260, label="q")
        got = [s.label for s in index.query_segment(q)]
        assert len(got) == len(set(got))

    def test_insert_then_query(self):
        segments = grid_segments(100, seed=5)
        _d, _p, index = build_arbitrary(segments)
        s = Segment.from_coords(-100, -100, -50, -60, label="late")
        index.insert(s)
        assert len(index) == 101
        q = Segment.from_coords(-80, -120, -80, -40, label="q")
        assert "late" in {x.label for x in index.query_segment(q)}

    def test_narrow_query_is_cheap(self):
        segments = grid_segments(4096, seed=6)
        dev, pager, index = build_arbitrary(segments, capacity=32)
        q = Segment.from_coords(1000, 0, 1030, 500, label="q")
        with Measurement(dev) as m:
            index.query_segment(q)
        # Candidates are one stab column plus a 30-wide start scan.
        assert m.stats.reads <= 60


def make_tombstoned(segments, capacity=16):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)

    def factory(segs):
        return TwoLevelIntervalIndex.build(pager, segs)

    return dev, TombstoneDeletions(factory, segments)


class TestTombstoneDeletions:
    def test_delete_hides_segment(self):
        segments = grid_segments(120, seed=7)
        _d, db = make_tombstoned(segments)
        victim = segments[0]
        assert db.delete(victim)
        for q in mixed_queries(segments, 10, seed=8):
            assert victim.label not in {s.label for s in db.query(q)}

    def test_delete_missing_returns_false(self):
        segments = grid_segments(30, seed=9)
        _d, db = make_tombstoned(segments)
        ghost = Segment.from_coords(-5, -5, -1, -1, label="ghost")
        assert not db.delete(ghost)

    def test_double_delete_returns_false(self):
        segments = grid_segments(30, seed=10)
        _d, db = make_tombstoned(segments)
        assert db.delete(segments[3])
        assert not db.delete(segments[3])

    def test_reinsert_after_delete(self):
        segments = grid_segments(60, seed=11)
        _d, db = make_tombstoned(segments)
        victim = segments[5]
        db.delete(victim)
        db.insert(victim)
        q = VerticalQuery.line(victim.start.x)
        assert victim.label in {s.label for s in db.query(q)}

    def test_rebuild_compacts_tombstones(self):
        segments = grid_segments(100, seed=12)
        _d, db = make_tombstoned(segments)
        for s in segments[:70]:
            db.delete(s)
        assert db.tombstone_count < 70  # a rebuild fired along the way
        assert len(db) == 30
        assert len(db.all_segments()) == 30

    def test_matches_solution1_deletions(self):
        from repro.core.solution1 import TwoLevelBinaryIndex

        segments = grid_segments(150, seed=13)
        _d, tomb = make_tombstoned(segments)
        dev = BlockDevice(block_capacity=16)
        real = TwoLevelBinaryIndex.build(Pager(dev), segments)
        rng = random.Random(14)
        for s in rng.sample(segments, 60):
            assert tomb.delete(s)
            assert real.delete(s)
        for q in mixed_queries(segments, 12, seed=15):
            assert sorted((s.label for s in tomb.query(q)), key=str) == sorted(
                (s.label for s in real.query(q)), key=str
            )


@given(st.integers(0, 10**6), st.integers(1, 30))
@settings(max_examples=40, deadline=None)
def test_arbitrary_query_property(seed, span):
    segments = grid_segments(60, cell_size=20, seed=seed)
    _d, _p, index = build_arbitrary(segments)
    rng = random.Random(seed)
    x1, y1 = rng.randrange(0, 160), rng.randrange(0, 160)
    q = Segment.from_coords(x1, y1, x1 + span, y1 + rng.randrange(-40, 41) or 3,
                            label="q")
    expected = sorted(
        (s.label for s in segments if segments_intersect(s, q)), key=str
    )
    got = sorted((s.label for s in index.query_segment(q)), key=str)
    assert got == expected
