"""Tests for the ASCII visualisation module."""

from repro import Segment, VerticalQuery
from repro.core.linebased import ExternalPST
from repro.core.solution1 import TwoLevelBinaryIndex
from repro.core.solution2 import TwoLevelIntervalIndex
from repro.iosim import BlockDevice, Pager
from repro.viz import (
    Canvas,
    draw_linebased,
    draw_scene,
    dump_gtree,
    dump_pst,
    dump_two_level,
)
from repro.workloads import fan, grid_segments


class TestCanvas:
    def test_dimensions(self):
        canvas = Canvas(0, 0, 10, 10, width=20, height=5)
        art = canvas.render()
        lines = art.splitlines()
        assert len(lines) == 7  # 5 rows + 2 borders
        assert all(len(line) == 22 for line in lines)

    def test_plot_corners(self):
        canvas = Canvas(0, 0, 10, 10, width=10, height=5)
        canvas.plot(0, 0, "a")   # bottom-left
        canvas.plot(10, 10, "b")  # top-right
        assert canvas.cells[4][0] == "a"
        assert canvas.cells[0][9] == "b"

    def test_out_of_range_clamped(self):
        canvas = Canvas(0, 0, 10, 10, width=10, height=5)
        canvas.plot(-100, 500, "x")  # must not raise
        assert any("x" in "".join(row) for row in canvas.cells)

    def test_vertical_segment_column(self):
        canvas = Canvas(0, 0, 10, 10, width=11, height=11)
        canvas.draw_segment(Segment.from_coords(5, 2, 5, 8))
        col = canvas._col(5)
        stars = sum(1 for row in canvas.cells if row[col] == "*")
        assert stars >= 5

    def test_degenerate_extent_handled(self):
        canvas = Canvas(5, 5, 5, 5)  # zero-size box
        canvas.plot(5, 5, "x")
        assert "x" in canvas.render()


class TestScenes:
    def test_draw_scene_contains_marks_and_query(self):
        segments = [
            Segment.from_coords(0, 0, 10, 5, label="a"),
            Segment.from_coords(2, 8, 9, 9, label="b"),
        ]
        art = draw_scene(segments, [VerticalQuery.segment(5, 0, 9)], mark=["a"])
        assert "o" in art  # marked hit
        assert "*" in art  # unmarked segment
        assert "+" in art  # query endpoints

    def test_draw_linebased_has_base_line(self):
        art = draw_linebased(fan(10, seed=1))
        assert "=" in art


class TestStructureDumps:
    def test_dump_pst(self):
        dev = BlockDevice(block_capacity=2)
        tree = ExternalPST.build(Pager(dev), fan(12, seed=2))
        text = dump_pst(tree)
        assert "node[" in text
        assert "low=" in text
        assert "top=" in text

    def test_dump_empty_pst(self):
        dev = BlockDevice(block_capacity=2)
        tree = ExternalPST.build(Pager(dev), [])
        assert dump_pst(tree) == "(empty PST)"

    def test_dump_solution1(self):
        dev = BlockDevice(block_capacity=4)
        pager = Pager(dev)
        index = TwoLevelBinaryIndex.build(pager, grid_segments(40, seed=3))
        text = dump_two_level(index, pager)
        assert "line x=" in text
        assert "leaf[" in text

    def test_dump_solution2(self):
        dev = BlockDevice(block_capacity=16)
        pager = Pager(dev)
        index = TwoLevelIntervalIndex.build(pager, grid_segments(200, seed=4))
        text = dump_two_level(index, pager)
        assert "boundaries=" in text

    def test_dump_solution2_depth_limited(self):
        dev = BlockDevice(block_capacity=16)
        pager = Pager(dev)
        index = TwoLevelIntervalIndex.build(pager, grid_segments(400, seed=5))
        shallow = dump_two_level(index, pager, max_depth=0)
        deep = dump_two_level(index, pager)
        assert len(shallow.splitlines()) < len(deep.splitlines())

    def test_dump_gtree(self):
        import random

        from repro.core.solution2.gtree import GTree
        from repro.core.solution2.slabs import LongFragment

        rng = random.Random(6)
        boundaries = [0, 10, 20, 30, 40]
        frags = []
        for i in range(10):
            a = rng.randint(1, 4)
            c = rng.randint(a + 1, 5)
            frags.append(
                (a, c,
                 LongFragment(boundaries[a - 1], boundaries[c - 1], i, i,
                              Segment.from_coords(-10, i, 100, i, label=i)))
            )
        dev = BlockDevice(block_capacity=8)
        g = GTree.build(Pager(dev), boundaries, frags)
        text = dump_gtree(g)
        assert "G[1:4]" in text
        assert "fragments=" in text
