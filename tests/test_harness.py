"""Tests for the benchmark harness helpers (empty-input guards, writers)."""

import json
import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "benchmarks")
)

from harness import (  # noqa: E402
    build_engine,
    measure_queries,
    measure_query_batches,
    write_perf_json,
)
from repro.workloads import grid_segments, segment_queries  # noqa: E402


@pytest.fixture(scope="module")
def engine():
    segments = grid_segments(60, seed=41)
    device, _pager, index = build_engine("solution1", segments, 16)
    return segments, device, index


def test_measure_queries_rejects_empty_batch(engine):
    _segments, device, index = engine
    with pytest.raises(ValueError, match="at least one query"):
        measure_queries(device, index, [])


def test_measure_query_batches_rejects_empty_batch(engine):
    _segments, device, index = engine
    with pytest.raises(ValueError, match="at least one query"):
        measure_query_batches(device, index, [], 4)


def test_measure_query_batches_rejects_bad_batch_size(engine):
    segments, device, index = engine
    queries = segment_queries(segments, 4, seed=42)
    with pytest.raises(ValueError, match="batch_size"):
        measure_query_batches(device, index, queries, 0)


def test_measure_query_batches_matches_sequential_outputs(engine):
    segments, device, index = engine
    queries = segment_queries(segments, 8, seed=43)
    _seq_reads, seq_out = measure_queries(device, index, queries)
    _bat_ios, bat_out = measure_query_batches(device, index, queries, 3)
    assert bat_out == seq_out


def test_build_engine_with_buffer_pages():
    segments = grid_segments(60, seed=44)
    device, pager, index = build_engine("solution2", segments, 16, buffer_pages=4)
    assert pager.device is not device  # the pool sits in between
    assert pager.device.hits == pager.device.misses == 0  # counters reset
    queries = segment_queries(segments, 4, seed=45)
    index.query_batch(queries)
    assert pager.device.pinned_count == 0


def strip_stamps(payload):
    """An experiment payload minus the per-run schema-v4 stamps."""
    return {k: v for k, v in payload.items()
            if k not in ("commit", "generated_at")}


def test_write_perf_json(tmp_path):
    path = str(tmp_path / "BENCH_perf.json")
    payload = {"engines": {"scan": {"hit_rate": 0.5}}}
    written = write_perf_json("E15", payload, path=path)
    assert written == path
    with open(path) as fh:
        data = json.load(fh)
    assert data["schema_version"] == 6
    assert data["generated_by"] == "E15"
    assert data["commit"]
    stored = data["experiments"]["E15"]
    assert strip_stamps(stored) == payload
    # v4: every experiment records the commit and UTC time of its own run.
    assert stored["commit"] == data["commit"]
    assert stored["generated_at"].endswith("Z")
    assert payload == {"engines": {"scan": {"hit_rate": 0.5}}}  # not mutated


def test_write_perf_json_merges_experiments(tmp_path):
    path = str(tmp_path / "BENCH_perf.json")
    write_perf_json("E15", {"n": 1024}, path=path)
    write_perf_json("E16", {"n": 4096}, path=path)
    with open(path) as fh:
        data = json.load(fh)
    assert {name: strip_stamps(p) for name, p in data["experiments"].items()
            } == {"E15": {"n": 1024}, "E16": {"n": 4096}}
    assert data["generated_by"] == "E16"


def test_write_perf_json_migrates_legacy_schema(tmp_path):
    path = str(tmp_path / "BENCH_perf.json")
    legacy = {"experiment": "E15", "n": 512, "engines": {"scan": {}}}
    with open(path, "w") as fh:
        json.dump(legacy, fh)
    write_perf_json("E16", {"n": 4096}, path=path)
    with open(path) as fh:
        data = json.load(fh)
    assert data["schema_version"] == 6
    # Migrated legacy payloads keep their shape (no stamps injected).
    assert data["experiments"]["E15"] == {"n": 512, "engines": {"scan": {}}}
    assert strip_stamps(data["experiments"]["E16"]) == {"n": 4096}
