"""Chrome-trace export: schema validity, lanes, ids, phase totals."""

import json

from repro.telemetry import (
    SpanRecord,
    WallTracer,
    phase_totals,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def tracer_with_spans():
    tracer = WallTracer()
    with tracer.span("serve-batch", category="serving", batch=0):
        with tracer.span("query", category="engine", shard=1):
            pass
    tracer.add("dispatch", 100.0, 0.25, category="ipc", shard=1)
    return tracer


def test_export_is_schema_valid():
    tracer = tracer_with_spans()
    doc = to_chrome_trace(tracer.records)
    assert validate_chrome_trace(doc) == []
    assert doc["displayTimeUnit"] == "ms"
    json.dumps(doc)  # JSON-serializable end to end


def test_complete_events_carry_trace_and_span_ids():
    tracer = tracer_with_spans()
    doc = to_chrome_trace(tracer.records)
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(complete) == 3
    assert {e["args"]["trace_id"] for e in complete} == {tracer.trace_id}
    span_ids = [e["args"]["span_id"] for e in complete]
    assert len(set(span_ids)) == len(span_ids)  # unique per span
    by_name = {e["name"]: e for e in complete}
    # The nested span's parent is the enclosing span.
    assert (by_name["query"]["args"]["parent_id"]
            == by_name["serve-batch"]["args"]["span_id"])


def test_timestamps_are_relative_nonnegative_microseconds():
    tracer = tracer_with_spans()
    doc = to_chrome_trace(tracer.records)
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert min(e["ts"] for e in complete) == 0.0
    assert all(e["dur"] >= 0 for e in complete)
    origin = doc["otherData"]["origin_epoch_s"]
    assert origin == min(r.start for r in tracer.records)


def test_process_lanes_are_named():
    records = [
        SpanRecord(name="a", trace_id="t", span_id="1", parent_id=None,
                   pid=10, tid=1, start=0.0, duration=0.5),
        SpanRecord(name="b", trace_id="t", span_id="2", parent_id=None,
                   pid=20, tid=1, start=0.1, duration=0.2),
    ]
    doc = to_chrome_trace(records, parent_pid=10)
    meta = {e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"] if e["ph"] == "M"}
    assert meta == {10: "parent", 20: "worker-20"}


def test_validate_flags_broken_events():
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    bad = {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1,
                            "ts": -5, "dur": 1.0}]}
    problems = validate_chrome_trace(bad)
    assert any("missing 'name'" in p for p in problems)
    assert any("bad ts" in p for p in problems)


def test_write_chrome_trace_roundtrip(tmp_path):
    tracer = tracer_with_spans()
    path = str(tmp_path / "trace.json")
    doc = write_chrome_trace(path, tracer.records, parent_pid=123,
                             metadata={"command": "test"})
    with open(path) as fh:
        on_disk = json.load(fh)
    assert validate_chrome_trace(on_disk) == []
    assert on_disk["otherData"]["command"] == "test"
    assert len(on_disk["traceEvents"]) == len(doc["traceEvents"])


def test_phase_totals_sums_by_name():
    tracer = WallTracer()
    tracer.add("query", 0.0, 0.5)
    tracer.add("query", 1.0, 0.25)
    tracer.add("dispatch", 2.0, 0.125)
    totals = phase_totals(tracer.to_dicts(), ("query", "dispatch", "absent"))
    assert totals["query"] == 0.75
    assert totals["dispatch"] == 0.125
    assert totals["absent"] == 0.0
