"""Tests for the metrics registry and its exporters."""

import json
from fractions import Fraction

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import Counter, Histogram


class TestCounter:
    def test_increments(self):
        c = Counter("queries")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("queries").inc(-1)


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("ios")
        for v in (4, 1, 3, 2, 5):
            h.observe(v)
        assert h.count == 5
        assert h.sum == 15
        assert h.mean == 3.0
        assert (h.min, h.max) == (1, 5)
        assert h.percentile(50) == 3
        assert h.percentile(0) == 1
        assert h.percentile(100) == 5

    def test_empty(self):
        h = Histogram("ios")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.min is None and h.max is None
        assert h.percentile(50) is None

    def test_percentile_bounds(self):
        h = Histogram("ios")
        h.observe(1)
        with pytest.raises(ValueError):
            h.percentile(101)


class TestRegistry:
    def test_find_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("b") is reg.histogram("b")
        assert reg.gauge("c") is reg.gauge("c")
        assert reg.names() == ["a", "b", "c"]

    def test_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("query.count").inc(2)
        reg.gauge("buffer.hit_rate").set(Fraction(1, 2))
        reg.histogram("query.ios").observe(7)
        data = json.loads(reg.to_json())
        assert data["query.count"] == {"type": "counter", "value": 2}
        assert data["buffer.hit_rate"]["value"] == 0.5
        assert data["query.ios"]["count"] == 1
        assert data["query.ios"]["p50"] == 7.0

    def test_markdown_has_one_table_per_kind(self):
        reg = MetricsRegistry()
        reg.counter("query.count").inc()
        reg.gauge("height").set(3)
        reg.histogram("query.ios").observe(4)
        md = reg.to_markdown()
        assert "| counter | value |" in md
        assert "| gauge | value |" in md
        assert "| histogram | count |" in md

    def test_markdown_empty(self):
        assert "no metrics" in MetricsRegistry().to_markdown()


class TestFacadeMetrics:
    def test_query_and_insert_feed_the_registry(self):
        from repro import Segment, SegmentDatabase, VerticalQuery
        from repro.workloads import grid_segments

        db = SegmentDatabase.bulk_load(
            grid_segments(100, seed=5), block_capacity=16, buffer_pages=8
        )
        reg = db.enable_metrics()
        assert db.enable_metrics() is reg  # idempotent
        db.query(VerticalQuery.line(50))
        db.query(VerticalQuery.segment(120, 0, 400))
        db.insert(Segment.from_coords(1001, 1, 1009, 4, label="new"))
        assert reg.counter("query.count").value == 2
        assert reg.counter("insert.count").value == 1
        assert reg.histogram("query.ios").count == 2
        assert reg.gauge("buffer.hit_rate").value is not None
