"""SlowQueryLog: thresholding, lazy explain, ring bound, worker absorb."""

import pickle

import pytest

from repro.telemetry import SlowQueryLog


def test_fast_operations_are_not_logged():
    log = SlowQueryLog(threshold_s=0.5)
    assert log.record("query", "q1", 0.1) is None
    assert len(log) == 0
    assert log.recorded == 0


def test_slow_operations_capture_query_latency_and_explain():
    log = SlowQueryLog(threshold_s=0.01)
    entry = log.record("query", "x=3", 0.02,
                       explain=lambda: {"phases": {"descent": 4}},
                       results=7)
    assert entry is not None
    assert entry["kind"] == "query"
    assert entry["description"] == "x=3"
    assert entry["latency_s"] == 0.02
    assert entry["explain"] == {"phases": {"descent": 4}}
    assert entry["results"] == 7
    assert log.entries() == [entry]


def test_explain_callback_runs_only_past_threshold():
    calls = []
    log = SlowQueryLog(threshold_s=0.5)
    log.record("query", "fast", 0.1, explain=lambda: calls.append(1))
    assert calls == []
    log.record("query", "slow", 0.9, explain=lambda: calls.append(1) or {})
    assert calls == [1]


def test_explain_exception_is_captured_not_raised():
    log = SlowQueryLog(threshold_s=0.0)

    def boom():
        raise RuntimeError("diagnosis failed")

    entry = log.record("query", "q", 1.0, explain=boom)
    assert entry["explain"] == {"error": "RuntimeError: diagnosis failed"}


def test_ring_is_bounded_and_counts_drops():
    log = SlowQueryLog(threshold_s=0.0, capacity=3)
    for i in range(5):
        log.record("query", f"q{i}", 1.0)
    assert len(log) == 3
    assert log.recorded == 5
    assert log.dropped == 2
    assert [e["description"] for e in log.entries()] == ["q2", "q3", "q4"]


def test_drain_clears_and_absorb_adopts():
    worker = SlowQueryLog(threshold_s=0.0)
    worker.record("query_batch", "batch", 1.0)
    shipped = worker.drain()
    assert len(worker) == 0
    assert pickle.loads(pickle.dumps(shipped)) == shipped  # crosses processes
    parent = SlowQueryLog(threshold_s=0.0)
    parent.absorb(shipped)
    assert [e["description"] for e in parent.entries()] == ["batch"]
    assert parent.recorded == 1


def test_constructor_validation():
    with pytest.raises(ValueError, match="threshold_s"):
        SlowQueryLog(threshold_s=-1.0)
    with pytest.raises(ValueError, match="capacity"):
        SlowQueryLog(threshold_s=0.1, capacity=0)


def test_to_dict_shape():
    log = SlowQueryLog(threshold_s=0.25, capacity=8)
    log.record("query", "q", 0.5)
    d = log.to_dict()
    assert d["threshold_s"] == 0.25
    assert d["capacity"] == 8
    assert d["recorded"] == 1
    assert d["dropped"] == 0
    assert len(d["entries"]) == 1
