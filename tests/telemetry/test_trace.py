"""Tests for the span/trace core: scoping, attribution, zero-cost off."""


from repro.iosim import BlockDevice, LRUBufferPool, Pager
from repro.telemetry import trace


class TestSpanTree:
    def test_child_is_find_or_create(self):
        root = trace.Span("query")
        a = root.child("descent")
        assert root.child("descent") is a
        assert [c.name for c in root.children] == ["descent"]

    def test_move_preserves_the_total(self):
        root = trace.Span("query")
        root.reads = 5
        root.move("report", reads=2)
        assert root.reads == 3
        assert root.child("report").reads == 2
        assert root.deep_total() == 5

    def test_move_of_nothing_creates_no_child(self):
        root = trace.Span("query")
        root.move("report")
        assert root.children == []

    def test_walk_paths(self):
        root = trace.Span("query")
        root.child("PST").child("descent")
        paths = [path for path, _span in root.walk()]
        assert paths == ["query", "query/PST", "query/PST/descent"]


class TestTraceContext:
    def test_events_land_on_the_innermost_span(self):
        ctx = trace.TraceContext()
        ctx.record_read()
        with ctx.span("descent"):
            ctx.record_read()
            ctx.record_read()
        assert ctx.root.reads == 1
        assert ctx.root.child("descent").reads == 2
        assert ctx.total() == 3

    def test_reentered_phase_accumulates(self):
        ctx = trace.TraceContext()
        for _ in range(3):
            with ctx.span("hop"):
                ctx.record_read()
        assert ctx.root.child("hop").reads == 3
        assert len(ctx.root.children) == 1

    def test_phases_view(self):
        ctx = trace.TraceContext()
        with ctx.span("G"):
            with ctx.span("cascade-hop"):
                ctx.record_read()
        phases = ctx.phases()
        assert phases["query/G/cascade-hop"].reads == 1


class TestModuleSurface:
    def test_off_by_default(self):
        assert not trace.is_tracing()
        assert trace.active() is None
        assert trace.current_span() is None

    def test_span_is_noop_when_off(self):
        with trace.span("anything"):
            pass
        trace.attribute("anything", reads=5)  # must not raise

    def test_tracing_installs_and_restores(self):
        with trace.tracing() as ctx:
            assert trace.active() is ctx
            assert trace.current_span() is ctx.root
        assert trace.active() is None

    def test_nested_tracing_shadows_the_outer_context(self):
        with trace.tracing() as outer:
            outer.record_read()
            with trace.tracing("inner") as inner:
                assert trace.active() is inner
                inner.record_read()
            assert trace.active() is outer
        assert outer.total() == 1
        assert inner.total() == 1


class TestIOLayerEmission:
    def test_device_reads_and_writes_recorded(self):
        device = BlockDevice(4)
        pager = Pager(device)
        page = pager.alloc()
        pager.write(page)
        with trace.tracing() as ctx:
            with trace.span("setup"):
                device.read(page.page_id)
            device.write(page)
        assert ctx.root.child("setup").reads == 1
        assert ctx.root.writes == 1

    def test_tagged_bridges_to_a_span(self):
        device = BlockDevice(4)
        pager = Pager(device)
        page = pager.alloc()
        pager.write(page)
        with trace.tracing() as ctx:
            with device.tagged("first-level"):
                device.read(page.page_id)
        assert ctx.root.child("first-level").reads == 1
        # The tag side itself still works.
        assert device.tag_snapshot().get("first-level") == 1

    def test_buffer_hits_and_misses_recorded(self):
        device = BlockDevice(4)
        page = device.alloc()
        device.write(page)
        pool = LRUBufferPool(device, 2)  # built after, so the cache is cold
        with trace.tracing() as ctx:
            pool.read(page.page_id)  # miss
            pool.read(page.page_id)  # hit
        assert ctx.root.misses == 1
        assert ctx.root.hits == 1
        assert ctx.root.reads == 1  # only the miss touched the device

    def test_pager_pins_recorded(self):
        device = BlockDevice(4)
        pager = Pager(device)
        page = pager.alloc()
        pager.write(page)
        with trace.tracing() as ctx:
            with pager.operation():
                pager.fetch(page.page_id)
                pager.fetch(page.page_id)  # pinned: free, counted as a pin
        assert ctx.root.reads == 1
        assert ctx.root.pins >= 1

    def test_tracing_does_not_change_io_counts(self):
        device = BlockDevice(4)
        pager = Pager(device)
        pages = []
        for _ in range(3):
            page = pager.alloc()
            pager.write(page)
            pages.append(page.page_id)
        device.reset_counters()
        for pid in pages:
            device.read(pid)
        untraced = device.snapshot()
        device.reset_counters()
        with trace.tracing():
            for pid in pages:
                device.read(pid)
        assert device.snapshot() == untraced
