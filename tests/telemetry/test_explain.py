"""Tests for the cost-anatomy EXPLAIN surface.

The acceptance property is the accounting identity: for every engine the
per-phase I/O counts of ``db.explain(q)`` sum *exactly* to the flat
:class:`~repro.iosim.stats.IOStats` diff of running the same query.
"""

import pytest

from repro import (
    ENGINES,
    ExternalPST,
    HQuery,
    LineBasedSegment,
    SegmentDatabase,
    VerticalQuery,
)
from repro.iosim import BlockDevice, Pager
from repro.telemetry import trace_call
from repro.workloads import grid_segments, mixed_queries


def built(engine, n=200, buffer_pages=None):
    return SegmentDatabase.bulk_load(
        grid_segments(n, seed=7),
        engine=engine,
        block_capacity=16,
        buffer_pages=buffer_pages,
    )


class TestAccountingIdentity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_phases_sum_to_flat_diff(self, engine):
        db = built(engine)
        queries = mixed_queries(grid_segments(200, seed=7), 8, seed=9)
        for q in queries:
            before = db.io_stats()
            report = db.explain(q)
            diff = db.io_stats() - before
            assert report.io == diff, (engine, q)
            assert report.balanced, (engine, q, report.to_dict())
            assert report.phase_io_total == diff.total

    def test_raw_pst_balances(self):
        device = BlockDevice(8)
        pager = Pager(device)
        segments = [
            LineBasedSegment(u0=3 * i, u1=3 * i + 2, h1=(i % 17) + 1)
            for i in range(150)
        ]
        tree = ExternalPST.build(pager, segments)
        device.reset_counters()
        for q in (HQuery.line(4), HQuery.segment(9, 30, 220), HQuery.line(1)):
            result, report = trace_call(
                device, lambda q=q: tree.query(q), engine="pst"
            )
            assert report.balanced, report.to_dict()
            assert report.results == len(result)

    def test_explain_matches_untraced_io(self):
        """Tracing observes the device; it must not change the I/O count."""
        q = VerticalQuery.segment(150, 0, 500)
        db = built("solution2")
        before = db.io_stats()
        db.query(q)
        untraced = db.io_stats() - before
        report = built("solution2").explain(q)
        assert report.io == untraced


class TestReportContents:
    def test_phases_are_named_after_components(self):
        report = built("solution2").explain(VerticalQuery.line(150))
        tops = report.top_level()
        assert "first-level" in tops
        assert report.engine == "solution2"

    def test_buffer_section(self):
        db = built("solution1", buffer_pages=8)
        report = db.explain(VerticalQuery.line(150))
        assert report.buffer is not None
        assert report.buffer["hits"] + report.buffer["misses"] > 0
        assert built("solution1").explain(VerticalQuery.line(150)).buffer is None

    def test_top_level_rolls_up_subphases(self):
        report = built("solution1").explain(VerticalQuery.segment(150, 0, 900))
        tops = report.top_level()
        assert sum(tops.values()) == report.io.total
        # PST/descent and PST/report fold into one "PST" component.
        assert not any("/" in name for name in tops)

    def test_to_dict_and_markdown(self):
        report = built("solution2").explain(VerticalQuery.line(150))
        data = report.to_dict()
        assert data["balanced"] is True
        assert data["io_total"] == report.io.total
        md = report.to_markdown()
        assert "EXPLAIN" in md and "| phase |" in md
        assert str(report) == md

    def test_results_counted(self):
        db = built("scan")
        q = VerticalQuery.line(150)
        assert db.explain(q).results == len(db.query(q))


class TestDisabledCost:
    def test_no_trace_context_leaks_from_explain(self):
        from repro.telemetry import trace

        built("solution1").explain(VerticalQuery.line(150))
        assert not trace.is_tracing()

    def test_io_report_surface(self):
        db = built("solution2", buffer_pages=4)
        db.query(VerticalQuery.line(150))
        out = db.io_report()
        assert set(out) >= {"reads", "writes", "space_in_blocks", "buffer"}
        assert out["buffer"]["capacity"] == 4
        assert 0.0 <= out["buffer"]["hit_rate"] <= 1.0
        assert db.buffer_hit_rate == out["buffer"]["hit_rate"]
        assert built("scan").io_report()["buffer"] is None
        assert built("scan").buffer_hit_rate is None
