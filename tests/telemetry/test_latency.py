"""LatencyHistogram: bucket geometry, percentile error bounds, merging.

The histogram's contract (DESIGN.md §12): log-spaced buckets give every
quantile a *relative* error bounded by sqrt(gamma) - 1 regardless of the
distribution, memory stays bounded by the fixed bucket universe, and
merge is associative — the precondition for shipping per-worker
histograms across process boundaries and folding them in any order.
"""

import math
import pickle
import random

import pytest

from repro.telemetry import LatencyHistogram


def exact_percentile(values, p):
    """Nearest-rank percentile over the raw sample (the reference)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def lognormal_sample(n, seed):
    rng = random.Random(seed)
    return [math.exp(rng.gauss(-6.0, 1.5)) for _ in range(n)]


def test_percentiles_within_relative_error_bound():
    h = LatencyHistogram("t")
    values = lognormal_sample(5000, seed=7)
    for v in values:
        h.observe(v)
    bound = h.relative_error_bound
    for p in (50, 90, 95, 99):
        estimate = h.percentile(p)
        exact = exact_percentile(values, p)
        assert abs(estimate - exact) / exact <= bound, (
            f"p{p}: {estimate} vs exact {exact} exceeds {bound:.4f}"
        )


def test_extremes_are_exact():
    h = LatencyHistogram("t")
    values = lognormal_sample(500, seed=11)
    for v in values:
        h.observe(v)
    assert h.percentile(0) == min(values)
    assert h.percentile(100) == max(values)
    assert h.min == min(values)
    assert h.max == max(values)


def test_empty_histogram_has_no_percentiles():
    h = LatencyHistogram("t")
    assert h.count == 0
    assert h.percentile(50) is None
    assert h.summary()["p99_ms"] is None


def test_bucket_count_is_bounded():
    h = LatencyHistogram("t")
    rng = random.Random(3)
    for _ in range(20000):
        # Spray the full representable range plus outliers on both sides.
        h.observe(10 ** rng.uniform(-9, 4))
    assert h.bucket_count <= h.max_buckets
    assert h.count == 20000


def test_underflow_and_overflow_clamp():
    h = LatencyHistogram("t", min_value=1e-6, max_value=1.0)
    h.observe(1e-12)
    h.observe(100.0)
    assert h.count == 2
    assert h.percentile(0) == 1e-12    # exact min survives clamping
    assert h.percentile(100) == 100.0  # exact max survives clamping


def test_merge_equals_single_histogram():
    values = lognormal_sample(3000, seed=13)
    whole = LatencyHistogram("t")
    parts = [LatencyHistogram("t") for _ in range(3)]
    for i, v in enumerate(values):
        whole.observe(v)
        parts[i % 3].observe(v)
    merged = LatencyHistogram.merged(parts, "t")
    assert merged.count == whole.count
    assert merged.to_dict()["buckets"] == whole.to_dict()["buckets"]
    for p in (50, 95, 99):
        assert merged.percentile(p) == whole.percentile(p)


def test_merge_is_associative_bucket_for_bucket():
    parts = [LatencyHistogram("t") for _ in range(3)]
    rng = random.Random(17)
    for _ in range(900):
        parts[rng.randrange(3)].observe(math.exp(rng.gauss(-5, 2)))
    a, b, c = (LatencyHistogram.from_dict(p.to_dict()) for p in parts)
    left = a.merge(b).merge(c)        # (a + b) + c
    a2, b2, c2 = (LatencyHistogram.from_dict(p.to_dict()) for p in parts)
    right = a2.merge(b2.merge(c2))    # a + (b + c)
    # Bucket contents, counts, extremes and every quantile are identical;
    # only the float `sum` differs by rounding order.
    assert left.to_dict()["buckets"] == right.to_dict()["buckets"]
    assert (left.count, left.min, left.max) == (right.count, right.min,
                                                right.max)
    for p in (50, 95, 99):
        assert left.percentile(p) == right.percentile(p)
    assert left.sum == pytest.approx(right.sum)


def test_merge_rejects_mismatched_geometry():
    a = LatencyHistogram("t", buckets_per_octave=8)
    b = LatencyHistogram("t", buckets_per_octave=4)
    with pytest.raises(ValueError, match="geometry"):
        a.merge(b)


def test_roundtrips_through_pickle_and_dict():
    h = LatencyHistogram("t")
    for v in lognormal_sample(200, seed=23):
        h.observe(v)
    via_dict = LatencyHistogram.from_dict(h.to_dict())
    via_pickle = pickle.loads(pickle.dumps(h))
    for other in (via_dict, via_pickle):
        assert other.count == h.count
        assert other.percentile(99) == h.percentile(99)
        assert other.to_dict() == h.to_dict()


def test_summary_shape():
    h = LatencyHistogram("t")
    h.observe(0.010)
    h.observe(0.020)
    s = h.summary()
    assert s["count"] == 2
    assert set(s) == {"count", "mean_ms", "min_ms", "max_ms",
                      "p50_ms", "p95_ms", "p99_ms"}
    assert s["min_ms"] == 10.0
    assert s["max_ms"] == 20.0
