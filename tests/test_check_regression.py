"""The perf-regression gate: metric extraction, tolerances, exit codes."""

import json
import os
import sys


sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "benchmarks")
)

from check_regression import compare, extract_metrics, main  # noqa: E402


def perf_file(qps=1000.0, p99=2.0, exact_qps=100.0, reduction=30.0,
              mttr=120.0, supervised_ratio=0.98):
    """A minimal schema-v5 artifact shaped like the real one."""
    return {
        "schema_version": 5,
        "commit": "abc1234",
        "experiments": {
            "E15": {
                "commit": "abc1234",
                "generated_at": "2026-08-08T00:00:00Z",
                "engines": {
                    "solution1": {
                        "queries_per_sec": {"1": qps, "64": qps * 4},
                        "latency_ms": {"64": {"p50_ms": 1.0, "p99_ms": p99}},
                    },
                    "scan": {
                        # Baseline engines never gate.
                        "queries_per_sec": {"1": 50.0},
                        "latency_ms": {"64": {"p99_ms": 100.0}},
                    },
                },
            },
            "E16": {
                "engines": {
                    "solution2": {"filtered_qps": qps, "exact_qps": exact_qps},
                    "rtree": {"filtered_qps": 10.0},
                },
            },
            "E17": {
                "engine": "solution2",
                "throughput": {
                    "4": {"2": {"queries_per_s": qps, "batch_p99_ms": p99}},
                },
            },
            "E18": {
                "engine": "solution2",
                "overhead": {
                    "pickle_s": 3.0,
                    "shm_s": 3.0 / reduction,
                    "overhead_reduction": reduction,
                    "attach_reduction": reduction * 2,
                },
            },
            "E19": {
                "engine": "solution2",
                "mttr_ms": mttr,
                "supervised_qps_ratio": supervised_ratio,
                "chaos_sweep": [
                    {"kill_rate": 0.15, "degraded_fraction": 0.05,
                     "stall_p99_ms": 500.0},
                ],
            },
        },
    }


def test_extracts_only_gated_metrics():
    metrics = extract_metrics(perf_file())
    assert "E15.engines.solution1.queries_per_sec.1" in metrics
    assert "E16.engines.solution2.filtered_qps" in metrics
    assert "E17.throughput.4.2.queries_per_s" in metrics
    assert "E17.throughput.4.2.batch_p99_ms" in metrics
    # Baselines, bookkeeping stamps and non-metric leaves stay out.
    assert not any("scan" in k or "rtree" in k for k in metrics)
    assert not any("commit" in k or "generated_at" in k for k in metrics)
    # exact_qps is not a gated throughput key.
    assert not any(k.endswith("exact_qps") for k in metrics)


def test_extracts_overhead_ratios():
    metrics = extract_metrics(perf_file())
    assert metrics["E18.overhead.overhead_reduction"] == ("ratio", 30.0)
    assert metrics["E18.overhead.attach_reduction"] == ("ratio", 60.0)
    # The raw overhead seconds are inputs, not gated metrics.
    assert not any(k.endswith("pickle_s") or k.endswith("shm_s")
                   for k in metrics)


def test_overhead_ratio_drop_beyond_tolerance_fails():
    verdict = compare(perf_file(reduction=30.0), perf_file(reduction=10.0),
                      0.25, 0.25, max_ratio_drop=0.5)
    ratio_regressions = [r for r in verdict["regressions"]
                         if r["kind"] == "ratio"]
    assert {r["metric"] for r in ratio_regressions} == {
        "E18.overhead.overhead_reduction",
        "E18.overhead.attach_reduction",
    }


def test_overhead_ratio_within_tolerance_passes():
    # Half the win gone is the (loose) limit; 60% retained passes.
    verdict = compare(perf_file(reduction=30.0), perf_file(reduction=18.0),
                      0.25, 0.25, max_ratio_drop=0.5)
    assert [r for r in verdict["regressions"] if r["kind"] == "ratio"] == []


def test_max_ratio_drop_flag(tmp_path):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(perf_file(reduction=30.0)))
    cur.write_text(json.dumps(perf_file(reduction=24.0)))
    assert main([str(base), str(cur), "--max-ratio-drop", "0.1"]) == 1
    assert main([str(base), str(cur), "--max-ratio-drop", "0.3"]) == 0


def test_extracts_resilience_metrics():
    metrics = extract_metrics(perf_file())
    assert metrics["E19.mttr_ms"] == ("p99", 120.0)
    assert metrics["E19.supervised_qps_ratio"] == ("ratio", 0.98)
    # Chaos operating-point numbers are recorded, never gated — one
    # respawn stall IS the p99 at smoke sizes.
    assert not any("stall_p99_ms" in k or "degraded_fraction" in k
                   for k in metrics)


def test_mttr_inflation_beyond_tolerance_fails():
    verdict = compare(perf_file(mttr=100.0), perf_file(mttr=200.0),
                      0.25, 0.25)
    assert any(r["metric"] == "E19.mttr_ms" and r["kind"] == "p99"
               for r in verdict["regressions"])


def test_supervised_ratio_halving_fails():
    verdict = compare(perf_file(supervised_ratio=1.0),
                      perf_file(supervised_ratio=0.4),
                      0.25, 0.25, max_ratio_drop=0.5)
    assert any(r["metric"] == "E19.supervised_qps_ratio"
               and r["kind"] == "ratio" for r in verdict["regressions"])


def test_identical_files_pass():
    verdict = compare(perf_file(), perf_file(), 0.25, 0.25)
    assert verdict["regressions"] == []
    assert verdict["checked"] > 0


def test_within_tolerance_passes():
    verdict = compare(perf_file(qps=1000.0, p99=2.0),
                      perf_file(qps=800.0, p99=2.4), 0.25, 0.25)
    assert verdict["regressions"] == []


def test_qps_drop_beyond_tolerance_fails():
    verdict = compare(perf_file(qps=1000.0), perf_file(qps=700.0),
                      0.25, 0.25)
    kinds = {r["metric"]: r for r in verdict["regressions"]}
    assert any(k.endswith("queries_per_s") or "queries_per_sec" in k
               or k.endswith("filtered_qps") for k in kinds)
    assert all(r["kind"] == "qps" for r in verdict["regressions"])


def test_p99_inflation_beyond_tolerance_fails():
    verdict = compare(perf_file(p99=2.0), perf_file(p99=3.0), 0.25, 0.25)
    assert verdict["regressions"]
    assert all(r["kind"] == "p99" for r in verdict["regressions"])
    assert all(r["metric"].endswith("p99_ms")
               for r in verdict["regressions"])


def test_missing_metrics_are_reported_not_fatal():
    baseline = perf_file()
    current = perf_file()
    del current["experiments"]["E16"]
    current["experiments"]["E15"]["engines"]["solution1"]["new_thing"] = {
        "queries_per_sec": {"1": 5.0},
    }
    verdict = compare(baseline, current, 0.25, 0.25)
    assert verdict["regressions"] == []
    assert any(k.startswith("E16") for k in verdict["baseline_only"])
    assert any("new_thing" in k for k in verdict["current_only"])


def test_zero_baseline_cannot_gate():
    verdict = compare(perf_file(qps=0.0), perf_file(qps=0.0), 0.25, 0.25)
    assert verdict["regressions"] == []


def test_main_exit_codes(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(perf_file(qps=1000.0)))
    cur.write_text(json.dumps(perf_file(qps=1000.0)))
    assert main([str(base), str(cur)]) == 0
    cur.write_text(json.dumps(perf_file(qps=100.0)))
    assert main([str(base), str(cur)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert main([str(tmp_path / "missing.json"), str(cur)]) == 2
    assert main([]) == 2


def test_main_json_output(tmp_path, capsys):
    base = tmp_path / "base.json"
    base.write_text(json.dumps(perf_file()))
    assert main([str(base), str(base), "--json"]) == 0
    verdict = json.loads(capsys.readouterr().out)
    assert verdict["regressions"] == []
    assert verdict["checked"] > 0


def test_custom_tolerances(tmp_path):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(perf_file(qps=1000.0)))
    cur.write_text(json.dumps(perf_file(qps=850.0)))
    assert main([str(base), str(cur), "--max-drop", "0.10"]) == 1
    assert main([str(base), str(cur), "--max-drop", "0.20"]) == 0
