"""Unit tests for the fixed-capacity page."""

import pytest

from repro.iosim import HEADER_SLOTS, Page, PageOverflowError


def test_put_items_within_capacity():
    page = Page(page_id=0, capacity=4)
    page.put_items([1, 2, 3, 4])
    assert len(page) == 4
    assert page.free_slots == 0


def test_put_items_overflow_raises():
    page = Page(page_id=7, capacity=4)
    with pytest.raises(PageOverflowError) as exc:
        page.put_items(range(5))
    assert exc.value.page_id == 7
    assert exc.value.size == 5
    assert exc.value.capacity == 4


def test_put_items_replaces_previous_payload():
    page = Page(page_id=0, capacity=4)
    page.put_items([1, 2, 3])
    page.put_items(["a"])
    assert page.items == ["a"]


def test_append_item_respects_capacity():
    page = Page(page_id=0, capacity=2)
    page.append_item("x")
    page.append_item("y")
    with pytest.raises(PageOverflowError):
        page.append_item("z")
    assert page.items == ["x", "y"]


def test_header_is_separate_from_payload():
    page = Page(page_id=0, capacity=1)
    page.put_items(["payload"])
    page.set_header("child_left", 3)
    page.set_header("child_right", 4)
    assert page.get_header("child_left") == 3
    assert page.get_header("missing") is None
    assert page.get_header("missing", "dflt") == "dflt"
    assert len(page) == 1


def test_header_slot_bound_enforced():
    page = Page(page_id=0, capacity=1)
    with pytest.raises(PageOverflowError):
        for i in range(HEADER_SLOTS + 1):
            page.set_header(f"k{i}", i)


def test_validate_catches_direct_mutation():
    page = Page(page_id=0, capacity=2)
    page.items.extend([1, 2, 3])  # bypass the guarded API
    with pytest.raises(PageOverflowError):
        page.validate()
