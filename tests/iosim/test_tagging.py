"""Tests for I/O attribution (tagged accounting)."""

from repro.iosim import BlockDevice, LRUBufferPool, Pager


def test_untagged_io_not_attributed():
    dev = BlockDevice(block_capacity=8)
    page = dev.alloc()
    dev.write(page)
    dev.read(page.page_id)
    assert dev.tag_snapshot() == {}
    assert dev.reads == 1 and dev.writes == 1


def test_tagged_reads_and_writes():
    dev = BlockDevice(block_capacity=8)
    page = dev.alloc()
    with dev.tagged("build"):
        dev.write(page)
    with dev.tagged("query"):
        dev.read(page.page_id)
        dev.read(page.page_id)
    assert dev.tag_reads == {"query": 2}
    assert dev.tag_writes == {"build": 1}
    assert dev.tag_snapshot() == {"query": 2, "build": 1}


def test_innermost_tag_wins():
    dev = BlockDevice(block_capacity=8)
    page = dev.alloc()
    dev.write(page)
    with dev.tagged("outer"):
        dev.read(page.page_id)
        with dev.tagged("inner"):
            dev.read(page.page_id)
        dev.read(page.page_id)
    assert dev.tag_reads == {"outer": 2, "inner": 1}


def test_tag_scope_exits_on_exception():
    dev = BlockDevice(block_capacity=8)
    page = dev.alloc()
    dev.write(page)
    try:
        with dev.tagged("boom"):
            raise RuntimeError
    except RuntimeError:
        pass
    dev.read(page.page_id)
    assert "boom" not in dev.tag_reads or dev.tag_reads["boom"] == 0


def test_reset_counters_clears_tag_buckets():
    # Regression: reset_counters() used to zero the global counters but
    # leak the per-tag attribution buckets into the next measurement.
    dev = BlockDevice(block_capacity=8)
    page = dev.alloc()
    with dev.tagged("phase1"):
        dev.write(page)
        dev.read(page.page_id)
    dev.reset_counters()
    assert dev.reads == 0 and dev.writes == 0
    assert dev.tag_reads == {} and dev.tag_writes == {}
    assert dev.tag_snapshot() == {}
    with dev.tagged("phase2"):
        dev.read(page.page_id)
    assert dev.tag_snapshot() == {"phase2": 1}


def test_reset_tags_keeps_globals():
    dev = BlockDevice(block_capacity=8)
    page = dev.alloc()
    with dev.tagged("x"):
        dev.write(page)
    dev.reset_tags()
    assert dev.tag_snapshot() == {}
    assert dev.writes == 1


def test_buffer_pool_forwards_tagged():
    dev = BlockDevice(block_capacity=8)
    pool = LRUBufferPool(dev, capacity=1)
    page = pool.alloc()
    pool.write(page)
    other = pool.alloc()
    pool.write(other)  # evicts `page`
    with pool.tagged("q"):
        pool.read(page.page_id)  # miss: hits the device, attributed
    assert dev.tag_reads == {"q": 1}


def test_solution_queries_attribute_components():
    from repro.core.solution2 import TwoLevelIntervalIndex
    from repro.workloads import grid_segments, segment_queries

    dev = BlockDevice(block_capacity=16)
    segments = grid_segments(500, seed=1)
    index = TwoLevelIntervalIndex.build(Pager(dev), segments)
    dev.reset_counters()
    dev.reset_tags()
    total = 0
    for q in segment_queries(segments, 5, selectivity=0.02, seed=2):
        index.query(q)
    snapshot = dev.tag_snapshot()
    assert snapshot  # something was attributed
    assert set(snapshot) <= {"first-level", "G", "short-PST", "C", "leaf"}
    # Attribution covers (almost) all the reads of the queries.
    assert sum(snapshot.values()) >= 0.9 * dev.reads
