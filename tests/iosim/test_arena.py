"""Tests for the flat page arena: layout, typed failure modes, and the
lazy ArenaBlockDevice consumer.

These exercise :class:`ArenaView` directly on raw bytes — the situation
a shared-memory worker is in, where no file CRC stands between the
buffer and the parser, so every malformed input must raise a typed
:class:`SnapshotFormatError` rather than a bare struct/pickle error.
"""

import pickle
import struct

import pytest

from repro.iosim import (
    ArenaBlockDevice,
    ArenaView,
    BlockDevice,
    DanglingPageError,
    SnapshotFormatError,
    build_arena,
)
from repro.iosim.arena import _ARENA_HEADER, _TABLE_ENTRY


def make_device(pages=6, capacity=8):
    device = BlockDevice(capacity)
    for i in range(pages):
        page = device.alloc()
        page.items = [("item", i, j) for j in range(i + 1)]
        page.set_header("kind", f"p{i}")
        device.write(page)
    device.free(0)
    return device


def make_arena(**kwargs):
    device = make_device(**kwargs)
    return device, build_arena(device, {"engine": "demo", "root": 3})


# ----------------------------------------------------------------------
# round trip
# ----------------------------------------------------------------------
def test_build_and_materialize_round_trip():
    device, arena = make_arena()
    view = ArenaView(arena)
    assert view.meta == {"engine": "demo", "root": 3}
    assert view.page_ids == sorted(device._pages)
    restored = view.materialize()
    assert restored.block_capacity == device.block_capacity
    for pid, page in device._pages.items():
        assert restored._pages[pid].items == page.items
        assert restored._pages[pid].header == page.header
    # The allocator cursor survives: no id reuse after restore.
    assert restored.alloc().page_id not in device._pages


def test_arena_bytes_are_deterministic():
    """Same device → same bytes: the arena is a pure function of content,
    so shard fingerprints and shm segment reuse are stable."""
    d1, a1 = make_arena()
    d2, a2 = make_arena()
    assert a1 == a2


def test_view_over_memoryview_slices_zero_copy():
    _device, arena = make_arena()
    buf = memoryview(bytearray(arena))  # as in a shared-memory segment
    view = ArenaView(buf, source="shm://test")
    page = view.decode_page(view.page_ids[0])
    assert page.items
    view.release()
    buf.release()  # raises BufferError if the view leaked a slice


def test_attach_is_lazy_about_meta():
    """Constructing a view never touches the meta blob (workers that only
    decode pages must not pay for — or trip over — metadata)."""
    _device, arena = make_arena()
    view = ArenaView(arena)
    assert view._meta is None
    view.decode_page(view.page_ids[0])
    assert view._meta is None


# ----------------------------------------------------------------------
# failure modes (S3): every one a typed SnapshotFormatError
# ----------------------------------------------------------------------
def test_truncated_header():
    with pytest.raises(SnapshotFormatError, match="shorter than the"):
        ArenaView(b"RPRARENA\x00")


def test_truncated_table():
    _device, arena = make_arena()
    with pytest.raises(SnapshotFormatError, match="arena truncated"):
        ArenaView(arena[:_ARENA_HEADER.size + 4])


def test_bad_magic():
    _device, arena = make_arena()
    blob = b"XXXXXXXX" + arena[8:]
    with pytest.raises(SnapshotFormatError, match="bad arena magic"):
        ArenaView(blob)


def test_future_arena_version():
    _device, arena = make_arena()
    blob = bytearray(arena)
    struct.pack_into(">I", blob, 8, 99)
    with pytest.raises(SnapshotFormatError, match="unsupported arena version"):
        ArenaView(bytes(blob))


def _table_start(arena):
    meta_len = _ARENA_HEADER.unpack_from(arena, 0)[5]
    return _ARENA_HEADER.size + meta_len


def test_table_entry_past_payload():
    _device, arena = make_arena()
    blob = bytearray(arena)
    pos = _table_start(arena)
    pid, _offset, _length, crc = _TABLE_ENTRY.unpack_from(blob, pos)
    _TABLE_ENTRY.pack_into(blob, pos, pid, len(arena) - 4, 1 << 20, crc)
    with pytest.raises(SnapshotFormatError, match="points past the payload"):
        ArenaView(bytes(blob))


def test_table_entry_before_data_region():
    """An offset into the header/table itself is as invalid as one past
    the end — a blob may only live in the data region."""
    _device, arena = make_arena()
    blob = bytearray(arena)
    pos = _table_start(arena)
    pid, _offset, length, crc = _TABLE_ENTRY.unpack_from(blob, pos)
    _TABLE_ENTRY.pack_into(blob, pos, pid, 0, length, crc)
    with pytest.raises(SnapshotFormatError, match="points past the payload"):
        ArenaView(bytes(blob))


def test_duplicate_table_entry():
    _device, arena = make_arena()
    blob = bytearray(arena)
    pos = _table_start(arena)
    # Overwrite the second entry's id with the first entry's id.
    first_pid = _TABLE_ENTRY.unpack_from(blob, pos)[0]
    second = list(_TABLE_ENTRY.unpack_from(blob, pos + _TABLE_ENTRY.size))
    second[0] = first_pid
    _TABLE_ENTRY.pack_into(blob, pos + _TABLE_ENTRY.size, *second)
    with pytest.raises(SnapshotFormatError, match="duplicate table entry"):
        ArenaView(bytes(blob))


def test_fingerprint_mismatch_on_decode():
    _device, arena = make_arena()
    blob = bytearray(arena)
    pos = _table_start(arena)
    pid, offset, length, crc = _TABLE_ENTRY.unpack_from(blob, pos)
    _TABLE_ENTRY.pack_into(blob, pos, pid, offset, length, crc ^ 0xFFFF)
    view = ArenaView(bytes(blob))  # attach succeeds: blobs untouched
    with pytest.raises(SnapshotFormatError, match="checksum mismatch"):
        view.decode_page(pid)


def test_undecodable_blob():
    _device, arena = make_arena()
    view = ArenaView(arena)
    pid = view.page_ids[0]
    offset, length, _crc = view._entries[pid]
    blob = bytearray(arena)
    blob[offset:offset + length] = b"\xff" * length
    view = ArenaView(bytes(blob))
    with pytest.raises(SnapshotFormatError, match="undecodable blob"):
        view.decode_page(pid)


def test_unknown_page_id():
    _device, arena = make_arena()
    view = ArenaView(arena)
    with pytest.raises(SnapshotFormatError, match="not in the arena table"):
        view.decode_page(10_000)


def test_hostile_blob_rejected():
    """A page blob resolving globals outside the allowlist must not
    execute, even when its table fingerprint is made to agree."""
    _device, arena = make_arena()
    view = ArenaView(arena)
    pid = view.page_ids[0]
    offset, length, _crc = view._entries[pid]
    evil = pickle.dumps(struct.pack)
    assert len(evil) <= length, "shrink the hostile payload for this test"
    blob = bytearray(arena)
    blob[offset:offset + len(evil)] = evil
    pos = _table_start(arena)
    entry = list(_TABLE_ENTRY.unpack_from(blob, pos))
    entry[2] = len(evil)
    _TABLE_ENTRY.pack_into(blob, pos, *entry)
    view = ArenaView(bytes(blob))
    with pytest.raises(SnapshotFormatError, match="undecodable blob"):
        view.decode_page(pid)


def test_undecodable_meta():
    _device, arena = make_arena()
    blob = bytearray(arena)
    meta_len = _ARENA_HEADER.unpack_from(arena, 0)[5]
    blob[_ARENA_HEADER.size:_ARENA_HEADER.size + meta_len] = b"\xff" * meta_len
    view = ArenaView(bytes(blob))
    with pytest.raises(SnapshotFormatError, match="undecodable arena metadata"):
        view.meta


# ----------------------------------------------------------------------
# lazy device
# ----------------------------------------------------------------------
def test_lazy_device_matches_eager_io_accounting():
    device, arena = make_arena()
    lazy = ArenaBlockDevice(ArenaView(arena))
    eager = ArenaView(arena).materialize()
    assert lazy.pages_in_use == eager.pages_in_use
    for pid in sorted(eager._pages):
        a, b = lazy.read(pid), eager.read(pid)
        assert a.items == b.items and a.header == b.header
    assert lazy.snapshot() == eager.snapshot()
    # Re-reads hit the decoded cache: decode count stays put.
    decodes = lazy.decodes
    lazy.read(sorted(eager._pages)[0])
    assert lazy.decodes == decodes


def test_lazy_device_decodes_on_demand_only():
    _device, arena = make_arena(pages=6)
    lazy = ArenaBlockDevice(ArenaView(arena))
    assert lazy.resident_pages == 0
    lazy.read(lazy._view.page_ids[0])
    assert lazy.resident_pages == 1
    assert lazy.decodes == 1


def test_lru_eviction_bounded_and_redecodable():
    _device, arena = make_arena(pages=6)
    lazy = ArenaBlockDevice(ArenaView(arena), cache_pages=2)
    ids = lazy._view.page_ids
    for pid in ids:
        lazy.read(pid)
    assert lazy.resident_pages <= 2
    assert lazy.evictions == len(ids) - 2
    # An evicted page transparently re-decodes with identical content.
    first = lazy.read(ids[0])
    assert first.items == ArenaView(arena).decode_page(ids[0]).items


def test_dirty_pages_are_pinned():
    _device, arena = make_arena(pages=6)
    lazy = ArenaBlockDevice(ArenaView(arena), cache_pages=1)
    ids = lazy._view.page_ids
    victim = lazy.read(ids[0])
    victim.items = [("mutated",)]
    lazy.write(victim)
    for pid in ids[1:]:  # pressure the LRU hard
        lazy.read(pid)
    assert lazy.read(ids[0]).items == [("mutated",)], "dirty page was evicted"


def test_alloc_and_free_on_lazy_device():
    _device, arena = make_arena()
    lazy = ArenaBlockDevice(ArenaView(arena))
    before = lazy.pages_in_use
    page = lazy.alloc()
    assert page.page_id not in lazy._view._entries
    assert lazy.pages_in_use == before + 1
    # Freeing a never-decoded page skips the decode entirely.
    cold = lazy._view.page_ids[0]
    decodes = lazy.decodes
    lazy.free(cold)
    assert lazy.decodes == decodes
    assert lazy.pages_in_use == before
    with pytest.raises(DanglingPageError):
        lazy.read(cold)


def test_iter_pages_covers_lazy_without_caching():
    device, arena = make_arena()
    lazy = ArenaBlockDevice(ArenaView(arena))
    seen = {p.page_id: p.items for p in lazy.iter_pages()}
    assert seen == {pid: p.items for pid, p in device._pages.items()}
    assert lazy.resident_pages == 0


def test_cache_pages_validation():
    _device, arena = make_arena()
    with pytest.raises(ValueError, match="cache_pages"):
        ArenaBlockDevice(ArenaView(arena), cache_pages=0)
