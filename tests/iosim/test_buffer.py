"""Unit tests for the optional LRU buffer pool."""

import pytest

from repro.iosim import BlockDevice, LRUBufferPool, Pager


def make_pool(pool_pages=2, capacity=8):
    dev = BlockDevice(block_capacity=capacity)
    pool = LRUBufferPool(dev, capacity=pool_pages)
    return dev, pool


def test_capacity_validated():
    dev = BlockDevice(block_capacity=8)
    with pytest.raises(ValueError):
        LRUBufferPool(dev, capacity=0)


def test_repeated_reads_hit_the_pool():
    dev, pool = make_pool()
    page = pool.alloc()
    pool.write(page)
    dev.reset_counters()
    pool.read(page.page_id)  # cached by the write
    pool.read(page.page_id)
    assert dev.reads == 0
    assert pool.hits == 2


def test_eviction_is_lru():
    dev, pool = make_pool(pool_pages=2)
    pages = [pool.alloc() for _ in range(3)]
    for p in pages:
        pool.write(p)  # p0 evicted after p2 cached
    dev.reset_counters()
    pool.read(pages[0].page_id)
    assert dev.reads == 1  # miss
    pool.read(pages[2].page_id)
    assert dev.reads == 1  # hit: p2 still resident


def test_writes_are_write_through():
    dev, pool = make_pool()
    page = pool.alloc()
    pool.write(page)
    pool.write(page)
    assert dev.writes == 2


def test_free_drops_cached_page():
    dev, pool = make_pool()
    page = pool.alloc()
    pool.write(page)
    pool.free(page.page_id)
    assert dev.pages_in_use == 0


def test_hit_rate():
    dev, pool = make_pool()
    page = pool.alloc()
    pool.write(page)
    pool.read(page.page_id)
    pool.read(page.page_id)
    assert pool.hit_rate == 1.0
    pool.reset_counters()
    assert pool.hit_rate == 0.0


def test_pager_runs_on_top_of_pool():
    dev, pool = make_pool()
    pager = Pager(pool)
    page = pager.alloc()
    pager.write(page)
    dev.reset_counters()
    with pager.operation():
        pager.fetch(page.page_id)
        pager.fetch(page.page_id)
    assert dev.reads == 0  # absorbed by the pool (page cached by the write)
