"""Unit tests for operation-scoped page access."""

from repro.iosim import BlockDevice, Pager


def make_pager(capacity=8):
    dev = BlockDevice(block_capacity=capacity)
    return dev, Pager(dev)


def test_fetch_outside_operation_always_charges():
    dev, pager = make_pager()
    page = pager.alloc()
    pager.write(page)
    pager.fetch(page.page_id)
    pager.fetch(page.page_id)
    assert dev.reads == 2


def test_fetch_inside_operation_charges_once_per_page():
    dev, pager = make_pager()
    p1 = pager.alloc()
    p2 = pager.alloc()
    pager.write(p1)
    pager.write(p2)
    dev.reset_counters()
    with pager.operation():
        pager.fetch(p1.page_id)
        pager.fetch(p1.page_id)
        pager.fetch(p2.page_id)
        pager.fetch(p1.page_id)
    assert dev.reads == 2


def test_write_inside_operation_flushes_once_per_page():
    dev, pager = make_pager()
    page = pager.alloc()
    dev.reset_counters()
    with pager.operation():
        pager.write(page)
        pager.write(page)
        pager.write(page)
    assert dev.writes == 1


def test_nested_operations_share_the_outer_pin_set():
    dev, pager = make_pager()
    page = pager.alloc()
    pager.write(page)
    dev.reset_counters()
    with pager.operation():
        pager.fetch(page.page_id)
        with pager.operation():
            pager.fetch(page.page_id)
        pager.fetch(page.page_id)
    assert dev.reads == 1


def test_pin_set_cleared_between_operations():
    dev, pager = make_pager()
    page = pager.alloc()
    pager.write(page)
    dev.reset_counters()
    with pager.operation():
        pager.fetch(page.page_id)
    with pager.operation():
        pager.fetch(page.page_id)
    assert dev.reads == 2


def test_alloc_inside_operation_is_pinned():
    dev, pager = make_pager()
    with pager.operation():
        page = pager.alloc()
        pager.write(page)
        pager.fetch(page.page_id)
    assert dev.reads == 0
    assert dev.writes == 1


def test_free_inside_operation_unpins():
    dev, pager = make_pager()
    page = pager.alloc()
    pager.write(page)
    with pager.operation():
        pager.fetch(page.page_id)
        pager.free(page.page_id)
        assert pager.in_operation
    assert dev.frees == 1
