"""Tests for IOStats arithmetic/serialisation and Measurement scoping."""

import pytest

from repro.iosim import BlockDevice, IOStats, Measurement, Pager


def touch(device, pager, n_reads):
    page = pager.alloc()
    pager.write(page)
    for _ in range(n_reads):
        device.read(page.page_id)


class TestIOStatsArithmetic:
    def test_subtract_then_add_is_identity(self):
        a = IOStats(reads=9, writes=4, allocs=2, frees=1)
        b = IOStats(reads=3, writes=1, allocs=1, frees=0)
        assert a - b + b == a
        assert b + a - a == b

    def test_zero_is_neutral(self):
        a = IOStats(reads=5, writes=2)
        zero = IOStats()
        assert a + zero == a
        assert a - zero == a
        assert a - a == zero

    def test_total(self):
        assert IOStats(reads=3, writes=2, allocs=7, frees=1).total == 5

    def test_str_mentions_every_counter(self):
        text = str(IOStats(reads=1, writes=2, allocs=3, frees=4))
        for part in ("reads=1", "writes=2", "allocs=3", "frees=4"):
            assert part in text


class TestIOStatsSerialisation:
    def test_round_trip(self):
        a = IOStats(reads=9, writes=4, allocs=2, frees=1)
        assert IOStats.from_dict(a.to_dict()) == a

    def test_from_dict_defaults_missing_fields(self):
        assert IOStats.from_dict({"reads": 2}) == IOStats(reads=2)
        assert IOStats.from_dict({}) == IOStats()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="hits"):
            IOStats.from_dict({"reads": 1, "hits": 2})

    def test_to_dict_is_json_ready(self):
        import json

        assert json.loads(json.dumps(IOStats(reads=1).to_dict()))["reads"] == 1


class TestMeasurement:
    def test_measures_the_scope_only(self):
        device = BlockDevice(4)
        pager = Pager(device)
        touch(device, pager, 2)  # outside: not measured
        with Measurement(device) as m:
            touch(device, pager, 3)
        assert m.stats.reads == 3
        assert m.stats.writes == 1

    def test_nesting(self):
        device = BlockDevice(4)
        pager = Pager(device)
        with Measurement(device) as outer:
            touch(device, pager, 2)
            with Measurement(device) as inner:
                touch(device, pager, 3)
        assert inner.stats.reads == 3
        assert outer.stats.reads == 5
        # The outer window contains the inner one exactly.
        assert (outer.stats - inner.stats).reads == 2

    def test_sequential_windows_sum_to_one_big_window(self):
        device = BlockDevice(4)
        pager = Pager(device)
        with Measurement(device) as whole:
            with Measurement(device) as first:
                touch(device, pager, 1)
            with Measurement(device) as second:
                touch(device, pager, 4)
        assert first.stats + second.stats == whole.stats
