"""Unit tests for buffer-pool page pinning and prefetch."""

import pytest

from repro.iosim import BlockDevice, LRUBufferPool, Pager, PinnedPageError


def make_pool(pool_pages=4, capacity=8):
    dev = BlockDevice(block_capacity=capacity)
    pool = LRUBufferPool(dev, capacity=pool_pages)
    return dev, pool


def alloc_pages(pool, n):
    pages = [pool.alloc() for _ in range(n)]
    for p in pages:
        pool.write(p)
    return pages


def test_pinned_page_survives_cache_thrashing_scan():
    dev, pool = make_pool(pool_pages=4)
    hot = alloc_pages(pool, 1)[0]
    cold = alloc_pages(pool, 3)
    scan = alloc_pages(pool, 32)

    pool.pin(hot.page_id)
    for p in cold:
        pool.read(p.page_id)
    for p in scan:  # thrash: 8x the pool's capacity
        pool.read(p.page_id)

    dev.reset_counters()
    pool.read(hot.page_id)
    assert dev.reads == 0, "pinned page was evicted by the scan"
    # The unpinned pages went through the LRU as usual.
    dev.reset_counters()
    pool.read(cold[0].page_id)
    assert dev.reads == 1, "unpinned page unexpectedly survived the scan"


def test_unpin_makes_page_evictable_again():
    dev, pool = make_pool(pool_pages=2)
    a = alloc_pages(pool, 1)[0]
    pool.pin(a.page_id)
    alloc_pages(pool, 8)
    pool.unpin(a.page_id)
    alloc_pages(pool, 8)
    dev.reset_counters()
    pool.read(a.page_id)
    assert dev.reads == 1


def test_pins_are_reference_counted():
    dev, pool = make_pool(pool_pages=1)
    a = alloc_pages(pool, 1)[0]
    pool.pin(a.page_id)
    pool.pin(a.page_id)
    assert pool.pinned_count == 1
    pool.unpin(a.page_id)
    assert pool.is_pinned(a.page_id)  # one reference remains
    pool.unpin(a.page_id)
    assert not pool.is_pinned(a.page_id)
    assert pool.pinned_count == 0


def test_unpin_unknown_page_raises():
    _dev, pool = make_pool()
    with pytest.raises(KeyError):
        pool.unpin(12345)


def test_pool_overflows_rather_than_evicting_pins():
    dev, pool = make_pool(pool_pages=2)
    pinned = alloc_pages(pool, 3)
    for p in pinned:
        pool.pin(p.page_id)  # re-reads anything the writes already evicted
    assert pool.pinned_count == 3
    dev.reset_counters()
    for p in pinned:  # all three resident despite capacity 2
        pool.read(p.page_id)
    assert dev.reads == 0
    for p in pinned:
        pool.unpin(p.page_id)
    assert len(pool._lru) <= pool.capacity  # overflow drained on release


def test_free_of_pinned_page_raises():
    # Freeing a pinned page used to silently drop the pin, masking a
    # use-after-free; it must refuse until the pin is released.
    _dev, pool = make_pool()
    a = alloc_pages(pool, 1)[0]
    pool.pin(a.page_id)
    with pytest.raises(PinnedPageError) as exc:
        pool.free(a.page_id)
    assert exc.value.page_id == a.page_id
    assert exc.value.pins == 1
    assert pool.is_pinned(a.page_id)  # the refusal left the pin intact
    pool.read(a.page_id)  # ...and the page alive
    pool.unpin(a.page_id)
    pool.free(a.page_id)  # unpinned, the free goes through
    assert pool.pinned_count == 0


def test_prefetch_warms_uncached_pages_only():
    dev, pool = make_pool(pool_pages=8)
    pages = alloc_pages(pool, 4)
    pool.read(pages[0].page_id)
    hits_before = pool.hits
    dev.reset_counters()
    fetched = pool.prefetch(p.page_id for p in pages)
    assert fetched == 0  # writes cached everything already
    assert dev.reads == 0
    assert pool.hits == hits_before  # prefetch never counts hits

    # Evict everything with a scan, then prefetch really reads.
    alloc_pages(pool, 16)
    dev.reset_counters()
    fetched = pool.prefetch(p.page_id for p in pages)
    assert fetched == 4
    assert dev.reads == 4


def test_pager_pin_passthrough_and_noop_on_bare_device():
    dev, pool = make_pool(pool_pages=2)
    pager = Pager(pool)
    a = alloc_pages(pool, 1)[0]
    assert pager.pin(a.page_id) is True
    assert pool.is_pinned(a.page_id)
    pager.unpin(a.page_id)
    assert not pool.is_pinned(a.page_id)
    with pager.pinning(a.page_id):
        assert pool.is_pinned(a.page_id)
    assert not pool.is_pinned(a.page_id)
    assert pager.prefetch([a.page_id]) >= 0

    bare = Pager(BlockDevice(block_capacity=8))
    page = bare.alloc()
    bare.write(page)
    reads_before = bare.device.reads
    assert bare.pin(page.page_id) is False  # no pool: no-op, no I/O
    bare.unpin(page.page_id)
    with bare.pinning(page.page_id):
        pass
    assert bare.prefetch([page.page_id]) == 0
    assert bare.device.reads == reads_before


def test_io_report_counts_pinned_pages():
    from repro import SegmentDatabase
    from repro.workloads import grid_segments

    db = SegmentDatabase.bulk_load(
        grid_segments(100, seed=9), engine="solution2",
        block_capacity=16, buffer_pages=4,
    )
    report = db.io_report()
    assert report["buffer"]["pinned"] == 0
    db.buffer_pool.pin(db._index.root_pid)
    assert db.io_report()["buffer"]["pinned"] == 1
    db.buffer_pool.unpin(db._index.root_pid)
    assert db.io_report()["buffer"]["pinned"] == 0


def test_prefetch_of_already_pinned_page_is_free():
    dev, pool = make_pool(pool_pages=4)
    a = alloc_pages(pool, 1)[0]
    pool.pin(a.page_id)
    alloc_pages(pool, 16)  # thrash; the pinned page must stay resident
    dev.reset_counters()
    misses_before = pool.misses
    assert pool.prefetch([a.page_id]) == 0
    assert dev.reads == 0, "prefetch re-read a resident pinned page"
    assert pool.misses == misses_before
    assert pool.is_pinned(a.page_id)  # prefetch never touches pins


def test_prefetch_into_fully_pinned_pool_overflows_not_evicts():
    dev, pool = make_pool(pool_pages=2)
    pinned = alloc_pages(pool, 2)
    for p in pinned:
        pool.pin(p.page_id)
    extra = alloc_pages(pool, 3)
    # The writes above cached the extras; scan them out via a fresh set
    # so prefetch has something real to fetch.
    assert pool.prefetch(p.page_id for p in extra) >= 0
    dev.reset_counters()
    for p in pinned:  # every pinned page still answered from cache
        pool.read(p.page_id)
    assert dev.reads == 0, "a pinned page was evicted by prefetch overflow"
    for p in pinned:
        pool.unpin(p.page_id)
    assert len(pool._lru) <= pool.capacity  # overflow drained on unpin


def test_unpin_of_never_pinned_cached_page_raises_and_keeps_cache():
    dev, pool = make_pool(pool_pages=4)
    a = alloc_pages(pool, 1)[0]
    pool.read(a.page_id)  # cached, never pinned
    with pytest.raises(KeyError):
        pool.unpin(a.page_id)
    dev.reset_counters()
    pool.read(a.page_id)
    assert dev.reads == 0, "failed unpin disturbed the cache"


def test_drop_cache_goes_cold_and_refuses_under_pins():
    dev, pool = make_pool(pool_pages=4)
    pages = alloc_pages(pool, 3)
    for p in pages:
        pool.read(p.page_id)
    pool.pin(pages[0].page_id)
    with pytest.raises(PinnedPageError):
        pool.drop_cache()
    dev.reset_counters()
    pool.read(pages[0].page_id)
    assert dev.reads == 0  # refusal left the cache warm
    pool.unpin(pages[0].page_id)
    pool.drop_cache()
    dev.reset_counters()
    for p in pages:
        pool.read(p.page_id)
    assert dev.reads == len(pages), "drop_cache left warm pages behind"
