"""Unit tests for the block device and I/O statistics."""

import pytest

from repro.iosim import (
    BlockDevice,
    DanglingPageError,
    DoubleFreeError,
    IOStats,
    Measurement,
)


def test_block_capacity_validated():
    with pytest.raises(ValueError):
        BlockDevice(block_capacity=1)


def test_alloc_read_write_counters():
    dev = BlockDevice(block_capacity=8)
    page = dev.alloc()
    page.put_items([1, 2, 3])
    dev.write(page)
    fetched = dev.read(page.page_id)
    assert fetched.items == [1, 2, 3]
    assert dev.snapshot() == IOStats(reads=1, writes=1, allocs=1, frees=0)


def test_read_unallocated_page_raises():
    dev = BlockDevice(block_capacity=8)
    with pytest.raises(DanglingPageError):
        dev.read(99)


def test_read_after_free_raises():
    dev = BlockDevice(block_capacity=8)
    page = dev.alloc()
    dev.free(page.page_id)
    with pytest.raises(DanglingPageError):
        dev.read(page.page_id)


def test_double_free_raises():
    dev = BlockDevice(block_capacity=8)
    page = dev.alloc()
    dev.free(page.page_id)
    with pytest.raises(DoubleFreeError):
        dev.free(page.page_id)


def test_write_validates_capacity():
    dev = BlockDevice(block_capacity=2)
    page = dev.alloc()
    page.items.extend([1, 2, 3])
    from repro.iosim import PageOverflowError

    with pytest.raises(PageOverflowError):
        dev.write(page)


def test_pages_in_use_tracks_space():
    dev = BlockDevice(block_capacity=8)
    pages = [dev.alloc() for _ in range(5)]
    assert dev.pages_in_use == 5
    dev.free(pages[0].page_id)
    assert dev.pages_in_use == 4


def test_page_ids_never_reused():
    dev = BlockDevice(block_capacity=8)
    first = dev.alloc()
    dev.free(first.page_id)
    second = dev.alloc()
    assert second.page_id != first.page_id


def test_reset_counters_keeps_pages():
    dev = BlockDevice(block_capacity=8)
    page = dev.alloc()
    dev.write(page)
    dev.reset_counters()
    assert dev.snapshot() == IOStats()
    assert dev.pages_in_use == 1


def test_stats_arithmetic():
    a = IOStats(reads=5, writes=2, allocs=1, frees=0)
    b = IOStats(reads=3, writes=1, allocs=1, frees=0)
    assert (a - b) == IOStats(reads=2, writes=1, allocs=0, frees=0)
    assert (a + b).total == 11
    assert a.total == 7


def test_measurement_scopes_io():
    dev = BlockDevice(block_capacity=8)
    page = dev.alloc()
    dev.write(page)
    with Measurement(dev) as m:
        dev.read(page.page_id)
        dev.read(page.page_id)
    assert m.stats.reads == 2
    assert m.stats.writes == 0
