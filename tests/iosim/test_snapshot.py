"""Unit tests for the binary snapshot container (save_device/load_device).

Format version 2 (current) carries a flat page arena; version 1 (legacy)
one object-graph pickle.  Both must round-trip through ``load_device``;
the arena-specific failure modes live in ``test_arena.py``.
"""

import pickle
import struct
import zlib

import pytest

from repro.iosim import (
    BlockDevice,
    SNAPSHOT_FORMAT_VERSION,
    SnapshotFormatError,
    load_device,
    save_device,
)
from repro.iosim.snapshot import _HEADER, MAGIC, SUPPORTED_VERSIONS

VERSIONS = SUPPORTED_VERSIONS


def make_device(pages=5, capacity=8):
    device = BlockDevice(capacity)
    for i in range(pages):
        page = device.alloc()
        page.items = [("item", i, j) for j in range(i + 1)]
        page.set_header("kind", f"p{i}")
        device.write(page)
    # A hole in the id space: freed pages must not resurrect on load.
    device.free(0)
    return device


@pytest.mark.parametrize("version", VERSIONS)
def test_round_trip_preserves_pages_and_meta(tmp_path, version):
    device = make_device()
    path = str(tmp_path / "dev.snap")
    nbytes = save_device(path, device, {"engine": "x", "root": 3},
                         format_version=version)
    assert nbytes == (tmp_path / "dev.snap").stat().st_size

    restored, meta = load_device(path)
    assert meta == {"engine": "x", "root": 3}
    assert restored.block_capacity == device.block_capacity
    assert sorted(restored._pages) == sorted(device._pages)
    for pid, page in device._pages.items():
        twin = restored._pages[pid]
        assert twin.items == page.items
        assert twin.header == page.header
    # The allocator does not reuse ids that were live at save time.
    fresh = restored.alloc()
    assert fresh.page_id not in device._pages
    # Counters start at zero: opening a snapshot is free in the model.
    assert restored.snapshot().total == 0


def test_default_format_is_arena(tmp_path):
    path = tmp_path / "dev.snap"
    save_device(str(path), make_device(), {})
    _magic, version, _length, _crc = _HEADER.unpack(
        path.read_bytes()[:_HEADER.size])
    assert version == SNAPSHOT_FORMAT_VERSION == 2


def test_v1_files_still_load(tmp_path):
    """Old-format files written before the arena stay readable."""
    device = make_device()
    path = str(tmp_path / "legacy.snap")
    save_device(path, device, {"engine": "x"}, format_version=1)
    restored, meta = load_device(path)
    assert meta == {"engine": "x"}
    assert sorted(restored._pages) == sorted(device._pages)


def test_shared_items_stay_shared_after_v1_round_trip(tmp_path):
    """The legacy object-graph payload preserves cross-page identity
    (the arena trades that for independently decodable pages — see
    test_arena.py for the v2 contract)."""
    device = BlockDevice(8)
    shared = ["payload"]
    a, b = device.alloc(), device.alloc()
    a.items = [shared]
    b.items = [shared]
    device.write(a)
    device.write(b)
    path = str(tmp_path / "dev.snap")
    save_device(path, device, {}, format_version=1)
    restored, _meta = load_device(path)
    ra, rb = restored._pages[a.page_id], restored._pages[b.page_id]
    assert ra.items[0] is rb.items[0], "object identity lost in snapshot"


def test_v2_duplicates_cross_page_items_but_preserves_content(tmp_path):
    device = BlockDevice(8)
    shared = ["payload"]
    a, b = device.alloc(), device.alloc()
    a.items = [shared]
    b.items = [shared]
    device.write(a)
    device.write(b)
    path = str(tmp_path / "dev.snap")
    save_device(path, device, {})
    restored, _meta = load_device(path)
    ra, rb = restored._pages[a.page_id], restored._pages[b.page_id]
    assert ra.items == rb.items == [["payload"]]


def test_unknown_write_version_rejected(tmp_path):
    with pytest.raises(ValueError, match="cannot write snapshot format"):
        save_device(str(tmp_path / "dev.snap"), make_device(), {},
                    format_version=7)


def test_missing_file_and_short_file(tmp_path):
    with pytest.raises(SnapshotFormatError, match="unreadable"):
        load_device(str(tmp_path / "nope.snap"))
    short = tmp_path / "short.snap"
    short.write_bytes(b"REPROSN")  # shorter than the header
    with pytest.raises(SnapshotFormatError, match="shorter than the header"):
        load_device(str(short))


def test_bad_magic(tmp_path):
    path = tmp_path / "dev.snap"
    save_device(str(path), make_device(), {})
    blob = bytearray(path.read_bytes())
    blob[0] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(SnapshotFormatError, match="bad magic"):
        load_device(str(path))


def test_future_version_rejected(tmp_path):
    path = tmp_path / "dev.snap"
    save_device(str(path), make_device(), {})
    blob = bytearray(path.read_bytes())
    struct.pack_into(">I", blob, 8, SNAPSHOT_FORMAT_VERSION + 1)
    path.write_bytes(bytes(blob))
    with pytest.raises(SnapshotFormatError, match="unsupported format version"):
        load_device(str(path))


@pytest.mark.parametrize("version", VERSIONS)
def test_truncated_payload(tmp_path, version):
    path = tmp_path / "dev.snap"
    save_device(str(path), make_device(), {}, format_version=version)
    blob = path.read_bytes()
    path.write_bytes(blob[:-10])
    with pytest.raises(SnapshotFormatError, match="truncated"):
        load_device(str(path))


@pytest.mark.parametrize("version", VERSIONS)
def test_flipped_payload_byte_fails_crc(tmp_path, version):
    path = tmp_path / "dev.snap"
    save_device(str(path), make_device(), {}, format_version=version)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0x01
    path.write_bytes(bytes(blob))
    with pytest.raises(SnapshotFormatError, match="CRC mismatch"):
        load_device(str(path))


def _repack_v1(path, payload_obj):
    """Write a v1 snapshot with a valid header around an arbitrary payload."""
    payload = pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)
    path.write_bytes(
        _HEADER.pack(MAGIC, 1, len(payload), zlib.crc32(payload)) + payload
    )


def test_v1_page_fingerprint_mismatch_detected(tmp_path):
    """Content tampering behind a recomputed file CRC still fails: the
    per-page fingerprints are the second, independent verification layer."""
    device = make_device()
    path = tmp_path / "dev.snap"
    save_device(str(path), device, {}, format_version=1)
    payload_obj = pickle.loads(path.read_bytes()[_HEADER.size:])
    pid, items, header = payload_obj["pages"][0]
    payload_obj["pages"][0] = (pid, items + [("smuggled",)], header)
    _repack_v1(path, payload_obj)
    with pytest.raises(SnapshotFormatError, match="checksum mismatch"):
        load_device(str(path))


def test_missing_payload_field(tmp_path):
    path = tmp_path / "dev.snap"
    _repack_v1(path, {"meta": {}, "block_capacity": 8})
    with pytest.raises(SnapshotFormatError, match="missing field"):
        load_device(str(path))


def test_hostile_globals_rejected(tmp_path):
    """A pickle resolving globals outside the allowlist must not execute."""
    path = tmp_path / "dev.snap"
    payload = pickle.dumps(struct.pack)  # any non-allowlisted callable
    path.write_bytes(
        _HEADER.pack(MAGIC, 1, len(payload), zlib.crc32(payload)) + payload
    )
    with pytest.raises(SnapshotFormatError, match="undecodable payload"):
        load_device(str(path))
