"""Unit tests for the fault-injection layer (FaultyBlockDevice & friends)."""

import pytest

from repro.iosim import (
    BlockDevice,
    ChecksumError,
    DanglingPageError,
    FaultSchedule,
    FaultyBlockDevice,
    LRUBufferPool,
    Pager,
    RetryPolicy,
    SimulatedCrash,
    StorageError,
    TransientIOError,
    page_fingerprint,
)


def _written_page(dev, items=(1, 2, 3)):
    page = dev.alloc()
    page.put_items(list(items))
    dev.write(page)
    return page


# ----------------------------------------------------------------------
# schedule determinism & reproduction
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_same_seed_replays_same_faults(self):
        a = FaultSchedule(seed=42, read_error_rate=0.3, corrupt_read_rate=0.2)
        b = FaultSchedule(seed=42, read_error_rate=0.3, corrupt_read_rate=0.2)
        decisions_a = [a.next_read_fault(i, 0) for i in range(200)]
        decisions_b = [b.next_read_fault(i, 0) for i in range(200)]
        assert decisions_a == decisions_b
        assert any(d is not None for d in decisions_a)

    def test_round_trip_through_dict(self):
        sched = FaultSchedule(seed=7, read_error_rate=0.1, torn_write_rate=0.2,
                              crash_after_writes=5, crash_points={"pt": 2})
        clone = FaultSchedule.from_dict(sched.to_dict())
        assert clone.seed == 7
        assert clone.read_error_rate == 0.1
        assert clone.torn_write_rate == 0.2
        assert clone.crash_after_writes == 5
        assert clone.crash_points == {"pt": 2}

    def test_history_records_injections(self):
        sched = FaultSchedule(seed=1, read_error_rate=1.0)
        sched.next_read_fault(9, 0)
        assert sched.history and sched.history[0]["kind"] == "transient-read"
        assert sched.history[0]["page_id"] == 9

    def test_disarmed_scope(self):
        sched = FaultSchedule(seed=1, read_error_rate=1.0)
        with sched.disarmed():
            assert not sched.enabled
        assert sched.enabled

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule(read_error_rate=1.5)

    def test_crash_point_fires_on_kth_hit(self):
        sched = FaultSchedule(crash_points={"pt": 3})
        assert not sched.hit_crash_point("pt")
        assert not sched.hit_crash_point("pt")
        assert sched.hit_crash_point("pt")
        # one-shot: the point is consumed
        assert not sched.hit_crash_point("pt")

    def test_unregistered_crash_point_never_fires(self):
        sched = FaultSchedule(crash_points={"pt": 1})
        assert not sched.hit_crash_point("other")


# ----------------------------------------------------------------------
# fault-free cost equivalence (the hard contract)
# ----------------------------------------------------------------------
def test_fault_free_device_charges_identical_ios():
    plain = BlockDevice(block_capacity=8)
    faulty = FaultyBlockDevice(8, schedule=FaultSchedule(seed=0),
                               retry=RetryPolicy(max_retries=5))
    for dev in (plain, faulty):
        pages = [_written_page(dev, [i]) for i in range(10)]
        for page in pages:
            dev.read(page.page_id)
            dev.read(page.page_id)
        dev.free(pages[0].page_id)
    assert faulty.snapshot().to_dict() == plain.snapshot().to_dict()
    assert faulty.fault_report()["faults_injected"] == 0


# ----------------------------------------------------------------------
# checksums
# ----------------------------------------------------------------------
class TestChecksums:
    def test_bit_rot_detected_on_read(self):
        dev = FaultyBlockDevice(8)
        page = _written_page(dev)
        dev.corrupt_page(page.page_id)
        with pytest.raises(ChecksumError):
            dev.read(page.page_id)
        assert dev.checksum_failures == 1

    def test_rewrite_heals_at_rest_corruption(self):
        dev = FaultyBlockDevice(8)
        page = _written_page(dev)
        dev.corrupt_page(page.page_id)
        dev.write(page)
        assert dev.read(page.page_id) is page

    def test_unflushed_mutation_detected(self):
        # A page mutated behind the device's back has a stale checksum.
        dev = FaultyBlockDevice(8)
        page = _written_page(dev)
        page.items.append(99)
        with pytest.raises(ChecksumError):
            dev.read(page.page_id)

    def test_note_write_refreshes_checksum(self):
        # The Pager dedupes the second write of a page inside operation();
        # note_write() must keep the fingerprint current anyway.
        dev = FaultyBlockDevice(8)
        page = _written_page(dev)
        page.items.append(99)
        dev.note_write(page)
        assert dev.read(page.page_id) is page

    def test_fingerprint_ignores_header_order(self):
        dev = BlockDevice(8)
        a, b = dev.alloc(), dev.alloc()
        a.set_header("x", 1)
        a.set_header("y", 2)
        b.set_header("y", 2)
        b.set_header("x", 1)
        fp_a, fp_b = page_fingerprint(a), page_fingerprint(b)
        # same logical content -> same fingerprint regardless of insertion
        # order (page ids differ but are not part of the fingerprint)
        assert fp_a == fp_b

    def test_verify_pages_scans_offline(self):
        dev = FaultyBlockDevice(8)
        good = _written_page(dev, [1])
        bad = _written_page(dev, [2])
        dev.corrupt_page(bad.page_id, reason="rot")
        before = dev.snapshot()
        problems = dev.verify_pages()
        assert dev.snapshot().to_dict() == before.to_dict()  # no I/O charged
        assert problems == [(bad.page_id, "rot")]
        assert good.page_id not in [pid for pid, _ in problems]


# ----------------------------------------------------------------------
# retries
# ----------------------------------------------------------------------
class TestRetries:
    def test_transient_fault_retried_and_charged(self):
        # rate 1.0 -> every attempt fails; retries exhaust then raise.
        dev = FaultyBlockDevice(
            8, schedule=FaultSchedule(seed=0, read_error_rate=1.0),
            retry=RetryPolicy(max_retries=2, backoff_ios=3),
        )
        with dev.schedule.disarmed():
            page = _written_page(dev)
        reads_before = dev.reads
        with pytest.raises(TransientIOError) as exc:
            dev.read(page.page_id)
        assert exc.value.page_id == page.page_id
        assert dev.reads - reads_before == 3  # 1 attempt + 2 retries
        assert dev.retries == 2
        assert dev.retry_penalty_ios == 3 * 1 + 3 * 2

    def test_retry_eventually_succeeds(self):
        # With a mid rate some reads need retries but all succeed within
        # a generous budget over many trials at this seed.
        dev = FaultyBlockDevice(
            8, schedule=FaultSchedule(seed=3, read_error_rate=0.3),
            retry=RetryPolicy(max_retries=20),
        )
        with dev.schedule.disarmed():
            page = _written_page(dev)
        for _ in range(50):
            assert dev.read(page.page_id) is page
        assert dev.retries > 0

    def test_in_flight_corruption_exhausts_to_checksum_error(self):
        dev = FaultyBlockDevice(
            8, schedule=FaultSchedule(seed=0, corrupt_read_rate=1.0),
            retry=RetryPolicy(max_retries=1),
        )
        with dev.schedule.disarmed():
            page = _written_page(dev)
        with pytest.raises(ChecksumError):
            dev.read(page.page_id)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_ios=-1)


# ----------------------------------------------------------------------
# torn writes
# ----------------------------------------------------------------------
def test_torn_write_leaves_page_corrupt_until_rewritten():
    dev = FaultyBlockDevice(
        8, schedule=FaultSchedule(seed=0, torn_write_rate=1.0))
    with dev.schedule.disarmed():
        page = _written_page(dev)
    page.items.append(4)
    writes_before = dev.writes
    dev.write(page)  # torn: charged but leaves corruption at rest
    assert dev.writes == writes_before + 1
    assert dev.torn_writes == 1
    with pytest.raises(ChecksumError):
        dev.read(page.page_id)
    with dev.schedule.disarmed():
        dev.write(page)  # clean rewrite heals
    assert dev.read(page.page_id) is page


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_rollback_restores_content_allocs_and_frees(self):
        dev = FaultyBlockDevice(8)
        keep = _written_page(dev, [1, 2])
        doomed = _written_page(dev, [3])
        try:
            with dev.journaled():
                dev.read(keep.page_id)
                keep.items.append(9)
                dev.write(keep)
                dev.free(doomed.page_id)
                fresh = dev.alloc()
                fresh.put_items([7])
                dev.write(fresh)
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        assert keep.items == [1, 2]              # mutation undone
        assert dev.read(doomed.page_id) is doomed  # free undone
        with pytest.raises(DanglingPageError):
            dev.read(fresh.page_id)              # alloc undone
        assert not dev.needs_recovery

    def test_commit_makes_frees_permanent(self):
        dev = FaultyBlockDevice(8)
        doomed = _written_page(dev)
        with dev.journaled():
            dev.free(doomed.page_id)
        with pytest.raises(DanglingPageError):
            dev.read(doomed.page_id)

    def test_freed_page_unreadable_inside_operation(self):
        dev = FaultyBlockDevice(8)
        doomed = _written_page(dev)
        with pytest.raises(DanglingPageError):
            with dev.journaled():
                dev.free(doomed.page_id)
                dev.read(doomed.page_id)
        # ...and the error rolled the free back.
        assert dev.read(doomed.page_id) is doomed

    def test_crash_leaves_dirty_journal(self):
        dev = FaultyBlockDevice(
            8, schedule=FaultSchedule(seed=0, crash_after_writes=1))
        page = _written_page(dev)  # crash countdown ignores unjournaled writes
        with pytest.raises(SimulatedCrash):
            with dev.journaled():
                dev.read(page.page_id)  # pre-image captured here
                page.items.append(4)
                dev.write(page)
        assert dev.needs_recovery
        assert dev.fault_report()["journal"] == "needs-recovery"
        # further operations are refused until recovery
        with pytest.raises(StorageError):
            dev.begin_journal()
        dev.rollback_journal()
        assert not dev.needs_recovery
        assert page.items == [1, 2, 3]
        assert dev.read(page.page_id) is page  # torn page healed by rollback

    def test_nested_journal_rejected(self):
        dev = FaultyBlockDevice(8)
        with pytest.raises(StorageError):
            with dev.journaled():
                dev.begin_journal()

    def test_buffer_pool_cache_hit_still_journaled(self):
        # A pool cache hit bypasses device.read(); journal_note_read must
        # still capture the pre-image before the operation mutates it.
        dev = FaultyBlockDevice(8)
        pool = LRUBufferPool(dev, 4)
        pager = Pager(pool)
        page = pager.alloc()
        page.put_items([1])
        pager.write(page)
        pool.read(page.page_id)  # now cached
        try:
            with dev.journaled():
                cached = pool.read(page.page_id)  # cache hit
                cached.items.append(2)
                pool.write(cached)
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        assert page.items == [1]


def test_reset_counters_clears_fault_counters():
    dev = FaultyBlockDevice(8, schedule=FaultSchedule(seed=0, read_error_rate=1.0),
                            retry=RetryPolicy(max_retries=0))
    with dev.schedule.disarmed():
        page = _written_page(dev)
    with pytest.raises(TransientIOError):
        dev.read(page.page_id)
    assert dev.faults_injected and dev.transient_failures
    dev.reset_counters()
    report = dev.fault_report()
    assert all(report[k] == 0 for k in (
        "faults_injected", "retries", "retry_penalty_ios", "checksum_failures",
        "transient_failures", "torn_writes", "crashes"))
