"""Error-path coverage for the iosim layer.

The happy paths are exercised by every other test in the repo; these
tests pin down what happens when callers misuse the storage API —
use-after-free through each access layer, bad pin bookkeeping, and
overflow enforcement under a buffer pool.
"""

import pytest

from repro.iosim import (
    BlockDevice,
    DanglingPageError,
    LRUBufferPool,
    PageOverflowError,
    Pager,
)


def _written(dev_or_pool, items):
    page = dev_or_pool.alloc()
    page.put_items(list(items))
    dev_or_pool.write(page)
    return page


class TestReadAfterFree:
    def test_via_buffer_pool(self):
        dev = BlockDevice(block_capacity=8)
        pool = LRUBufferPool(dev, 4)
        page = _written(pool, [1])
        pool.read(page.page_id)  # cached
        pool.free(page.page_id)
        # The freed page must not be served from the cache.
        with pytest.raises(DanglingPageError):
            pool.read(page.page_id)

    def test_via_pager_outside_operation(self):
        dev = BlockDevice(block_capacity=8)
        pager = Pager(dev)
        page = _written(pager, [1])
        pager.free(page.page_id)
        with pytest.raises(DanglingPageError):
            pager.fetch(page.page_id)

    def test_via_pager_inside_operation(self):
        # The per-operation pin cache must not outlive a free either.
        dev = BlockDevice(block_capacity=8)
        pager = Pager(dev)
        page = _written(pager, [1])
        with pager.operation():
            pager.fetch(page.page_id)  # now in the operation pin cache
            pager.free(page.page_id)
            with pytest.raises(DanglingPageError):
                pager.fetch(page.page_id)

    def test_write_after_free_via_pager(self):
        dev = BlockDevice(block_capacity=8)
        pager = Pager(dev)
        page = _written(pager, [1])
        with pager.operation():
            pager.free(page.page_id)
            with pytest.raises(DanglingPageError):
                pager.write(page)


class TestPinBookkeeping:
    def test_unpin_never_pinned_page_raises_keyerror(self):
        dev = BlockDevice(block_capacity=8)
        pool = LRUBufferPool(dev, 4)
        page = _written(pool, [1])
        with pytest.raises(KeyError):
            pool.unpin(page.page_id)

    def test_unpin_after_last_unpin_raises(self):
        dev = BlockDevice(block_capacity=8)
        pool = LRUBufferPool(dev, 4)
        page = _written(pool, [1])
        pool.pin(page.page_id)
        pool.unpin(page.page_id)
        with pytest.raises(KeyError):
            pool.unpin(page.page_id)

    def test_pin_of_dangling_page_raises_and_leaves_no_pin(self):
        dev = BlockDevice(block_capacity=8)
        pool = LRUBufferPool(dev, 4)
        with pytest.raises(DanglingPageError):
            pool.pin(999)
        assert not pool.is_pinned(999)


class TestPrefetch:
    def test_prefetch_over_live_and_freed_mix_raises(self):
        dev = BlockDevice(block_capacity=8)
        pool = LRUBufferPool(dev, 8)
        live = [_written(pool, [i]) for i in range(3)]
        doomed = _written(pool, [99])
        pool.free(doomed.page_id)
        with pytest.raises(DanglingPageError):
            pool.prefetch([live[0].page_id, doomed.page_id, live[1].page_id])
        # Pages fetched before the failure are legitimately cached...
        assert live[0].page_id in pool._lru
        # ...and the live pages remain readable afterwards.
        for page in live:
            assert pool.read(page.page_id) is page

    def test_prefetch_counts_only_device_fetches(self):
        dev = BlockDevice(block_capacity=8)
        pool = LRUBufferPool(dev, 8)
        pages = [_written(dev, [i]) for i in range(3)]  # not yet cached
        pool.read(pages[0].page_id)  # cache exactly one
        fetched = pool.prefetch([p.page_id for p in pages])
        assert fetched == 2


class TestOverflowUnderPool:
    def test_overflow_caught_on_pooled_write(self):
        dev = BlockDevice(block_capacity=4)
        pool = LRUBufferPool(dev, 4)
        page = pool.alloc()
        page.put_items([1, 2, 3, 4])
        page.items.append(5)  # bypass the API
        with pytest.raises(PageOverflowError):
            pool.write(page)
        # The failed write must not have been charged.
        assert dev.writes == 0

    def test_overflow_caught_on_pooled_pager_write(self):
        dev = BlockDevice(block_capacity=4)
        pager = Pager(LRUBufferPool(dev, 4))
        page = pager.alloc()
        with pytest.raises(PageOverflowError):
            page.put_items(range(5))
