"""Baselines: correctness against the exact predicate, and their cost shape."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FullScanIndex, GridIndex, StabFilterIndex
from repro.geometry import Segment, VerticalQuery, vs_intersects
from repro.iosim import BlockDevice, Measurement, Pager
from repro.workloads import grid_segments, mixed_queries, segment_queries


def oracle(segments, q):
    return sorted(s.label for s in segments if vs_intersects(s, q))


def make(cls, segments, capacity=16, **kw):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    index = cls.build(pager, segments, **kw)
    return dev, pager, index


class TestFullScan:
    def test_matches_oracle(self):
        segments = grid_segments(120, seed=1)
        _d, _p, index = make(FullScanIndex, segments)
        for q in mixed_queries(segments, 15, seed=2):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q)

    def test_query_cost_is_linear(self):
        segments = grid_segments(1024, seed=3)
        dev, pager, index = make(FullScanIndex, segments, capacity=32)
        with Measurement(dev) as m:
            index.query(VerticalQuery.segment(0, 0, 1))
        assert m.stats.reads >= 1024 // 32

    def test_insert(self):
        _d, _p, index = make(FullScanIndex, [])
        s = Segment.from_coords(0, 0, 1, 1, label="s")
        index.insert(s)
        assert len(index) == 1
        assert index.query(VerticalQuery.line(0)) == [s]


class TestStabFilter:
    def test_matches_oracle(self):
        segments = grid_segments(200, seed=4)
        _d, _p, index = make(StabFilterIndex, segments)
        for q in mixed_queries(segments, 20, seed=5):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q)

    def test_insert_then_query(self):
        segments = grid_segments(100, seed=6)
        _d, _p, index = make(StabFilterIndex, segments[:50])
        for s in segments[50:]:
            index.insert(s)
        for q in mixed_queries(segments, 10, seed=7):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q)

    def test_stabbed_count_at_least_output(self):
        segments = grid_segments(200, seed=8)
        _d, _p, index = make(StabFilterIndex, segments)
        for q in segment_queries(segments, 5, selectivity=0.01, seed=9):
            assert index.stabbed_count(q) >= len(index.query(q))

    def test_pays_for_discarded_segments(self):
        """The motivating gap: a short query over a tall stab column costs
        I/O proportional to the column, not to the answer."""
        # 512 long horizontal segments all crossing x=500, plus a thin query.
        segments = [
            Segment.from_coords(0, 4 * i, 1000, 4 * i, label=i) for i in range(512)
        ]
        dev, pager, index = make(StabFilterIndex, segments, capacity=16)
        q = VerticalQuery.segment(500, 0, 4)  # answer: 2 segments
        with Measurement(dev) as m:
            result = index.query(q)
        assert len(result) == 2
        assert m.stats.reads >= 512 // 16  # paid for the whole column


class TestGrid:
    def test_matches_oracle(self):
        segments = grid_segments(300, seed=10)
        _d, _p, index = make(GridIndex, segments)
        for q in mixed_queries(segments, 25, seed=11):
            assert sorted(s.label for s in index.query(q)) == oracle(segments, q)

    def test_empty(self):
        _d, _p, index = make(GridIndex, [])
        assert index.query(VerticalQuery.line(0)) == []

    def test_no_duplicates_for_replicated_segments(self):
        # Long segments replicated across many cells must report once.
        segments = [
            Segment.from_coords(0, 10 * i, 10000, 10 * i + 1, label=i)
            for i in range(40)
        ]
        _d, _p, index = make(GridIndex, segments, cells=8)
        assert index.replication_factor > 1
        got = [s.label for s in index.query(VerticalQuery.line(5000))]
        assert sorted(got) == list(range(40))

    def test_query_outside_bounds(self):
        segments = grid_segments(50, seed=12)
        _d, _p, index = make(GridIndex, segments)
        assert index.query(VerticalQuery.line(-10**9)) == []

    def test_cells_validation(self):
        dev = BlockDevice(block_capacity=16)
        try:
            GridIndex(Pager(dev), cells=0)
            assert False
        except ValueError:
            pass


@given(st.integers(0, 10**6), st.integers(2, 40))
@settings(max_examples=60, deadline=None)
def test_all_baselines_agree(seed, n):
    segments = grid_segments(n, cell_size=20, seed=seed)
    queries = mixed_queries(segments, 6, seed=seed + 1)
    built = [
        make(FullScanIndex, segments)[2],
        make(StabFilterIndex, segments)[2],
        make(GridIndex, segments)[2],
    ]
    for q in queries:
        answers = [sorted(s.label for s in b.query(q)) for b in built]
        assert answers[0] == answers[1] == answers[2], q
