"""Tests for the R-tree baseline."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import RTreeIndex
from repro.geometry import Segment, VerticalQuery, vs_intersects
from repro.iosim import BlockDevice, Measurement, Pager
from repro.workloads import (
    delaunay_edges,
    grid_segments,
    grid_segments_touching,
    mixed_queries,
)


def make(segments, capacity=16):
    dev = BlockDevice(block_capacity=capacity)
    pager = Pager(dev)
    index = RTreeIndex.build(pager, segments)
    return dev, pager, index


def oracle(segments, q):
    return sorted((s.label for s in segments if vs_intersects(s, q)), key=str)


class TestBuild:
    def test_empty(self):
        _d, _p, index = make([])
        assert index.query(VerticalQuery.line(0)) == []
        assert len(index) == 0

    def test_str_packing_is_tight(self):
        n, capacity = 2048, 32
        segments = grid_segments(n, seed=1)
        dev, _p, index = make(segments, capacity=capacity)
        # STR fills pages: little more than n/B leaves plus the upper levels.
        assert dev.pages_in_use <= 1.2 * math.ceil(n / capacity) + 8
        index.check_invariants()

    def test_height_logarithmic(self):
        segments = grid_segments(4096, seed=2)
        _d, _p, index = make(segments, capacity=16)
        assert index.height() <= math.ceil(math.log(4096 / 16, 16)) + 2

    def test_all_segments_roundtrip(self):
        segments = grid_segments(300, seed=3)
        _d, _p, index = make(segments)
        assert sorted((s.label for s in index.all_segments()), key=str) == sorted(
            (s.label for s in segments), key=str
        )


class TestQueries:
    def test_matches_oracle_grid(self):
        segments = grid_segments(400, seed=4)
        _d, _p, index = make(segments)
        for q in mixed_queries(segments, 25, seed=5):
            assert sorted((s.label for s in index.query(q)), key=str) == oracle(
                segments, q
            ), q

    def test_matches_oracle_touching(self):
        segments = grid_segments_touching(350, seed=6)
        _d, _p, index = make(segments)
        for q in mixed_queries(segments, 25, seed=7):
            assert sorted((s.label for s in index.query(q)), key=str) == oracle(
                segments, q
            ), q

    def test_matches_oracle_delaunay(self):
        segments = delaunay_edges(300, seed=8)
        _d, _p, index = make(segments)
        for q in mixed_queries(segments, 20, seed=9):
            assert sorted((s.label for s in index.query(q)), key=str) == oracle(
                segments, q
            ), q

    def test_query_io_reasonable_on_uniform_data(self):
        segments = grid_segments(4096, seed=10)
        dev, pager, index = make(segments, capacity=32)
        q = mixed_queries(segments, 1, selectivity=0.002, seed=11)[0]
        with Measurement(dev) as m:
            index.query(q)
        # No worst-case bound exists, but on uniform data a narrow query
        # touches one root-to-leaf corridor.
        assert m.stats.reads <= 40

    def test_no_duplicates(self):
        segments = grid_segments_touching(200, seed=12)
        _d, _p, index = make(segments)
        for q in mixed_queries(segments, 15, seed=13):
            got = [s.label for s in index.query(q)]
            assert len(got) == len(set(got))


class TestInsert:
    def test_insert_into_empty(self):
        dev = BlockDevice(block_capacity=8)
        index = RTreeIndex(Pager(dev))
        s = Segment.from_coords(0, 0, 5, 5, label="s")
        index.insert(s)
        assert [x.label for x in index.query(VerticalQuery.line(2))] == ["s"]

    def test_incremental_matches_oracle(self):
        segments = grid_segments(250, seed=14)
        dev = BlockDevice(block_capacity=8)
        index = RTreeIndex(Pager(dev))
        for s in segments:
            index.insert(s)
        index.check_invariants()
        for q in mixed_queries(segments, 20, seed=15):
            assert sorted((s.label for s in index.query(q)), key=str) == oracle(
                segments, q
            ), q

    def test_mixed_bulk_and_insert(self):
        segments = grid_segments(300, seed=16)
        _d, _p, index = make(segments[:200], capacity=8)
        for s in segments[200:]:
            index.insert(s)
        index.check_invariants()
        assert len(index) == 300
        for q in mixed_queries(segments, 15, seed=17):
            assert sorted((s.label for s in index.query(q)), key=str) == oracle(
                segments, q
            ), q

    def test_delete_not_supported(self):
        segments = grid_segments(10, seed=18)
        _d, _p, index = make(segments)
        try:
            index.delete(segments[0])
            assert False
        except NotImplementedError:
            pass


@given(st.integers(0, 10**6), st.integers(2, 60))
@settings(max_examples=60, deadline=None)
def test_rtree_matches_oracle_property(seed, n):
    segments = grid_segments_touching(n, cell_size=20, seed=seed)
    _d, _p, index = make(segments, capacity=4)
    rng = random.Random(seed)
    for _ in range(4):
        x0 = rng.randint(-2, 25 * int(math.isqrt(n)) + 30)
        y1 = rng.randint(-2, 200)
        q = VerticalQuery.segment(x0, y1, y1 + rng.randint(0, 150))
        assert sorted((s.label for s in index.query(q)), key=str) == oracle(
            segments, q
        )
