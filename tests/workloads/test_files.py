"""Tests for the segment text format."""

from fractions import Fraction

import pytest

from repro.geometry import CrossingError
from repro.workloads.files import SegmentFormatError, dump, dumps, load, loads
from repro.workloads import grid_segments


class TestParsing:
    def test_basic_line(self):
        (s,) = loads("0\t1\t2\t3")
        assert (s.start.x, s.start.y, s.end.x, s.end.y) == (0, 1, 2, 3)
        assert s.label == 0

    def test_spaces_accepted(self):
        (s,) = loads("0 1 2 3 road")
        assert s.label == "road"

    def test_rational_coordinates(self):
        (s,) = loads("1/3\t0\t2\t5/7")
        assert s.start.x == Fraction(1, 3)
        assert s.end.y == Fraction(5, 7)

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n0 0 1 1 a\n   \n# trailer\n2 2 3 3 b\n"
        segments = loads(text)
        assert [s.label for s in segments] == ["a", "b"]

    def test_default_labels_are_positional(self):
        segments = loads("0 0 1 1\n2 2 3 3\n")
        assert [s.label for s in segments] == [0, 1]

    def test_bad_field_count(self):
        with pytest.raises(SegmentFormatError) as exc:
            loads("0 0 1\n")
        assert exc.value.lineno == 1

    def test_bad_coordinate(self):
        with pytest.raises(SegmentFormatError) as exc:
            loads("0 0 1 banana\n")
        assert exc.value.lineno == 1

    def test_degenerate_rejected(self):
        with pytest.raises(SegmentFormatError):
            loads("5 5 5 5\n")

    def test_zero_denominator(self):
        with pytest.raises(SegmentFormatError):
            loads("1/0 0 1 1\n")

    def test_validate_crossing(self):
        text = "0 0 2 2 a\n0 2 2 0 b\n"
        with pytest.raises(CrossingError):
            loads(text, validate=True)
        assert len(loads(text)) == 2  # without validation it parses


class TestRoundtrip:
    def test_dumps_loads_roundtrip(self):
        segments = grid_segments(50, seed=1)
        again = loads(dumps(segments))
        assert [(s.start, s.end) for s in again] == [
            (s.start, s.end) for s in segments
        ]

    def test_rational_roundtrip(self):
        from repro.geometry import Segment

        s = Segment.from_coords(Fraction(1, 3), 0, 2, Fraction(7, 5), label="r")
        (back,) = loads(dumps([s]))
        assert back.start.x == Fraction(1, 3)
        assert back.end.y == Fraction(7, 5)

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "segments.tsv")
        segments = grid_segments(30, seed=2)
        dump(segments, path)
        again = load(path, validate=True)
        assert len(again) == 30

    def test_labels_stringified(self):
        segments = grid_segments(3, seed=3)  # tuple labels
        again = loads(dumps(segments))
        assert all(isinstance(s.label, str) for s in again)
