"""Tests for query generators."""

from repro.geometry import lb_intersects, vs_intersects
from repro.workloads import (
    fan,
    grid_segments,
    hqueries,
    measured_output,
    mixed_queries,
    ray_queries,
    segment_queries,
    stabbing_queries,
)


class TestPlaneQueries:
    def setup_method(self):
        self.segments = grid_segments(200, seed=11)

    def test_stabbing_queries_are_lines(self):
        queries = stabbing_queries(self.segments, 10, seed=1)
        assert len(queries) == 10
        assert all(q.kind == "line" for q in queries)

    def test_segment_queries_selectivity(self):
        queries = segment_queries(self.segments, 20, selectivity=0.05, seed=2)
        outputs = [measured_output(self.segments, q) for q in queries]
        target = 0.05 * len(self.segments)
        # The window is cut from actual stab results, so outputs should be
        # in the right ballpark whenever the stab is rich enough.
        assert max(outputs) <= 3 * target + 5
        assert any(o > 0 for o in outputs)

    def test_ray_queries_kinds(self):
        queries = ray_queries(self.segments, 10, seed=3)
        assert all(q.kind == "ray" for q in queries)

    def test_mixed_queries_cover_kinds(self):
        queries = mixed_queries(self.segments, 30, seed=4)
        kinds = {q.kind for q in queries}
        assert kinds == {"line", "ray", "segment"}

    def test_measured_output_consistent(self):
        q = segment_queries(self.segments, 1, seed=5)[0]
        expected = sum(1 for s in self.segments if vs_intersects(s, q))
        assert measured_output(self.segments, q) == expected

    def test_deterministic(self):
        a = segment_queries(self.segments, 5, seed=6)
        b = segment_queries(self.segments, 5, seed=6)
        assert a == b


class TestHQueries:
    def test_hqueries_hit_something(self):
        segments = fan(100, seed=7)
        queries = hqueries(segments, 10, selectivity=0.1, seed=8)
        hits = [
            sum(1 for s in segments if lb_intersects(s, q)) for q in queries
        ]
        assert any(h > 0 for h in hits)

    def test_hqueries_respect_selectivity_roughly(self):
        segments = fan(200, seed=9)
        queries = hqueries(segments, 10, selectivity=0.05, seed=10)
        hits = [sum(1 for s in segments if lb_intersects(s, q)) for q in queries]
        assert max(hits) <= 3 * 0.05 * len(segments) + 5
