"""Workload generators must produce NCT sets and be deterministic."""

import pytest

from repro.geometry import (
    find_crossing_bruteforce,
    lb_cross,
    validate_nct,
)
from repro.workloads import (
    bounding_box,
    delaunay_edges,
    fan,
    grid_segments,
    grid_segments_touching,
    monotone_polylines,
    shared_base_fans,
    verticals,
    version_history,
    with_on_line_segments,
)


def assert_linebased_nct(segments):
    for i, s1 in enumerate(segments):
        for s2 in segments[i + 1 :]:
            assert not lb_cross(s1, s2), (s1, s2)


class TestLineBasedGenerators:
    def test_verticals_do_not_cross(self):
        assert_linebased_nct(verticals(50, seed=1))

    def test_fan_does_not_cross(self):
        assert_linebased_nct(fan(80, seed=2))

    def test_shared_base_fans_do_not_cross(self):
        assert_linebased_nct(shared_base_fans(10, per_cluster=5, seed=3))

    def test_shared_base_fans_touch(self):
        segments = shared_base_fans(1, per_cluster=4, seed=4)
        bases = {s.u0 for s in segments}
        assert len(bases) == 1  # all four share the base point

    def test_with_on_line_segments(self):
        segments = with_on_line_segments(fan(20, seed=5), 10, seed=5)
        assert sum(1 for s in segments if s.on_base_line) == 10
        assert_linebased_nct(segments)

    def test_deterministic_under_seed(self):
        assert fan(30, seed=9) == fan(30, seed=9)
        assert fan(30, seed=9) != fan(30, seed=10)

    def test_counts(self):
        assert len(verticals(17, seed=0)) == 17
        assert len(fan(23, seed=0)) == 23
        assert len(shared_base_fans(6, per_cluster=3, seed=0)) == 18


class TestPlaneGenerators:
    def test_grid_segments_disjoint(self):
        segments = grid_segments(120, seed=1)
        assert find_crossing_bruteforce(segments) is None
        assert len(segments) == 120

    def test_grid_segments_touching_is_nct(self):
        segments = grid_segments_touching(150, seed=2)
        validate_nct(segments, method="brute")

    def test_grid_segments_touching_has_touches(self):
        segments = grid_segments_touching(100, touch_fraction=1.0, seed=3)
        endpoints = {}
        shared = 0
        for s in segments:
            for p in (s.start, s.end):
                endpoints[p] = endpoints.get(p, 0) + 1
        shared = sum(1 for c in endpoints.values() if c > 1)
        assert shared > 10

    def test_monotone_polylines_nct(self):
        segments = monotone_polylines(4, points_per_line=20, seed=4)
        validate_nct(segments, method="brute")
        assert len(segments) == 4 * 19

    def test_version_history_nct(self):
        segments = version_history(5, versions_per_key=10, seed=5)
        validate_nct(segments, method="brute")
        assert len(segments) == 50

    def test_delaunay_edges_nct(self):
        segments = delaunay_edges(60, seed=6)
        validate_nct(segments, method="brute")
        # A triangulation of n sites has ~3n edges.
        assert len(segments) > 100

    def test_bounding_box(self):
        segments = grid_segments(10, seed=7)
        xmin, ymin, xmax, ymax = bounding_box(segments)
        assert xmin <= xmax and ymin <= ymax

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])
