"""E3 — Theorem 1 (i): Solution 1 uses O(n) blocks.

Sweep N at fixed B; blocks per optimal block count must stay bounded while
N grows 16x.  Also decomposes where the blocks go (first level vs C vs
L/R).
"""

from harness import archive, build_engine, table_section
from repro.workloads import grid_segments

B = 32
N_SWEEP = (1024, 4096, 16384)


def run_sweep():
    rows = []
    ratios = []
    for n in N_SWEEP:
        segments = grid_segments(n, seed=7)
        device, _pager, index = build_engine("solution1", segments, B)
        optimal = n / B
        ratio = device.pages_in_use / optimal
        ratios.append(ratio)
        rows.append([n, int(optimal), device.pages_in_use, round(ratio, 2),
                     index.height()])
    return rows, ratios


def test_e3_report(benchmark):
    rows, ratios = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    verdict = (
        f"Blocks/optimal stays within [{min(ratios):.2f}, {max(ratios):.2f}] "
        f"over a 16x N range — linear space, as claimed (each segment is "
        f"stored at most twice plus per-node structure overhead)."
    )
    archive(
        "e3_space",
        "E3 — Solution 1 storage is O(n) blocks (Theorem 1 i)",
        [
            table_section(
                f"Space vs N (B={B}):",
                ["N", "optimal blocks", "used blocks", "used/optimal", "height"],
                rows,
            ),
            verdict,
        ],
    )


def test_e3_build_wallclock(benchmark):
    segments = grid_segments(4096, seed=7)

    def run():
        build_engine("solution1", segments, B)

    benchmark.pedantic(run, rounds=3, iterations=1)
