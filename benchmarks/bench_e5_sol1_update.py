"""E5 — Theorem 1 (iii): Solution 1 updates in amortised O(log2 n + ...).

Insert and delete streams against pre-built indexes of growing N; report
the amortised I/O per update (the BB[α]-style rebuilds are included — they
are what the amortisation pays for) and the post-update balance.
"""

import random

from harness import archive, fit_section, build_engine, table_section
from repro.geometry import Segment
from repro.iosim import Measurement
from repro.workloads import grid_segments

B = 32
N_SWEEP = (1024, 2048, 4096, 8192, 16384)
UPDATES = 96


def run_sweep():
    rows = []
    measurements = []
    for n in N_SWEEP:
        segments = grid_segments(n, seed=13)
        device, _pager, index = build_engine("solution1", segments, B)
        rng = random.Random(5)
        insert_total = 0
        for i in range(UPDATES):
            x = rng.randrange(0, 110 * (n ** 0.5).__int__())
            y = -(5 + i)
            s = Segment.from_coords(x, y, x + rng.randrange(2, 300), y,
                                    label=("ins", i))
            with Measurement(device) as m:
                index.insert(s)
            insert_total += m.stats.total
        delete_total = 0
        victims = rng.sample(segments, UPDATES)
        for s in victims:
            with Measurement(device) as m:
                assert index.delete(s)
            delete_total += m.stats.total
        index.check_invariants()
        mean_insert = insert_total / UPDATES
        mean_delete = delete_total / UPDATES
        rows.append([n, round(mean_insert, 1), round(mean_delete, 1)])
        measurements.append((n, B, 0, mean_insert))
    return rows, measurements


def test_e5_report(benchmark):
    rows, measurements = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(
        "e5_sol1_update",
        "E5 — Solution 1 amortised updates (Theorem 1 iii)",
        [
            table_section(
                f"Amortised update I/O vs N (B={B}, {UPDATES} inserts + "
                f"{UPDATES} deletes per point; rebuild costs included):",
                ["N", "insert I/O (amortised)", "delete I/O (amortised)"],
                rows,
            ),
            fit_section(measurements, "log2(n)",
                        candidates=["log2(n)", "log_B(n)", "n"]),
            "Invariants (weights, balance, placement) re-checked after every "
            "stream — the structure stays a valid 2LDS throughout.",
        ],
    )


def test_e5_insert_wallclock(benchmark):
    segments = grid_segments(4096, seed=13)
    device, _pager, index = build_engine("solution1", segments, B)
    counter = [0]

    def run():
        i = counter[0] = counter[0] + 1
        index.insert(
            Segment.from_coords(7 * i, -10**6 - i, 7 * i + 3, -10**6 - i,
                                label=("w", i))
        )

    benchmark(run)
