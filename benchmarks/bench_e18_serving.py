"""E18 — closing the serving cliff: zero-copy shm arenas vs the pickle pool.

E17 priced the multiprocess serving gap: the worker pool spent its time
not in the engine but around it — per-process snapshot unpickling
(``attach``) and per-batch pickling (``dispatch``/``collect``).  This
experiment measures the fix.  The same shard snapshots are served three
ways over an identical query stream:

* **sync** — ``workers=0``, the in-process oracle and the qps bar the
  pool has to clear;
* **pickle** — the PR 5 pool: every worker cold-opens its shard
  snapshot, an O(shard) deserialization per process;
* **shm** — the flat arena mapped into POSIX shared memory once, every
  worker attaching zero-copy in O(1) and decoding pages lazily out of
  the shared bytes.

All three must return bit-identical results.  The headline metric is the
**overhead tax**: the dispatch + attach + deserialize seconds the pool
charges on top of engine work, summed over tasks.  At full scale
(``N >= 20000``) the shm transport must cut that tax at least 10× —
asserted, not just recorded — and on a machine with at least 2 cores the
pooled path must beat the synchronous qps (the ROADMAP's crossover
criterion).  ``E18_N`` / ``E18_QUERIES`` / ``E18_WORKERS`` /
``E18_BATCH`` shrink the run for CI smoke, which skips both gates and
still records every number in ``BENCH_perf.json`` (schema v4).
"""

import os
import time

from harness import archive, table_section, write_perf_json
from repro.serving import ShardedSegmentDatabase
from repro.workloads import grid_segments, segment_queries

B = 32
N = int(os.environ.get("E18_N", "20000"))
QUERIES = int(os.environ.get("E18_QUERIES", "256"))
SHARDS = int(os.environ.get("E18_SHARDS", "2"))
WORKERS = int(os.environ.get("E18_WORKERS", "2"))
BATCH_SIZE = int(os.environ.get("E18_BATCH", "32"))
ENGINE = "solution2"

#: The pool's per-batch tax: everything that is not engine work or
#: shipping results back.  ``attach`` is where the transports differ
#: structurally (O(shard) unpickle vs O(1) map); dispatch/deserialize
#: price the payload hop.
OVERHEAD_PHASES = ("dispatch", "attach", "deserialize")


def _labels(results):
    return [sorted(str(s.label) for s in r) for r in results]


def _serve(db, queries):
    t0 = time.perf_counter()
    results = []
    for start in range(0, len(queries), BATCH_SIZE):
        results.extend(db.query_batch(queries[start:start + BATCH_SIZE]))
    return time.perf_counter() - t0, results


def _run_mode(directory, queries, workers, transport):
    t0 = time.perf_counter()
    with ShardedSegmentDatabase.open(directory, workers=workers,
                                     transport=transport) as served:
        open_s = time.perf_counter() - t0
        serve_s, results = _serve(served, queries)
        report = served.latency_report()
        shared = served._pool.shared_bytes if workers else 0
    phases = report["phases_s"]
    overhead_s = sum(phases.get(p, 0.0) for p in OVERHEAD_PHASES)
    return {
        "open_s": round(open_s, 4),
        "serve_s": round(serve_s, 4),
        "queries_per_s": round(len(queries) / serve_s, 1) if serve_s else 0.0,
        "tasks": report["tasks"],
        "phases_s": phases,
        "phase_coverage": report["phase_coverage"],
        "overhead_s": round(overhead_s, 4),
        "overhead_per_task_ms": round(1000 * overhead_s / report["tasks"], 3)
                                if report["tasks"] else 0.0,
        "batch_p50_ms": report["batches"]["p50_ms"],
        "batch_p99_ms": report["batches"]["p99_ms"],
        "shared_bytes": shared,
    }, results


def test_e18_zero_copy_serving(tmp_path):
    segments = grid_segments(N, seed=81)
    queries = segment_queries(segments, QUERIES, selectivity=0.02, seed=82)

    sharded = ShardedSegmentDatabase.bulk_load(
        segments, shards=SHARDS, engine=ENGINE, block_capacity=B)
    directory = str(tmp_path / "snap")
    sharded.save(directory)

    modes = {}
    sync_row, oracle = _run_mode(directory, queries, 0, "shm")
    modes["sync"] = sync_row
    expected = _labels(oracle)
    for transport in ("pickle", "shm"):
        row, results = _run_mode(directory, queries, WORKERS, transport)
        modes[transport] = row
        assert _labels(results) == expected, (
            f"{transport} pool diverged from the synchronous oracle")
        coverage = row["phase_coverage"]
        assert coverage is not None and 0.9 <= coverage <= 1.05, (
            f"{transport}: phases cover {coverage} of the task wall")
        for phase in OVERHEAD_PHASES:
            assert phase in row["phases_s"], (
                f"{transport}: missing phase {phase!r}")

    overhead_reduction = (
        round(modes["pickle"]["overhead_s"] / modes["shm"]["overhead_s"], 1)
        if modes["shm"]["overhead_s"] else None)
    attach_reduction = (
        round(modes["pickle"]["phases_s"].get("attach", 0.0)
              / modes["shm"]["phases_s"]["attach"], 1)
        if modes["shm"]["phases_s"].get("attach") else None)

    cores = os.cpu_count() or 1
    full_scale = N >= 20000
    if full_scale:
        # The tentpole claim: zero-copy attach removes the pool's
        # per-process deserialization tax, >= 10x on the summed
        # dispatch + attach + deserialize seconds.
        assert overhead_reduction is not None and overhead_reduction >= 10, (
            f"shm transport cut pool overhead only "
            f"{overhead_reduction}x (pickle "
            f"{modes['pickle']['overhead_s']}s vs shm "
            f"{modes['shm']['overhead_s']}s)")
    if full_scale and cores >= 2:
        # The ROADMAP crossover: with real cores behind the workers the
        # pooled path must beat the synchronous one outright.
        assert modes["shm"]["queries_per_s"] > modes["sync"]["queries_per_s"], (
            f"no crossover on {cores} cores: shm pool "
            f"{modes['shm']['queries_per_s']} q/s vs sync "
            f"{modes['sync']['queries_per_s']} q/s")

    payload = {
        "n": N,
        "block_capacity": B,
        "engine": ENGINE,
        "queries": len(queries),
        "batch_size": BATCH_SIZE,
        "shards": SHARDS,
        "workers": WORKERS,
        "cores": cores,
        "cpu_count": cores,
        "gates_armed": {
            "overhead_10x": full_scale,
            # False = not full scale; a skip marker = the machine, not
            # the workload, kept the gate unarmed — so a reader of the
            # archived JSON can tell "too small to judge" from "judged
            # nothing because CI had one core".
            "qps_crossover": (full_scale and cores >= 2) if not (
                full_scale and cores < 2) else {"skipped": "1 core"},
        },
        "modes": modes,
        "overhead": {
            "phases": list(OVERHEAD_PHASES),
            "pickle_s": modes["pickle"]["overhead_s"],
            "shm_s": modes["shm"]["overhead_s"],
            "overhead_reduction": overhead_reduction,
            "attach_reduction": attach_reduction,
        },
    }
    path = write_perf_json("E18", payload)

    phase_names = ("dispatch", "deserialize", "attach", "query",
                   "serialize", "collect")
    phase_rows = []
    for name in ("pickle", "shm"):
        row = modes[name]
        phase_rows.append(
            [name]
            + [round(row["phases_s"].get(p, 0.0), 4) for p in phase_names]
            + [row["overhead_s"], row["overhead_per_task_ms"]])
    qps_rows = [
        [name, row["open_s"], row["serve_s"], row["queries_per_s"],
         row["batch_p50_ms"], row["batch_p99_ms"]]
        for name, row in modes.items()
    ]
    archive(
        "e18_zero_copy_serving",
        "E18 — Zero-copy shared-memory serving vs the pickle pool",
        [
            f"N={N}, B={B}, engine {ENGINE}, K={SHARDS} shards x "
            f"{WORKERS} workers, {len(queries)} segment queries "
            f"(2% selectivity) in batches of {BATCH_SIZE}, on {cores} "
            f"core(s).  Shared arenas: "
            f"{modes['shm']['shared_bytes']} bytes mapped once.",
            table_section(
                "Serving modes (identical results asserted):",
                ["mode", "open (s)", "serve (s)", "queries/s",
                 "batch p50 (ms)", "batch p99 (ms)"],
                qps_rows,
            ),
            table_section(
                "Pooled phase decomposition (seconds summed over tasks; "
                "overhead = dispatch + attach + deserialize):",
                ["transport", *phase_names, "overhead (s)",
                 "overhead/task (ms)"],
                phase_rows,
            ),
            f"Reading: the pickle pool pays an O(shard) snapshot "
            f"unpickle in every worker process (the attach row) plus "
            f"per-batch payload hops; mapping the flat arena into shared "
            f"memory makes attach O(1) and leaves only the hops — "
            f"{overhead_reduction}x less overhead here "
            f"({attach_reduction}x on attach alone).  On a 1-core box "
            f"the engine time still serializes, so the qps win appears "
            f"only with real cores behind the workers (the crossover "
            f"gate arms at >= 2).  Machine-readable copy: `"
            + os.path.basename(path) + "` (schema v4).",
        ],
    )
