"""E2 — Lemma 3: the blocked (P-range-style) PST.

Claims under test: query ``O(log_B n + IL*(B) + t)``; update amortised
``O(log_B n + (log_B n)/B)``; storage ``O(n)``.  The binary PST of E1 is
the comparison point: blocking must flatten the query curve from
``log2 n`` to ``log_B n``.
"""

from repro.core.linebased import ExternalPST
from repro.geometry import LineBasedSegment
from repro.iosim import BlockDevice, Measurement, Pager
from repro.workloads import fan, hqueries

from harness import archive, fit_section, iostar_note, table_section

B = 64
N_SWEEP = (1024, 2048, 4096, 8192, 16384, 32768, 65536)
QUERIES_PER_POINT = 12


def build(n, fanout):
    device = BlockDevice(B)
    pager = Pager(device)
    segments = fan(n, seed=n)
    tree = ExternalPST.build(pager, segments, fanout=fanout)
    device.reset_counters()
    return device, pager, segments, tree


def run_sweep():
    rows = []
    measurements = []
    for n in N_SWEEP:
        dev_bin, pager_bin, segments, binary = build(n, fanout=2)
        dev_blk, pager_blk, _segments, blocked = build(n, fanout=B // 4)
        queries = hqueries(segments, QUERIES_PER_POINT,
                           selectivity=min(0.5, 24 / n), seed=1)
        costs = {"binary": 0.0, "blocked": 0.0}
        out = 0
        for q in queries:
            with pager_bin.operation():
                with Measurement(dev_bin) as m:
                    result = binary.query(q)
            costs["binary"] += m.stats.reads
            out += len(result)
            with pager_blk.operation():
                with Measurement(dev_blk) as m:
                    blocked.query(q)
            costs["blocked"] += m.stats.reads
        mean_out = out / len(queries)
        mean_blocked = costs["blocked"] / len(queries)
        rows.append(
            [n, blocked.height(), dev_blk.pages_in_use,
             round(costs["binary"] / len(queries), 1), round(mean_blocked, 1)]
        )
        measurements.append((n, B, mean_out, mean_blocked))
    return rows, measurements


def insert_sweep():
    rows = []
    for n in (4096, 16384, 65536):
        device, pager, _segments, tree = build(n, fanout=B // 4)
        total = 0
        count = 64
        base_u = 200 * n  # beyond the generated fan
        for i in range(count):
            s = LineBasedSegment(base_u + 3 * i, base_u + 3 * i + 1, 17 + i,
                                 label=("ins", i))
            with pager.operation():
                with Measurement(device) as m:
                    tree.insert(s)
            total += m.stats.total
        rows.append([n, round(total / count, 1)])
    return rows


def test_e2_report(benchmark):
    rows, measurements = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    ins_rows = insert_sweep()
    archive(
        "e2_blocked_pst",
        "E2 — Blocked PST (Lemma 3, P-range substitution)",
        [
            table_section(
                f"Query reads vs N (B={B}; binary PST of Lemma 2 vs blocked):",
                ["N", "height", "blocks", "binary reads", "blocked reads"],
                rows,
            ),
            fit_section(measurements, "log_B(n)",
                        candidates=["log2(n)", "log_B(n)", "n"]),
            iostar_note(B),
            table_section(
                "Amortised insertion I/O (64 inserts each):",
                ["N", "mean insert I/O"],
                ins_rows,
            ),
        ],
    )


def test_e2_blocked_query_wallclock(benchmark):
    device, pager, segments, tree = build(16384, fanout=B // 4)
    queries = hqueries(segments, 8, selectivity=0.01, seed=3)

    def run():
        for q in queries:
            tree.query(q)

    benchmark(run)
