"""E4 — Theorem 1 (ii): Solution 1 queries in O(log2 n · (log_B n + IL*) + t).

Sweep N on two workloads (random grid and GIS map layer); fit the claimed
product model against simpler and heavier alternatives.
"""

from harness import archive, build_engine, fit_section, iostar_note, measure_queries, table_section
from repro.workloads import delaunay_edges, grid_segments, segment_queries

B = 32
N_SWEEP = (1024, 2048, 4096, 8192, 16384)
QUERIES_PER_POINT = 10


def run_sweep(workload):
    rows = []
    measurements = []
    for n in N_SWEEP:
        if workload == "grid":
            segments = grid_segments(n, seed=11)
        else:
            segments = delaunay_edges(max(50, n // 3), seed=11)[:n]
        device, _pager, index = build_engine("solution1", segments, B)
        queries = segment_queries(segments, QUERIES_PER_POINT,
                                  selectivity=min(0.5, 32 / len(segments)),
                                  seed=1)
        reads, out = measure_queries(device, index, queries)
        rows.append([n, len(segments), round(out, 1), round(reads, 1)])
        measurements.append((len(segments), B, out, reads))
    return rows, measurements


def test_e4_report(benchmark):
    grid_rows, grid_meas = benchmark.pedantic(
        lambda: run_sweep("grid"), rounds=1, iterations=1
    )
    map_rows, map_meas = run_sweep("map")
    archive(
        "e4_sol1_query",
        "E4 — Solution 1 query cost (Theorem 1 ii)",
        [
            table_section(
                f"Random grid workload (B={B}, 0.5% selectivity):",
                ["N (target)", "N (actual)", "T (avg)", "query reads"],
                grid_rows,
            ),
            fit_section(
                grid_meas,
                "log2(n)*log_B(n)",
                candidates=["log2(n)", "log2(n)*log_B(n)", "n"],
            ),
            table_section(
                "Delaunay map-layer workload:",
                ["N (target)", "N (actual)", "T (avg)", "query reads"],
                map_rows,
            ),
            fit_section(
                map_meas,
                "log2(n)*log_B(n)",
                candidates=["log2(n)", "log2(n)*log_B(n)", "n"],
            ),
            iostar_note(B),
        ],
    )


def test_e4_query_wallclock(benchmark):
    segments = grid_segments(8192, seed=11)
    device, _pager, index = build_engine("solution1", segments, B)
    queries = segment_queries(segments, 6, selectivity=0.01, seed=2)

    def run():
        for q in queries:
            index.query(q)

    benchmark(run)
