"""E1 — Lemmas 1–2: the external PST for line-based segments.

Claims under test: query in ``O(log2 n + t)`` I/Os; ``Find`` in
``O(log2 n)``; storage ``O(n)`` blocks.  Sweep N with fixed B, plus an
output-size sweep at fixed N showing the ``+t`` term pays one I/O per B
reported segments.
"""

from repro.core.linebased import ExternalPST
from repro.iosim import BlockDevice, Measurement, Pager
from repro.workloads import fan, hqueries

from harness import archive, fit_section, table_section

B = 64
N_SWEEP = (1024, 2048, 4096, 8192, 16384, 32768, 65536)
QUERIES_PER_POINT = 12


def build_pst(n, fanout=2):
    device = BlockDevice(B)
    pager = Pager(device)
    segments = fan(n, seed=n)
    tree = ExternalPST.build(pager, segments, fanout=fanout)
    device.reset_counters()
    return device, pager, segments, tree


def run_sweep():
    rows = []
    measurements = []
    for n in N_SWEEP:
        device, pager, segments, tree = build_pst(n)
        # Fixed absolute output target so the +t term does not confound
        # the N-dependence of the search term.
        queries = hqueries(segments, QUERIES_PER_POINT,
                           selectivity=min(0.5, 24 / n), seed=1)
        reads = outs = find_reads = 0
        for q in queries:
            with pager.operation():
                with Measurement(device) as m:
                    result = tree.query(q)
            reads += m.stats.reads
            outs += len(result)
            with pager.operation():
                with Measurement(device) as m:
                    tree.find_leftmost(q)
            find_reads += m.stats.reads
        mean_reads = reads / len(queries)
        mean_out = outs / len(queries)
        rows.append(
            [n, tree.height(), device.pages_in_use, round(mean_out, 1),
             round(mean_reads, 1), round(find_reads / len(queries), 1)]
        )
        measurements.append((n, B, mean_out, mean_reads))
    return rows, measurements


def output_sweep():
    n = 16384
    device, pager, segments, tree = build_pst(n)
    rows = []
    for selectivity in (0.001, 0.01, 0.05, 0.2, 0.8):
        queries = hqueries(segments, 6, selectivity=selectivity, seed=2)
        reads = outs = 0
        for q in queries:
            with pager.operation():
                with Measurement(device) as m:
                    result = tree.query(q)
            reads += m.stats.reads
            outs += len(result)
        t_blocks = outs / len(queries) / B
        rows.append(
            [selectivity, round(outs / len(queries), 1), round(t_blocks, 1),
             round(reads / len(queries), 1)]
        )
    return rows


def test_e1_report(benchmark):
    rows, measurements = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    out_rows = output_sweep()
    archive(
        "e1_pst_query",
        "E1 — External PST for line-based segments (Lemmas 1–2)",
        [
            table_section(
                f"Query cost vs N (B={B}, ~0.2% selectivity):",
                ["N", "height", "blocks", "T (avg)", "query reads", "Find reads"],
                rows,
            ),
            fit_section(measurements, "log2(n)",
                        candidates=["log2(n)", "log_B(n)", "n"]),
            table_section(
                f"Output-size sweep at N=16384 (the additive t term):",
                ["selectivity", "T (avg)", "t = T/B", "query reads"],
                out_rows,
            ),
        ],
    )


def test_e1_query_wallclock(benchmark):
    device, pager, segments, tree = build_pst(16384)
    queries = hqueries(segments, 8, selectivity=0.01, seed=3)

    def run():
        for q in queries:
            tree.query(q)

    benchmark(run)
