"""E20 — columnar page kernels: scalar vs vectorized scan/classify.

The companion to E16.  E16 flips the *arithmetic* (filtered floats vs
exact rationals); E20 flips the *kernel shape* — the same filtered
arithmetic executed row-at-a-time by the original scalar loops
(``set_vectorized(False)``) versus the batched page kernels of
DESIGN.md §15 (fused pure-Python loops on narrow pages, numpy on wide
ones, struct-of-arrays columns decoded once per page).  Results,
per-query I/O counts and the fast-hit/exact-fallback telemetry are
bit-identical in both modes — this file re-asserts that on a query
sample before timing anything.

Two headline numbers, both at N=4096, B=32:

* ``kernel_speedup_ratio`` — columnar qps / scalar qps, measured
  in-process back to back, so it is insensitive to machine noise.
* ``vs_pre_pr`` — columnar qps against the committed E16 baseline from
  before the columnar refactor (solution1 3012.8 q/s, solution2
  5654.7 q/s).  solution1 clears >= 2x.  solution2's gate is 1.2x,
  deliberately lower: its pre-PR baseline had already banked most of
  the filtered-arithmetic win (5654.7 vs solution1's 3012.8 on the
  same workload), because solution1 classifies ~3x more page rows per
  query — the engine with more per-page work gains more from batching
  it.  The asymmetry is the finding, not an excuse; the archive table
  shows both ratios.

A scalar-vs-columnar sweep over N and B maps where the kernels pay:
wider pages amortise the per-page setup over more rows (the numpy tier
engages at >= 256 rows — below that the fused loop's exact early exits
beat full-page array expressions), while at B=16 the fused margin
thins toward parity.  ``E20_N`` / ``E20_QUERIES`` shrink the workload
for CI smoke runs.
"""

import os
import time

from harness import (
    archive,
    build_engine,
    latency_quantiles,
    table_section,
    write_perf_json,
)
from repro.geometry import filter_stats, kernels, reset_filter_stats
from repro.telemetry import LatencyHistogram
from repro.workloads import grid_segments, segment_queries

B = 32
N = int(os.environ.get("E20_N", "4096"))
QUERIES = int(os.environ.get("E20_QUERIES", "256"))
ENGINES = ("solution1", "solution2", "scan", "stab-filter", "grid", "rtree")
#: Committed E16 ``filtered_qps`` at N=4096, B=32 from the PR before the
#: columnar kernels (BENCH_perf.json, commit 17a45af) — the wall-clock
#: baseline the tentpole is measured against.
PRE_PR_QPS = {"solution1": 3012.8, "solution2": 5654.7}
#: Gates bind only at the full workload (same policy as E16).
GATE_MIN_N = 4096
GATE_VS_PRE_PR = {"solution1": 2.0, "solution2": 1.2}
#: In-process columnar/scalar floor.  Measured 1.10-1.36 on the paper
#: engines across runs on a 1-core box; the floor sits under the noise
#: band (check_regression.py separately gates the committed ratio
#: against drops).
GATE_KERNEL_RATIO = 1.05
#: Sweep grid (scalar vs columnar at every point, paper engines only).
SWEEP_BS = (16, 32, 128)
IDENTITY_SAMPLE = 48


def _workload(n=None, queries=None):
    """The E16 workload, verbatim — same seeds, same selectivity."""
    segments = grid_segments(n if n is not None else N, seed=61)
    queries_ = segment_queries(
        segments, queries if queries is not None else QUERIES,
        selectivity=0.02, seed=62,
    )
    return segments, queries_


def _time_queries(index, queries, latency=None) -> float:
    t0 = time.perf_counter()
    for q in queries:
        q0 = time.perf_counter()
        index.query(q)
        if latency is not None:
            latency.observe(time.perf_counter() - q0)
    return time.perf_counter() - t0


def _probe(device, index, queries):
    """``[(result labels, device reads)]`` per query — the identity probe."""
    out = []
    for q in queries:
        before = device.reads
        hits = index.query(q)
        out.append((sorted(s.label for s in hits), device.reads - before))
    return out


def run_engine(engine, segments, queries, block=B, check_identity=True):
    """Scalar vs columnar wall-clock for one engine, plus the identity probe."""
    device, _pager, index = build_engine(engine, segments, block)
    # Warm-up pass so first-touch costs (page materialisation, column
    # decode, view caches) don't land on either timing.
    _time_queries(index, queries[: max(1, len(queries) // 8)])

    if check_identity:
        sample = queries[:IDENTITY_SAMPLE]
        kernels.set_vectorized(False)
        reset_filter_stats()
        scalar_probe = _probe(device, index, sample)
        scalar_stats = filter_stats()
        kernels.set_vectorized(True)
        reset_filter_stats()
        columnar_probe = _probe(device, index, sample)
        columnar_stats = filter_stats()
        assert scalar_probe == columnar_probe, (
            f"{engine}: scalar/columnar results or per-query reads diverge"
        )
        for key in ("fast_hits", "exact_fallbacks"):
            assert scalar_stats[key] == columnar_stats[key], (
                f"{engine}: {key} telemetry diverges: "
                f"scalar {scalar_stats[key]} != columnar {columnar_stats[key]}"
            )

    try:
        kernels.set_vectorized(False)
        scalar_hist = LatencyHistogram(f"e20.{engine}.scalar")
        scalar_elapsed = _time_queries(index, queries, latency=scalar_hist)

        kernels.set_vectorized(True)
        reset_filter_stats()
        columnar_hist = LatencyHistogram(f"e20.{engine}.columnar")
        columnar_elapsed = _time_queries(index, queries, latency=columnar_hist)
        stats = filter_stats()
    finally:
        kernels.set_vectorized(True)

    scalar_qps = len(queries) / scalar_elapsed if scalar_elapsed else 0.0
    columnar_qps = len(queries) / columnar_elapsed if columnar_elapsed else 0.0
    return {
        "scalar_qps": round(scalar_qps, 1),
        "columnar_qps": round(columnar_qps, 1),
        "kernel_speedup_ratio": (
            round(columnar_qps / scalar_qps, 3) if scalar_qps else None
        ),
        "fast_hits": stats["fast_hits"],
        "exact_fallbacks": stats["exact_fallbacks"],
        "scalar_latency_ms": latency_quantiles(scalar_hist),
        "columnar_latency_ms": latency_quantiles(columnar_hist),
    }


def _sweep():
    """Scalar vs columnar over (N, B) for the paper engines."""
    sweep_ns = sorted({min(1024, N), N})
    sweep_queries = max(16, min(QUERIES, 96))
    rows = []
    for n in sweep_ns:
        segments, queries = _workload(n=n, queries=sweep_queries)
        for block in SWEEP_BS:
            for engine in ("solution1", "solution2"):
                row = run_engine(engine, segments, queries, block=block,
                                 check_identity=False)
                rows.append({
                    "engine": engine,
                    "n": n,
                    "block_capacity": block,
                    "scalar_qps": row["scalar_qps"],
                    "columnar_qps": row["columnar_qps"],
                    "kernel_speedup_ratio": row["kernel_speedup_ratio"],
                })
    return rows


def test_e20_kernels():
    segments, queries = _workload()
    engines = {}
    for engine in ENGINES:
        engines[engine] = run_engine(engine, segments, queries)

    vs_pre_pr = {
        name: round(engines[name]["columnar_qps"] / baseline, 3)
        for name, baseline in PRE_PR_QPS.items()
    }

    if N >= GATE_MIN_N:
        for engine, floor in GATE_VS_PRE_PR.items():
            assert vs_pre_pr[engine] >= floor, (
                f"{engine}: columnar {engines[engine]['columnar_qps']} q/s is "
                f"{vs_pre_pr[engine]}x the pre-PR baseline "
                f"{PRE_PR_QPS[engine]} — gate is {floor}x"
            )
        for engine in ("solution1", "solution2"):
            ratio = engines[engine]["kernel_speedup_ratio"]
            assert ratio is not None and ratio >= GATE_KERNEL_RATIO, (
                f"{engine}: columnar/scalar ratio {ratio} < {GATE_KERNEL_RATIO}"
            )

    sweep = _sweep()

    payload = {
        "n": N,
        "block_capacity": B,
        "queries": len(queries),
        "cpu_count": os.cpu_count() or 1,
        "engines": engines,
        "pre_pr": {
            "baseline_qps": PRE_PR_QPS,
            "vs_pre_pr": vs_pre_pr,
            "gates": GATE_VS_PRE_PR,
        },
        "sweep": sweep,
    }
    path = write_perf_json("E20", payload)

    rows = [
        [name, row["scalar_qps"], row["columnar_qps"],
         row["kernel_speedup_ratio"],
         vs_pre_pr.get(name, "—"),
         f"{row['columnar_latency_ms']['p50_ms']}/{row['columnar_latency_ms']['p99_ms']}"]
        for name, row in engines.items()
    ]
    sweep_rows = [
        [r["engine"], r["n"], r["block_capacity"], r["scalar_qps"],
         r["columnar_qps"], r["kernel_speedup_ratio"]]
        for r in sweep
    ]
    archive(
        "e20_kernels",
        "E20 — Columnar page kernels (scalar vs vectorized)",
        [
            f"N={N}, B={B}, {len(queries)} segment queries (2% selectivity; "
            f"the E16 workload verbatim).  Same indexes, same queries, same "
            f"filtered arithmetic — only the kernel shape changes.  Results, "
            f"per-query reads and fast-hit/fallback telemetry are asserted "
            f"bit-identical on a {IDENTITY_SAMPLE}-query sample before "
            f"timing.",
            table_section(
                "Wall-clock queries/second, scalar vs columnar kernels:",
                ["engine", "scalar q/s", "columnar q/s", "columnar/scalar",
                 "vs pre-PR E16", "columnar p50/p99 ms"],
                rows,
            ),
            "Reading: `columnar/scalar` isolates the kernel shape "
            "in-process (machine-noise-free); `vs pre-PR E16` is the "
            "end-to-end wall-clock ratio against the committed baseline "
            "from before this refactor, which also credits the page-decode "
            "caches that both modes now share.  solution1 clears the 2x "
            "target with room; solution2's pre-PR baseline had already "
            "banked most of the filtered-arithmetic win (5654.7 q/s vs "
            "solution1's 3012.8 on identical queries) because solution1 "
            "classifies ~3x more page rows per query — so solution2 gates "
            "at 1.2x.  The rtree baseline sits near 1.0x: its leaf scans "
            "are bounding-box pre-filtered, leaving few rows for the "
            "kernel to batch.",
            table_section(
                "Sweep — scalar vs columnar over N and B (paper engines):",
                ["engine", "N", "B", "scalar q/s", "columnar q/s", "ratio"],
                sweep_rows,
            ),
            "Wider pages amortise the per-page kernel setup across more "
            "rows; at B=16 the margin thins to parity (a 16-row page "
            "retires in a handful of early-exit compares either way).  "
            "Tree nodes stay on the fused tier — its exact early exits "
            "are data-adaptive, so the numpy tier only engages on 256+ "
            "row pages (wide scans, arena sidecars).  Machine-readable "
            "copy: `" + os.path.basename(path) + "` (key `E20`, "
            "`kernel_speedup_ratio` gated by check_regression.py).",
        ],
    )


if __name__ == "__main__":
    test_e20_kernels()
