"""Perf-regression gate over the ``BENCH_perf.json`` trajectory.

Compares a current perf artifact against a baseline copy and fails
(exit 1) when the paper engines regress beyond tolerance:

* any throughput metric (``queries_per_s`` / ``queries_per_sec`` /
  ``filtered_qps``) drops by more than ``--max-drop`` (default 25%);
* any ``p99_ms`` latency inflates by more than ``--max-inflation``
  (default 25%);
* any pooled-serving overhead-reduction ratio (E18's
  ``overhead_reduction`` / ``attach_reduction`` — how many times
  cheaper the shm transport's dispatch+attach+deserialize tax is than
  the pickle pool's) shrinks by more than ``--max-ratio-drop``
  (default 50%; ratios of two small timings are the noisiest metrics
  in the file, but the E17 cliff was a ~30x effect — losing half the
  win is a structural regression, not jitter);
* E20's ``kernel_speedup_ratio`` (columnar over scalar kernel qps,
  measured in-process so it is machine-noise-free) gates the same way:
  it falling toward 1.0 means the vectorized page kernels stopped
  paying for themselves.

Experiments that stamp ``cpu_count`` (or ``cores``) report single-core
runs explicitly — E18/E19's multi-core scaling gates disarm there, and
the report says so rather than silently passing.

Only metrics attributed to the paper engines (``solution1`` /
``solution2``) gate; baseline metrics are noisy single-shot wall-clock
numbers, so the default tolerance is deliberately loose — the gate
exists to catch order-of-magnitude cliffs (a pickling regression, an
accidental exact-only hot path), not 5% jitter.  Metrics present in
only one of the two files are reported but never fail the gate, so
adding experiments or fields stays cheap.

Usage::

    python benchmarks/check_regression.py BASELINE.json [CURRENT.json]
        [--max-drop 0.25] [--max-inflation 0.25] [--json]

``CURRENT`` defaults to the repo-root ``BENCH_perf.json``.  Wired into
CI's bench-smoke job, which snapshots the committed artifact before
re-running the benchmarks and then gates the fresh numbers against it.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, Iterator, List, Tuple

DEFAULT_CURRENT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_perf.json",
)

#: Engines whose numbers gate (the paper's two solutions).
GATED_ENGINES = ("solution1", "solution2")
#: Leaf keys read as throughput (higher is better).
QPS_KEYS = ("queries_per_s", "queries_per_sec", "filtered_qps",
            "columnar_qps")
#: Leaf keys read as tail latency (lower is better).  ``mttr_ms`` — how
#: long E19's supervisor takes to notice a killed worker and respawn it
#: — gates like a tail latency: recovery slowing past tolerance is an
#: availability regression even when steady-state qps holds.
P99_KEYS = ("p99_ms", "batch_p99_ms", "mttr_ms")
#: Leaf keys read as overhead-reduction ratios (higher is better, noisy).
#: ``supervised_qps_ratio`` (E19) is supervised/unsupervised fault-free
#: throughput — near 1.0 by design; losing half of it means supervision
#: started taxing the healthy path.
#: ``kernel_speedup_ratio`` (E20) is columnar/scalar kernel throughput,
#: timed back to back in one process — the least noisy ratio here.
RATIO_KEYS = ("overhead_reduction", "attach_reduction",
              "supervised_qps_ratio", "kernel_speedup_ratio")
#: Per-run bookkeeping stamps — never metrics.
SKIP_KEYS = ("commit", "generated_at")


def _walk(node, path: Tuple[str, ...] = ()) -> Iterator[Tuple[Tuple[str, ...], float]]:
    """Yield every numeric leaf with its key path."""
    if isinstance(node, dict):
        for key, value in node.items():
            if key in SKIP_KEYS:
                continue
            yield from _walk(value, path + (str(key),))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from _walk(value, path + (str(i),))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield path, float(node)


def _gated(path: Tuple[str, ...], experiment_payload: dict) -> bool:
    """Does this metric belong to a paper engine?

    Either the path names the engine (E15/E16 nest per-engine dicts) or
    the experiment ran a single gated engine (E17's ``engine`` field).
    """
    if any(part in GATED_ENGINES for part in path):
        return True
    return experiment_payload.get("engine") in GATED_ENGINES


def extract_metrics(data: dict) -> Dict[str, Tuple[str, float]]:
    """{dotted path: (kind, value)} for every gated metric in a perf file.

    ``kind`` is ``"qps"`` (drop gates) or ``"p99"`` (inflation gates).
    """
    out: Dict[str, Tuple[str, float]] = {}
    for name, payload in (data.get("experiments") or {}).items():
        if not isinstance(payload, dict):
            continue
        for path, value in _walk(payload, (str(name),)):
            leaf = path[-1]
            if leaf in P99_KEYS:
                kind = "p99"
            elif leaf in RATIO_KEYS:
                kind = "ratio"
            elif any(part in QPS_KEYS for part in path):
                # qps metrics may nest one level deeper (per batch size).
                kind = "qps"
            else:
                continue
            if not _gated(path, payload):
                continue
            out[".".join(path)] = (kind, value)
    return out


def compare(baseline: dict, current: dict, max_drop: float,
            max_inflation: float, max_ratio_drop: float = 0.5) -> dict:
    """The gate verdict: regressions, passes, and unmatched metrics."""
    base = extract_metrics(baseline)
    cur = extract_metrics(current)
    regressions: List[dict] = []
    checked = 0
    for key, (kind, base_value) in sorted(base.items()):
        if key not in cur:
            continue
        _kind, cur_value = cur[key]
        checked += 1
        if kind in ("qps", "ratio"):
            # Zero/absent baselines can't gate (a 0-qps baseline is a
            # degenerate timing, not a target to hold).
            if base_value <= 0:
                continue
            tolerance = max_drop if kind == "qps" else max_ratio_drop
            floor = base_value * (1.0 - tolerance)
            if cur_value < floor:
                regressions.append({
                    "metric": key, "kind": kind,
                    "baseline": base_value, "current": cur_value,
                    "limit": round(floor, 3),
                    "change": round(cur_value / base_value - 1.0, 4),
                })
        else:
            if base_value <= 0:
                continue
            ceiling = base_value * (1.0 + max_inflation)
            if cur_value > ceiling:
                regressions.append({
                    "metric": key, "kind": "p99",
                    "baseline": base_value, "current": cur_value,
                    "limit": round(ceiling, 3),
                    "change": round(cur_value / base_value - 1.0, 4),
                })
    return {
        "checked": checked,
        "baseline_only": sorted(k for k in base if k not in cur),
        "current_only": sorted(k for k in cur if k not in base),
        "single_core": single_core_experiments(current),
        "regressions": regressions,
        "max_drop": max_drop,
        "max_inflation": max_inflation,
        "max_ratio_drop": max_ratio_drop,
    }


def single_core_experiments(data: dict) -> List[str]:
    """Experiments whose run recorded exactly one CPU core.

    E18/E19 disarm their multi-core scaling gates on such runs (the
    ``gates_armed`` entries carry a ``{"skipped": "1 core"}`` marker);
    the report surfaces that instead of letting a pass read as a
    multi-core verdict.
    """
    return sorted(
        name
        for name, payload in (data.get("experiments") or {}).items()
        if isinstance(payload, dict)
        and (payload.get("cpu_count") or payload.get("cores")) == 1
    )


def _load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    max_drop = 0.25
    max_inflation = 0.25
    max_ratio_drop = 0.5
    as_json = False
    positional: List[str] = []
    i = 0
    while i < len(argv):
        token = argv[i]
        if token == "--max-drop":
            max_drop = float(argv[i + 1]); i += 1
        elif token == "--max-inflation":
            max_inflation = float(argv[i + 1]); i += 1
        elif token == "--max-ratio-drop":
            max_ratio_drop = float(argv[i + 1]); i += 1
        elif token == "--json":
            as_json = True
        elif token.startswith("--"):
            print(f"unknown flag {token!r}", file=sys.stderr)
            return 2
        else:
            positional.append(token)
        i += 1
    if not positional or len(positional) > 2:
        print("usage: python benchmarks/check_regression.py BASELINE.json "
              "[CURRENT.json] [--max-drop R] [--max-inflation R] "
              "[--max-ratio-drop R] [--json]",
              file=sys.stderr)
        return 2
    baseline_path = positional[0]
    current_path = positional[1] if len(positional) == 2 else DEFAULT_CURRENT
    try:
        baseline = _load(baseline_path)
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
        return 2
    try:
        current = _load(current_path)
    except (OSError, ValueError) as exc:
        print(f"cannot read current {current_path}: {exc}", file=sys.stderr)
        return 2

    verdict = compare(baseline, current, max_drop, max_inflation,
                      max_ratio_drop)
    if as_json:
        print(json.dumps(verdict, indent=2))
    else:
        print(f"# {verdict['checked']} gated metrics compared "
              f"(drop tolerance {max_drop:.0%}, "
              f"p99 inflation tolerance {max_inflation:.0%}, "
              f"overhead-ratio drop tolerance {max_ratio_drop:.0%})")
        for key in verdict["baseline_only"]:
            print(f"# baseline-only (not gated): {key}")
        for key in verdict["current_only"]:
            print(f"# new metric (not gated): {key}")
        for name in verdict["single_core"]:
            print(f"# {name}: multi-core scaling gates SKIPPED (1 core)")
        for r in verdict["regressions"]:
            direction = "inflated" if r["kind"] == "p99" else "dropped"
            print(f"REGRESSION {r['metric']}: {direction} "
                  f"{r['baseline']} -> {r['current']} "
                  f"({r['change']:+.1%}; limit {r['limit']})")
        if not verdict["regressions"]:
            print("# no perf regressions")
    return 1 if verdict["regressions"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
