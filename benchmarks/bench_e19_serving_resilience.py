"""E19 — the price of staying up: supervised serving under worker chaos.

E18 made the pool fast; this experiment makes it measurable when the
pool is *dying*.  The same shard snapshots are served four ways over an
identical query stream:

* **sync** — ``workers=0``, the correctness oracle;
* **unsupervised** — the raw pool, no retries, no breakers (one worker
  SIGKILL would poison every pending future);
* **supervised** — the same pool under the :class:`SupervisorPolicy`
  state machine (liveness timeouts, bounded retry with jittered
  backoff, automatic respawn, per-shard circuit breakers);
* **supervised + chaos** — a seeded :class:`RpcChaosSchedule` SIGKILLs
  workers at increasing rates while the stream replays.

Three headline numbers, all landing in ``BENCH_perf.json`` (schema v5):

* ``supervised_qps_ratio`` — supervised / unsupervised fault-free
  throughput.  Supervision must be ~free when nothing fails; the ratio
  gates in ``check_regression.py`` like E18's reduction ratios.
* ``mttr_ms`` — mean time to recover: a worker is SIGKILLed mid-query
  at a named chaos point, and MTTR is the extra wall-clock the killed
  batch pays over the fault-free median before returning a *correct*
  answer (detection + respawn + retry, end to end).  Gates like a tail
  latency.
* ``degraded_fraction`` per kill rate — how much of the stream came
  back as typed partial results instead of exact answers.  Recorded,
  not gated: it prices the chaos operating point, it is not a promise.

Under every kill rate the never-silently-wrong oracle is asserted:
exact batches must match the sync oracle bit-for-bit, degraded batches
must be label-subsets whose coverage map names at least one down shard.
Chaos-point qps / stall p99 are archived under non-gated key names —
one respawn stall *is* the p99 at smoke sizes, and gating that would
make CI flake by design.  ``E19_N`` / ``E19_QUERIES`` / ``E19_WORKERS``
/ ``E19_BATCH`` / ``E19_KILL_RATES`` / ``E19_MTTR_TRIALS`` shrink the
run for CI smoke, which skips the full-scale gates and still records
every number.
"""

import os
import time

from harness import archive, table_section, write_perf_json
from repro.serving import RpcChaosSchedule, ShardedSegmentDatabase, SupervisorPolicy
from repro.workloads import grid_segments, segment_queries

B = 32
N = int(os.environ.get("E19_N", "20000"))
QUERIES = int(os.environ.get("E19_QUERIES", "192"))
SHARDS = int(os.environ.get("E19_SHARDS", "2"))
WORKERS = int(os.environ.get("E19_WORKERS", "2"))
BATCH_SIZE = int(os.environ.get("E19_BATCH", "16"))
KILL_RATES = tuple(
    float(r) for r in os.environ.get("E19_KILL_RATES", "0.0,0.05,0.15").split(","))
MTTR_TRIALS = int(os.environ.get("E19_MTTR_TRIALS", "5"))
ENGINE = "solution2"

#: Tight, impatient supervision: the benchmark prices recovery, so the
#: policy must notice death quickly rather than model production grace.
POLICY = SupervisorPolicy(max_retries=3, backoff_s=0.02, backoff_cap_s=0.5,
                          task_timeout_s=60.0, breaker_threshold=4,
                          breaker_cooldown_s=0.25, seed=7)


def _labels(results):
    return [sorted(str(s.label) for s in r) for r in results]


def _serve(db, queries):
    """(total_s, per-batch seconds, results) over the chunked stream."""
    batch_s = []
    results = []
    t0 = time.perf_counter()
    for start in range(0, len(queries), BATCH_SIZE):
        b0 = time.perf_counter()
        results.extend(db.query_batch(queries[start:start + BATCH_SIZE]))
        batch_s.append(time.perf_counter() - b0)
    return time.perf_counter() - t0, batch_s, results


def _percentile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _measure_mttr(served, queries, baseline_batch_s):
    """Mean extra wall-clock a mid-query SIGKILL costs one batch.

    Each trial arms a one-shot kill at the ``worker.mid-query`` chaos
    point, times the batch end to end, and subtracts the fault-free
    median — leaving detection + respawn + retry.  The answer must come
    back exact (one kill against ``max_retries=3`` never degrades).
    """
    pool = served._pool
    baseline = _percentile(baseline_batch_s, 0.5)
    chunk = queries[:BATCH_SIZE]
    expected = _labels(served.query_batch(chunk))
    recoveries = []
    for trial in range(MTTR_TRIALS):
        pool.chaos = RpcChaosSchedule(
            seed=trial, kill_points={"worker.mid-query": 1})
        respawns_before = pool.respawns
        t0 = time.perf_counter()
        results = served.query_batch(chunk)
        elapsed = time.perf_counter() - t0
        assert pool.respawns == respawns_before + 1, (
            f"trial {trial}: armed kill did not fire (respawns "
            f"{respawns_before} -> {pool.respawns})")
        assert not getattr(results, "degraded", False), (
            f"trial {trial}: one kill under retries degraded the batch")
        assert _labels(results) == expected, (
            f"trial {trial}: recovered batch diverged from the oracle")
        recoveries.append(max(0.0, elapsed - baseline))
    pool.chaos = None
    return round(1000 * sum(recoveries) / len(recoveries), 1)


def test_e19_serving_resilience(tmp_path):
    segments = grid_segments(N, seed=91)
    queries = segment_queries(segments, QUERIES, selectivity=0.02, seed=92)

    sharded = ShardedSegmentDatabase.bulk_load(
        segments, shards=SHARDS, engine=ENGINE, block_capacity=B)
    directory = str(tmp_path / "snap")
    sharded.save(directory)
    expected = _labels(sharded.query_batch(queries))

    # --- fault-free: what does supervision cost when nothing fails? ---
    fault_free = {}
    for mode, supervisor in (("unsupervised", None), ("supervised", POLICY)):
        with ShardedSegmentDatabase.open(
                directory, workers=WORKERS,
                supervisor=supervisor) as served:
            serve_s, batch_s, results = _serve(served, queries)
            assert _labels(results) == expected, (
                f"{mode} pool diverged from the build-time oracle")
            assert served.degraded_batches == 0, (
                f"{mode}: degraded a fault-free stream")
            fault_free[mode] = {
                "queries_per_s": round(len(queries) / serve_s, 1),
                "batch_p50_ms": round(1000 * _percentile(batch_s, 0.5), 3),
                "batch_p99_ms": round(1000 * _percentile(batch_s, 0.99), 3),
            }
            if mode == "supervised":
                mttr_ms = _measure_mttr(served, queries, batch_s)
                respawns_spent = served._pool.respawns
    supervised_qps_ratio = round(
        fault_free["supervised"]["queries_per_s"]
        / fault_free["unsupervised"]["queries_per_s"], 3)

    # --- chaos sweep: qps / tails / degraded fraction vs kill rate ---
    sweep = []
    for rate in KILL_RATES:
        chaos = RpcChaosSchedule(seed=int(rate * 1000) + 19,
                                 worker_kill_rate=rate)
        with ShardedSegmentDatabase.open(
                directory, workers=WORKERS, supervisor=POLICY,
                chaos=chaos) as served:
            serve_s, batch_s, results = _serve(served, queries)
            pool = served._pool
            degraded = 0
            for got, want in zip(results, expected):
                answer = sorted(str(s.label) for s in got)
                if getattr(got, "degraded", False):
                    degraded += 1
                    assert set(answer) <= set(want), (
                        f"kill rate {rate}: degraded result invented "
                        f"segments")
                else:
                    assert answer == want, (
                        f"kill rate {rate}: non-degraded result silently "
                        f"wrong")
            row = {
                "kill_rate": rate,
                "qps": round(len(queries) / serve_s, 1),
                "stall_p50_ms": round(1000 * _percentile(batch_s, 0.5), 3),
                "stall_p99_ms": round(1000 * _percentile(batch_s, 0.99), 3),
                "degraded_fraction": round(degraded / len(queries), 4),
                "kills": chaos.kills_injected,
                "respawns": pool.respawns,
                "retried_tasks": pool.retried_tasks,
                "failed_tasks": pool.failed_tasks,
            }
            if rate == 0.0:
                assert row["kills"] == 0 and row["degraded_fraction"] == 0.0, (
                    "kill rate 0.0 must be a clean control run")
            sweep.append(row)

    full_scale = N >= 20000
    if full_scale:
        # Supervision's fault-free tax: the timeout-guarded collection
        # path must stay within noise of the raw pool.
        assert supervised_qps_ratio >= 0.7, (
            f"supervision taxed fault-free throughput "
            f"{supervised_qps_ratio}x")
        # Recovery is detection + one executor respawn + one retry;
        # seconds-scale MTTR would mean the liveness machinery is
        # sleeping somewhere.
        assert mttr_ms < 10_000, f"MTTR {mttr_ms}ms"

    payload = {
        "n": N,
        "block_capacity": B,
        "engine": ENGINE,
        "queries": len(queries),
        "batch_size": BATCH_SIZE,
        "shards": SHARDS,
        "workers": WORKERS,
        "cores": os.cpu_count() or 1,
        "cpu_count": os.cpu_count() or 1,
        "policy": POLICY.to_dict(),
        "gates_armed": {
            "supervision_overhead": full_scale,
            "mttr_bound": full_scale,
        },
        "fault_free": fault_free,
        "supervised_qps_ratio": supervised_qps_ratio,
        "mttr_ms": mttr_ms,
        "mttr_trials": MTTR_TRIALS,
        "mttr_respawns": respawns_spent,
        "chaos_sweep": sweep,
    }
    path = write_perf_json("E19", payload)

    archive(
        "e19_serving_resilience",
        "E19 — Fault-tolerant serving: supervision overhead, MTTR, "
        "degraded service under chaos",
        [
            f"N={N}, B={B}, engine {ENGINE}, K={SHARDS} shards x "
            f"{WORKERS} workers, {len(queries)} segment queries "
            f"(2% selectivity) in batches of {BATCH_SIZE}.  Policy: "
            f"retries={POLICY.max_retries}, backoff {POLICY.backoff_s}s "
            f"(cap {POLICY.backoff_cap_s}s), task timeout "
            f"{POLICY.task_timeout_s}s, breaker "
            f"{POLICY.breaker_threshold} failures / "
            f"{POLICY.breaker_cooldown_s}s cooldown.",
            table_section(
                "Fault-free serving (identical results asserted):",
                ["mode", "queries/s", "batch p50 (ms)", "batch p99 (ms)"],
                [[mode, row["queries_per_s"], row["batch_p50_ms"],
                  row["batch_p99_ms"]]
                 for mode, row in fault_free.items()],
            ),
            f"Supervision tax: supervised/unsupervised qps ratio "
            f"{supervised_qps_ratio} (gated — must stay near 1).  "
            f"MTTR over {MTTR_TRIALS} armed mid-query SIGKILLs: "
            f"{mttr_ms}ms per recovery (detect + respawn + retry to a "
            f"bit-exact answer).",
            table_section(
                "Chaos sweep (every answer exact or a typed subset — "
                "asserted):",
                ["kill rate", "qps", "stall p50 (ms)", "stall p99 (ms)",
                 "degraded", "kills", "respawns", "retries", "failed"],
                [[row["kill_rate"], row["qps"], row["stall_p50_ms"],
                  row["stall_p99_ms"], row["degraded_fraction"],
                  row["kills"], row["respawns"], row["retried_tasks"],
                  row["failed_tasks"]]
                 for row in sweep],
            ),
            f"Reading: supervision is bookkeeping on the healthy path — "
            f"a timeout parameter on future collection plus per-shard "
            f"breaker lookups — so its fault-free tax is noise.  Under "
            f"kills the stream keeps answering: most batches recover "
            f"exactly (bounded retry against a respawned executor), the "
            f"rest return typed partials whose coverage maps name the "
            f"lost shards, and nothing silently lies.  The stall p99 "
            f"prices what a kill costs the unlucky batch — roughly one "
            f"MTTR.  Machine-readable copy: `"
            + os.path.basename(path) + "` (schema v5).",
        ],
    )
