"""E17 — sharded parallel serving: snapshots, x-partitioning, workers.

Not a paper claim but the deployment corollary of its cost model: the
paper prices one query against one index; a serving system answers a
stream of queries against data partitioned across processes.  Three
effects are measured over a shard-count × worker-count sweep:

* **snapshot leverage** — ``save()`` once, then ``open()`` restores a
  queryable database in O(pages) deserialization instead of the
  O(N log N) rebuild (recorded as save/open/rebuild seconds);
* **routing leverage** — a vertical query has one x, so it touches one
  shard of K; per-shard I/O counters show the combined work staying flat
  while per-process work shrinks;
* **worker scaling** — ``query_batch`` across a process pool, each
  worker holding its shard open and warm (wall-clock queries/sec by
  worker count; ``workers=0`` is the synchronous fallback and the
  correctness oracle — both paths must return identical results).

The run also decomposes pooled latency: every task's wall-clock is split
into dispatch / deserialize / attach / query / serialize / collect
phases by the serving layer's cross-process span accounting, and the
phase sum is asserted to cover the parent-observed task wall within 10%
— the identity ``serve-bench --trace`` visualizes, pinned numerically.

Throughput assertions are gated on ``os.cpu_count()`` (a single-core CI
runner cannot show parallel speedup) and the open-vs-rebuild ratio
assertion on ``N >= 100_000``; all numbers are recorded regardless in
``BENCH_perf.json`` (schema v4).  ``E17_N`` / ``E17_QUERIES`` /
``E17_SHARDS`` / ``E17_WORKERS`` shrink the sweep for CI smoke runs.
"""

import os
import time

from harness import archive, table_section, write_perf_json
from repro import SegmentDatabase
from repro.serving import ShardedSegmentDatabase
from repro.workloads import grid_segments, segment_queries

B = 32
N = int(os.environ.get("E17_N", "20000"))
QUERIES = int(os.environ.get("E17_QUERIES", "256"))
SHARD_COUNTS = tuple(
    int(s) for s in os.environ.get("E17_SHARDS", "1,2,4").split(","))
WORKER_COUNTS = tuple(
    int(s) for s in os.environ.get("E17_WORKERS", "0,2,4").split(","))
BATCH_SIZE = int(os.environ.get("E17_BATCH", "64"))
ENGINE = "solution2"


def _workload():
    segments = grid_segments(N, seed=71)
    queries = segment_queries(segments, QUERIES, selectivity=0.02, seed=72)
    return segments, queries


def _labels(results):
    return [sorted(str(s.label) for s in r) for r in results]


def _serve(db, queries):
    """(seconds, results) pushing the workload through in batches."""
    t0 = time.perf_counter()
    results = []
    for start in range(0, len(queries), BATCH_SIZE):
        results.extend(db.query_batch(queries[start:start + BATCH_SIZE]))
    return time.perf_counter() - t0, results


def test_e17_sharded_serving(tmp_path):
    segments, queries = _workload()

    t0 = time.perf_counter()
    flat = SegmentDatabase.bulk_load(segments, engine=ENGINE,
                                     block_capacity=B)
    rebuild_s = time.perf_counter() - t0
    expected = _labels([flat.query(q) for q in queries])

    # Flat snapshot: the open-vs-rebuild leverage in its purest form.
    flat_snap = str(tmp_path / "flat.snap")
    t0 = time.perf_counter()
    flat_bytes = flat.save(flat_snap)
    flat_save_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    reopened = SegmentDatabase.open(flat_snap)
    flat_open_s = time.perf_counter() - t0
    assert _labels([reopened.query(q) for q in queries]) == expected, (
        "snapshot round-trip changed query results"
    )
    if N >= 100_000:
        assert rebuild_s >= 10 * flat_open_s, (
            f"open() leverage too small: rebuild {rebuild_s:.2f}s vs "
            f"open {flat_open_s:.2f}s"
        )

    snapshot_rows = []
    throughput = {}
    latency = {}
    per_shard_io = {}
    for shards in SHARD_COUNTS:
        sharded = ShardedSegmentDatabase.bulk_load(
            segments, shards=shards, engine=ENGINE, block_capacity=B)
        directory = str(tmp_path / f"shards-{shards}")
        t0 = time.perf_counter()
        sharded.save(directory)
        save_s = time.perf_counter() - t0

        throughput[shards] = {}
        latency[shards] = {}
        oracle = None
        for workers in WORKER_COUNTS:
            t0 = time.perf_counter()
            with ShardedSegmentDatabase.open(directory,
                                             workers=workers) as served:
                open_s = time.perf_counter() - t0
                serve_s, results = _serve(served, queries)
                got = _labels(results)
                assert got == expected, (
                    f"sharded(K={shards}, workers={workers}) != unsharded"
                )
                if oracle is None:
                    oracle = [[str(s.label) for s in r] for r in results]
                else:
                    # Pool and synchronous paths must agree bit for bit
                    # (ordering included), not just as sets.
                    assert oracle == [[str(s.label) for s in r]
                                      for r in results], (
                        f"workers={workers} diverged from workers=0 "
                        f"at K={shards}"
                    )
                report = served.latency_report()
                throughput[shards][workers] = {
                    "open_s": round(open_s, 4),
                    "serve_s": round(serve_s, 4),
                    "queries_per_s": round(len(queries) / serve_s, 1)
                                     if serve_s else 0.0,
                    "batch_p50_ms": report["batches"]["p50_ms"],
                    "batch_p99_ms": report["batches"]["p99_ms"],
                }
                latency[shards][workers] = report
                if workers > 0:
                    # The cross-process phase decomposition must explain
                    # the parent-observed task wall-clock: dispatch +
                    # deserialize + attach + query + serialize + collect
                    # within 10% (gaps inside a worker are the only
                    # slack; clock noise is clamped out).
                    coverage = report["phase_coverage"]
                    assert coverage is not None and 0.9 <= coverage <= 1.05, (
                        f"K={shards}, workers={workers}: phase sum "
                        f"{report['phase_sum_s']}s covers {coverage} of "
                        f"task wall {report['task_wall_s']}s"
                    )
                    for phase in ("dispatch", "deserialize", "query",
                                  "serialize", "collect"):
                        assert phase in report["phases_s"], (
                            f"K={shards}, workers={workers}: "
                            f"missing phase {phase!r}"
                        )
                if workers == 0:
                    io = served.io_report()
                    per_shard_io[shards] = {
                        "combined": io["combined"]["total"],
                        "per_shard": [s["total"] for s in io["shards"]],
                    }
        snapshot_rows.append([shards, sharded.replicated, round(save_s, 4)])

    cores = os.cpu_count() or 1
    if cores >= 4 and 4 in WORKER_COUNTS and BATCH_SIZE >= 64:
        best_shards = max(SHARD_COUNTS)
        qps0 = throughput[best_shards][0]["queries_per_s"]
        qps4 = throughput[best_shards][4]["queries_per_s"]
        assert qps4 >= 2 * qps0, (
            f"no worker scaling on {cores} cores: {qps4} q/s at 4 workers "
            f"vs {qps0} q/s synchronous (K={best_shards})"
        )

    payload = {
        "n": N,
        "block_capacity": B,
        "engine": ENGINE,
        "queries": len(queries),
        "batch_size": BATCH_SIZE,
        "cores": cores,
        "rebuild_s": round(rebuild_s, 4),
        "flat_snapshot": {
            "bytes": flat_bytes,
            "save_s": round(flat_save_s, 4),
            "open_s": round(flat_open_s, 4),
            "open_vs_rebuild": round(rebuild_s / flat_open_s, 1)
                               if flat_open_s else None,
        },
        "shard_counts": list(SHARD_COUNTS),
        "worker_counts": list(WORKER_COUNTS),
        "throughput": {
            str(shards): {str(w): row for w, row in by_worker.items()}
            for shards, by_worker in throughput.items()
        },
        "per_shard_io": {
            str(shards): io for shards, io in per_shard_io.items()
        },
        "latency": {
            str(shards): {str(w): report for w, report in by_worker.items()}
            for shards, by_worker in latency.items()
        },
    }
    path = write_perf_json("E17", payload)

    qps_rows = [
        [shards] + [throughput[shards][w]["queries_per_s"]
                    for w in WORKER_COUNTS]
        for shards in SHARD_COUNTS
    ]
    io_rows = [
        [shards, per_shard_io[shards]["combined"],
         " ".join(str(v) for v in per_shard_io[shards]["per_shard"])]
        for shards in SHARD_COUNTS
    ]
    best_shards = max(SHARD_COUNTS)
    phase_names = ("dispatch", "deserialize", "attach", "query",
                   "serialize", "collect")
    phase_rows = []
    for workers in WORKER_COUNTS:
        report = latency[best_shards][workers]
        phase_rows.append(
            [workers]
            + [report["phases_s"].get(p, 0.0) for p in phase_names]
            + [report["task_wall_s"],
               report["phase_coverage"] if report["phase_coverage"]
               is not None else "-"]
        )
    archive(
        "e17_sharded_serving",
        "E17 — Sharded parallel serving (snapshots, x-partitions, workers)",
        [
            f"N={N}, B={B}, engine {ENGINE}, {len(queries)} segment queries "
            f"(2% selectivity) in batches of {BATCH_SIZE}, on {cores} "
            f"core(s).  Rebuild {rebuild_s:.3f}s vs flat snapshot open "
            f"{flat_open_s:.3f}s "
            f"(×{rebuild_s / flat_open_s if flat_open_s else 0:.0f} "
            f"leverage, {flat_bytes} bytes).",
            table_section(
                "Snapshot save time and replication by shard count:",
                ["shards", "replicated segments", "save (s)"],
                snapshot_rows,
            ),
            table_section(
                "Wall-clock queries/second by shard × worker count "
                "(workers=0 is the synchronous in-process path):",
                ["shards", *(f"workers={w}" for w in WORKER_COUNTS)],
                qps_rows,
            ),
            table_section(
                "Per-shard I/O at workers=0 (routing sends each query to "
                "one shard; the combined total stays flat as K grows):",
                ["shards", "combined I/Os", "per-shard I/Os"],
                io_rows,
            ),
            table_section(
                f"Cross-process phase decomposition at K={best_shards} "
                "(seconds summed over tasks; coverage = phase sum / "
                "parent-observed task wall, asserted within 10% for "
                "pooled runs):",
                ["workers", *phase_names, "task wall (s)", "coverage"],
                phase_rows,
            ),
            "Reading: sharding does not reduce total I/O (the same paths "
            "are walked, just in smaller indexes); it divides the work "
            "across processes, which is where the queries/sec scaling "
            "comes from once real cores back the workers.  The phase "
            "table prices the pool's overhead tax: dispatch and collect "
            "(process hops + pickling) are what the E17 latency cliff is "
            "made of when batches are small.  Machine-readable copy: `"
            + os.path.basename(path) + "` (schema v4).",
        ],
    )
