"""Shared machinery for the experiment benchmarks (E1–E12).

Every benchmark follows the same recipe:

1. generate a deterministic workload,
2. build the structure(s) under test on a fresh counting block device,
3. sweep a parameter (N, B, selectivity, ...) measuring I/O per operation,
4. print the table of rows the paper would have reported, fit the claimed
   complexity model, and archive everything under ``benchmarks/results/``.

``pytest-benchmark`` wraps a representative operation per experiment for
wall-clock numbers; the I/O tables are the primary reproduction artifact
(the paper's model counts block transfers, not seconds).
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis import best_model, il_star, render_fits, render_table
from repro.baselines import FullScanIndex, GridIndex, RTreeIndex, StabFilterIndex
from repro.core.solution1 import TwoLevelBinaryIndex
from repro.core.solution2 import TwoLevelIntervalIndex
from repro.geometry import VerticalQuery
from repro.iosim import (
    BlockDevice,
    FaultyBlockDevice,
    LRUBufferPool,
    Measurement,
    Pager,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
#: The perf-trajectory artifact lives at the repo root so successive PRs
#: diff it directly.
PERF_JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_perf.json",
)

ENGINE_BUILDERS: Dict[str, Callable] = {
    "solution1": TwoLevelBinaryIndex.build,
    "solution2": TwoLevelIntervalIndex.build,
    "scan": FullScanIndex.build,
    "stab-filter": StabFilterIndex.build,
    "grid": GridIndex.build,
    "rtree": RTreeIndex.build,
}


def build_engine(name: str, segments, block_capacity: int,
                 buffer_pages: Optional[int] = None,
                 faults=None, retry=None):
    """(device, pager, index) for one engine over a fresh device.

    With ``buffer_pages`` an LRU pool sits between the pager and the
    device (the device's counters then see only real block transfers);
    the pool is reachable as ``pager.device``.

    A ``faults`` schedule (and optional ``retry`` policy) swaps in a
    checksumming :class:`~repro.iosim.faults.FaultyBlockDevice`, so any
    benchmark can be re-run under fault injection; the schedule is
    disarmed during the build so faults target the measured workload.
    """
    if faults is not None or retry is not None:
        device = FaultyBlockDevice(block_capacity, schedule=faults, retry=retry)
    else:
        device = BlockDevice(block_capacity)
    pool = LRUBufferPool(device, buffer_pages) if buffer_pages else None
    pager = Pager(pool or device)
    disarm = faults.disarmed() if faults is not None else None
    if disarm is not None:
        with disarm:
            index = ENGINE_BUILDERS[name](pager, segments)
    else:
        index = ENGINE_BUILDERS[name](pager, segments)
    device.reset_counters()
    if pool is not None:
        pool.hits = pool.misses = 0
    return device, pager, index


def measure_queries(device, index, queries: Sequence[VerticalQuery], **query_kw):
    """Mean (reads, output) per query over a batch."""
    queries = list(queries)
    if not queries:
        raise ValueError("measure_queries needs at least one query")
    reads = outputs = 0
    for q in queries:
        with Measurement(device) as m:
            result = index.query(q, **query_kw)
        reads += m.stats.reads
        outputs += len(result)
    return reads / len(queries), outputs / len(queries)


def measure_query_batches(device, index, queries: Sequence[VerticalQuery],
                          batch_size: int, latency=None):
    """Mean (I/Os, output) per query, running ``queries`` through
    ``index.query_batch`` in chunks of ``batch_size``.

    ``latency`` may be a :class:`~repro.telemetry.LatencyHistogram`; it
    then observes the amortized per-query wall-clock of every chunk
    (chunk seconds / chunk size), so callers read p50/p99 next to the
    I/O means without a second timing pass.
    """
    queries = list(queries)
    if not queries:
        raise ValueError("measure_query_batches needs at least one query")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    ios = outputs = 0
    for start in range(0, len(queries), batch_size):
        chunk = queries[start:start + batch_size]
        t0 = time.perf_counter()
        with Measurement(device) as m:
            results = index.query_batch(chunk)
        if latency is not None:
            latency.observe((time.perf_counter() - t0) / len(chunk))
        ios += m.stats.total
        outputs += sum(len(r) for r in results)
    return ios / len(queries), outputs / len(queries)


def latency_quantiles(latency) -> dict:
    """The p50/p99 pair benchmarks archive next to their qps numbers."""
    return {
        "p50_ms": latency.summary()["p50_ms"],
        "p99_ms": latency.summary()["p99_ms"],
    }


def _git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def write_perf_json(experiment: str, payload: dict,
                    path: str = PERF_JSON_PATH) -> str:
    """Merge one experiment's results into the perf-trajectory artifact.

    The harness owns the writer so every benchmark emits the same shape;
    the file lands at the repo root (``BENCH_perf.json``) where future
    PRs diff it as the perf scoreboard.  Schema (version 6)::

        {"schema_version": 6, "commit": "<short sha>",
         "generated_by": "<last experiment written>",
         "experiments": {"E15": {..., "commit": "<short sha>",
                                 "generated_at": "<UTC ISO-8601>"},
                         "E16": {...}, "E17": {...}}}

    Version 6 adds the kernel vocabulary for E20: per-engine
    ``scalar_qps``/``columnar_qps`` and ``kernel_speedup_ratio``
    (columnar over scalar, in-process, gated like a reduction ratio), a
    ``pre_pr`` block recording the committed pre-refactor baselines and
    the ``vs_pre_pr`` wall-clock ratios against them, a ``cpu_count``
    stamp (also retrofitted onto E18/E19 so single-core runs are
    recognisably ungated), and a scalar-vs-columnar ``sweep`` over
    (N, B).  Version 5 added the resilience vocabulary for E19: ``mttr_ms``
    (mean time to recover a killed worker, gated like a latency
    quantile), ``supervised_qps_ratio`` (supervision's fault-free
    throughput tax, gated like a reduction ratio) and
    ``degraded_fraction`` under each chaos operating point.  (Version 4
    made experiments merge instead of clobbering each other, stamping
    each payload with the commit and UTC timestamp of *its own* run —
    after partial re-runs the top-level commit only describes the last
    writer, and the per-run stamps say which numbers are stale; version
    3 added wall-clock fields over v2; a version-1 file is one flat
    payload with an ``experiment`` key.  Older files migrate in place.)
    Latency quantiles live next to their qps numbers as
    ``p50_ms``/``p99_ms`` pairs — ``check_regression.py`` gates on both.
    """
    data: dict = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
    if "experiments" not in data:
        legacy_name = data.pop("experiment", None)
        data = {"experiments": {legacy_name: data} if legacy_name else {}}
    commit = _git_commit()
    data["schema_version"] = 6
    data["commit"] = commit
    data["generated_by"] = experiment
    payload = dict(payload)
    payload["commit"] = commit
    payload["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                            time.gmtime())
    data["experiments"][experiment] = payload
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def measure_total(device, fn: Callable[[], None]):
    """I/O stats of running ``fn`` once."""
    with Measurement(device) as m:
        fn()
    return m.stats


def measure_anatomy(device, index, queries: Sequence[VerticalQuery], *,
                    engine: str = "") -> Tuple[int, Dict[str, int]]:
    """Traced top-level phase I/Os summed over a query batch.

    Each query runs under :func:`repro.telemetry.trace_call`; every
    report is asserted *balanced* (per-phase I/Os sum exactly to the
    flat counter diff) before aggregating, so the returned split is an
    accounting identity over the simulated I/Os, not a sampled share.
    Returns ``(total_io, {phase: io})``.
    """
    from repro.telemetry import trace_call

    total = 0
    phases: Dict[str, int] = {}
    for q in queries:
        _result, report = trace_call(
            device, lambda q=q: index.query(q), engine=engine, description=str(q)
        )
        assert report.balanced, f"unbalanced trace for {q}"
        total += report.io.total
        for name, amount in report.top_level().items():
            phases[name] = phases.get(name, 0) + amount
    return total, phases


def archive(name: str, title: str, sections: Iterable[str]) -> str:
    """Write an experiment report to results/<name>.md and return it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    body = f"# {title}\n\n" + "\n\n".join(sections) + "\n"
    path = os.path.join(RESULTS_DIR, f"{name}.md")
    with open(path, "w") as fh:
        fh.write(body)
    print(f"\n{body}")
    return body


def fit_section(measurements: List[Tuple], claimed: str, candidates=None) -> str:
    """A report section fitting the sweep to the claimed model.

    Beside the least-squares fits (whose offsets let even a linear model
    chase a slow curve over a small range), the decisive parameter-free
    statistic is the *growth ratio*: how much the measured cost grows from
    the smallest to the largest N, against what each model's leading term
    predicts.
    """
    from repro.analysis import MODELS

    fits = best_model(measurements, candidates=candidates)
    lines = [f"Claimed leading term: `{claimed}`.", "", "```", render_fits(fits), "```"]
    ordered = sorted(measurements, key=lambda m: m[0])
    (n_lo, b_lo, t_lo, c_lo), (n_hi, b_hi, t_hi, c_hi) = ordered[0], ordered[-1]
    measured = c_hi / c_lo if c_lo else float("inf")
    lines.append("")
    lines.append(
        f"Growth over the sweep (N: {int(n_lo)} → {int(n_hi)}): measured "
        f"×{measured:.2f}; leading terms predict "
        + "; ".join(
            f"`{name}` ×{MODELS[name](n_hi, b_hi, t_hi) / MODELS[name](n_lo, b_lo, t_lo):.2f}"
            for name in (candidates or ["log2(n)", "n"])
        )
        + "."
    )
    claimed_ratio = MODELS[claimed](n_hi, b_hi, t_hi) / MODELS[claimed](n_lo, b_lo, t_lo)
    linear_ratio = MODELS["n"](n_hi, b_hi, t_hi) / MODELS["n"](n_lo, b_lo, t_lo)
    verdict = (
        "consistent with the claimed polylogarithmic bound and "
        "incompatible with linear cost"
        if measured <= 2 * claimed_ratio and measured < linear_ratio / 3
        else "see discussion in EXPERIMENTS.md"
    )
    lines.append(f"Verdict: {verdict}.")
    return "\n".join(lines)


def iostar_note(B: int) -> str:
    return (
        f"`IL*(B)` for B={B} is {il_star(B)} — the paper's iterated-log term "
        f"is a constant ≤ 3 at any feasible block size and is folded into "
        f"the fitted constants."
    )


def table_section(caption: str, headers, rows) -> str:
    return f"{caption}\n\n{render_table(headers, rows)}"
