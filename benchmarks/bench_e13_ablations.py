"""E13 — ablations of this implementation's own design choices.

Not a paper claim: these quantify the engineering decisions DESIGN.md
makes, so a reader can see what each one buys.

1. **Operation-scoped pinning** (DESIGN §5): counting a node visit as one
   I/O vs charging every fetch.  The paper's model assumes the former; the
   ablation shows how much double-charging would inflate the numbers.
2. **Buffer pool size**: the paper's bounds are cache-less; a small LRU
   pool absorbs the top tree levels.
3. **Bridge density d** (Figure 7): smaller d = more bridges = fewer scan
   steps per hop but more augmented copies (space).
"""

from contextlib import contextmanager

from harness import archive, build_engine, measure_queries, table_section
from repro.iosim import BlockDevice, LRUBufferPool, Measurement, Pager
from repro.workloads import grid_segments, segment_queries

B = 32
N = 8192


class _NoPinPager(Pager):
    """A pager whose operation scopes do not pin: every fetch is charged."""

    @contextmanager
    def operation(self):
        yield


def pinning_ablation():
    segments = grid_segments(N, seed=41)
    queries = segment_queries(segments, 10, selectivity=0.005, seed=1)
    rows = []
    for label, pager_cls in (("per-visit (pinned)", Pager),
                             ("per-fetch (no pinning)", _NoPinPager)):
        from repro.core.solution2 import TwoLevelIntervalIndex

        device = BlockDevice(B)
        index = TwoLevelIntervalIndex.build(pager_cls(device), segments)
        device.reset_counters()
        reads, out = measure_queries(device, index, queries)
        rows.append([label, round(reads, 1), round(out, 1)])
    return rows


def buffer_pool_sweep():
    segments = grid_segments(N, seed=42)
    queries = segment_queries(segments, 12, selectivity=0.005, seed=2)
    rows = []
    for pool_pages in (0, 16, 64, 256, 1024):
        from repro.core.solution2 import TwoLevelIntervalIndex

        device = BlockDevice(B)
        backing = LRUBufferPool(device, pool_pages) if pool_pages else device
        index = TwoLevelIntervalIndex.build(Pager(backing), segments)
        device.reset_counters()
        if pool_pages:
            backing.reset_counters()
        reads, _out = measure_queries(device, index, queries)
        hit_rate = getattr(backing, "hit_rate", 0.0)
        rows.append([pool_pages, round(reads, 1), f"{hit_rate:.0%}"])
    return rows


def bridge_density_sweep():
    import random

    from repro.core.solution2 import gtree
    from repro.core.solution2.gtree import GTree
    from repro.core.solution2.slabs import LongFragment

    boundaries = list(range(0, 3300, 100))
    rng = random.Random(43)
    n = 12000
    fragments = []
    heights = rng.sample(range(-40 * n, 40 * n), n)
    for i, y in enumerate(sorted(heights)):
        a = rng.randint(1, len(boundaries) - 1)
        c = rng.randint(a + 1, len(boundaries))
        payload = type("P", (), {"label": ("f", i)})()
        fragments.append(
            (a, c, LongFragment(boundaries[a - 1], boundaries[c - 1], y, y, payload))
        )
    queries = [
        (rng.randint(0, 3200), rng.randint(-40 * n, 30 * n))
        for _ in range(10)
    ]
    rows = []
    original_d = gtree.BRIDGE_D
    try:
        for d, use_bridges in ((1, True), (2, True), (4, True), (8, True),
                               (4, False)):
            gtree.BRIDGE_D = d
            device = BlockDevice(B)
            pager = Pager(device)
            g = GTree.build(pager, boundaries, fragments)
            space = device.pages_in_use
            device.reset_counters()
            reads = 0
            for x0, ylo in queries:
                with pager.operation():
                    with Measurement(device) as m:
                        g.query(x0, ylo, ylo + 8 * n, use_bridges=use_bridges)
                reads += m.stats.reads
            label = str(d) if use_bridges else f"{d} (bridges off)"
            rows.append([label, space, round(reads / len(queries), 1)])
    finally:
        gtree.BRIDGE_D = original_d
    return rows


def test_e13_report(benchmark):
    pin_rows = benchmark.pedantic(pinning_ablation, rounds=1, iterations=1)
    pool_rows = buffer_pool_sweep()
    bridge_rows = bridge_density_sweep()
    archive(
        "e13_ablations",
        "E13 — Implementation design-choice ablations",
        [
            table_section(
                f"Accounting semantics (Solution 2, N={N}, B={B}):",
                ["charging rule", "query reads", "T (avg)"],
                pin_rows,
            ),
            table_section(
                "LRU buffer pool (12-query batch; 0 = the paper's model):",
                ["pool pages", "device reads", "hit rate"],
                pool_rows,
            ),
            table_section(
                "Bridge density d (bare G, 32 inner slabs, 12000 fragments):",
                ["d", "G blocks", "query reads"],
                bridge_rows,
            ),
            "Reading: pinning matters because tree walks re-touch parent "
            "pages; pools mostly help repeated queries.  For bridges, at "
            "any fixed d the cascading beats the bridge-less search, but "
            "the augmented copies cost space *and* scan time, so a larger "
            "d (fewer copies) wins overall at practical block sizes — the "
            "library defaults to d=4 for this reason (the paper only "
            "requires a constant d >= 2).",
        ],
    )


def test_e13_pool_query_wallclock(benchmark):
    segments = grid_segments(4096, seed=44)
    device, _pager, index = build_engine("solution2", segments, B)
    queries = segment_queries(segments, 6, selectivity=0.01, seed=3)

    def run():
        for q in queries:
            index.query(q)

    benchmark(run)
