"""E15 — batched query throughput: shared-descent amortization measured.

Not a paper claim but its production corollary: under a real query
stream, consecutive queries share almost their whole root-side descent
path.  ``query_batch`` sorts a batch by query ``x`` and routes it through
the first level as groups, fetching every node on the union of paths
once per batch — so the ``log`` descent term is paid once per group
while the ``+t`` output term stays per-query (DESIGN.md §8).

The sweep runs batch sizes {1, 4, 16, 64, 256} per engine and reports

* I/Os per query **with the buffer pool off** — amortization here can
  only come from shared descent, not caching (the headline: solution1
  and solution2 drop markedly with batch size, ``scan`` stays flat);
* wall-clock queries per second at each batch size (hot-path scoreboard:
  ``__slots__`` objects, hoisted per-query allocations);
* buffer hit rate from a separate pooled run at the largest batch size.

The run also emits the machine-readable ``BENCH_perf.json`` at the repo
root (the perf trajectory future PRs diff); ``E15_N`` / ``E15_QUERIES``
shrink the workload for CI smoke runs.
"""

import os
import time

from harness import (
    archive,
    build_engine,
    latency_quantiles,
    measure_query_batches,
    table_section,
    write_perf_json,
)
from repro.telemetry import LatencyHistogram
from repro.workloads import grid_segments, segment_queries

B = 32
N = int(os.environ.get("E15_N", "4096"))
QUERIES = int(os.environ.get("E15_QUERIES", "256"))
BATCH_SIZES = (1, 4, 16, 64, 256)
BUFFER_PAGES = 64
ENGINES = ("solution1", "solution2", "scan", "stab-filter", "grid", "rtree")


def _workload():
    segments = grid_segments(N, seed=61)
    queries = segment_queries(segments, QUERIES, selectivity=0.02, seed=62)
    return segments, queries


def _run_batches(index, queries, batch_size, latency=None):
    outputs = 0
    for start in range(0, len(queries), batch_size):
        chunk = queries[start:start + batch_size]
        t0 = time.perf_counter()
        for result in index.query_batch(chunk):
            outputs += len(result)
        if latency is not None:
            latency.observe((time.perf_counter() - t0) / len(chunk))
    return outputs


def sweep_engine(engine, segments, queries):
    """{"ios_per_query": {bs: float}, "queries_per_sec": {bs: float},
    "latency_ms": {bs: {"p50_ms", "p99_ms"}}, "hit_rate": float} for one
    engine (latency is amortized per query within each batch)."""
    ios_per_query = {}
    queries_per_sec = {}
    latency_ms = {}
    device, _pager, index = build_engine(engine, segments, B)
    for bs in BATCH_SIZES:
        device.reset_counters()
        ios, _out = measure_query_batches(device, index, queries, bs)
        ios_per_query[bs] = round(ios, 3)
        hist = LatencyHistogram(f"e15.{engine}.bs{bs}")
        t0 = time.perf_counter()
        _run_batches(index, queries, bs, latency=hist)
        elapsed = time.perf_counter() - t0
        queries_per_sec[bs] = round(len(queries) / elapsed, 1) if elapsed else 0.0
        latency_ms[bs] = latency_quantiles(hist)

    pooled_device, pooled_pager, pooled_index = build_engine(
        engine, segments, B, buffer_pages=BUFFER_PAGES
    )
    pool = pooled_pager.device
    _run_batches(pooled_index, queries, max(BATCH_SIZES))
    return {
        "ios_per_query": ios_per_query,
        "queries_per_sec": queries_per_sec,
        "latency_ms": latency_ms,
        "hit_rate": round(pool.hit_rate, 4),
    }


def test_e15_batched_throughput():
    segments, queries = _workload()
    engines = {}
    for engine in ENGINES:
        engines[engine] = sweep_engine(engine, segments, queries)

    # The acceptance gate: with no buffer pool, batch-64 I/Os per query
    # must be strictly below batch-1 on both paper engines — shared
    # descent, not caching, is doing the amortizing.
    for engine in ("solution1", "solution2"):
        sweep = engines[engine]["ios_per_query"]
        assert sweep[64] < sweep[1], (
            f"{engine}: no amortization at batch 64 "
            f"({sweep[64]} vs {sweep[1]} I/Os/query)"
        )

    payload = {
        "n": N,
        "block_capacity": B,
        "queries": len(queries),
        "batch_sizes": list(BATCH_SIZES),
        "buffer_pages": BUFFER_PAGES,
        "engines": {
            name: {
                "ios_per_query": {str(bs): v for bs, v in sweep["ios_per_query"].items()},
                "queries_per_sec": {str(bs): v for bs, v in sweep["queries_per_sec"].items()},
                "latency_ms": {str(bs): v for bs, v in sweep["latency_ms"].items()},
                "hit_rate": sweep["hit_rate"],
            }
            for name, sweep in engines.items()
        },
    }
    path = write_perf_json("E15", payload)

    io_rows = []
    qps_rows = []
    lat_rows = []
    for name, sweep in engines.items():
        io_rows.append([name] + [sweep["ios_per_query"][bs] for bs in BATCH_SIZES]
                       + [sweep["hit_rate"]])
        qps_rows.append([name] + [sweep["queries_per_sec"][bs] for bs in BATCH_SIZES])
        lat_rows.append([name] + [
            f"{sweep['latency_ms'][bs]['p50_ms']}/{sweep['latency_ms'][bs]['p99_ms']}"
            for bs in BATCH_SIZES
        ])
    archive(
        "e15_batched_throughput",
        "E15 — Batched query throughput (shared-descent amortization)",
        [
            f"N={N}, B={B}, {len(queries)} segment queries (2% selectivity), "
            f"batch sizes {list(BATCH_SIZES)}.  I/Os/query measured with the "
            f"buffer pool *off*; hit rate from a separate {BUFFER_PAGES}-page "
            f"pooled run at batch {max(BATCH_SIZES)}.",
            table_section(
                "I/Os per query by batch size (no pool — every drop is "
                "shared descent):",
                ["engine", *(f"bs={bs}" for bs in BATCH_SIZES), "hit rate (pooled)"],
                io_rows,
            ),
            table_section(
                "Wall-clock queries/second by batch size:",
                ["engine", *(f"bs={bs}" for bs in BATCH_SIZES)],
                qps_rows,
            ),
            table_section(
                "Per-query latency p50/p99 (ms, amortized within each "
                "batch) by batch size:",
                ["engine", *(f"bs={bs}" for bs in BATCH_SIZES)],
                lat_rows,
            ),
            "Reading: the paper engines pay their `log` descent once per "
            "group, so I/Os/query falls toward the irreducible `+t` output "
            "term as batches grow; `scan` and the loop-fallback baselines "
            "stay flat.  Machine-readable copy: `" + os.path.basename(path) + "`.",
        ],
    )
