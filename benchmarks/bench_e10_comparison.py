"""E10 — the Figure 1 motivation: every engine, three workloads.

Stabbing queries (vertical lines) vs vertical *segment* queries of two
selectivities, across the paper's structures and the three baselines.  The
shape to reproduce: for stabbing, stab-and-filter is near-optimal and the
paper's structures are competitive; for selective segment queries the
baselines pay for everything the y-window discards while Solutions 1–2 pay
only for the answer.
"""

from harness import archive, build_engine, measure_queries, table_section
from repro.workloads import (
    delaunay_edges,
    grid_segments,
    segment_queries,
    stabbing_queries,
    version_history,
)

B = 32
ENGINES = ("scan", "grid", "rtree", "stab-filter", "solution1", "solution2")
QUERIES = 8


def workloads():
    import random

    from repro.geometry import Segment

    rng = random.Random(29)
    wide = []
    for i in range(6000):  # long horizontal-ish segments: dense stab columns
        left = rng.randrange(0, 40000)
        right = left + rng.randrange(20000, 60000)
        wide.append(
            Segment.from_coords(left, 10 * i, right, 10 * i + 3, label=("w", i))
        )
    return {
        "grid(8192)": grid_segments(8192, seed=29),
        "map(delaunay)": delaunay_edges(2500, seed=29),
        "temporal(300x30)": version_history(300, versions_per_key=30, seed=29),
        "wide(6000, dense columns)": wide,
    }


def run_comparison():
    sections = []
    for wname, segments in workloads().items():
        built = {}
        space_rows = []
        for engine in ENGINES:
            device, _pager, index = build_engine(engine, segments, B)
            built[engine] = (device, index)
            space_rows.append([engine, device.pages_in_use])
        query_sets = {
            "stabbing (line)": stabbing_queries(segments, QUERIES, seed=1),
            "segment 5%": segment_queries(segments, QUERIES, selectivity=0.05,
                                          seed=2),
            "segment 0.2%": segment_queries(segments, QUERIES,
                                            selectivity=0.002, seed=3),
        }
        rows = []
        for qname, queries in query_sets.items():
            row = [qname]
            out = None
            for engine in ENGINES:
                device, index = built[engine]
                reads, out = measure_queries(device, index, queries)
                row.append(round(reads, 1))
            row.append(round(out, 1))
            rows.append(row)
        sections.append(
            table_section(
                f"### {wname} — N={len(segments)} — mean query reads:",
                ["query kind", *ENGINES, "T (avg)"],
                rows,
            )
        )
        sections.append(
            table_section("Space (blocks):", ["engine", "blocks"], space_rows)
        )
    return sections


def test_e10_report(benchmark):
    sections = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    sections.append(
        "Expected shape: the full scan is flat and awful; the grid is fine "
        "until segments get long (replication) or selectivity gets tight; "
        "stab-and-filter matches the indexes on stabbing queries but pays "
        "the whole stab column on selective segment queries — the gap the "
        "paper's structures close."
    )
    archive("e10_comparison", "E10 — All engines, three workloads (Figure 1)",
            sections)


def test_e10_solution2_wallclock(benchmark):
    segments = grid_segments(8192, seed=29)
    device, _pager, index = build_engine("solution2", segments, B)
    queries = segment_queries(segments, 6, selectivity=0.002, seed=3)

    def run():
        for q in queries:
            index.query(q)

    benchmark(run)
