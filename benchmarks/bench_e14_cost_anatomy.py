"""E14 — where the I/Os go: per-component attribution of query cost.

Not a paper claim, but the x-ray that explains the others: each solution's
query cost decomposed into first-level routing, short-fragment PSTs, the
segment tree G, on-line C structures, and leaf scans — across workloads
whose balance between those parts differs wildly.

The splits are *measured*, not sampled: every query runs under the
telemetry tracer (:func:`harness.measure_anatomy`), whose per-phase
counts provably sum to the flat I/O diff, so each row's shares add up
to 100% (the ``other`` column holds I/O the engine charged to no
component, e.g. root-span routing).
"""

import random

from harness import archive, build_engine, measure_anatomy, table_section
from repro.geometry import Segment
from repro.workloads import grid_segments, segment_queries, version_history

B = 32
QUERIES = 10

TAGS_SOL1 = ("first-level", "PST", "C", "leaf")
TAGS_SOL2 = ("first-level", "short-PST", "G", "C", "leaf")


def wide_workload(n=4000, seed=53):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        left = rng.randrange(0, 40000)
        right = left + rng.randrange(15000, 50000)
        out.append(Segment.from_coords(left, 10 * i, right, 10 * i + 3,
                                       label=("w", i)))
    return out


def workloads():
    return {
        "grid(8192)": grid_segments(8192, seed=51),
        "temporal(250x30)": version_history(250, versions_per_key=30, seed=52),
        "wide(4000)": wide_workload(),
    }


def anatomy(engine, tags):
    rows = []
    for wname, segments in workloads().items():
        device, _pager, index = build_engine(engine, segments, B)
        queries = segment_queries(segments, QUERIES, selectivity=0.01, seed=1)
        device.reset_counters()
        total, phases = measure_anatomy(device, index, queries, engine=engine)
        row = [wname, round(total / QUERIES, 1)]
        for tag in tags:
            row.append(f"{phases.get(tag, 0) / total:.0%}" if total else "0%")
        other = total - sum(phases.get(tag, 0) for tag in tags)
        row.append(f"{other / total:.0%}" if total else "0%")
        rows.append(row)
    return rows


def test_e14_report(benchmark):
    sol1_rows = benchmark.pedantic(
        lambda: anatomy("solution1", TAGS_SOL1), rounds=1, iterations=1
    )
    sol2_rows = anatomy("solution2", TAGS_SOL2)
    archive(
        "e14_cost_anatomy",
        "E14 — Query-cost anatomy by component",
        [
            table_section(
                f"Solution 1 (B={B}, 1% selectivity; traced share of I/O "
                f"per component — rows sum to 100%):",
                ["workload", "reads/query", *TAGS_SOL1, "other"],
                sol1_rows,
            ),
            table_section(
                "Solution 2:",
                ["workload", "reads/query", *TAGS_SOL2, "other"],
                sol2_rows,
            ),
            "Reading: on point-like data the PSTs and routing dominate; on "
            "the wide workload Solution 2 shifts its cost into G (the long "
            "fragments) while Solution 1 answers from the root's PSTs — the "
            "E10 crossover, explained.",
        ],
    )


def test_e14_anatomy_wallclock(benchmark):
    segments = grid_segments(4096, seed=51)
    device, _pager, index = build_engine("solution2", segments, B)
    queries = segment_queries(segments, 6, selectivity=0.01, seed=1)

    def run():
        for q in queries:
            index.query(q)

    benchmark(run)
