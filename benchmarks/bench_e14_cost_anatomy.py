"""E14 — where the I/Os go: per-component attribution of query cost.

Not a paper claim, but the x-ray that explains the others: each solution's
query cost decomposed into first-level routing, short-fragment PSTs, the
segment tree G, on-line C structures, and leaf scans — across workloads
whose balance between those parts differs wildly.
"""

import random

from harness import archive, build_engine, table_section
from repro.geometry import Segment
from repro.workloads import grid_segments, segment_queries, version_history

B = 32
QUERIES = 10

TAGS_SOL1 = ("first-level", "PST", "C", "leaf")
TAGS_SOL2 = ("first-level", "short-PST", "G", "C", "leaf")


def wide_workload(n=4000, seed=53):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        left = rng.randrange(0, 40000)
        right = left + rng.randrange(15000, 50000)
        out.append(Segment.from_coords(left, 10 * i, right, 10 * i + 3,
                                       label=("w", i)))
    return out


def workloads():
    return {
        "grid(8192)": grid_segments(8192, seed=51),
        "temporal(250x30)": version_history(250, versions_per_key=30, seed=52),
        "wide(4000)": wide_workload(),
    }


def anatomy(engine, tags):
    sections = []
    for wname, segments in workloads().items():
        device, _pager, index = build_engine(engine, segments, B)
        queries = segment_queries(segments, QUERIES, selectivity=0.01, seed=1)
        device.reset_tags()
        device.reset_counters()
        for q in queries:
            index.query(q)
        snapshot = device.tag_snapshot()
        total = device.reads
        row = [wname, round(total / QUERIES, 1)]
        for tag in tags:
            share = snapshot.get(tag, 0) / total if total else 0.0
            row.append(f"{share:.0%}")
        sections.append(row)
    return sections


def test_e14_report(benchmark):
    sol1_rows = benchmark.pedantic(
        lambda: anatomy("solution1", TAGS_SOL1), rounds=1, iterations=1
    )
    sol2_rows = anatomy("solution2", TAGS_SOL2)
    archive(
        "e14_cost_anatomy",
        "E14 — Query-cost anatomy by component",
        [
            table_section(
                f"Solution 1 (B={B}, 1% selectivity; share of reads per "
                f"component):",
                ["workload", "reads/query", *TAGS_SOL1],
                sol1_rows,
            ),
            table_section(
                "Solution 2:",
                ["workload", "reads/query", *TAGS_SOL2],
                sol2_rows,
            ),
            "Reading: on point-like data the PSTs and routing dominate; on "
            "the wide workload Solution 2 shifts its cost into G (the long "
            "fragments) while Solution 1 answers from the root's PSTs — the "
            "E10 crossover, explained.",
        ],
    )


def test_e14_anatomy_wallclock(benchmark):
    segments = grid_segments(4096, seed=51)
    device, _pager, index = build_engine("solution2", segments, B)
    queries = segment_queries(segments, 6, selectivity=0.01, seed=1)

    def run():
        for q in queries:
            index.query(q)

    benchmark(run)
