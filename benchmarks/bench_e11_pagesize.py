"""E11 — block-size sensitivity: every bound's B-dependence at once.

Fixed N, sweep B.  Solution 1's per-level term shrinks like log_B n, its
level count stays log2 n; Solution 2's height shrinks like log_B n but its
G pays log2 B — so growing B helps Solution 2 queries more than Solution 1,
while costing it log2 B in space.
"""

from harness import archive, build_engine, measure_queries, table_section
from repro.workloads import grid_segments, segment_queries

N = 8192
B_SWEEP = (16, 32, 64, 128)
QUERIES = 8


def run_sweep():
    segments = grid_segments(N, seed=31)
    rows = []
    for b in B_SWEEP:
        queries = segment_queries(segments, QUERIES, selectivity=0.005, seed=1)
        row = [b]
        for engine in ("solution1", "solution2", "stab-filter", "rtree"):
            device, _pager, index = build_engine(engine, segments, b)
            reads, _out = measure_queries(device, index, queries)
            row.append(round(reads, 1))
        dev2, _p, _i = build_engine("solution2", segments, b)
        row.append(dev2.pages_in_use)
        rows.append(row)
    return rows


def test_e11_report(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(
        "e11_pagesize",
        "E11 — Page-size (B) sensitivity at fixed N",
        [
            table_section(
                f"Mean query reads and Solution 2 space vs B (N={N}):",
                ["B", "Sol1 reads", "Sol2 reads", "stab-filter reads",
                 "rtree reads", "Sol2 blocks"],
                rows,
            ),
            "Larger blocks shorten every search path; Solution 2's block "
            "count falls more slowly than 1/B because of the log2 B space "
            "factor (Theorem 2 i).",
        ],
    )


def test_e11_build_wallclock(benchmark):
    segments = grid_segments(2048, seed=31)

    def run():
        build_engine("solution2", segments, 64)

    benchmark.pedantic(run, rounds=3, iterations=1)
