"""E6 — Lemma 4 vs Theorem 2: the fractional-cascading ablation.

The only difference between Lemma 4 and Theorem 2 is the bridges in ``G``:
without them every level of the segment tree pays a fresh ``O(log_B n)``
B+-tree search; with them the first search is re-used via O(1)-amortised
hops.  A long-fragment-heavy workload isolates exactly that term.
"""

import random

from harness import archive, build_engine, measure_queries, table_section
from repro.geometry import Segment
from repro.workloads import segment_queries

B = 64
N_SWEEP = (2048, 8192, 32768)
QUERIES_PER_POINT = 10


def long_heavy_workload(n, seed):
    """Non-crossing wide segments with varied spans: G does all the work."""
    rng = random.Random(seed)
    segments = []
    for i in range(n):
        left = rng.randrange(0, 60000)
        right = left + rng.randrange(10000, 40000)
        segments.append(
            Segment.from_coords(left, 10 * i, right, 10 * i + 3, label=("w", i))
        )
    return segments


def run_sweep():
    rows = []
    for n in N_SWEEP:
        segments = long_heavy_workload(n, seed=n)
        device, _pager, index = build_engine("solution2", segments, B)
        queries = segment_queries(segments, QUERIES_PER_POINT,
                                  selectivity=0.005, seed=1)
        with_reads, out = measure_queries(device, index, queries, use_bridges=True)
        without_reads, _out = measure_queries(device, index, queries,
                                              use_bridges=False)
        rows.append(
            [n, round(out, 1), round(without_reads, 1), round(with_reads, 1),
             round(without_reads / with_reads, 2)]
        )
    return rows


def g_isolated_sweep():
    """The same ablation on a bare G structure (one deep segment tree),
    where the bridged-vs-unbridged search is the *whole* cost."""
    import random as _random

    from repro.core.solution2.gtree import GTree
    from repro.core.solution2.slabs import LongFragment
    from repro.iosim import BlockDevice, Measurement, Pager

    rows = []
    boundaries = list(range(0, 3300, 100))  # 32 inner slabs: G height 6
    for n in (2000, 8000, 32000):
        rng = _random.Random(n)
        fragments = []
        heights = rng.sample(range(-40 * n, 40 * n), n)
        for i, y in enumerate(sorted(heights)):
            a = rng.randint(1, len(boundaries) - 1)
            c = rng.randint(a + 1, len(boundaries))
            s_a, s_c = boundaries[a - 1], boundaries[c - 1]
            payload = type("P", (), {"label": ("f", i)})()
            fragments.append((a, c, LongFragment(s_a, s_c, y, y, payload)))
        device = BlockDevice(B)
        pager = Pager(device)
        g = GTree.build(pager, boundaries, fragments)
        device.reset_counters()
        with_b = without = 0
        for k in range(QUERIES_PER_POINT):
            x0 = rng.randint(0, 3200)
            ylo = rng.randint(-40 * n, 30 * n)
            yhi = ylo + 8 * n
            with pager.operation():
                with Measurement(device) as m:
                    g.query(x0, ylo, yhi, use_bridges=True)
            with_b += m.stats.reads
            with pager.operation():
                with Measurement(device) as m:
                    g.query(x0, ylo, yhi, use_bridges=False)
            without += m.stats.reads
        rows.append(
            [n, round(without / QUERIES_PER_POINT, 1),
             round(with_b / QUERIES_PER_POINT, 1),
             round(without / with_b, 2)]
        )
    return rows


def test_e6_report(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    g_rows = g_isolated_sweep()
    archive(
        "e6_cascade_ablation",
        "E6 — Fractional cascading ablation (Lemma 4 vs Theorem 2)",
        [
            table_section(
                f"Full-index query reads on a long-fragment workload (B={B}):",
                ["N", "T (avg)", "no bridges (Lemma 4)",
                 "bridges (Theorem 2)", "speedup"],
                rows,
            ),
            table_section(
                "G-structure in isolation (32 inner slabs, height-6 segment "
                "tree, pure long-fragment searches):",
                ["N", "no bridges", "bridges", "speedup"],
                g_rows,
            ),
            "Identical answers in both modes (asserted by the test suite); "
            "the gap is the per-level B+-tree search the bridges replace "
            "with O(1) hops.  In the full index the short-fragment and "
            "first-level costs dilute the effect; the isolated G shows the "
            "term itself.",
        ],
    )


def test_e6_bridged_query_wallclock(benchmark):
    segments = long_heavy_workload(8192, seed=3)
    device, _pager, index = build_engine("solution2", segments, B)
    queries = segment_queries(segments, 6, selectivity=0.01, seed=2)

    def run():
        for q in queries:
            index.query(q, use_bridges=True)

    benchmark(run)
