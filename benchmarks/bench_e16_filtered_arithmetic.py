"""E16 — filtered arithmetic: the float fast path vs exact-only rationals.

Not a paper claim but the cost model's blind spot made visible: the
paper counts block transfers, yet an in-memory reproduction of it spends
most of its wall-clock on exact ``Fraction`` comparisons.  The filtered
kernel (DESIGN.md §9) evaluates each sign test in doubles with a
certified error bound and falls back to rationals only on inconclusive
signs — so results and I/O counts are bit-identical (verified by
``tests/integration/test_filtered_equivalence.py``) while the hot path
dodges big-integer arithmetic.

The run measures, per engine, wall-clock queries/second with the filter
on and in ``exact-only`` mode, plus the filter hit rate (certified signs
/ all filtered decisions).  The headline: the paper engines — whose
query cost is dominated by comparisons, not scans — speed up by >= 2x
on the N=4096 integer workload.  ``E16_N`` / ``E16_QUERIES`` shrink the
workload for CI smoke runs.
"""

import os
import time

from harness import (
    archive,
    build_engine,
    latency_quantiles,
    table_section,
    write_perf_json,
)
from repro.geometry import filter_stats, reset_filter_stats, set_exact_only
from repro.telemetry import LatencyHistogram
from repro.workloads import grid_segments, segment_queries

B = 32
N = int(os.environ.get("E16_N", "4096"))
QUERIES = int(os.environ.get("E16_QUERIES", "256"))
ENGINES = ("solution1", "solution2", "scan", "stab-filter", "grid", "rtree")
#: The speedup gate only binds at the full workload; smoke runs (small
#: E16_N) build too little structure for the comparison cost to dominate.
GATE_MIN_N = 4096
GATE_SPEEDUP = 2.0


def _workload():
    segments = grid_segments(N, seed=61)
    queries = segment_queries(segments, QUERIES, selectivity=0.02, seed=62)
    return segments, queries


def _time_queries(index, queries, latency=None) -> float:
    t0 = time.perf_counter()
    for q in queries:
        q0 = time.perf_counter()
        index.query(q)
        if latency is not None:
            latency.observe(time.perf_counter() - q0)
    return time.perf_counter() - t0


def run_engine(engine, segments, queries):
    """{"filtered_qps", "exact_qps", "speedup", "hit_rate", per-mode
    p50/p99 latency} for one engine."""
    _device, _pager, index = build_engine(engine, segments, B)
    # Warm-up pass so first-touch costs don't land on either timing.
    _time_queries(index, queries[: max(1, len(queries) // 8)])

    set_exact_only(False)
    reset_filter_stats()
    filtered_hist = LatencyHistogram(f"e16.{engine}.filtered")
    filtered_elapsed = _time_queries(index, queries, latency=filtered_hist)
    stats = filter_stats()

    set_exact_only(True)
    exact_hist = LatencyHistogram(f"e16.{engine}.exact")
    try:
        exact_elapsed = _time_queries(index, queries, latency=exact_hist)
    finally:
        set_exact_only(False)

    filtered_qps = len(queries) / filtered_elapsed if filtered_elapsed else 0.0
    exact_qps = len(queries) / exact_elapsed if exact_elapsed else 0.0
    return {
        "filtered_qps": round(filtered_qps, 1),
        "exact_qps": round(exact_qps, 1),
        "speedup": round(filtered_qps / exact_qps, 3) if exact_qps else None,
        "hit_rate": round(stats["hit_rate"], 4) if stats["hit_rate"] is not None else None,
        "fast_hits": stats["fast_hits"],
        "exact_fallbacks": stats["exact_fallbacks"],
        "filtered_latency_ms": latency_quantiles(filtered_hist),
        "exact_latency_ms": latency_quantiles(exact_hist),
    }


def test_e16_filtered_arithmetic():
    segments, queries = _workload()
    engines = {}
    for engine in ENGINES:
        engines[engine] = run_engine(engine, segments, queries)

    # Acceptance gates: the filter must actually fire (the residue of
    # exact fallbacks is real: query bounds anchored on segment ordinates
    # produce true sign-0 decisions, which must go exact), and on the
    # paper engines — all comparisons, no scans — it must buy at least
    # 2x wall-clock.
    for engine in ("solution1", "solution2"):
        row = engines[engine]
        assert row["hit_rate"] is not None and row["hit_rate"] > 0.5, (
            f"{engine}: filter hit rate {row['hit_rate']} — fast path not firing"
        )
        if N >= GATE_MIN_N:
            assert row["speedup"] >= GATE_SPEEDUP, (
                f"{engine}: filtered/exact speedup {row['speedup']} "
                f"< {GATE_SPEEDUP}x at N={N}"
            )

    payload = {
        "n": N,
        "block_capacity": B,
        "queries": len(queries),
        "engines": engines,
    }
    path = write_perf_json("E16", payload)

    rows = [
        [name, row["filtered_qps"], row["exact_qps"], row["speedup"],
         row["hit_rate"],
         f"{row['filtered_latency_ms']['p50_ms']}/{row['filtered_latency_ms']['p99_ms']}",
         f"{row['exact_latency_ms']['p50_ms']}/{row['exact_latency_ms']['p99_ms']}"]
        for name, row in engines.items()
    ]
    archive(
        "e16_filtered_arithmetic",
        "E16 — Filtered exact arithmetic (float fast path vs exact-only)",
        [
            f"N={N}, B={B}, {len(queries)} segment queries (2% selectivity).  "
            f"Same index, same queries; only the arithmetic mode changes.  "
            f"Results and I/O counts are bit-identical by construction "
            f"(certified signs only) — the integration suite asserts it.",
            table_section(
                "Wall-clock queries/second, filtered vs exact-only:",
                ["engine", "filtered q/s", "exact-only q/s", "speedup",
                 "filter hit rate", "filtered p50/p99 ms", "exact p50/p99 ms"],
                rows,
            ),
            "Reading: the paper engines answer queries almost entirely "
            "through sign tests (directory descents, PST witness pruning, "
            "cascade scans), so certifying those signs in doubles removes "
            "nearly all rational arithmetic from their hot path.  The "
            "baselines mix in bounding-box scans and report filtering, so "
            "their gain is smaller but still visible.  Machine-readable "
            "copy: `" + os.path.basename(path) + "` (key `E16`).",
        ],
    )
