"""E8 — Theorem 2 (i): Solution 2 uses O(n log2 B) blocks.

Two sweeps: N at fixed B (linearity in n) and B at fixed N (the log2 B
factor, which comes from the O(log2 B) allocation nodes of each long
fragment in G).
"""

import math

from harness import archive, build_engine, table_section
from repro.workloads import grid_segments

N_FIXED = 8192
B_FIXED = 32


def n_sweep():
    rows = []
    for n in (2048, 8192, 32768):
        segments = grid_segments(n, seed=19)
        dev2, _p, _i = build_engine("solution2", segments, B_FIXED)
        dev1, _p1, _i1 = build_engine("solution1", segments, B_FIXED)
        optimal = n / B_FIXED
        rows.append(
            [n, int(optimal), dev1.pages_in_use, dev2.pages_in_use,
             round(dev2.pages_in_use / optimal, 2)]
        )
    return rows


def b_sweep():
    rows = []
    segments = grid_segments(N_FIXED, seed=19)
    for b in (16, 32, 64, 128):
        dev, _p, _i = build_engine("solution2", segments, b)
        optimal = N_FIXED / b
        rows.append(
            [b, round(math.log2(b), 1), int(optimal), dev.pages_in_use,
             round(dev.pages_in_use / optimal, 2)]
        )
    return rows


def test_e8_report(benchmark):
    n_rows = benchmark.pedantic(n_sweep, rounds=1, iterations=1)
    b_rows = b_sweep()
    archive(
        "e8_sol2_space",
        "E8 — Solution 2 storage is O(n log2 B) blocks (Theorem 2 i)",
        [
            table_section(
                f"N sweep at B={B_FIXED} (Solution 1 = the O(n) reference):",
                ["N", "optimal", "Sol1 blocks", "Sol2 blocks", "Sol2/optimal"],
                n_rows,
            ),
            table_section(
                f"B sweep at N={N_FIXED}:",
                ["B", "log2(B)", "optimal", "Sol2 blocks", "Sol2/optimal"],
                b_rows,
            ),
            "Sol2/optimal stays bounded as N grows (linearity in n) and "
            "grows no faster than log2(B) as B grows — the Theorem 2 space "
            "shape.  Solution 1's smaller footprint is the paper's stated "
            "trade-off for its slower queries.",
        ],
    )


def test_e8_build_wallclock(benchmark):
    segments = grid_segments(4096, seed=19)

    def run():
        build_engine("solution2", segments, B_FIXED)

    benchmark.pedantic(run, rounds=3, iterations=1)
