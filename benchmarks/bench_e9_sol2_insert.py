"""E9 — Theorem 2 (iii): Solution 2 semi-dynamic insertions.

Insert streams (mixed short and wide segments, so C/L/R and G all take
traffic) into pre-built indexes of growing N; the amortised I/O per
insertion — including bridge rebuilds and subtree rebuilds — must stay
polylogarithmic.
"""

import random

from harness import archive, fit_section, build_engine, table_section
from repro.geometry import Segment
from repro.iosim import Measurement
from repro.workloads import grid_segments

B = 32
N_SWEEP = (1024, 2048, 4096, 8192, 16384)
UPDATES = 96


def insert_stream(n, rng):
    width = int(110 * (n ** 0.5))
    stream = []
    for i in range(UPDATES):
        x = rng.randrange(0, width)
        y = -(5 + i)
        if i % 4 == 0:  # every fourth insert is wide (hits G)
            length = rng.randrange(width // 4, width // 2)
        else:
            length = rng.randrange(2, 200)
        stream.append(
            Segment.from_coords(x, y, x + length, y, label=("ins", n, i))
        )
    return stream


def run_sweep():
    rows = []
    measurements = []
    for n in N_SWEEP:
        segments = grid_segments(n, seed=23)
        device, _pager, index = build_engine("solution2", segments, B)
        rng = random.Random(9)
        costs = []
        for s in insert_stream(n, rng):
            with Measurement(device) as m:
                index.insert(s)
            costs.append(m.stats.total)
        index.check_invariants()
        costs.sort()
        mean = sum(costs) / len(costs)
        median = costs[len(costs) // 2]
        rows.append([n, round(mean, 1), median, costs[-1]])
        measurements.append((n, B, 0, mean))
    return rows, measurements


def test_e9_report(benchmark):
    rows, measurements = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(
        "e9_sol2_insert",
        "E9 — Solution 2 amortised insertions (Theorem 2 iii)",
        [
            table_section(
                f"Insertion I/O vs N (B={B}, {UPDATES} mixed inserts per "
                f"point; rebuild spikes included in mean/max):",
                ["N", "mean I/O", "median I/O", "max I/O"],
                rows,
            ),
            fit_section(measurements, "log_B(n)",
                        candidates=["log_B(n)", "log2(n)", "n"]),
            "The max column shows the amortised rebuilds (bridge and "
            "subtree) that single insertions occasionally absorb.",
        ],
    )


def test_e9_insert_wallclock(benchmark):
    segments = grid_segments(4096, seed=23)
    device, _pager, index = build_engine("solution2", segments, B)
    counter = [0]

    def run():
        i = counter[0] = counter[0] + 1
        index.insert(
            Segment.from_coords(7 * i, -10**6 - i, 7 * i + 3, -10**6 - i,
                                label=("w", i))
        )

    benchmark(run)
