"""E12 — generalized query segments: line, ray, segment (Section 1).

The paper's query is a *generalized* vertical segment.  All three kinds run
against both solutions on one workload; lines and rays simply have larger
outputs, and the cost stays search-term + t.  Also exercises the footnote-1
reduction: a slope-1 query direction through the sheared frame.
"""

from harness import archive, build_engine, measure_queries, table_section
from repro.core.api import SegmentDatabase
from repro.geometry import Point
from repro.workloads import (
    grid_segments,
    ray_queries,
    segment_queries,
    stabbing_queries,
)

B = 32
N = 8192
QUERIES = 8


def run_kinds():
    segments = grid_segments(N, seed=37)
    kinds = {
        "line": stabbing_queries(segments, QUERIES, seed=1),
        "ray": ray_queries(segments, QUERIES, seed=2),
        "segment": segment_queries(segments, QUERIES, selectivity=0.01, seed=3),
    }
    rows = []
    for engine in ("solution1", "solution2"):
        device, _pager, index = build_engine(engine, segments, B)
        for kind, queries in kinds.items():
            reads, out = measure_queries(device, index, queries)
            rows.append([engine, kind, round(out, 1), round(reads, 1)])
    return rows


def run_directed():
    """Footnote 1: slope-1 queries via the sheared frame."""
    segments = grid_segments(2048, seed=38)
    db = SegmentDatabase.with_direction(segments, slope=1, block_capacity=B)
    rows = []
    total_hits = 0
    for i in range(QUERIES):
        x0 = 100 + 400 * i
        hits = db.query_through(Point(x0, 0), Point(x0 + 2000, 2000))
        total_hits += len(hits)
    rows.append(["slope=1 segment", QUERIES, total_hits,
                 db.io_stats().reads])
    return rows


def test_e12_report(benchmark):
    rows = benchmark.pedantic(run_kinds, rounds=1, iterations=1)
    directed_rows = run_directed()
    archive(
        "e12_query_kinds",
        "E12 — Line / ray / segment queries and fixed non-vertical directions",
        [
            table_section(
                f"Mean reads per query kind (N={N}, B={B}):",
                ["engine", "query kind", "T (avg)", "query reads"],
                rows,
            ),
            table_section(
                "Footnote-1 reduction (queries with angular coefficient 1 "
                "through the sheared frame):",
                ["setup", "queries", "total hits", "total reads"],
                directed_rows,
            ),
        ],
    )


def test_e12_ray_wallclock(benchmark):
    segments = grid_segments(N, seed=37)
    device, _pager, index = build_engine("solution2", segments, B)
    queries = ray_queries(segments, 4, seed=2)

    def run():
        for q in queries:
            index.query(q)

    benchmark(run)
