"""E7 — Theorem 2 (ii): Solution 2 queries and the gap to Solution 1.

Sweep N on the random-grid and map workloads; fit the claimed
``log_B n (log_B n + log2 B)`` model and print Solution 1 alongside —
the improvement the paper's Section 4 exists to deliver.
"""

from harness import archive, build_engine, fit_section, measure_queries, table_section
from repro.workloads import delaunay_edges, grid_segments, segment_queries

B = 32
N_SWEEP = (1024, 2048, 4096, 8192, 16384)
QUERIES_PER_POINT = 10


def run_sweep(workload):
    rows = []
    measurements = []
    for n in N_SWEEP:
        if workload == "grid":
            segments = grid_segments(n, seed=17)
        else:
            segments = delaunay_edges(max(50, n // 3), seed=17)[:n]
        queries = segment_queries(segments, QUERIES_PER_POINT,
                                  selectivity=min(0.5, 32 / len(segments)),
                                  seed=1)
        dev2, _p2, sol2 = build_engine("solution2", segments, B)
        reads2, out = measure_queries(dev2, sol2, queries)
        dev1, _p1, sol1 = build_engine("solution1", segments, B)
        reads1, _out = measure_queries(dev1, sol1, queries)
        rows.append(
            [n, round(out, 1), round(reads1, 1), round(reads2, 1),
             round(reads1 / reads2, 2)]
        )
        measurements.append((len(segments), B, out, reads2))
    return rows, measurements


def test_e7_report(benchmark):
    grid_rows, grid_meas = benchmark.pedantic(
        lambda: run_sweep("grid"), rounds=1, iterations=1
    )
    map_rows, map_meas = run_sweep("map")
    archive(
        "e7_sol2_query",
        "E7 — Solution 2 query cost (Theorem 2 ii)",
        [
            table_section(
                f"Random grid workload (B={B}, 0.5% selectivity):",
                ["N", "T (avg)", "Solution 1 reads", "Solution 2 reads",
                 "Sol1/Sol2"],
                grid_rows,
            ),
            fit_section(
                grid_meas,
                "log_B(n)*(log_B(n)+log2(B))",
                candidates=[
                    "log_B(n)",
                    "log_B(n)*(log_B(n)+log2(B))",
                    "log2(n)*log_B(n)",
                    "n",
                ],
            ),
            table_section(
                "Delaunay map-layer workload:",
                ["N", "T (avg)", "Solution 1 reads", "Solution 2 reads",
                 "Sol1/Sol2"],
                map_rows,
            ),
            fit_section(
                map_meas,
                "log_B(n)*(log_B(n)+log2(B))",
                candidates=[
                    "log_B(n)",
                    "log_B(n)*(log_B(n)+log2(B))",
                    "log2(n)*log_B(n)",
                    "n",
                ],
            ),
        ],
    )


def test_e7_query_wallclock(benchmark):
    segments = grid_segments(8192, seed=17)
    device, _pager, index = build_engine("solution2", segments, B)
    queries = segment_queries(segments, 6, selectivity=0.01, seed=2)

    def run():
        for q in queries:
            index.query(q)

    benchmark(run)
