"""An external-memory interval tree for stabbing queries.

This is the substrate the paper cites as reference [3] (Arge & Vitter's
external interval tree): ``O(n)``-block storage, stabbing queries in
``O(log_B n + t)`` I/Os, semi-dynamic insertions.  It is used directly by
the stab-and-filter baseline and, in spirit, as the first-level structure of
Solution 2 (which re-implements the slab decomposition with the paper's own
second-level structures).

Structure
---------
A fan-out-``b`` tree balanced over interval endpoints.  An internal node
covers an x-range split by boundaries ``s_1 < ... < s_b`` into ``b + 1``
slabs.  An interval whose endpoints fall in *different* slabs is stored at
the node:

* in the **left list** ``L_a`` of the slab ``a`` holding its left endpoint,
  keyed ascending by left endpoint;
* in the **right list** ``R_c`` of the slab ``c`` holding its right
  endpoint, keyed ascending by *negated* right endpoint; and
* when ``c >= a + 2``, in the **multislab list** ``[a+1 : c-1]`` it fully
  spans.

A stab at ``x`` in slab ``k`` reports the prefix of ``L_k`` with ``l <= x``,
the prefix of ``R_k`` with ``r >= x``, every multislab list whose range
contains ``k``, then recurses into child ``k``.  Each of the three cases is
mutually exclusive, so no interval is reported twice.

Deviations from [3] (documented in DESIGN.md §2): no corner/underflow
structure for sparse multislab lists and no weight-balancing of the fan-out
tree under insertion; leaves overflowing rebuild their subtree instead.
Lists use B+-trees whose *head-leaf page id is stable under insertion*, so
prefix scans start in O(1) I/Os.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..iosim import Pager
from .bplus import BPlusTree
from .chain import PageChain

Interval = Tuple[Any, Any, Any]  # (lo, hi, payload)

#: A leaf whose chain exceeds this many pages is rebuilt into a subtree.
LEAF_REBUILD_PAGES = 2


def default_fanout(block_capacity: int) -> int:
    """Largest fan-out with a one-page slab directory and routing page."""
    # Routing page holds b bounds + (b+1) children + 2(b+1) list records.
    by_routing = (block_capacity - 3) // 4
    by_directory = int(math.isqrt(2 * block_capacity))
    return max(2, min(by_routing, by_directory))


class _Node:
    """In-memory handle for one internal node (two pages on disk)."""

    def __init__(self, routing_pid: int, directory_pid: int):
        self.routing_pid = routing_pid
        self.directory_pid = directory_pid


class ExternalIntervalTree:
    """Stabbing-query index over arbitrary (possibly overlapping) intervals."""

    def __init__(self, pager: Pager, fanout: Optional[int] = None):
        self.pager = pager
        self.fanout = fanout or default_fanout(pager.device.block_capacity)
        if self.fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {self.fanout}")
        records = 4 * self.fanout + 3
        if records > pager.device.block_capacity:
            raise ValueError(
                f"block capacity {pager.device.block_capacity} cannot hold a "
                f"fanout-{self.fanout} routing page ({records} records); "
                f"use B >= 11 or a smaller fanout"
            )
        self.root_pid: Optional[int] = None
        self._size = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        pager: Pager,
        intervals: Sequence[Interval],
        fanout: Optional[int] = None,
    ) -> "ExternalIntervalTree":
        tree = cls(pager, fanout=fanout)
        tree.root_pid = tree._build_subtree(list(intervals))
        tree._size = len(intervals)
        return tree

    def _build_subtree(self, intervals: List[Interval]) -> int:
        capacity = self.pager.device.block_capacity
        if len(intervals) <= capacity:
            return self._build_leaf(intervals)
        boundaries = self._choose_boundaries(intervals)
        if not boundaries:
            # All endpoints identical: nothing can separate the intervals.
            return self._build_leaf(intervals)

        here: List[Interval] = []
        per_slab: List[List[Interval]] = [[] for _ in range(len(boundaries) + 1)]
        for iv in intervals:
            a = bisect.bisect_right(boundaries, iv[0])
            c = bisect.bisect_right(boundaries, iv[1])
            if a != c:
                here.append(iv)
            else:
                per_slab[a].append(iv)
        if any(len(slab) == len(intervals) for slab in per_slab):
            # No progress (e.g. every interval is the same point, so every
            # endpoint collapses onto one boundary): fall back to a chain
            # leaf, whose scans stay output-sensitive.
            return self._build_leaf(intervals)

        children = [self._build_subtree(slab) for slab in per_slab]
        return self._write_node(boundaries, children, here)

    def _choose_boundaries(self, intervals: List[Interval]) -> List[Any]:
        endpoints = sorted(x for iv in intervals for x in (iv[0], iv[1]))
        boundaries: List[Any] = []
        for i in range(1, self.fanout + 1):
            value = endpoints[(len(endpoints) * i) // (self.fanout + 1)]
            if not boundaries or value > boundaries[-1]:
                boundaries.append(value)
        return boundaries

    def _build_leaf(self, intervals: List[Interval]) -> int:
        chain = PageChain.create(self.pager, intervals)
        head = self.pager.fetch(chain.head_pid)
        head.set_header("kind", "leaf")
        self.pager.write(head)
        return chain.head_pid

    def _write_node(
        self, boundaries: List[Any], children: List[int], here: List[Interval]
    ) -> int:
        n_slabs = len(boundaries) + 1
        left_lists: List[BPlusTree] = []
        right_lists: List[BPlusTree] = []
        per_left: List[List[Interval]] = [[] for _ in range(n_slabs)]
        per_right: List[List[Interval]] = [[] for _ in range(n_slabs)]
        multislab: Dict[Tuple[int, int], List[Interval]] = {}
        for iv in here:
            a = bisect.bisect_right(boundaries, iv[0])
            c = bisect.bisect_right(boundaries, iv[1])
            per_left[a].append(iv)
            per_right[c].append(iv)
            if c >= a + 2:
                multislab.setdefault((a + 1, c - 1), []).append(iv)

        for slab in range(n_slabs):
            left_lists.append(
                BPlusTree.build(
                    self.pager,
                    sorted(((iv[0], iv) for iv in per_left[slab]), key=lambda kv: kv[0]),
                )
            )
            right_lists.append(
                BPlusTree.build(
                    self.pager,
                    sorted(((-iv[1], iv) for iv in per_right[slab]), key=lambda kv: kv[0]),
                )
            )

        routing = self.pager.alloc()
        routing.set_header("kind", "node")
        records: List[Tuple] = []
        records.extend(("bound", i, s) for i, s in enumerate(boundaries))
        records.extend(("child", i, pid) for i, pid in enumerate(children))
        for i, tree in enumerate(left_lists):
            records.append(("left", i, self._list_record(tree)))
        for i, tree in enumerate(right_lists):
            records.append(("right", i, self._list_record(tree)))
        routing.put_items(records)
        self.pager.write(routing)

        directory = self.pager.alloc()
        directory.set_header("kind", "directory")
        dir_items = []
        for (i, j), ivs in sorted(multislab.items()):
            tree = BPlusTree.build(
                self.pager, sorted(((iv[0], iv) for iv in ivs), key=lambda kv: kv[0])
            )
            dir_items.append(((i, j), self._list_record(tree)))
        directory.put_items(dir_items)
        self.pager.write(directory)
        routing.set_header("directory", directory.page_id)
        self.pager.write(routing)
        return routing.page_id

    def _list_record(self, tree: BPlusTree) -> Tuple[int, int]:
        """(root_pid, head_leaf_pid): the head-leaf pid is insert-stable."""
        page = self.pager.fetch(tree.root_pid)
        while not page.get_header("leaf"):
            page = self.pager.fetch(page.items[0][1])
        return (tree.root_pid, page.page_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stab(self, x: Any) -> List[Interval]:
        """All intervals ``[l, r]`` with ``l <= x <= r``."""
        return list(self.iter_stab(x))

    def iter_stab(self, x: Any) -> Iterator[Interval]:
        if self.root_pid is None:
            return
        pid = self.root_pid
        while True:
            page = self.pager.fetch(pid)
            if page.get_header("kind") == "leaf":
                chain = PageChain(self.pager, pid)
                for iv in chain:
                    if iv[0] <= x <= iv[1]:
                        yield iv
                return
            boundaries, children, lefts, rights = self._read_routing(page)
            k = bisect.bisect_right(boundaries, x)
            _root, head = lefts[k]
            for _key, iv in BPlusTree(self.pager, _root).scan_at(head, 0):
                if iv[0] > x:
                    break
                yield iv
            _root, head = rights[k]
            for _negr, iv in BPlusTree(self.pager, _root).scan_at(head, 0):
                if -_negr < x:
                    break
                yield iv
            directory = self.pager.fetch(page.get_header("directory"))
            for (i, j), (root, head) in directory.items:
                if i <= k <= j:
                    for _key, iv in BPlusTree(self.pager, root).scan_at(head, 0):
                        yield iv
            pid = children[k]

    def _read_routing(self, page) -> Tuple[List, List, List, List]:
        boundaries: List[Any] = []
        children: List[int] = []
        lefts: List[Tuple[int, int]] = []
        rights: List[Tuple[int, int]] = []
        for kind, i, value in page.items:
            if kind == "bound":
                boundaries.append(value)
            elif kind == "child":
                children.append(value)
            elif kind == "left":
                lefts.append(value)
            else:
                rights.append(value)
        return boundaries, children, lefts, rights

    def __len__(self) -> int:
        return self._size

    def items(self) -> Iterator[Interval]:
        """Every stored interval exactly once (via left lists and leaves)."""
        if self.root_pid is None:
            return
        stack = [self.root_pid]
        while stack:
            page = self.pager.fetch(stack.pop())
            if page.get_header("kind") == "leaf":
                yield from PageChain(self.pager, page.page_id)
                continue
            _bounds, children, lefts, _rights = self._read_routing(page)
            for root, head in lefts:
                for _key, iv in BPlusTree(self.pager, root).scan_at(head, 0):
                    yield iv
            stack.extend(children)

    # ------------------------------------------------------------------
    # insertion (semi-dynamic)
    # ------------------------------------------------------------------
    def insert(self, lo: Any, hi: Any, payload: Any) -> None:
        """Insert one interval in ``O(log_B n)`` amortised I/Os."""
        if hi < lo:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        iv = (lo, hi, payload)
        self._size += 1
        if self.root_pid is None:
            self.root_pid = self._build_leaf([iv])
            return
        self._insert_below(None, None, self.root_pid, iv)

    def _insert_below(
        self, parent_pid: Optional[int], child_slot: Optional[int], pid: int, iv: Interval
    ) -> None:
        page = self.pager.fetch(pid)
        if page.get_header("kind") == "leaf":
            chain = PageChain(self.pager, pid)
            chain.append(iv)
            if chain.count() > LEAF_REBUILD_PAGES * self.pager.device.block_capacity:
                self._rebuild_leaf(parent_pid, child_slot, chain)
            return
        boundaries, children, lefts, rights = self._read_routing(page)
        a = bisect.bisect_right(boundaries, iv[0])
        c = bisect.bisect_right(boundaries, iv[1])
        if a == c:
            self._insert_below(pid, a, children[a], iv)
            return
        self._insert_into_list(page, "left", a, lefts[a], iv[0], iv)
        self._insert_into_list(page, "right", c, rights[c], -iv[1], iv)
        if c >= a + 2:
            self._insert_multislab(page, (a + 1, c - 1), iv)

    def _insert_into_list(
        self, page, kind: str, slab: int, record: Tuple[int, int], key: Any, iv: Interval
    ) -> None:
        """Insert into a slab list, refreshing the routing record when the
        B+-tree root splits (the head-leaf pid never changes)."""
        tree = BPlusTree(self.pager, record[0])
        tree.insert(key, iv)
        if tree.root_pid != record[0]:
            for idx, (rkind, i, _value) in enumerate(page.items):
                if rkind == kind and i == slab:
                    page.items[idx] = (rkind, i, (tree.root_pid, record[1]))
                    break
            self.pager.write(page)

    def _insert_multislab(self, page, key: Tuple[int, int], iv: Interval) -> None:
        directory = self.pager.fetch(page.get_header("directory"))
        for idx, (span, record) in enumerate(directory.items):
            if span == key:
                tree = BPlusTree(self.pager, record[0])
                tree.insert(iv[0], iv)
                directory.items[idx] = (span, (tree.root_pid, record[1]))
                self.pager.write(directory)
                return
        tree = BPlusTree.build(self.pager, [(iv[0], iv)])
        directory.append_item((key, self._list_record(tree)))
        self.pager.write(directory)

    def _rebuild_leaf(
        self, parent_pid: Optional[int], child_slot: Optional[int], chain: PageChain
    ) -> None:
        intervals = chain.to_list()
        endpoints = {x for iv in intervals for x in (iv[0], iv[1])}
        if len(endpoints) < 2:
            return  # indistinguishable intervals stay in one chain
        chain.destroy()
        new_pid = self._build_subtree(intervals)
        if parent_pid is None:
            self.root_pid = new_pid
            return
        parent = self.pager.fetch(parent_pid)
        for idx, (kind, i, value) in enumerate(parent.items):
            if kind == "child" and i == child_slot:
                parent.items[idx] = (kind, i, new_pid)
                break
        self.pager.write(parent)
