"""A linked chain of pages holding an unordered sequence of items.

The simplest external structure: O(1) I/O access to the head, O(k/B) to
scan ``k`` items, O(1) amortised appends (the tail page is found through a
head-header pointer).  Used for interval-tree leaves and other scan-only
payloads.  The head page id is stable for the lifetime of the chain.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional

from ..iosim import Pager


class PageChain:
    """An append-only sequence of items spread over linked pages."""

    def __init__(self, pager: Pager, head_pid: int):
        self.pager = pager
        self.head_pid = head_pid

    @classmethod
    def create(cls, pager: Pager, items: Iterable[Any] = ()) -> "PageChain":
        head = pager.alloc()
        head.set_header("next", None)
        head.set_header("tail", head.page_id)
        head.set_header("count", 0)
        pager.write(head)
        chain = cls(pager, head.page_id)
        chain.extend(items)
        return chain

    def append(self, item: Any) -> None:
        head = self.pager.fetch(self.head_pid)
        tail = (
            head
            if head.get_header("tail") == self.head_pid
            else self.pager.fetch(head.get_header("tail"))
        )
        if tail.free_slots == 0:
            new_tail = self.pager.alloc()
            new_tail.set_header("next", None)
            tail.set_header("next", new_tail.page_id)
            self.pager.write(tail)
            tail = new_tail
            head.set_header("tail", tail.page_id)
        tail.append_item(item)
        self.pager.write(tail)
        head.set_header("count", head.get_header("count") + 1)
        self.pager.write(head)

    def extend(self, items: Iterable[Any]) -> None:
        for item in items:
            self.append(item)

    def __iter__(self) -> Iterator[Any]:
        pid: Optional[int] = self.head_pid
        while pid is not None:
            page = self.pager.fetch(pid)
            yield from page.items
            pid = page.get_header("next")

    def iter_pages(self) -> Iterator[Any]:
        """Yield the chain's pages in order — the same fetch sequence as
        ``__iter__`` — so scan kernels can work a page at a time."""
        pid: Optional[int] = self.head_pid
        while pid is not None:
            page = self.pager.fetch(pid)
            yield page
            pid = page.get_header("next")

    def count(self) -> int:
        """Item count, read from the head page (1 I/O)."""
        return self.pager.fetch(self.head_pid).get_header("count")

    def to_list(self) -> List[Any]:
        return list(self)

    def replace(self, items: Iterable[Any]) -> None:
        """Replace the whole contents; the head page id stays stable."""
        head = self.pager.fetch(self.head_pid)
        # Free the old tail pages.
        pid = head.get_header("next")
        while pid is not None:
            page = self.pager.fetch(pid)
            next_pid = page.get_header("next")
            self.pager.free(pid)
            pid = next_pid
        head.put_items([])
        head.set_header("next", None)
        head.set_header("tail", self.head_pid)
        head.set_header("count", 0)
        self.pager.write(head)
        self.extend(items)

    def destroy(self) -> None:
        pid: Optional[int] = self.head_pid
        while pid is not None:
            page = self.pager.fetch(pid)
            next_pid = page.get_header("next")
            self.pager.free(pid)
            pid = next_pid
