"""An external-memory B+-tree.

The workhorse ordered file of the library (the paper's reference [7]): used
for multislab lists in the segment tree ``G``, for the slab lists of the
external interval tree, and for the on-line interval indexes.  Costs are the
classical ones: ``O(log_B n + t)`` I/Os per range query, ``O(log_B n)`` per
insertion/deletion, ``O(n)`` blocks.

Layout
------
* Leaf page: ``items = [(key, value), ...]`` sorted by key (duplicate keys
  allowed); header ``leaf=True``, ``next``/``prev`` sibling pids.
* Internal page: ``items = [(min_key_of_child, child_pid), ...]``; header
  ``leaf=False``.

Keys may be any totally ordered values (ints, Fractions, tuples).  The tree
exposes leaf-level navigation (:meth:`locate`, :meth:`scan_at`) so
fractional-cascading bridges can jump straight to a leaf and walk siblings —
the O(1)-per-level navigation of Section 4.3 depends on it.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from ..iosim import Page, Pager

KeyValue = Tuple[Any, Any]


class BPlusTree:
    """A B+-tree over one :class:`~repro.iosim.pager.Pager`.

    Create with :meth:`create` (empty) or :meth:`build` (bulk-load from
    sorted pairs); re-attach to an existing tree with the constructor.
    """

    def __init__(self, pager: Pager, root_pid: int):
        self.pager = pager
        self.root_pid = root_pid

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, pager: Pager) -> "BPlusTree":
        """Create an empty tree (a single empty leaf)."""
        root = pager.alloc()
        root.set_header("leaf", True)
        root.set_header("next", None)
        root.set_header("prev", None)
        pager.write(root)
        return cls(pager, root.page_id)

    @classmethod
    def build(cls, pager: Pager, pairs: Iterable[KeyValue]) -> "BPlusTree":
        """Bulk-load from key-sorted ``(key, value)`` pairs.

        Costs ``O(n)`` writes; raises if the input is unsorted.
        """
        pairs = list(pairs)
        for a, b in zip(pairs, pairs[1:]):
            if b[0] < a[0]:
                raise ValueError("bulk-load input must be sorted by key")
        if not pairs:
            return cls.create(pager)

        capacity = pager.device.block_capacity
        # Fill leaves to ~2/3 so early insertions do not immediately split.
        fill = max(2, (2 * capacity) // 3)

        leaves: List[Page] = []
        for start in range(0, len(pairs), fill):
            leaf = pager.alloc()
            leaf.set_header("leaf", True)
            leaf.put_items(pairs[start : start + fill])
            leaves.append(leaf)
        for i, leaf in enumerate(leaves):
            leaf.set_header("prev", leaves[i - 1].page_id if i > 0 else None)
            leaf.set_header("next", leaves[i + 1].page_id if i + 1 < len(leaves) else None)
            pager.write(leaf)

        level: List[Tuple[Any, int]] = [
            (leaf.items[0][0], leaf.page_id) for leaf in leaves
        ]
        while len(level) > 1:
            next_level: List[Tuple[Any, int]] = []
            for start in range(0, len(level), fill):
                node = pager.alloc()
                node.set_header("leaf", False)
                node.put_items(level[start : start + fill])
                pager.write(node)
                next_level.append((node.items[0][0], node.page_id))
            level = next_level
        return cls(pager, level[0][1])

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _descend_to_leaf(self, key: Any) -> Page:
        """Walk to the leaf that would hold ``key`` (leftmost on ties)."""
        page = self.pager.fetch(self.root_pid)
        while not page.get_header("leaf"):
            keys = [k for k, _pid in page.items]
            # Child to descend into: the rightmost child whose min key is
            # <= key; bisect_left finds the first child with min key >= key.
            pos = bisect.bisect_left(keys, key)
            if pos == len(keys) or (pos > 0 and keys[pos] != key):
                pos -= 1
            pos = max(pos, 0)
            page = self.pager.fetch(page.items[pos][1])
        return page

    def locate(self, key: Any) -> Tuple[int, int]:
        """Return ``(leaf_pid, index)`` of the first item with key >= ``key``.

        The index may equal the leaf length when every key in the tree is
        smaller; :meth:`scan_at` handles that by moving to the next leaf.
        """
        leaf = self._descend_to_leaf(key)
        idx = bisect.bisect_left([k for k, _v in leaf.items], key)
        return leaf.page_id, idx

    def locate_first(self, pred: Callable[[Any], bool]) -> Tuple[int, int]:
        """Return ``(leaf_pid, index)`` of the first item whose key satisfies
        a *monotone* predicate (False...False True...True over key order).

        Runs in ``O(log_B n)`` I/Os.  When no item satisfies the predicate
        the returned position is one past the last item (scans stop
        immediately).  Used by the multislab lists of Solution 2, where the
        search boundary depends on evaluating the stored fragments at the
        query line rather than on comparing a fixed key.
        """
        page = self.pager.fetch(self.root_pid)
        while not page.get_header("leaf"):
            # Descend into the child just before the first child whose
            # minimum key already satisfies the predicate: the boundary is
            # either inside it or at the start of the next child.
            pos = len(page.items) - 1
            for i, (min_key, _pid) in enumerate(page.items):
                if pred(min_key):
                    pos = max(0, i - 1)
                    break
            page = self.pager.fetch(page.items[pos][1])
        for idx, (key, _value) in enumerate(page.items):
            if pred(key):
                return page.page_id, idx
        # Not in this leaf: the boundary is at the start of what follows.
        return page.page_id, len(page.items)

    def search(self, key: Any) -> List[Any]:
        """All values stored under exactly ``key``."""
        values = []
        for k, v in self.scan_from(key):
            if k != key:
                break
            values.append(v)
        return values

    def min_item(self) -> Optional[KeyValue]:
        page = self.pager.fetch(self.root_pid)
        while not page.get_header("leaf"):
            page = self.pager.fetch(page.items[0][1])
        return page.items[0] if page.items else None

    def max_item(self) -> Optional[KeyValue]:
        page = self.pager.fetch(self.root_pid)
        while not page.get_header("leaf"):
            page = self.pager.fetch(page.items[-1][1])
        return page.items[-1] if page.items else None

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def scan_at(self, leaf_pid: int, index: int) -> Iterator[KeyValue]:
        """Yield items from ``(leaf_pid, index)`` onward, walking siblings."""
        pid: Optional[int] = leaf_pid
        while pid is not None:
            leaf = self.pager.fetch(pid)
            for i in range(index, len(leaf.items)):
                yield leaf.items[i]
            pid = leaf.get_header("next")
            index = 0

    def scan_at_reverse(self, leaf_pid: int, index: int) -> Iterator[KeyValue]:
        """Yield items from ``(leaf_pid, index)`` backward (inclusive)."""
        pid: Optional[int] = leaf_pid
        while pid is not None:
            leaf = self.pager.fetch(pid)
            if index >= len(leaf.items):
                index = len(leaf.items) - 1
            for i in range(index, -1, -1):
                yield leaf.items[i]
            pid = leaf.get_header("prev")
            index = 10**9  # clamped to the previous leaf's last item

    def scan_from(self, key: Any) -> Iterator[KeyValue]:
        """Yield items with key >= ``key`` in ascending order."""
        leaf_pid, idx = self.locate(key)
        return self.scan_at(leaf_pid, idx)

    def range_scan(self, lo: Any, hi: Any) -> Iterator[KeyValue]:
        """Yield items with ``lo <= key <= hi`` in ascending order."""
        for k, v in self.scan_from(lo):
            if k > hi:
                break
            yield (k, v)

    def items(self) -> Iterator[KeyValue]:
        """Full ascending scan."""
        page = self.pager.fetch(self.root_pid)
        while not page.get_header("leaf"):
            page = self.pager.fetch(page.items[0][1])
        return self.scan_at(page.page_id, 0)

    def __len__(self) -> int:
        """Item count via a full scan (diagnostics; O(n) I/Os)."""
        return sum(1 for _ in self.items())

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert one pair in ``O(log_B n)`` I/Os (duplicates allowed)."""
        split = self._insert_into(self.root_pid, key, value)
        if split is not None:
            old_root = self.pager.fetch(self.root_pid)
            old_min = old_root.items[0][0]
            new_root = self.pager.alloc()
            new_root.set_header("leaf", False)
            new_root.put_items([(old_min, self.root_pid), split])
            self.pager.write(new_root)
            self.root_pid = new_root.page_id

    def _insert_into(
        self, pid: int, key: Any, value: Any
    ) -> Optional[Tuple[Any, int]]:
        """Insert under ``pid``; return ``(min_key, new_pid)`` on split."""
        page = self.pager.fetch(pid)
        if page.get_header("leaf"):
            keys = [k for k, _v in page.items]
            pos = bisect.bisect_right(keys, key)
            page.items.insert(pos, (key, value))
            if len(page.items) <= page.capacity:
                self.pager.write(page)
                return None
            return self._split_leaf(page)

        keys = [k for k, _pid in page.items]
        pos = bisect.bisect_right(keys, key) - 1
        pos = max(pos, 0)
        child_split = self._insert_into(page.items[pos][1], key, value)
        if pos == 0 and key < page.items[0][0]:
            # Keep separator keys equal to true child minima.
            page.items[0] = (key, page.items[0][1])
            self.pager.write(page)
        if child_split is None:
            return None
        page.items.insert(pos + 1, child_split)
        if len(page.items) <= page.capacity:
            self.pager.write(page)
            return None
        return self._split_internal(page)

    def _split_leaf(self, page: Page) -> Tuple[Any, int]:
        mid = len(page.items) // 2
        right = self.pager.alloc()
        right.set_header("leaf", True)
        right.put_items(page.items[mid:])
        page.put_items(page.items[:mid])

        next_pid = page.get_header("next")
        right.set_header("next", next_pid)
        right.set_header("prev", page.page_id)
        page.set_header("next", right.page_id)
        if next_pid is not None:
            nxt = self.pager.fetch(next_pid)
            nxt.set_header("prev", right.page_id)
            self.pager.write(nxt)
        self.pager.write(page)
        self.pager.write(right)
        return (right.items[0][0], right.page_id)

    def _split_internal(self, page: Page) -> Tuple[Any, int]:
        mid = len(page.items) // 2
        right = self.pager.alloc()
        right.set_header("leaf", False)
        right.put_items(page.items[mid:])
        page.put_items(page.items[:mid])
        self.pager.write(page)
        self.pager.write(right)
        return (right.items[0][0], right.page_id)

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, key: Any, match: Optional[Callable[[Any], bool]] = None) -> bool:
        """Delete one item with ``key`` (and ``match(value)`` if given).

        Returns True when an item was removed.  Underflowing pages are merged
        into a sibling when possible, keeping space linear.
        """
        removed, _empty = self._delete_from(self.root_pid, key, match)
        while removed:
            root = self.pager.fetch(self.root_pid)
            if root.get_header("leaf") or len(root.items) != 1:
                break
            only_child = root.items[0][1]
            self.pager.free(root.page_id)
            self.root_pid = only_child
        return removed

    def _delete_from(
        self, pid: int, key: Any, match: Optional[Callable[[Any], bool]]
    ) -> Tuple[bool, bool]:
        """Delete under ``pid``; return ``(removed, subtree_now_empty)``."""
        page = self.pager.fetch(pid)
        if page.get_header("leaf"):
            keys = [k for k, _v in page.items]
            pos = bisect.bisect_left(keys, key)
            while pos < len(page.items) and page.items[pos][0] == key:
                if match is None or match(page.items[pos][1]):
                    del page.items[pos]
                    self.pager.write(page)
                    return True, not page.items
                pos += 1
            return False, False

        keys = [k for k, _pid in page.items]
        pos = bisect.bisect_right(keys, key) - 1
        pos = max(pos, 0)
        # With duplicate keys the target may sit in the next child as well.
        while pos < len(page.items):
            if pos > 0 and page.items[pos][0] > key:
                break
            removed, child_empty = self._delete_from(page.items[pos][1], key, match)
            if removed:
                now_empty = self._repair_child(page, pos, child_empty)
                return True, now_empty
            pos += 1
        return False, False

    def _repair_child(self, parent: Page, pos: int, child_empty: bool) -> bool:
        """Refresh the separator for child ``pos``; prune it when empty.

        Returns True when the parent's whole subtree is now empty (its only
        child emptied out).
        """
        child_pid = parent.items[pos][1]
        if not child_empty:
            child = self.pager.fetch(child_pid)
            if parent.items[pos][0] != child.items[0][0]:
                parent.items[pos] = (child.items[0][0], child_pid)
            self.pager.write(parent)
            return False
        # Empty child subtree: free it (unlinking the bottom leaf from the
        # sibling chain), unless it is the parent's only child — an empty
        # tree keeps a single empty leaf.
        if len(parent.items) > 1:
            self._free_empty_subtree(child_pid)
            del parent.items[pos]
            self.pager.write(parent)
            return False
        self.pager.write(parent)
        return True

    def _free_empty_subtree(self, pid: int) -> None:
        """Free a subtree that contains no items."""
        page = self.pager.fetch(pid)
        if page.get_header("leaf"):
            prev_pid = page.get_header("prev")
            next_pid = page.get_header("next")
            if prev_pid is not None:
                prev = self.pager.fetch(prev_pid)
                prev.set_header("next", next_pid)
                self.pager.write(prev)
            if next_pid is not None:
                nxt = self.pager.fetch(next_pid)
                nxt.set_header("prev", prev_pid)
                self.pager.write(nxt)
        else:
            for _key, child in page.items:
                self._free_empty_subtree(child)
        self.pager.free(pid)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def destroy(self) -> None:
        """Free every page of the tree."""
        self._free_subtree(self.root_pid)

    def _free_subtree(self, pid: int) -> None:
        page = self.pager.fetch(pid)
        if not page.get_header("leaf"):
            for _key, child in page.items:
                self._free_subtree(child)
        self.pager.free(pid)

    def height(self) -> int:
        """Tree height in pages (diagnostics)."""
        h = 1
        page = self.pager.fetch(self.root_pid)
        while not page.get_header("leaf"):
            h += 1
            page = self.pager.fetch(page.items[0][1])
        return h

    def check_invariants(self) -> None:
        """Assert sortedness, separator correctness and sibling links."""
        leaves: List[int] = []
        self._check_subtree(self.root_pid, None, leaves)
        for prev_pid, cur_pid in zip(leaves, leaves[1:]):
            cur = self.pager.fetch(cur_pid)
            prev = self.pager.fetch(prev_pid)
            assert prev.get_header("next") == cur_pid, "broken next link"
            assert cur.get_header("prev") == prev_pid, "broken prev link"

    def _check_subtree(self, pid: int, min_key, leaves: List[int]):
        page = self.pager.fetch(pid)
        keys = [k for k, _v in page.items]
        assert keys == sorted(keys), f"page {pid} unsorted"
        if min_key is not None and keys:
            assert keys[0] >= min_key, f"page {pid} violates separator"
        if page.get_header("leaf"):
            leaves.append(pid)
            return
        assert page.items, f"internal page {pid} is empty"
        for k, child in page.items:
            self._check_subtree(child, k, leaves)
