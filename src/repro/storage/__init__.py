"""External-memory storage substrates: B+-trees, page chains, interval indexes."""

from .bplus import BPlusTree
from .chain import PageChain
from .disjoint import DisjointIntervalIndex, IntervalOverlapError
from .interval_tree import ExternalIntervalTree, default_fanout

__all__ = [
    "BPlusTree",
    "DisjointIntervalIndex",
    "ExternalIntervalTree",
    "IntervalOverlapError",
    "PageChain",
    "default_fanout",
]
