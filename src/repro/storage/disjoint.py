"""An index over interior-disjoint 1-D intervals.

This is the library's implementation of the paper's ``C(v)`` / ``C_i``
structures: the segments *lying on* a vertical base line.  Because the
database is NCT, collinear segments may touch at endpoints but never
overlap, so the y-intervals stored here are interior-disjoint.  For disjoint
intervals the order by left endpoint equals the order by right endpoint, and
every overlap query answers with one *contiguous run* of that order — a
B+-tree gives exactly the black-box bounds the paper cites for [3]:

* space ``O(n)`` blocks,
* overlap query ``O(log_B n + t)`` I/Os,
* insert/delete ``O(log_B n)`` I/Os.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..iosim import Pager
from .bplus import BPlusTree

Interval = Tuple[Any, Any, Any]  # (lo, hi, payload)


class IntervalOverlapError(ValueError):
    """Raised when an inserted interval overlaps a stored one's interior."""


class DisjointIntervalIndex:
    """Interior-disjoint intervals with contiguous-run overlap queries.

    The index is *lazy*: it occupies zero pages until the first interval is
    stored (the two-level structures create one per base line, most of which
    stay empty).
    """

    def __init__(self, pager: Pager, tree: Optional[BPlusTree] = None):
        self.pager = pager
        self.tree = tree

    @classmethod
    def build(cls, pager: Pager, intervals: List[Interval]) -> "DisjointIntervalIndex":
        """Bulk-load from intervals; validates disjointness in one pass."""
        if not intervals:
            return cls(pager)
        ordered = sorted(intervals, key=lambda iv: (iv[0], iv[1]))
        for (lo1, hi1, _p1), (lo2, hi2, _p2) in zip(ordered, ordered[1:]):
            if lo2 < hi1:
                raise IntervalOverlapError(
                    f"intervals [{lo1}, {hi1}] and [{lo2}, {hi2}] overlap"
                )
        tree = BPlusTree.build(pager, [(lo, (hi, payload)) for lo, hi, payload in ordered])
        return cls(pager, tree)

    @classmethod
    def attach(cls, pager: Pager, root_pid: Optional[int]) -> "DisjointIntervalIndex":
        """Reconstruct from :attr:`root_pid` (``None`` = empty index)."""
        if root_pid is None:
            return cls(pager)
        return cls(pager, BPlusTree(pager, root_pid))

    @property
    def root_pid(self) -> Optional[int]:
        """O(1) persistence handle (``None`` while the index is empty)."""
        return self.tree.root_pid if self.tree is not None else None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def overlap(self, a: Optional[Any], b: Optional[Any]) -> Iterator[Interval]:
        """All intervals meeting ``[a, b]`` (closed; ``None`` = unbounded).

        Touching counts: ``[lo, hi]`` is reported when ``hi >= a`` and
        ``lo <= b``.
        """
        if self.tree is None:
            return
        if a is None:
            scan = self.tree.items()
        else:
            leaf_pid, idx = self.tree.locate(a)
            # The predecessor (largest lo < a) may still reach a.
            back = self.tree.scan_at_reverse(leaf_pid, idx - 1) if idx > 0 else None
            if back is None and idx == 0:
                # Predecessor may live in the previous leaf.
                leaf = self.pager.fetch(leaf_pid)
                prev_pid = leaf.get_header("prev")
                if prev_pid is not None:
                    back = self.tree.scan_at_reverse(prev_pid, 10**9)
            if back is not None:
                for lo, (hi, payload) in back:
                    if hi >= a:
                        yield (lo, hi, payload)
                    break  # disjointness: only the nearest predecessor can reach a
            scan = self.tree.scan_at(leaf_pid, idx)
        for lo, (hi, payload) in scan:
            if b is not None and lo > b:
                break
            yield (lo, hi, payload)

    def stab(self, x: Any) -> List[Interval]:
        """All intervals containing ``x`` (at most two: one touch pair)."""
        return list(self.overlap(x, x))

    def items(self) -> Iterator[Interval]:
        if self.tree is None:
            return
        for lo, (hi, payload) in self.tree.items():
            yield (lo, hi, payload)

    def is_empty(self) -> bool:
        return self.tree is None or self.tree.min_item() is None

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, lo: Any, hi: Any, payload: Any) -> None:
        """Insert, validating interior-disjointness against the neighbours."""
        if hi < lo:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        for other_lo, other_hi, _payload in self.overlap(lo, hi):
            if max(lo, other_lo) < min(hi, other_hi):
                raise IntervalOverlapError(
                    f"[{lo}, {hi}] overlaps stored [{other_lo}, {other_hi}]"
                )
        if self.tree is None:
            self.tree = BPlusTree.create(self.pager)
        self.tree.insert(lo, (hi, payload))

    def delete(self, lo: Any, hi: Any) -> bool:
        if self.tree is None:
            return False
        return self.tree.delete(lo, match=lambda v: v[0] == hi)

    def destroy(self) -> None:
        if self.tree is not None:
            self.tree.destroy()
            self.tree = None

    # ------------------------------------------------------------------
    # invariants (fsck)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert B+-tree structure plus interior-disjointness in order."""
        if self.tree is None:
            return
        self.tree.check_invariants()
        prev_lo = prev_hi = None
        for lo, hi, _payload in self.items():
            assert lo <= hi, f"empty interval [{lo}, {hi}]"
            if prev_lo is not None:
                assert lo >= prev_lo, "intervals out of order"
                assert lo >= prev_hi, (
                    f"interiors overlap: [{prev_lo}, {prev_hi}] and [{lo}, {hi}]"
                )
            prev_lo, prev_hi = lo, hi
