"""ASCII visualisation of segment sets, queries and index structures.

Terminal-grade reproductions of the paper's illustrative figures: render a
segment set with a query overlaid (Figures 1–2), dump the external PST's
decomposition (Figure 3), a two-level structure's node tree (Figures 4–5),
or a ``G`` segment tree with its multislab lists (Figure 7).

Everything returns plain strings; nothing here touches the I/O counters
(structure dumps read pages through the pager like any client would).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Optional, Sequence

from .geometry import LineBasedSegment, Segment, VerticalQuery


class Canvas:
    """A character grid mapping exact coordinates to terminal cells."""

    def __init__(self, xmin, ymin, xmax, ymax, width: int = 72, height: int = 24):
        self.xmin, self.ymin = Fraction(xmin), Fraction(ymin)
        self.xmax = Fraction(xmax) if xmax > xmin else Fraction(xmin) + 1
        self.ymax = Fraction(ymax) if ymax > ymin else Fraction(ymin) + 1
        self.width = width
        self.height = height
        self.cells: List[List[str]] = [[" "] * width for _ in range(height)]

    def _col(self, x) -> int:
        frac = (Fraction(x) - self.xmin) / (self.xmax - self.xmin)
        return min(self.width - 1, max(0, int(frac * (self.width - 1))))

    def _row(self, y) -> int:
        frac = (Fraction(y) - self.ymin) / (self.ymax - self.ymin)
        # Row 0 is the top of the drawing.
        return min(self.height - 1, max(0, self.height - 1 - int(frac * (self.height - 1))))

    def plot(self, x, y, ch: str) -> None:
        self.cells[self._row(y)][self._col(x)] = ch

    def draw_segment(self, s: Segment, ch: str = "*") -> None:
        """Rasterise by sampling the segment at column resolution."""
        c1, c2 = self._col(s.start.x), self._col(s.end.x)
        if s.is_vertical or c1 == c2:
            r1, r2 = sorted((self._row(s.ymin), self._row(s.ymax)))
            for r in range(r1, r2 + 1):
                self.cells[r][c1] = ch
            return
        steps = max(2, 2 * abs(c2 - c1))
        for i in range(steps + 1):
            x = s.start.x + Fraction(i, steps) * (s.end.x - s.start.x)
            y = s.y_at(x)
            self.plot(x, y, ch)

    def draw_query(self, q: VerticalQuery, ch: str = "|") -> None:
        ylo = q.ylo if q.ylo is not None else self.ymin
        yhi = q.yhi if q.yhi is not None else self.ymax
        col = self._col(q.x)
        r1, r2 = sorted((self._row(ylo), self._row(yhi)))
        for r in range(r1, r2 + 1):
            if self.cells[r][col] == " ":
                self.cells[r][col] = ch
        if q.ylo is not None:
            self.cells[self._row(q.ylo)][col] = "+"
        if q.yhi is not None:
            self.cells[self._row(q.yhi)][col] = "+"

    def render(self) -> str:
        border = "+" + "-" * self.width + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in self.cells)
        return f"{border}\n{body}\n{border}"


def draw_scene(
    segments: Sequence[Segment],
    queries: Iterable[VerticalQuery] = (),
    width: int = 72,
    height: int = 24,
    mark=None,
) -> str:
    """Render segments (``*``; hits of ``mark`` as ``o``) with queries."""
    xmin = min(s.xmin for s in segments)
    xmax = max(s.xmax for s in segments)
    ymin = min(s.ymin for s in segments)
    ymax = max(s.ymax for s in segments)
    canvas = Canvas(xmin, ymin, xmax, ymax, width=width, height=height)
    marked = set(mark or ())
    for s in segments:
        canvas.draw_segment(s, "o" if s.label in marked else "*")
    for q in queries:
        canvas.draw_query(q)
    return canvas.render()


def draw_linebased(
    segments: Sequence[LineBasedSegment], width: int = 72, height: int = 18
) -> str:
    """Render a line-based set in its (u, h) frame; the base line is ``=``."""
    us = [s.u0 for s in segments] + [s.u1 for s in segments]
    hs = [s.h1 for s in segments]
    canvas = Canvas(min(us), 0, max(us), max(hs) if hs else 1,
                    width=width, height=height)
    for s in segments:
        plane = Segment.from_coords(s.u0, 0, s.u1, s.h1, label=s.label) \
            if (s.u0, 0) != (s.u1, s.h1) else None
        if plane is not None:
            canvas.draw_segment(plane)
    for col in range(canvas.width):
        if canvas.cells[canvas.height - 1][col] == " ":
            canvas.cells[canvas.height - 1][col] = "="
    return canvas.render()


def dump_pst(tree, max_items: int = 4) -> str:
    """Text dump of an external PST's decomposition (Figure 3)."""
    if tree.root_pid is None:
        return "(empty PST)"
    lines: List[str] = []

    def walk(pid: int, depth: int) -> None:
        node = tree.read(pid)
        labels = [str(s.label) for s in node.items[:max_items]]
        extra = f" +{len(node.items) - max_items} more" if len(node.items) > max_items else ""
        lines.append(
            "  " * depth
            + f"node[{pid}] low={node.low} items=[{', '.join(labels)}{extra}]"
        )
        for child in node.children:
            lines.append(
                "  " * (depth + 1)
                + f"(top={child.top.label} h={child.top.h1} count={child.count})"
            )
            walk(child.pid, depth + 1)

    walk(tree.root_pid, 0)
    return "\n".join(lines)


def dump_two_level(index, pager=None, max_depth: Optional[int] = None) -> str:
    """Text dump of a two-level structure's first level (Figures 4–5)."""
    pager = pager or index.pager
    if index.root_pid is None:
        return "(empty index)"
    lines: List[str] = []

    def walk(pid: int, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        page = pager.fetch(pid)
        kind = page.get_header("kind")
        if kind == "leaf":
            from .storage.chain import PageChain

            try:
                count = PageChain(pager, pid).count()
            except Exception:
                count = len(page.items)
            lines.append("  " * depth + f"leaf[{pid}] {count} segments")
            return
        if page.get_header("x") is not None:  # Solution 1 node
            lines.append(
                "  " * depth
                + f"node[{pid}] line x={page.get_header('x')} "
                + f"here={page.get_header('here')} weight={page.get_header('weight')}"
            )
            walk(page.get_header("left"), depth + 1)
            walk(page.get_header("right"), depth + 1)
        else:  # Solution 2 node
            view = index._read_view(pid)
            lines.append(
                "  " * depth
                + f"node[{pid}] boundaries={view.boundaries} "
                + f"weight={page.get_header('weight')}"
                + (" G=yes" if view.g_pid is not None else " G=no")
            )
            for child in view.children:
                walk(child, depth + 1)

    walk(index.root_pid, 0)
    return "\n".join(lines)


def dump_gtree(g) -> str:
    """Text dump of a G segment tree with its multislab lists (Figure 7)."""
    lines: List[str] = []
    nodes = g._read_nodes()
    if not nodes:
        return "(empty G)"

    def walk(idx: int, depth: int) -> None:
        node = nodes[idx]
        span = f"[{node.lo}:{node.hi}]"
        lines.append(
            "  " * depth
            + f"G{span} x-range [{g.boundaries[node.lo - 1]}, "
            + f"{g.boundaries[node.hi]}] fragments={node.count}"
        )
        if not node.is_leaf:
            walk(node.left, depth + 1)
            walk(node.right, depth + 1)

    walk(0, 0)
    return "\n".join(lines)
