"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``demo``            run a small end-to-end demonstration
``engines``         list available engines with their cost profiles
``query FILE X [YLO YHI]``
                    load segments from a TSV file (see
                    ``repro.workloads.files``) and run one vertical query
``explain FILE X [YLO YHI]``
                    run one vertical query traced and print its cost
                    anatomy (per-phase I/O breakdown; ``--json`` for the
                    structured report)
``query-batch FILE``
                    generate a query workload against FILE and run it
                    through ``query_batch``, comparing batched I/Os per
                    query with the sequential loop (``--count N`` queries,
                    ``--batch-size K``, ``--seed S``; ``--json`` for the
                    structured summary)
``validate FILE``   check a segment file for NCT violations
``version``         print the library version

``query``, ``query-batch`` and ``explain`` accept ``--engine NAME``
(default solution2), ``--buffer N`` (put an N-page LRU buffer pool under
the engine and report its hit rate) and ``--block B`` (block capacity,
default 64).

Every command accepts ``--exact-only``: disable the floating-point
fast path of the filtered arithmetic kernel and run every geometric
comparison on exact rationals (equivalent to ``REPRO_EXACT_ONLY=1``;
results are identical either way — the fast path only takes certified
decisions).
"""

from __future__ import annotations

import sys
from fractions import Fraction

ENGINE_NOTES = {
    "solution1": "Theorem 1 — O(n) space, O(log2 n·log_B n + t) query, dynamic",
    "solution2": "Theorem 2 — O(n log2 B) space, O(log_B n·(log_B n+log2 B) + t) query, insert-only",
    "scan": "baseline — O(n) per query",
    "stab-filter": "baseline — stabbing index over x-projections + y filter",
    "grid": "baseline — uniform bucket grid",
    "rtree": "baseline — STR-packed R-tree (no worst-case query bound)",
}


def _coord(token: str):
    if "/" in token:
        num, den = token.split("/", 1)
        return Fraction(int(num), int(den))
    return int(token)


def _pop_flags(args):
    """Split ``args`` into positional tokens and recognised ``--`` flags."""
    positional = []
    flags = {"engine": "solution2", "buffer": None, "block": 64, "json": False,
             "batch-size": None, "count": 64, "seed": 0}
    i = 0
    while i < len(args):
        token = args[i]
        if token == "--json":
            flags["json"] = True
        elif token in ("--engine", "--buffer", "--block",
                       "--batch-size", "--count", "--seed"):
            if i + 1 >= len(args):
                raise ValueError(f"{token} needs a value")
            value = args[i + 1]
            if token == "--engine":
                flags["engine"] = value
            else:
                flags[token[2:]] = int(value)
            i += 1
        elif token.startswith("--"):
            raise ValueError(f"unknown flag {token!r}")
        else:
            positional.append(token)
        i += 1
    return positional, flags


def _load_db(path: str, flags):
    from repro import SegmentDatabase
    from repro.workloads.files import load

    segments = load(path)
    return SegmentDatabase.bulk_load(
        segments,
        engine=flags["engine"],
        block_capacity=flags["block"],
        buffer_pages=flags["buffer"],
    )


def _parse_query(positional):
    from repro import VerticalQuery

    x = _coord(positional[1])
    if len(positional) == 4:
        return VerticalQuery.segment(x, _coord(positional[2]), _coord(positional[3]))
    return VerticalQuery.line(x)


def cmd_demo() -> int:
    from repro import Segment, SegmentDatabase, VerticalQuery

    segments = [
        Segment.from_coords(0, 8, 3, 9, label="ridge"),
        Segment.from_coords(4, 5, 9, 6, label="river"),
        Segment.from_coords(5, 1, 8, 3, label="road"),
        Segment.from_coords(6, 7, 6, 10, label="wall"),
    ]
    db = SegmentDatabase.bulk_load(segments, block_capacity=16, validate=True)
    q = VerticalQuery.segment(6, 1, 8)
    hits = sorted(s.label for s in db.query(q))
    print(f"{len(db)} segments indexed in {db.space_in_blocks()} blocks")
    print(f"VS query x=6, y in [1, 8] -> {hits}")
    print(f"I/O: {db.io_stats()}")
    return 0


def cmd_engines() -> int:
    from repro import ENGINES

    for engine in ENGINES:
        print(f"{engine:>12}  {ENGINE_NOTES[engine]}")
    return 0


def cmd_query(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(positional) not in (2, 4):
        print("usage: python -m repro query FILE X [YLO YHI] "
              "[--engine NAME] [--buffer N] [--block B]", file=sys.stderr)
        return 2
    db = _load_db(positional[0], flags)
    hits = db.query(_parse_query(positional))
    for s in sorted(hits, key=lambda s: str(s.label)):
        print(s.label)
    summary = (f"# {len(hits)} of {len(db)} segments; "
               f"{db.io_stats().reads} block reads")
    if db.buffer_hit_rate is not None:
        summary += f"; buffer hit rate {db.buffer_hit_rate:.2%}"
    print(summary, file=sys.stderr)
    return 0


def cmd_query_batch(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(positional) != 1:
        print("usage: python -m repro query-batch FILE [--count N] "
              "[--batch-size K] [--seed S] [--engine NAME] [--buffer N] "
              "[--block B] [--json]", file=sys.stderr)
        return 2
    from repro import SegmentDatabase
    from repro.workloads.files import load
    from repro.workloads.queries import segment_queries

    segments = load(positional[0])
    db = SegmentDatabase.bulk_load(
        segments,
        engine=flags["engine"],
        block_capacity=flags["block"],
        buffer_pages=flags["buffer"],
    )
    queries = segment_queries(segments, flags["count"], seed=flags["seed"])
    batch_size = flags["batch-size"] or len(queries)

    db.reset_io_stats()
    sequential = [db.query(q) for q in queries]
    seq_io = db.io_stats().total
    db.reset_io_stats()
    batched: list = []
    for start in range(0, len(queries), batch_size):
        batched.extend(db.query_batch(queries[start:start + batch_size]))
    bat_io = db.io_stats().total
    assert len(batched) == len(sequential)

    n = len(queries)
    results = sum(len(r) for r in batched)
    summary = {
        "engine": flags["engine"],
        "queries": n,
        "batch_size": batch_size,
        "results": results,
        "sequential_ios": seq_io,
        "batched_ios": bat_io,
        "sequential_ios_per_query": seq_io / n if n else 0.0,
        "batched_ios_per_query": bat_io / n if n else 0.0,
        "io_speedup": (seq_io / bat_io) if bat_io else None,
        "buffer_hit_rate": db.buffer_hit_rate,
    }
    if flags["json"]:
        import json

        print(json.dumps(summary, indent=2))
        return 0
    print(f"# {n} queries, batch size {batch_size}, engine {flags['engine']}")
    print(f"# sequential: {seq_io} I/Os "
          f"({summary['sequential_ios_per_query']:.2f}/query)")
    speedup = (f", amortization {summary['io_speedup']:.2f}x"
               if summary["io_speedup"] else "")
    print(f"# batched:    {bat_io} I/Os "
          f"({summary['batched_ios_per_query']:.2f}/query){speedup}")
    print(f"# results: {results} segments reported")
    if db.buffer_hit_rate is not None:
        print(f"# buffer hit rate {db.buffer_hit_rate:.2%}")
    return 0


def cmd_explain(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(positional) not in (2, 4):
        print("usage: python -m repro explain FILE X [YLO YHI] "
              "[--engine NAME] [--buffer N] [--block B] [--json]",
              file=sys.stderr)
        return 2
    db = _load_db(positional[0], flags)
    report = db.explain(_parse_query(positional))
    if flags["json"]:
        import json

        print(json.dumps(report.to_dict(), indent=2, default=str))
    else:
        print(report.to_markdown())
    return 0


def cmd_validate(args) -> int:
    if len(args) != 1:
        print("usage: python -m repro validate FILE", file=sys.stderr)
        return 2
    from repro.geometry import CrossingError
    from repro.workloads.files import load

    try:
        segments = load(args[0], validate=True)
    except CrossingError as exc:
        print(f"NOT NCT: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {len(segments)} segments, non-crossing (touching allowed)")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--exact-only" in argv:
        from repro.geometry import set_exact_only

        set_exact_only(True)
        argv = [a for a in argv if a != "--exact-only"]
    if not argv:
        print(__doc__)
        return 2
    command, args = argv[0], argv[1:]
    if command == "demo":
        return cmd_demo()
    if command == "engines":
        return cmd_engines()
    if command == "query":
        return cmd_query(args)
    if command == "query-batch":
        return cmd_query_batch(args)
    if command == "explain":
        return cmd_explain(args)
    if command == "validate":
        return cmd_validate(args)
    if command == "version":
        from repro import __version__

        print(__version__)
        return 0
    print(f"unknown command {command!r}\n{__doc__}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
