"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``demo``            run a small end-to-end demonstration
``engines``         list available engines with their cost profiles
``query FILE X [YLO YHI]``
                    load segments from a TSV file (see
                    ``repro.workloads.files``) and run one vertical query
``explain FILE X [YLO YHI]``
                    run one vertical query traced and print its cost
                    anatomy (per-phase I/O breakdown; ``--json`` for the
                    structured report)
``query-batch FILE``
                    generate a query workload against FILE and run it
                    through ``query_batch``, comparing batched I/Os per
                    query with the sequential loop (``--count N`` queries,
                    ``--batch-size K``, ``--seed S``; ``--json`` for the
                    structured summary)
``validate FILE``   check a segment file for NCT violations
``chaos [FILE]``    run a fault-injection suite: for each seed, replay a
                    query/insert workload on a faulty device next to a
                    clean twin and fail on any silently wrong answer
                    (``--seeds N``, ``--seed S``, ``--count N`` queries,
                    ``--updates N`` inserts, ``--read-err R``,
                    ``--corrupt-rate R``, ``--torn R``, ``--retries K``,
                    ``--dump-schedule PATH`` to save the injected-fault
                    log, ``--json``); without FILE a generated workload
                    is used
``fsck [FILE]``     build an index, optionally apply ``--updates N``
                    random inserts and corrupt ``--corrupt-pages K``
                    pages, then run the integrity checker (checksum scan
                    + deep structural verify); exits nonzero on damage
``serve-bench [FILE]``
                    build an x-sharded database, snapshot it to disk,
                    re-open it and replay a query workload through the
                    serving layer, reporting snapshot save/open times,
                    queries/sec, latency percentiles, the cross-process
                    phase decomposition and per-shard I/O (``--shards K``,
                    ``--workers W`` — 0 means in-process synchronous,
                    ``--transport shm|pickle`` — zero-copy shared-memory
                    arenas (default) vs per-process snapshot open,
                    ``--cache-pages N`` to bound each worker's
                    decoded-page LRU,
                    ``--segments N`` to size the generated workload,
                    ``--count N`` queries, ``--batch-size K``,
                    ``--seed S``, ``--dir PATH`` to keep the snapshot
                    directory, ``--trace PATH`` to export the run as
                    Chrome-trace-event/Perfetto JSON, ``--slow-ms T`` to
                    arm the slow-query log at T milliseconds, ``--json``)
``serve [DIR|FILE]``
                    long-lived serving daemon: open a sharded snapshot
                    directory (or build one from FILE / ``--segments N``
                    generated segments) behind a worker pool and serve
                    ``query_batch`` over TCP with request batching and
                    admission control; prints a JSON ready line with the
                    bound port, then serves until SIGTERM/SIGINT and
                    exits 0 with a JSON drain report (``--workers W``,
                    ``--transport shm|pickle``, ``--cache-pages N`` to
                    bound each worker's decoded-page LRU, ``--host H``,
                    ``--port P`` — 0 picks a free port, ``--max-pending``
                    / ``--max-batch`` / ``--window-ms`` for the batcher,
                    ``--dir PATH`` to keep a generated snapshot)
``serve-client --port P [FILE]``
                    batched client for ``serve``: replay a generated (or
                    FILE-loaded) query workload against a running daemon
                    and report throughput (``--count N``,
                    ``--batch-size K``, ``--seed S``,
                    ``--connect-timeout S`` / ``--request-timeout S``
                    socket deadlines, ``--retries K`` jittered reconnect
                    attempts, ``--deadline-ms T`` server-side per-request
                    deadline, ``--json``); connection failures exit 1
                    with a one-line typed error, never a traceback
``chaos-serve [FILE]``
                    run the serving chaos suite: for each seed, serve a
                    snapshot through a supervised worker pool with
                    seeded worker SIGKILLs plus a fault-injecting TCP
                    proxy (delayed/truncated/corrupted frames, resets),
                    and check every response against a fault-free sync
                    oracle — exact, degraded-but-subset with an honest
                    coverage map, or a typed error; exits nonzero on any
                    silently wrong answer (``--seeds N``, ``--seed S``,
                    ``--kill-rate R``, ``--max-kills N``,
                    ``--frame-corrupt R``, ``--frame-truncate R``,
                    ``--frame-delay R``, ``--conn-reset R``,
                    ``--deadline-ms T``, ``--dump-schedule PATH``,
                    ``--json``; with no rates given a default fault mix
                    is applied)
``health --port P`` probe a running ``serve`` daemon: admission-queue
                    depth, drain state, degraded/deadline counters and
                    per-shard worker-pool health including breaker
                    states (``--json`` for the full structure)
``trace [FILE]``    run a small serving workload wall-traced and write a
                    Chrome-trace-event/Perfetto JSON timeline (open it at
                    https://ui.perfetto.dev or ``chrome://tracing``);
                    same flags as ``serve-bench``, output defaults to
                    ``trace.json`` (``--out PATH`` to change it)
``version``         print the library version

``query``, ``query-batch`` and ``explain`` accept ``--engine NAME``
(default solution2), ``--buffer N`` (put an N-page LRU buffer pool under
the engine and report its hit rate) and ``--block B`` (block capacity,
default 64).

Every command accepts ``--exact-only``: disable the floating-point
fast path of the filtered arithmetic kernel and run every geometric
comparison on exact rationals (equivalent to ``REPRO_EXACT_ONLY=1``;
results are identical either way — the fast path only takes certified
decisions).
"""

from __future__ import annotations

import sys
from fractions import Fraction

ENGINE_NOTES = {
    "solution1": "Theorem 1 — O(n) space, O(log2 n·log_B n + t) query, dynamic",
    "solution2": "Theorem 2 — O(n log2 B) space, O(log_B n·(log_B n+log2 B) + t) query, insert-only",
    "scan": "baseline — O(n) per query",
    "stab-filter": "baseline — stabbing index over x-projections + y filter",
    "grid": "baseline — uniform bucket grid",
    "rtree": "baseline — STR-packed R-tree (no worst-case query bound)",
}


def _coord(token: str):
    if "/" in token:
        num, den = token.split("/", 1)
        return Fraction(int(num), int(den))
    return int(token)


_INT_FLAGS = ("--buffer", "--block", "--batch-size", "--count", "--seed",
              "--seeds", "--updates", "--corrupt-pages", "--retries",
              "--shards", "--workers", "--segments", "--cache-pages",
              "--port", "--max-pending", "--max-batch", "--max-kills")
_FLOAT_FLAGS = ("--read-err", "--corrupt-rate", "--torn", "--slow-ms",
                "--window-ms", "--connect-timeout", "--request-timeout",
                "--deadline-ms", "--kill-rate", "--frame-corrupt",
                "--frame-truncate", "--frame-delay", "--conn-reset")
_STR_FLAGS = ("--engine", "--dump-schedule", "--dir", "--trace", "--out",
              "--transport", "--host")


def _pop_flags(args):
    """Split ``args`` into positional tokens and recognised ``--`` flags."""
    positional = []
    flags = {"engine": "solution2", "buffer": None, "block": 64, "json": False,
             "batch-size": None, "count": 64, "seed": 0,
             "seeds": 5, "updates": 0, "corrupt-pages": 0, "retries": 3,
             "read-err": 0.0, "corrupt-rate": 0.0, "torn": 0.0,
             "dump-schedule": None, "shards": 2, "workers": 0,
             "segments": 0, "dir": None, "trace": None, "out": None,
             "slow-ms": None, "transport": "shm", "cache-pages": None,
             "host": "127.0.0.1", "port": 0, "max-pending": 64,
             "max-batch": 64, "window-ms": 2.0,
             "connect-timeout": 5.0, "request-timeout": 30.0,
             "deadline-ms": None, "kill-rate": 0.0, "max-kills": 0,
             "frame-corrupt": 0.0, "frame-truncate": 0.0,
             "frame-delay": 0.0, "conn-reset": 0.0}
    i = 0
    while i < len(args):
        token = args[i]
        if token == "--json":
            flags["json"] = True
        elif token in _INT_FLAGS + _FLOAT_FLAGS + _STR_FLAGS:
            if i + 1 >= len(args):
                raise ValueError(f"{token} needs a value")
            value = args[i + 1]
            if token in _STR_FLAGS:
                flags[token[2:]] = value
            elif token in _FLOAT_FLAGS:
                flags[token[2:]] = float(value)
            else:
                flags[token[2:]] = int(value)
            i += 1
        elif token.startswith("--"):
            raise ValueError(f"unknown flag {token!r}")
        else:
            positional.append(token)
        i += 1
    return positional, flags


def _load_db(path: str, flags):
    from repro import SegmentDatabase
    from repro.workloads.files import load

    segments = load(path)
    return SegmentDatabase.bulk_load(
        segments,
        engine=flags["engine"],
        block_capacity=flags["block"],
        buffer_pages=flags["buffer"],
    )


def _parse_query(positional):
    from repro import VerticalQuery

    x = _coord(positional[1])
    if len(positional) == 4:
        return VerticalQuery.segment(x, _coord(positional[2]), _coord(positional[3]))
    return VerticalQuery.line(x)


def cmd_demo() -> int:
    from repro import Segment, SegmentDatabase, VerticalQuery

    segments = [
        Segment.from_coords(0, 8, 3, 9, label="ridge"),
        Segment.from_coords(4, 5, 9, 6, label="river"),
        Segment.from_coords(5, 1, 8, 3, label="road"),
        Segment.from_coords(6, 7, 6, 10, label="wall"),
    ]
    db = SegmentDatabase.bulk_load(segments, block_capacity=16, validate=True)
    q = VerticalQuery.segment(6, 1, 8)
    hits = sorted(s.label for s in db.query(q))
    print(f"{len(db)} segments indexed in {db.space_in_blocks()} blocks")
    print(f"VS query x=6, y in [1, 8] -> {hits}")
    print(f"I/O: {db.io_stats()}")
    return 0


def cmd_engines() -> int:
    from repro import ENGINES

    for engine in ENGINES:
        print(f"{engine:>12}  {ENGINE_NOTES[engine]}")
    return 0


def cmd_query(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(positional) not in (2, 4):
        print("usage: python -m repro query FILE X [YLO YHI] "
              "[--engine NAME] [--buffer N] [--block B]", file=sys.stderr)
        return 2
    db = _load_db(positional[0], flags)
    hits = db.query(_parse_query(positional))
    for s in sorted(hits, key=lambda s: str(s.label)):
        print(s.label)
    summary = (f"# {len(hits)} of {len(db)} segments; "
               f"{db.io_stats().reads} block reads")
    if db.buffer_hit_rate is not None:
        summary += f"; buffer hit rate {db.buffer_hit_rate:.2%}"
    print(summary, file=sys.stderr)
    return 0


def cmd_query_batch(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(positional) != 1:
        print("usage: python -m repro query-batch FILE [--count N] "
              "[--batch-size K] [--seed S] [--engine NAME] [--buffer N] "
              "[--block B] [--json]", file=sys.stderr)
        return 2
    from repro import SegmentDatabase
    from repro.workloads.files import load
    from repro.workloads.queries import segment_queries

    segments = load(positional[0])
    db = SegmentDatabase.bulk_load(
        segments,
        engine=flags["engine"],
        block_capacity=flags["block"],
        buffer_pages=flags["buffer"],
    )
    queries = segment_queries(segments, flags["count"], seed=flags["seed"])
    batch_size = flags["batch-size"] or len(queries)

    db.reset_io_stats()
    sequential = [db.query(q) for q in queries]
    seq_io = db.io_stats().total
    db.reset_io_stats()
    batched: list = []
    for start in range(0, len(queries), batch_size):
        batched.extend(db.query_batch(queries[start:start + batch_size]))
    bat_io = db.io_stats().total
    assert len(batched) == len(sequential)

    n = len(queries)
    results = sum(len(r) for r in batched)
    summary = {
        "engine": flags["engine"],
        "queries": n,
        "batch_size": batch_size,
        "results": results,
        "sequential_ios": seq_io,
        "batched_ios": bat_io,
        "sequential_ios_per_query": seq_io / n if n else 0.0,
        "batched_ios_per_query": bat_io / n if n else 0.0,
        "io_speedup": (seq_io / bat_io) if bat_io else None,
        "buffer_hit_rate": db.buffer_hit_rate,
    }
    if flags["json"]:
        import json

        print(json.dumps(summary, indent=2))
        return 0
    print(f"# {n} queries, batch size {batch_size}, engine {flags['engine']}")
    print(f"# sequential: {seq_io} I/Os "
          f"({summary['sequential_ios_per_query']:.2f}/query)")
    speedup = (f", amortization {summary['io_speedup']:.2f}x"
               if summary["io_speedup"] else "")
    print(f"# batched:    {bat_io} I/Os "
          f"({summary['batched_ios_per_query']:.2f}/query){speedup}")
    print(f"# results: {results} segments reported")
    if db.buffer_hit_rate is not None:
        print(f"# buffer hit rate {db.buffer_hit_rate:.2%}")
    return 0


def cmd_explain(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(positional) not in (2, 4):
        print("usage: python -m repro explain FILE X [YLO YHI] "
              "[--engine NAME] [--buffer N] [--block B] [--json]",
              file=sys.stderr)
        return 2
    db = _load_db(positional[0], flags)
    report = db.explain(_parse_query(positional))
    if flags["json"]:
        import json

        print(json.dumps(report.to_dict(), indent=2, default=str))
    else:
        print(report.to_markdown())
    return 0


def _workload_segments(positional, flags):
    """Segments for the robustness commands: FILE if given, else generated."""
    if positional:
        from repro.workloads.files import load

        return load(positional[0])
    from repro.workloads.nct_random import grid_segments

    return grid_segments(300, seed=flags["seed"])


def _fresh_segments(n: int, seed: int):
    """Disjoint insert fodder placed away from the generated base grid."""
    from repro.workloads.nct_random import grid_segments
    from repro import Segment

    out = []
    for i, s in enumerate(grid_segments(n, seed=seed)):
        out.append(Segment.from_coords(
            s.start.x + 1_000_000, s.start.y,
            s.end.x + 1_000_000, s.end.y,
            label=("chaos", seed, i),
        ))
    return out


def _run_chaos_seed(segments, seed, flags):
    """One chaos round: faulty device vs clean twin, same workload."""
    from repro import SegmentDatabase, SimulatedCrash
    from repro.iosim import FaultSchedule, RetryPolicy, StorageError
    from repro.workloads.queries import segment_queries

    schedule = FaultSchedule(
        seed=seed,
        read_error_rate=flags["read-err"],
        corrupt_read_rate=flags["corrupt-rate"],
        torn_write_rate=flags["torn"],
    )
    db = SegmentDatabase.bulk_load(
        segments, engine=flags["engine"], block_capacity=flags["block"],
        faults=schedule, retry=RetryPolicy(max_retries=flags["retries"]),
    )
    twin = SegmentDatabase.bulk_load(
        segments, engine=flags["engine"], block_capacity=flags["block"],
    )
    queries = segment_queries(segments, flags["count"],
                              selectivity=0.05, seed=seed)
    inserts = list(_fresh_segments(flags["updates"], seed))
    every = max(1, len(queries) // max(1, len(inserts))) if inserts else None

    stats = {"seed": seed, "queries": len(queries), "exact": 0, "degraded": 0,
             "typed_errors": 0, "wrong": 0, "updates_applied": 0,
             "updates_failed": 0, "crashes_recovered": 0}
    wrong_queries = []
    for i, q in enumerate(queries):
        if every and inserts and i % every == 0:
            seg = inserts.pop()
            try:
                db.insert(seg)
                twin.insert(seg)
                stats["updates_applied"] += 1
            except SimulatedCrash:
                db.recover()  # index rolls back; the twin never inserted
                stats["crashes_recovered"] += 1
            except StorageError:
                stats["updates_failed"] += 1
        expected = sorted(str(s.label) for s in twin.query(q))
        try:
            result = db.query(q)
        except StorageError:
            stats["typed_errors"] += 1  # loud failure: acceptable
            continue
        got = sorted(str(s.label) for s in result)
        if got != expected:
            stats["wrong"] += 1
            wrong_queries.append(str(q))
        elif getattr(result, "degraded", False):
            stats["degraded"] += 1
        else:
            stats["exact"] += 1
    fsck = db.fsck()
    stats["fsck_ok"] = fsck.ok
    stats["fsck_problems"] = len(fsck.problems)
    stats["faults"] = db.io_report()["faults"]
    return stats, schedule, wrong_queries


def cmd_chaos(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(positional) > 1:
        print("usage: python -m repro chaos [FILE] [--seeds N] [--seed S] "
              "[--count N] [--updates N] [--engine NAME] [--block B] "
              "[--read-err R] [--corrupt-rate R] [--torn R] [--retries K] "
              "[--dump-schedule PATH] [--json]", file=sys.stderr)
        return 2
    if not (flags["read-err"] or flags["corrupt-rate"] or flags["torn"]):
        flags["read-err"], flags["corrupt-rate"], flags["torn"] = 0.02, 0.01, 0.02
    if flags["updates"] == 0:
        flags["updates"] = 8
    segments = _workload_segments(positional, flags)

    rounds = []
    schedules = {}
    silent_wrong = 0
    for seed in range(flags["seed"], flags["seed"] + flags["seeds"]):
        stats, schedule, wrong_queries = _run_chaos_seed(segments, seed, flags)
        rounds.append(stats)
        silent_wrong += stats["wrong"]
        schedules[seed] = {
            "schedule": schedule.to_dict(),
            "wrong_queries": wrong_queries,
            "verdict": "FAIL" if stats["wrong"] else "ok",
        }
    if flags["dump-schedule"]:
        import json

        with open(flags["dump-schedule"], "w") as fh:
            json.dump({"engine": flags["engine"], "rounds": schedules}, fh,
                      indent=2, default=str)
    if flags["json"]:
        import json

        print(json.dumps({"rounds": rounds, "silent_wrong": silent_wrong},
                         indent=2))
    else:
        for r in rounds:
            verdict = "FAIL" if r["wrong"] else "ok"
            print(f"seed {r['seed']:>4}: {verdict}  "
                  f"{r['exact']} exact, {r['degraded']} degraded, "
                  f"{r['typed_errors']} typed errors, {r['wrong']} wrong; "
                  f"{r['updates_applied']} inserts, "
                  f"{r['crashes_recovered']} crashes recovered, "
                  f"{r['faults']['faults_injected']} faults injected"
                  + ("" if r["fsck_ok"]
                     else f"; fsck: {r['fsck_problems']} problem(s)"))
        print(f"# never-silently-wrong: "
              f"{'FAIL' if silent_wrong else 'PASS'} over {len(rounds)} seeds")
    return 1 if silent_wrong else 0


def cmd_fsck(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(positional) > 1:
        print("usage: python -m repro fsck [FILE] [--engine NAME] [--block B] "
              "[--updates N] [--corrupt-pages K] [--seed S] [--json]",
              file=sys.stderr)
        return 2
    import random as _random

    from repro import SegmentDatabase
    from repro.iosim import FaultSchedule

    segments = _workload_segments(positional, flags)
    db = SegmentDatabase.bulk_load(
        segments, engine=flags["engine"], block_capacity=flags["block"],
        faults=FaultSchedule(seed=flags["seed"]),
    )
    for seg in _fresh_segments(flags["updates"], flags["seed"]):
        db.insert(seg)
    rng = _random.Random(flags["seed"])
    live = sorted(p.page_id for p in db.device.iter_pages())
    for page_id in rng.sample(live, min(flags["corrupt-pages"], len(live))):
        db.device.corrupt_page(page_id)
    report = db.fsck()
    if flags["json"]:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report)
    return 0 if report.ok else 1


def _run_serve_bench(positional, flags) -> int:
    """Shared body of ``serve-bench`` and ``trace``."""
    import contextlib
    import os
    import tempfile
    import time

    from repro.serving import ShardedSegmentDatabase
    from repro.telemetry import wall_tracing, write_chrome_trace
    from repro.workloads.queries import segment_queries

    if positional:
        from repro.workloads.files import load

        segments = load(positional[0])
    else:
        from repro.workloads.nct_random import grid_segments

        segments = grid_segments(flags["segments"] or 2000,
                                 seed=flags["seed"])
    queries = segment_queries(segments, flags["count"], seed=flags["seed"])
    batch_size = flags["batch-size"] or len(queries)
    slow_s = (flags["slow-ms"] / 1000.0
              if flags["slow-ms"] is not None else None)

    t0 = time.perf_counter()
    built = ShardedSegmentDatabase.bulk_load(
        segments, shards=flags["shards"], engine=flags["engine"],
        block_capacity=flags["block"], buffer_pages=flags["buffer"],
    )
    build_s = time.perf_counter() - t0

    trace_info = None
    with contextlib.ExitStack() as stack:
        directory = flags["dir"] or stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-serve-"))
        t0 = time.perf_counter()
        built.save(directory)
        save_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        served = stack.enter_context(ShardedSegmentDatabase.open(
            directory, workers=flags["workers"],
            buffer_pages=flags["buffer"], slow_query_s=slow_s,
            transport=flags["transport"],
            cache_pages=flags["cache-pages"]))
        open_s = time.perf_counter() - t0

        tracer_cm = (wall_tracing() if flags["trace"]
                     else contextlib.nullcontext())
        with tracer_cm as tracer:
            t0 = time.perf_counter()
            answered = 0
            results = 0
            for number, start in enumerate(range(0, len(queries), batch_size)):
                batch = queries[start:start + batch_size]
                batch_cm = (tracer.span("serve-batch", category="serving",
                                        batch=number, queries=len(batch))
                            if tracer is not None else contextlib.nullcontext())
                with batch_cm:
                    for r in served.query_batch(batch):
                        results += len(r)
                answered += len(batch)
            serve_s = time.perf_counter() - t0
        io = served.io_report()
        latency = served.latency_report()
        slow = (served.slow_log.to_dict()
                if served.slow_log is not None else None)
        if tracer is not None:
            doc = write_chrome_trace(
                flags["trace"], tracer.records, parent_pid=os.getpid(),
                metadata={
                    "command": "serve-bench",
                    "engine": flags["engine"],
                    "shards": built.shard_count,
                    "workers": flags["workers"],
                    "queries": answered,
                },
            )
            trace_info = {
                "path": flags["trace"],
                "trace_id": tracer.trace_id,
                "events": len(doc["traceEvents"]),
            }

    summary = {
        "engine": flags["engine"],
        "segments": len(segments),
        "shards": built.shard_count,
        "replicated": built.replicated,
        "workers": flags["workers"],
        "queries": answered,
        "batch_size": batch_size,
        "results": results,
        "build_s": build_s,
        "snapshot_save_s": save_s,
        "snapshot_open_s": open_s,
        "serve_s": serve_s,
        "queries_per_s": answered / serve_s if serve_s else None,
        "io": io,
        "latency": latency,
    }
    if trace_info is not None:
        summary["trace"] = trace_info
    if slow is not None:
        summary["slow_queries"] = slow
    if flags["json"]:
        import json

        print(json.dumps(summary, indent=2))
        return 0
    print(f"# {len(segments)} segments, {built.shard_count} shards "
          f"(+{built.replicated} replicas), {flags['workers']} workers, "
          f"engine {flags['engine']}")
    print(f"# build {build_s:.3f}s; snapshot save {save_s:.3f}s, "
          f"open {open_s:.3f}s")
    print(f"# {answered} queries in {serve_s:.3f}s "
          f"({summary['queries_per_s']:.0f} q/s), {results} results")
    per_shard = ", ".join(str(s["total"]) for s in io["shards"])
    print(f"# I/O: {io['combined']['total']} total ({per_shard} per shard)")
    batches = latency["batches"]
    print(f"# batch latency ms: p50 {batches['p50_ms']}, "
          f"p95 {batches['p95_ms']}, p99 {batches['p99_ms']} "
          f"over {batches['count']} batches")
    phases = ", ".join(f"{name} {seconds:.3f}s"
                       for name, seconds in latency["phases_s"].items())
    coverage = latency["phase_coverage"]
    print(f"# phases: {phases}"
          + (f" (coverage {coverage:.1%} of {latency['task_wall_s']:.3f}s "
             "task wall)" if coverage is not None else ""))
    if slow is not None:
        print(f"# slow queries: {slow['recorded']} at "
              f">= {flags['slow-ms']:.1f}ms")
    if trace_info is not None:
        print(f"# trace: {trace_info['path']} ({trace_info['events']} events, "
              f"trace id {trace_info['trace_id']})")
    return 0


def _serve_workload_dir(positional, flags, stack):
    """The snapshot directory ``serve`` runs against.

    A positional that is a directory is used as-is (a snapshot saved by
    ``ShardedSegmentDatabase.save`` or ``serve-bench --dir``); a file is
    loaded as segments; nothing generates ``--segments`` (default 2000)
    NCT segments.  Generated/loaded data is sharded and snapshotted into
    ``--dir`` (or a temp dir owned by ``stack``).
    """
    import os
    import tempfile

    from repro.serving import ShardedSegmentDatabase

    if positional and os.path.isdir(positional[0]):
        return positional[0]
    if positional:
        from repro.workloads.files import load

        segments = load(positional[0])
    else:
        from repro.workloads.nct_random import grid_segments

        segments = grid_segments(flags["segments"] or 2000,
                                 seed=flags["seed"])
    built = ShardedSegmentDatabase.bulk_load(
        segments, shards=flags["shards"], engine=flags["engine"],
        block_capacity=flags["block"], buffer_pages=flags["buffer"],
    )
    directory = flags["dir"] or stack.enter_context(
        tempfile.TemporaryDirectory(prefix="repro-serve-"))
    built.save(directory)
    return directory


def cmd_serve(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(positional) > 1:
        print("usage: python -m repro serve [DIR|FILE] [--workers W] "
              "[--transport shm|pickle] [--cache-pages N] [--shards K] "
              "[--segments N] [--engine NAME] [--buffer N] [--block B] "
              "[--host H] [--port P] [--max-pending N] [--max-batch N] "
              "[--window-ms T] [--slow-ms T] [--dir PATH] [--seed S]",
              file=sys.stderr)
        return 2
    import contextlib
    import json
    import os
    import threading

    from repro.serving import ServeDaemon, ShardedSegmentDatabase

    slow_s = (flags["slow-ms"] / 1000.0
              if flags["slow-ms"] is not None else None)
    with contextlib.ExitStack() as stack:
        directory = _serve_workload_dir(positional, flags, stack)
        served = stack.enter_context(ShardedSegmentDatabase.open(
            directory, workers=flags["workers"],
            buffer_pages=flags["buffer"], slow_query_s=slow_s,
            transport=flags["transport"],
            cache_pages=flags["cache-pages"]))
        daemon = ServeDaemon(
            served, host=flags["host"], port=flags["port"],
            max_pending=flags["max-pending"], max_batch=flags["max-batch"],
            batch_window_s=flags["window-ms"] / 1000.0)

        def announce():
            daemon.ready.wait()
            print(json.dumps({
                "ready": True,
                "host": daemon.host,
                "port": daemon.port,
                "pid": os.getpid(),
                "snapshot": directory,
                "shards": served.shard_count,
                "workers": flags["workers"],
                "transport": (served._pool.transport
                              if served._pool is not None else "sync"),
            }), flush=True)

        threading.Thread(target=announce, daemon=True).start()
        report = daemon.run()  # serves until SIGTERM/SIGINT, then drains
    print(json.dumps(report), flush=True)
    return 0


def cmd_serve_client(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(positional) > 1 or not flags["port"]:
        print("usage: python -m repro serve-client --port P [FILE] "
              "[--host H] [--count N] [--batch-size K] [--segments N] "
              "[--seed S] [--connect-timeout S] [--request-timeout S] "
              "[--retries K] [--deadline-ms T] [--json]", file=sys.stderr)
        return 2
    import json
    import time

    from repro.serving import (ServeClient, ServeConnectionError,
                               ServeRejected)
    from repro.workloads.queries import segment_queries

    if positional:
        from repro.workloads.files import load

        segments = load(positional[0])
    else:
        from repro.workloads.nct_random import grid_segments

        # Mirrors the daemon's generated workload (same flags, same
        # seed) so the queries land on populated shards.
        segments = grid_segments(flags["segments"] or 2000,
                                 seed=flags["seed"])
    queries = segment_queries(segments, flags["count"], seed=flags["seed"])
    batch_size = flags["batch-size"] or 8

    degraded = 0
    rejected = 0
    try:
        with ServeClient(host=flags["host"], port=flags["port"],
                         connect_timeout=flags["connect-timeout"],
                         request_timeout=flags["request-timeout"],
                         retries=flags["retries"],
                         seed=flags["seed"]) as client:
            ping = client.ping()
            t0 = time.perf_counter()
            results = 0
            for start in range(0, len(queries), batch_size):
                try:
                    batch = client.query_batch(
                        queries[start:start + batch_size],
                        timeout_ms=flags["deadline-ms"])
                except ServeRejected as exc:
                    rejected += 1
                    print(f"# rejected ({exc.error_type}): {exc}",
                          file=sys.stderr)
                    continue
                if getattr(batch, "degraded", False):
                    degraded += 1
                for r in batch:
                    results += len(r)
            elapsed = time.perf_counter() - t0
            stats = client.stats()
    except ServeConnectionError as exc:
        # The typed failure surface: one line naming host, port, and
        # what broke — never a traceback.
        print(f"serve-client: connection failed: {exc}", file=sys.stderr)
        return 1
    summary = {
        "ok": bool(ping.get("ok")),
        "queries": len(queries),
        "batch_size": batch_size,
        "results": results,
        "elapsed_s": elapsed,
        "queries_per_s": len(queries) / elapsed if elapsed else None,
        "degraded_batches": degraded,
        "rejected_batches": rejected,
        "server_batches": stats["metrics"]
        .get("serve.batches", {}).get("value"),
    }
    if flags["json"]:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"# {summary['queries']} queries in {elapsed:.3f}s "
          f"({summary['queries_per_s']:.0f} q/s), "
          f"{results} results, "
          f"server batches {summary['server_batches']}"
          + (f", {degraded} degraded" if degraded else "")
          + (f", {rejected} rejected" if rejected else ""))
    return 0


def _run_chaos_serve_seed(directory, queries, expected, seed, flags):
    """One serving-chaos round: daemon + chaos proxy vs the sync oracle.

    Mirrors ``_run_chaos_seed``'s contract at the RPC layer: every
    response must be exactly right, a typed degraded partial whose
    entries are subsets of the oracle answer, or a typed error — a
    silently wrong answer fails the round.
    """
    import threading

    from repro.serving import (ChaosProxy, RpcChaosSchedule, ServeClient,
                               ServeConnectionError, ServeDaemon,
                               ServeRejected, ShardedSegmentDatabase,
                               SupervisorPolicy)

    kill_schedule = RpcChaosSchedule(
        seed=seed,
        worker_kill_rate=flags["kill-rate"],
        max_kills=flags["max-kills"] or None,
    )
    frame_schedule = RpcChaosSchedule(
        seed=seed + 1,
        frame_corrupt_rate=flags["frame-corrupt"],
        frame_truncate_rate=flags["frame-truncate"],
        frame_delay_rate=flags["frame-delay"],
        conn_reset_rate=flags["conn-reset"],
    )
    policy = SupervisorPolicy(max_retries=3, backoff_s=0.02,
                              task_timeout_s=30.0, breaker_cooldown_s=0.2,
                              seed=seed)
    stats = {"seed": seed, "batches": 0, "exact": 0, "degraded": 0,
             "typed_errors": 0, "wrong": 0, "inaccurate_coverage": 0}
    wrong_queries = []
    batch_size = flags["batch-size"] or 8
    with ShardedSegmentDatabase.open(
            directory, workers=flags["workers"],
            transport=flags["transport"], supervisor=policy,
            chaos=kill_schedule) as served:
        daemon = ServeDaemon(served, port=0,
                             batch_window_s=flags["window-ms"] / 1000.0)
        thread = threading.Thread(
            target=daemon.run, kwargs={"install_signal_handlers": False},
            daemon=True)
        thread.start()
        if not daemon.ready.wait(30):
            raise RuntimeError("daemon did not come up")
        with ChaosProxy("127.0.0.1", daemon.port, frame_schedule) as proxy:
            with ServeClient(port=proxy.port,
                             connect_timeout=flags["connect-timeout"],
                             request_timeout=min(flags["request-timeout"],
                                                 10.0),
                             retries=4, retry_backoff_s=0.02,
                             seed=seed) as client:
                for start in range(0, len(queries), batch_size):
                    stats["batches"] += 1
                    want = expected[start:start + batch_size]
                    try:
                        got = client.query_batch(
                            queries[start:start + batch_size],
                            timeout_ms=flags["deadline-ms"])
                    except (ServeRejected, ServeConnectionError):
                        stats["typed_errors"] += 1  # loud: acceptable
                        continue
                    batch_degraded = getattr(got, "degraded", False)
                    bad = False
                    for offset, (result, labels) in enumerate(zip(got, want)):
                        answer = sorted(str(s.label) for s in result)
                        if getattr(result, "degraded", False):
                            if not set(answer) <= set(labels):
                                bad = True  # degraded must under-report only
                        elif answer != labels:
                            bad = True
                        if bad:
                            wrong_queries.append(str(queries[start + offset]))
                            break
                    if batch_degraded and not any(
                            str(v).startswith("down") for v in
                            got.shard_coverage.values()):
                        # A degraded batch must name at least one lost
                        # shard, or its coverage map is lying.
                        stats["inaccurate_coverage"] += 1
                        bad = True
                    if bad:
                        stats["wrong"] += 1
                    elif batch_degraded:
                        stats["degraded"] += 1
                    else:
                        stats["exact"] += 1
        daemon.request_stop()
        thread.join(30)
        stats["respawns"] = (served.health_report().get("pool", {})
                             .get("respawns", 0))
    stats["kills"] = kill_schedule.kills_injected
    stats["frame_faults"] = frame_schedule.frame_faults_injected
    return stats, {"kills": kill_schedule.to_dict(),
                   "frames": frame_schedule.to_dict()}, wrong_queries


def cmd_chaos_serve(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(positional) > 1:
        print("usage: python -m repro chaos-serve [FILE] [--seeds N] "
              "[--seed S] [--count N] [--batch-size K] [--shards K] "
              "[--workers W] [--segments N] [--engine NAME] [--block B] "
              "[--kill-rate R] [--max-kills N] [--frame-corrupt R] "
              "[--frame-truncate R] [--frame-delay R] [--conn-reset R] "
              "[--deadline-ms T] [--dump-schedule PATH] [--json]",
              file=sys.stderr)
        return 2
    import contextlib
    import tempfile

    from repro.serving import ShardedSegmentDatabase
    from repro.workloads.queries import segment_queries

    if not (flags["kill-rate"] or flags["frame-corrupt"]
            or flags["frame-truncate"] or flags["frame-delay"]
            or flags["conn-reset"]):
        flags["kill-rate"] = 0.15
        flags["frame-corrupt"] = 0.05
        flags["frame-truncate"] = 0.03
        flags["conn-reset"] = 0.05
    if flags["workers"] == 0:
        flags["workers"] = 2
    segments = _workload_segments(positional, flags)
    queries = segment_queries(segments, flags["count"], seed=flags["seed"])

    built = ShardedSegmentDatabase.bulk_load(
        segments, shards=flags["shards"], engine=flags["engine"],
        block_capacity=flags["block"])
    # The oracle: the same batch served synchronously, no faults anywhere.
    expected = [sorted(str(s.label) for s in r)
                for r in built.query_batch(queries)]
    rounds = []
    schedules = {}
    failures = 0
    with contextlib.ExitStack() as stack:
        directory = flags["dir"] or stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-chaos-serve-"))
        built.save(directory)
        for seed in range(flags["seed"], flags["seed"] + flags["seeds"]):
            stats, schedule, wrong_queries = _run_chaos_serve_seed(
                directory, queries, expected, seed, flags)
            rounds.append(stats)
            failures += stats["wrong"] + stats["inaccurate_coverage"]
            schedules[seed] = {
                "schedules": schedule,
                "wrong_queries": wrong_queries,
                "verdict": ("FAIL" if stats["wrong"]
                            or stats["inaccurate_coverage"] else "ok"),
            }
    if flags["dump-schedule"]:
        import json

        with open(flags["dump-schedule"], "w") as fh:
            json.dump({"engine": flags["engine"], "rounds": schedules}, fh,
                      indent=2, default=str)
    if flags["json"]:
        import json

        print(json.dumps({"rounds": rounds, "failures": failures}, indent=2))
    else:
        for r in rounds:
            verdict = ("FAIL" if r["wrong"] or r["inaccurate_coverage"]
                       else "ok")
            print(f"seed {r['seed']:>4}: {verdict}  "
                  f"{r['exact']} exact, {r['degraded']} degraded, "
                  f"{r['typed_errors']} typed errors, {r['wrong']} wrong "
                  f"of {r['batches']} batches; {r['kills']} kills, "
                  f"{r['respawns']} respawns, "
                  f"{r['frame_faults']} frame faults")
        print(f"# never-silently-wrong: "
              f"{'FAIL' if failures else 'PASS'} over {len(rounds)} seeds")
    return 1 if failures else 0


def cmd_health(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if positional or not flags["port"]:
        print("usage: python -m repro health --port P [--host H] "
              "[--connect-timeout S] [--request-timeout S] [--json]",
              file=sys.stderr)
        return 2
    import json

    from repro.serving import ServeClient, ServeConnectionError

    try:
        with ServeClient(host=flags["host"], port=flags["port"],
                         connect_timeout=flags["connect-timeout"],
                         request_timeout=flags["request-timeout"]) as client:
            health = client.health()
    except ServeConnectionError as exc:
        print(f"health: daemon unreachable: {exc}", file=sys.stderr)
        return 1
    if flags["json"]:
        print(json.dumps(health, indent=2))
        return 0
    print(f"# draining={health['draining']} inflight={health['inflight']} "
          f"pending={health['pending']}/{health['max_pending']} "
          f"rejected={health['rejected']} "
          f"deadline_expired={health['deadline_expired']} "
          f"degraded={health['degraded_requests']}")
    db = health.get("db")
    if db:
        line = (f"# db: mode={db['mode']} shards={db['shards']} "
                f"degraded_batches={db['degraded_batches']}")
        pool = db.get("pool")
        if pool:
            line += (f"; pool: {pool['alive_workers']}/{pool['workers']} "
                     f"workers alive, {pool['respawns']} respawns, "
                     f"{pool['failed_tasks']} failed tasks")
            open_breakers = {k: v["state"] for k, v in
                            pool.get("breakers", {}).items()
                            if v["state"] != "closed"}
            if open_breakers:
                line += f", breakers {open_breakers}"
        print(line)
    return 0


def cmd_serve_bench(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(positional) > 1:
        print("usage: python -m repro serve-bench [FILE] [--shards K] "
              "[--workers W] [--segments N] [--count N] [--batch-size K] "
              "[--seed S] [--engine NAME] [--buffer N] [--block B] "
              "[--dir PATH] [--trace PATH] [--slow-ms T] [--json]",
              file=sys.stderr)
        return 2
    return _run_serve_bench(positional, flags)


def cmd_trace(args) -> int:
    try:
        positional, flags = _pop_flags(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if len(positional) > 1:
        print("usage: python -m repro trace [FILE] [--out PATH] [--shards K] "
              "[--workers W] [--segments N] [--count N] [--batch-size K] "
              "[--seed S] [--engine NAME] [--buffer N] [--block B] "
              "[--slow-ms T] [--json]", file=sys.stderr)
        return 2
    flags["trace"] = flags["trace"] or flags["out"] or "trace.json"
    return _run_serve_bench(positional, flags)


def cmd_validate(args) -> int:
    if len(args) != 1:
        print("usage: python -m repro validate FILE", file=sys.stderr)
        return 2
    from repro.geometry import CrossingError
    from repro.workloads.files import load

    try:
        segments = load(args[0], validate=True)
    except CrossingError as exc:
        print(f"NOT NCT: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {len(segments)} segments, non-crossing (touching allowed)")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--exact-only" in argv:
        from repro.geometry import set_exact_only

        set_exact_only(True)
        argv = [a for a in argv if a != "--exact-only"]
    if not argv:
        print(__doc__)
        return 2
    command, args = argv[0], argv[1:]
    if command == "demo":
        return cmd_demo()
    if command == "engines":
        return cmd_engines()
    if command == "query":
        return cmd_query(args)
    if command == "query-batch":
        return cmd_query_batch(args)
    if command == "explain":
        return cmd_explain(args)
    if command == "validate":
        return cmd_validate(args)
    if command == "chaos":
        return cmd_chaos(args)
    if command == "fsck":
        return cmd_fsck(args)
    if command == "serve-bench":
        return cmd_serve_bench(args)
    if command == "serve":
        return cmd_serve(args)
    if command == "serve-client":
        return cmd_serve_client(args)
    if command == "chaos-serve":
        return cmd_chaos_serve(args)
    if command == "health":
        return cmd_health(args)
    if command == "trace":
        return cmd_trace(args)
    if command == "version":
        from repro import __version__

        print(__version__)
        return 0
    print(f"unknown command {command!r}\n{__doc__}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
