"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``demo``            run a small end-to-end demonstration
``engines``         list available engines with their cost profiles
``query FILE X [YLO YHI]``
                    load segments from a TSV file (see
                    ``repro.workloads.files``) and run one vertical query
``validate FILE``   check a segment file for NCT violations
``version``         print the library version
"""

from __future__ import annotations

import sys
from fractions import Fraction

ENGINE_NOTES = {
    "solution1": "Theorem 1 — O(n) space, O(log2 n·log_B n + t) query, dynamic",
    "solution2": "Theorem 2 — O(n log2 B) space, O(log_B n·(log_B n+log2 B) + t) query, insert-only",
    "scan": "baseline — O(n) per query",
    "stab-filter": "baseline — stabbing index over x-projections + y filter",
    "grid": "baseline — uniform bucket grid",
    "rtree": "baseline — STR-packed R-tree (no worst-case query bound)",
}


def _coord(token: str):
    if "/" in token:
        num, den = token.split("/", 1)
        return Fraction(int(num), int(den))
    return int(token)


def cmd_demo() -> int:
    from repro import Segment, SegmentDatabase, VerticalQuery

    segments = [
        Segment.from_coords(0, 8, 3, 9, label="ridge"),
        Segment.from_coords(4, 5, 9, 6, label="river"),
        Segment.from_coords(5, 1, 8, 3, label="road"),
        Segment.from_coords(6, 7, 6, 10, label="wall"),
    ]
    db = SegmentDatabase.bulk_load(segments, block_capacity=16, validate=True)
    q = VerticalQuery.segment(6, 1, 8)
    hits = sorted(s.label for s in db.query(q))
    print(f"{len(db)} segments indexed in {db.space_in_blocks()} blocks")
    print(f"VS query x=6, y in [1, 8] -> {hits}")
    print(f"I/O: {db.io_stats()}")
    return 0


def cmd_engines() -> int:
    from repro import ENGINES

    for engine in ENGINES:
        print(f"{engine:>12}  {ENGINE_NOTES[engine]}")
    return 0


def cmd_query(args) -> int:
    if len(args) not in (2, 4):
        print("usage: python -m repro query FILE X [YLO YHI]", file=sys.stderr)
        return 2
    from repro import SegmentDatabase, VerticalQuery
    from repro.workloads.files import load

    path, x = args[0], _coord(args[1])
    segments = load(path)
    db = SegmentDatabase.bulk_load(segments, block_capacity=64)
    if len(args) == 4:
        q = VerticalQuery.segment(x, _coord(args[2]), _coord(args[3]))
    else:
        q = VerticalQuery.line(x)
    hits = db.query(q)
    for s in sorted(hits, key=lambda s: str(s.label)):
        print(s.label)
    print(f"# {len(hits)} of {len(db)} segments; {db.io_stats().reads} block "
          f"reads", file=sys.stderr)
    return 0


def cmd_validate(args) -> int:
    if len(args) != 1:
        print("usage: python -m repro validate FILE", file=sys.stderr)
        return 2
    from repro.geometry import CrossingError
    from repro.workloads.files import load

    try:
        segments = load(args[0], validate=True)
    except CrossingError as exc:
        print(f"NOT NCT: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {len(segments)} segments, non-crossing (touching allowed)")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__)
        return 2
    command, args = argv[0], argv[1:]
    if command == "demo":
        return cmd_demo()
    if command == "engines":
        return cmd_engines()
    if command == "query":
        return cmd_query(args)
    if command == "validate":
        return cmd_validate(args)
    if command == "version":
        from repro import __version__

        print(__version__)
        return 0
    print(f"unknown command {command!r}\n{__doc__}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
