"""Least-squares fitting of measured I/O counts to complexity models.

The paper proves bounds of the form ``cost = a * f(N, B) + b * t + c``.
Given measurements over a parameter sweep, :func:`fit_model` estimates
``(a, b, c)`` and the coefficient of determination; :func:`best_model`
ranks the candidate leading terms so a benchmark can report *which* model
explains the data — the empirical substitute for the missing evaluation
section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .models import MODELS, ModelFn, output_t

Measurement = Tuple[float, float, float, float]  # (N, B, T, cost)


@dataclass(frozen=True)
class Fit:
    """One fitted model: cost ~ search_coef * f + output_coef * t + const."""

    model: str
    search_coef: float
    output_coef: float
    const: float
    r_squared: float

    def predict(self, N: float, B: float, T: float) -> float:
        f = MODELS[self.model]
        return (
            self.search_coef * f(N, B, T)
            + self.output_coef * output_t(N, B, T)
            + self.const
        )

    def describe(self) -> str:
        return (
            f"cost ≈ {self.search_coef:.2f}·{self.model} "
            f"+ {self.output_coef:.2f}·t + {self.const:.2f}  "
            f"(R²={self.r_squared:.3f})"
        )


def fit_model(measurements: Sequence[Measurement], model: str) -> Fit:
    """Least-squares fit of one candidate model (numpy lstsq)."""
    import numpy as np

    if len(measurements) < 3:
        raise ValueError("need at least 3 measurements to fit 3 coefficients")
    f: ModelFn = MODELS[model]
    design = np.array(
        [[f(N, B, T), output_t(N, B, T), 1.0] for N, B, T, _cost in measurements]
    )
    costs = np.array([cost for _N, _B, _T, cost in measurements])
    coefs, _res, _rank, _sv = np.linalg.lstsq(design, costs, rcond=None)
    predicted = design @ coefs
    ss_res = float(((costs - predicted) ** 2).sum())
    ss_tot = float(((costs - costs.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return Fit(model, float(coefs[0]), float(coefs[1]), float(coefs[2]), r_squared)


def best_model(
    measurements: Sequence[Measurement], candidates: Sequence[str] = None
) -> List[Fit]:
    """All candidate fits, best first (by R², ties to simpler models)."""
    if candidates is None:
        candidates = [name for name in MODELS if name != "1"]
    fits = [fit_model(measurements, name) for name in candidates]
    fits.sort(key=lambda fit: -fit.r_squared)
    return fits


def growth_ratio(measurements: Sequence[Measurement]) -> float:
    """Cost ratio between the largest and smallest N (same B).

    A quick sanity statistic: logarithmic costs give small ratios over big
    N ranges; linear costs track N's growth.
    """
    ordered = sorted(measurements, key=lambda m: m[0])
    lo, hi = ordered[0], ordered[-1]
    if lo[3] == 0:
        return float("inf")
    return hi[3] / lo[3]
