"""Rendering helpers for benchmark tables and ASCII series.

The benchmark harness prints the rows the paper would have reported; these
helpers keep the formatting consistent across experiments so EXPERIMENTS.md
can archive the output verbatim.
"""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """A GitHub-markdown table with right-aligned numeric cells."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "| " + " | ".join(c.rjust(w) for c, w in zip(cells, widths)) + " |"

    out = [line(headers), "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    out.extend(line(r) for r in text_rows)
    return "\n".join(out)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 10**9:
            return str(int(cell))
        return f"{cell:.2f}"
    return str(cell)


def ascii_series(
    label: str, xs: Sequence[float], ys: Sequence[float], width: int = 48
) -> str:
    """A one-line-per-point bar rendering of a series (log-friendly)."""
    peak = max(ys) if ys else 1
    lines = [f"{label}:"]
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(width * y / peak)) if peak else ""
        lines.append(f"  {str(x):>10}  {y:>10.1f}  {bar}")
    return "\n".join(lines)


def render_fits(fits: List) -> str:
    """Pretty-print a ranked list of model fits."""
    return "\n".join(
        f"  {'->' if i == 0 else '  '} {fit.describe()}" for i, fit in enumerate(fits)
    )
