"""Complexity-model fitting and table rendering for the benchmarks."""

from .fitting import Fit, best_model, fit_model, growth_ratio
from .models import MODELS, il_star
from .tables import ascii_series, render_fits, render_table

__all__ = [
    "Fit",
    "MODELS",
    "ascii_series",
    "best_model",
    "fit_model",
    "growth_ratio",
    "il_star",
    "render_fits",
    "render_table",
]
