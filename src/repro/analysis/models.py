"""Candidate complexity models for fitting measured I/O counts.

Each model maps the experiment parameters ``(N, B, T)`` to the paper's
predicted leading term; the fitting layer estimates the constants.  ``n``
and ``t`` are the blocked quantities ``N/B`` and ``T/B``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

ModelFn = Callable[[float, float, float], float]


def _n(N: float, B: float) -> float:
    return max(2.0, N / B)


def _t(T: float, B: float) -> float:
    return T / B


def constant(N, B, T):
    return 1.0


def log2_n(N, B, T):
    """Lemma 2: the binary PST search term."""
    return math.log2(_n(N, B))


def log_b_n(N, B, T):
    """Lemma 3 / B-tree-style search term."""
    return math.log(_n(N, B), max(2.0, B))


def log2n_logbn(N, B, T):
    """Theorem 1: binary first level times blocked second level."""
    return log2_n(N, B, T) * log_b_n(N, B, T)


def logbn_logbn(N, B, T):
    """Theorem 2 without the log2 B term."""
    return log_b_n(N, B, T) ** 2


def logbn_logbn_plus_log2b(N, B, T):
    """Theorem 2: log_B n * (log_B n + log2 B)."""
    return log_b_n(N, B, T) * (log_b_n(N, B, T) + math.log2(max(2.0, B)))


def linear_n(N, B, T):
    """The full-scan baseline."""
    return _n(N, B)


def output_t(N, B, T):
    """The additive output term t = T/B present in every query bound."""
    return _t(T, B)


#: Registry used by the benchmark harness.
MODELS: Dict[str, ModelFn] = {
    "1": constant,
    "log2(n)": log2_n,
    "log_B(n)": log_b_n,
    "log2(n)*log_B(n)": log2n_logbn,
    "log_B(n)^2": logbn_logbn,
    "log_B(n)*(log_B(n)+log2(B))": logbn_logbn_plus_log2b,
    "n": linear_n,
}


def il_star(B: int) -> int:
    """The paper's ``IL*(B)``: how many times log* must be iterated on B
    before the value drops to <= 2.  For every feasible block size this is
    a tiny constant — we report it alongside measured constants."""

    def log_star(x: float) -> int:
        count = 0
        while x > 2:
            x = math.log2(x)
            count += 1
        return count

    count = 0
    value = float(B)
    while value > 2:
        value = log_star(value)
        count += 1
    return count
