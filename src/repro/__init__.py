"""Reproduction of "Towards Optimal Indexing for Segment Databases".

Bertino, Catania, Shidlovsky (EDBT 1998): external-memory index structures
answering *vertical segment queries* — report every stored segment met by a
generalized vertical segment (line, ray, segment) — over N non-crossing,
possibly touching (NCT) plane segments.

Quick start::

    from repro import SegmentDatabase, Segment, VerticalQuery

    roads = [Segment.from_coords(0, 0, 10, 4, label="r1"), ...]
    db = SegmentDatabase.bulk_load(roads, engine="solution2")
    hits = db.query(VerticalQuery.segment(x=5, ylo=0, yhi=10))
    print(db.io_stats())  # the paper's cost model: block reads/writes

See DESIGN.md for the system map and EXPERIMENTS.md for the measured
reproduction of every complexity claim.
"""

from .core.api import DirectedSegmentDatabase, ENGINES, SegmentDatabase
from .core.extensions import ArbitraryQueryIndex, TombstoneDeletions
from .core.linebased import BlockedPST, ExternalPST, LineBasedIndex
from .core.recovery import DegradedBatch, DegradedResult, FsckReport
from .core.solution1 import TwoLevelBinaryIndex
from .core.solution2 import TwoLevelIntervalIndex
from .geometry import (
    CrossingError,
    HQuery,
    LineBasedSegment,
    Point,
    Segment,
    VerticalQuery,
    validate_nct,
    vs_intersects,
)
from .iosim import (
    BlockDevice,
    ChecksumError,
    FaultSchedule,
    FaultyBlockDevice,
    IOStats,
    LRUBufferPool,
    Measurement,
    Pager,
    RecoveryPendingError,
    RetryPolicy,
    SimulatedCrash,
    SnapshotFormatError,
    TransientIOError,
)
from .serving import ShardWorkerPool, ShardedSegmentDatabase
from .telemetry import ExplainReport, MetricsRegistry, TraceContext

__version__ = "1.0.0"

__all__ = [
    "ArbitraryQueryIndex",
    "BlockDevice",
    "BlockedPST",
    "ChecksumError",
    "CrossingError",
    "DegradedBatch",
    "DegradedResult",
    "DirectedSegmentDatabase",
    "ENGINES",
    "ExplainReport",
    "ExternalPST",
    "FaultSchedule",
    "FaultyBlockDevice",
    "FsckReport",
    "HQuery",
    "IOStats",
    "LRUBufferPool",
    "LineBasedIndex",
    "LineBasedSegment",
    "Measurement",
    "MetricsRegistry",
    "Pager",
    "RecoveryPendingError",
    "RetryPolicy",
    "ShardWorkerPool",
    "ShardedSegmentDatabase",
    "SimulatedCrash",
    "SnapshotFormatError",
    "TraceContext",
    "TransientIOError",
    "Point",
    "Segment",
    "SegmentDatabase",
    "TombstoneDeletions",
    "TwoLevelBinaryIndex",
    "TwoLevelIntervalIndex",
    "VerticalQuery",
    "validate_nct",
    "vs_intersects",
    "__version__",
]
