"""The public facade: :class:`SegmentDatabase`.

One object, one choice of engine, the paper's whole query surface::

    from repro import SegmentDatabase, Segment, VerticalQuery

    db = SegmentDatabase.bulk_load(segments, engine="solution2", block_capacity=64)
    hits = db.query(VerticalQuery.segment(x, ylo, yhi))
    db.insert(Segment.from_coords(0, 0, 5, 5, label="road-17"))
    print(db.io_stats(), db.space_in_blocks())

Engines
-------
``solution1``   Theorem 1 — binary 2LDS; O(n) space, supports deletions.
``solution2``   Theorem 2 — interval-tree 2LDS with fractional cascading;
                O(n log2 B) space, fastest queries, insert-only (the
                paper's semi-dynamic case).
``scan``        full-scan baseline.
``stab-filter`` stabbing structure over x-projections + y filter.
``grid``        uniform-grid spatial index.
``rtree``       STR-packed R-tree (the practical GIS workhorse).

Non-vertical fixed query directions reduce to the vertical case with
:meth:`SegmentDatabase.with_direction` (footnote 1 of the paper).
"""

from __future__ import annotations

from contextlib import nullcontext
from time import perf_counter
from typing import Iterable, List, Optional, Sequence

from ..baselines.grid import GridIndex
from ..baselines.naive import FullScanIndex
from ..baselines.rtree import RTreeIndex
from ..baselines.stab_filter import StabFilterIndex
from ..geometry import (
    Coordinate,
    FixedDirectionFrame,
    Point,
    Segment,
    VerticalQuery,
    validate_nct,
    vs_intersects,
)
from ..geometry import filtered
from ..iosim import (
    BlockDevice,
    ChecksumError,
    FaultSchedule,
    FaultyBlockDevice,
    IOStats,
    LRUBufferPool,
    Pager,
    RecoveryPendingError,
    RetryPolicy,
    SimulatedCrash,
    SnapshotFormatError,
    StorageError,
    TransientIOError,
    load_device,
    save_device,
)
from ..telemetry import ExplainReport, MetricsRegistry, SlowQueryLog, trace_call
from .recovery import DegradedResult, FsckReport
from .solution1.index import TwoLevelBinaryIndex
from .solution2.index import TwoLevelIntervalIndex

ENGINES = ("solution1", "solution2", "scan", "stab-filter", "grid", "rtree")


class SegmentDatabase:
    """A segment database over a simulated block device."""

    def __init__(
        self,
        engine: str = "solution2",
        block_capacity: int = 64,
        buffer_pages: Optional[int] = None,
        validate: bool = False,
        faults: Optional[FaultSchedule] = None,
        retry: Optional[RetryPolicy] = None,
        degrade: bool = True,
    ):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; pick one of {ENGINES}")
        self.engine_name = engine
        self.device = (
            FaultyBlockDevice(block_capacity, schedule=faults, retry=retry)
            if faults is not None or retry is not None
            else BlockDevice(block_capacity)
        )
        self.buffer_pool: Optional[LRUBufferPool] = (
            LRUBufferPool(self.device, buffer_pages)
            if buffer_pages is not None
            else None
        )
        self.pager = Pager(self.buffer_pool or self.device)
        self.validate = validate
        self.degrade = degrade
        self.metrics: Optional[MetricsRegistry] = None
        self.slow_log: Optional[SlowQueryLog] = None
        self._filter_snapshot = filtered.STATS.snapshot()
        # Under a faulty device (with degradation on) the database keeps an
        # authoritative in-memory copy of the segment set — standing in for
        # the base data a production system holds outside the index — so it
        # can serve exact answers after quarantining a corrupt index.
        self._fallback: Optional[List[Segment]] = (
            [] if isinstance(self.device, FaultyBlockDevice) and degrade else None
        )
        self._quarantined = False
        self._quarantine_reason: Optional[str] = None
        self._degraded_queries = 0
        self._pre_op_state: Optional[tuple] = None
        self._index = self._build_engine([])

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        segments: Iterable[Segment],
        engine: str = "solution2",
        block_capacity: int = 64,
        buffer_pages: Optional[int] = None,
        validate: bool = False,
        faults: Optional[FaultSchedule] = None,
        retry: Optional[RetryPolicy] = None,
        degrade: bool = True,
    ) -> "SegmentDatabase":
        """Build a database from a full NCT segment set.

        With ``validate=True`` the set is checked for crossings first
        (O(N log N) via the plane sweep; raises
        :class:`~repro.geometry.nct.CrossingError`).

        A ``faults`` schedule (and optional ``retry`` policy) puts a
        :class:`~repro.iosim.faults.FaultyBlockDevice` under the engine;
        the schedule is disarmed during the build itself so faults
        target the workload, not the loader.
        """
        db = cls(
            engine=engine,
            block_capacity=block_capacity,
            buffer_pages=buffer_pages,
            validate=validate,
            faults=faults,
            retry=retry,
            degrade=degrade,
        )
        segments = list(segments)
        if validate:
            validate_nct(segments)
        disarm = faults.disarmed() if faults is not None else nullcontext()
        with disarm:
            db._index = db._build_engine(segments)
        if db._fallback is not None:
            db._fallback = list(segments)
        db.device.reset_counters()
        return db

    def _build_engine(self, segments: List[Segment]):
        return self._engine_class().build(self.pager, segments)

    def _engine_class(self):
        return {
            "solution1": TwoLevelBinaryIndex,
            "solution2": TwoLevelIntervalIndex,
            "scan": FullScanIndex,
            "stab-filter": StabFilterIndex,
            "rtree": RTreeIndex,
            "grid": GridIndex,
        }[self.engine_name]

    # ------------------------------------------------------------------
    # persistence: build once, open many
    # ------------------------------------------------------------------
    def save(self, path: str) -> int:
        """Serialize the built database to a snapshot file.

        The snapshot holds the whole page store plus the engine metadata
        (engine name, block capacity, root page ids, segment count), CRC-
        protected at two levels (see :mod:`repro.iosim.snapshot`);
        :meth:`open` restores a queryable database without rebuilding.
        Only a healthy database can be saved — a dirty journal or a
        quarantined index would persist exactly the damage snapshots
        exist to avoid.  Returns the number of bytes written.
        """
        self._check_recovered()
        self._check_not_quarantined("save")
        meta = {
            "engine": self.engine_name,
            "segment_count": len(self),
            "engine_meta": self._index.snapshot_meta(),
        }
        return save_device(path, self.device, meta)

    @classmethod
    def open(
        cls,
        path: str,
        buffer_pages: Optional[int] = None,
        validate: bool = False,
    ) -> "SegmentDatabase":
        """Restore a queryable database from a :meth:`save` snapshot.

        The builder never runs: the page store is restored verbatim and
        the engine re-attached over it, so ``open`` costs O(pages) of
        deserialization instead of the O(N log N) build.  Verification
        (magic, version, file CRC, per-page checksums) happens before
        any page is trusted; damage raises
        :class:`~repro.iosim.SnapshotFormatError`.  The buffer pool (if
        requested) starts cold, and I/O counters start at zero — the
        same accounting state ``bulk_load`` leaves behind.
        """
        device, meta = load_device(path)
        return cls.attach_device(device, meta, buffer_pages=buffer_pages,
                                 validate=validate, source=path)

    @classmethod
    def attach_device(
        cls,
        device: BlockDevice,
        meta: dict,
        buffer_pages: Optional[int] = None,
        validate: bool = False,
        source: str = "<device>",
    ) -> "SegmentDatabase":
        """A queryable database over an already-restored page store.

        ``device`` may be any :class:`~repro.iosim.BlockDevice` — the
        eager store :func:`~repro.iosim.load_device` returns, or a lazy
        :class:`~repro.iosim.ArenaBlockDevice` over a shared-memory
        arena (the warm-worker serving path, where the O(n) page decode
        never happens up front at all).  ``meta`` is the snapshot
        metadata dict (``engine`` + ``engine_meta``); the engine is
        re-attached over the pages without running the builder.
        """
        try:
            engine = meta["engine"]
            engine_meta = meta["engine_meta"]
        except (TypeError, KeyError) as exc:
            raise SnapshotFormatError(source, f"missing field: {exc}") from exc
        db = cls(
            engine=engine,
            block_capacity=device.block_capacity,
            buffer_pages=buffer_pages,
            validate=validate,
        )
        # __init__ built an empty engine over a scratch device (some
        # engines allocate a page or two for it); swap in the restored
        # store wholesale and re-point the buffer pool and pager at it.
        db.device = device
        db.buffer_pool = (
            LRUBufferPool(device, buffer_pages)
            if buffer_pages is not None
            else None
        )
        db.pager = Pager(db.buffer_pool or device)
        db._index = db._engine_class().attach(db.pager, engine_meta)
        db.device.reset_counters()
        return db

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, q: VerticalQuery) -> List[Segment]:
        """All stored segments intersecting a generalized vertical segment.

        Under a fault schedule the answer is *never silently wrong*: the
        index either answers exactly (retries absorb transient faults),
        or the error surfaces, or — with ``degrade=True`` — the query is
        served exactly from the fallback copy as a typed
        :class:`~repro.core.recovery.DegradedResult`.
        """
        self._check_recovered()
        if self._quarantined:
            return self._fallback_query(q, self._quarantine_reason)
        try:
            if self.metrics is None and self.slow_log is None:
                return self._index.query(q)
            before = self.device.snapshot()
            t0 = perf_counter()
            out = self._index.query(q)
            elapsed = perf_counter() - t0
            if self.metrics is not None:
                self._record_op("query", self.device.snapshot() - before,
                                len(out))
                self.metrics.latency("query.latency_s").observe(elapsed)
            if self.slow_log is not None:
                self.slow_log.record(
                    "query", str(q), elapsed,
                    explain=lambda: self._explain_dict(q), results=len(out),
                )
            return out
        except (ChecksumError, TransientIOError) as exc:
            reason = self._note_query_fault(exc)
            return self._fallback_query(q, reason)

    def query_batch(self, queries: Sequence[VerticalQuery]) -> List[List[Segment]]:
        """Answer many queries at once, amortizing the shared descent.

        The two paper engines sort the batch by query ``x`` and route it
        through the first level as groups, fetching each node on the
        union of search paths once per batch instead of once per query
        (DESIGN.md §8); the baselines fall back to a sequential loop.
        Results are returned in input order, and each entry equals what
        ``self.query(q)`` would have returned for that query.
        """
        queries = list(queries)
        self._check_recovered()
        if not queries:
            # An empty batch has no work: answer without charging the
            # device or entering a pager operation (dedupe scopes and
            # journals are per-operation state that would otherwise tick).
            return []
        if self._quarantined:
            reason = self._quarantine_reason
            return [self._fallback_query(q, reason) for q in queries]
        try:
            return self._query_batch_healthy(queries)
        except (ChecksumError, TransientIOError) as exc:
            reason = self._note_query_fault(exc)
            return [self._fallback_query(q, reason) for q in queries]

    def _query_batch_healthy(
        self, queries: List[VerticalQuery]
    ) -> List[List[Segment]]:
        if self.metrics is None and self.slow_log is None:
            return self._index.query_batch(queries)
        before = self.device.snapshot()
        t0 = perf_counter()
        out = self._index.query_batch(queries)
        elapsed = perf_counter() - t0
        diff = self.device.snapshot() - before
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("query_batch.count").inc()
            metrics.histogram("query_batch.size").observe(len(queries))
            metrics.histogram("query_batch.ios").observe(diff.total)
            metrics.latency("query_batch.latency_s").observe(elapsed)
            if queries:
                metrics.histogram("query_batch.ios_per_query").observe(
                    diff.total / len(queries)
                )
                metrics.latency("query_batch.latency_per_query_s").observe(
                    elapsed / len(queries)
                )
            metrics.histogram("query_batch.results").observe(
                sum(len(r) for r in out)
            )
            if self.buffer_pool is not None:
                metrics.gauge("buffer.hit_rate").set(self.buffer_pool.hit_rate)
                metrics.gauge("buffer.pinned").set(self.buffer_pool.pinned_count)
            self._sync_filter_metrics(metrics)
        if self.slow_log is not None:
            self.slow_log.record(
                "query_batch", f"batch of {len(queries)} queries", elapsed,
                explain=lambda: self._explain_batch_dict(queries),
                queries=len(queries),
            )
        return out

    def stab(self, x: Coordinate) -> List[Segment]:
        """Stabbing query: everything crossing the vertical line at ``x``."""
        return self.query(VerticalQuery.line(x))

    def explain(self, q: VerticalQuery, timed: bool = False) -> ExplainReport:
        """Run ``q`` traced and return its cost anatomy.

        The report's per-phase I/O counts sum exactly to the flat
        :class:`~repro.iosim.stats.IOStats` diff of the query (it is an
        accounting identity over the same simulated I/Os — see
        DESIGN.md §7), and include buffer hit/miss movement when the
        database was built with ``buffer_pages``.

        With ``timed=True`` each phase additionally records its
        wall-clock self time (``seconds``), so the same anatomy reads in
        both cost domains: simulated block transfers *and* latency.
        """
        self._check_recovered()
        out, report = trace_call(
            self.device,
            lambda: self._index.query(q),
            engine=self.engine_name,
            description=str(q),
            buffer_pool=self.buffer_pool,
            timed=timed,
        )
        if self.metrics is not None:
            self._record_op("query", report.io, len(out))
        return report

    def explain_batch(self, queries: Sequence[VerticalQuery],
                      timed: bool = False) -> ExplainReport:
        """Run a whole batch traced and return its cost anatomy.

        The same accounting identity as :meth:`explain` holds over the
        batch window: per-phase I/Os sum exactly to the flat counter
        diff, so the amortized first-level share is directly readable
        against the per-query second-level phases.  ``results`` counts
        reported segments across the whole batch.  ``timed=True`` adds
        wall-clock self time per phase, as in :meth:`explain`.
        """
        queries = list(queries)
        self._check_recovered()
        # Mirror query_batch: an empty batch never reaches the engine, so
        # its anatomy is an all-zero report rather than a pager operation.
        runner = (lambda: []) if not queries else (
            lambda: self._index.query_batch(queries)
        )
        out, report = trace_call(
            self.device,
            runner,
            engine=self.engine_name,
            description=f"batch of {len(queries)} queries",
            buffer_pool=self.buffer_pool,
            root_name="query-batch",
            timed=timed,
        )
        report.results = sum(len(r) for r in out)
        return report

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, segment: Segment) -> None:
        """Insert a segment (must be NCT with the stored set).

        With ``validate=True`` the invariant is checked against every
        stored segment (O(N) — meant for tests and small data).

        Under a faulty device the insert runs inside the device's
        operation journal: a crash mid-insert leaves the index fully
        pre-op after :meth:`recover` (all-or-nothing; DESIGN.md §10).
        """
        self._check_recovered()
        self._check_not_quarantined("insert")
        if self.validate:
            from ..geometry import segments_cross

            for other in self.all_segments():
                if segments_cross(segment, other):
                    raise ValueError(f"{segment!r} crosses stored {other!r}")
        if self.metrics is None:
            self._run_update(lambda: self._index.insert(segment))
        else:
            before = self.device.snapshot()
            self._run_update(lambda: self._index.insert(segment))
            self._record_op("insert", self.device.snapshot() - before, None)
        if self._fallback is not None:
            self._fallback.append(segment)

    def delete(self, segment: Segment) -> bool:
        """Delete a stored segment (``solution1`` and baselines only).

        Journaled like :meth:`insert`: a crash mid-delete rolls back to
        the pre-op index on :meth:`recover`.
        """
        self._check_recovered()
        self._check_not_quarantined("delete")
        removed = self._run_update(lambda: self._index.delete(segment))
        if removed and self._fallback is not None:
            try:
                self._fallback.remove(segment)
            except ValueError:  # pragma: no cover - fallback drift guard
                pass
        return removed

    def _run_update(self, fn):
        """Run one update operation with all-or-nothing crash semantics."""
        device = self.device
        if not isinstance(device, FaultyBlockDevice):
            return fn()
        state = self._index.snapshot_state()
        try:
            with device.journaled():
                return fn()
        except SimulatedCrash:
            # The journal stays dirty; remember the pre-op in-memory state
            # so recover() can put the engine back alongside the pages.
            self._pre_op_state = state
            raise

    # ------------------------------------------------------------------
    # robustness: degradation, recovery, fsck
    # ------------------------------------------------------------------
    @property
    def quarantined(self) -> bool:
        """True when the index is considered corrupt and bypassed."""
        return self._quarantined

    def _check_recovered(self) -> None:
        if getattr(self.device, "needs_recovery", False):
            raise RecoveryPendingError()

    def _check_not_quarantined(self, op: str) -> None:
        if self._quarantined:
            raise StorageError(
                f"cannot {op}: index is quarantined "
                f"({self._quarantine_reason}); rebuild() first"
            )

    def _note_query_fault(self, exc: StorageError) -> str:
        """Classify a query-time storage fault; returns the degradation
        reason.  Unrecoverable corruption quarantines the index; a
        persistent transient fault degrades only this query (the device
        may heal).  Without a fallback the error propagates."""
        if self._fallback is None or not self.degrade:
            raise exc
        reason = f"{type(exc).__name__}: {exc}"
        if isinstance(exc, ChecksumError):
            self._quarantine(reason)
        return reason

    def _quarantine(self, reason: str) -> None:
        self._quarantined = True
        self._quarantine_reason = reason
        if self.metrics is not None:
            self.metrics.counter("faults.quarantines").inc()

    def _fallback_query(self, q: VerticalQuery, reason: str) -> DegradedResult:
        """Serve one query exactly from the authoritative fallback copy.

        The fallback list models base data held outside the simulated
        device, so the scan charges no simulated I/O — the point is exact
        (if slow) answers, loudly marked as degraded.
        """
        if self._fallback is None:
            raise StorageError("no fallback copy available")
        self._degraded_queries += 1
        if self.metrics is not None:
            self.metrics.counter("query.degraded").inc()
        return DegradedResult(
            (s for s in self._fallback if vs_intersects(s, q)),
            reason=reason or "index quarantined",
        )

    def recover(self) -> dict:
        """Roll back a crashed update; the index returns to its pre-op state.

        No-op on a healthy database.  Returns a JSON-ready summary.
        """
        device = self.device
        if not getattr(device, "needs_recovery", False):
            return {"action": "clean", "rolled_back": False}
        device.rollback_journal()
        if self._pre_op_state is not None:
            self._index.restore_state(self._pre_op_state)
            self._pre_op_state = None
        return {"action": "rolled-back", "rolled_back": True}

    def fsck(self, deep: bool = True) -> FsckReport:
        """Check storage and index integrity; quarantine on damage.

        Phase 1 scans every live page offline (capacity bounds plus
        checksums on a faulty device).  Phase 2 (``deep=True``) runs the
        engine's ``verify()`` walk — the per-engine invariants listed in
        DESIGN.md §10.  Any problem quarantines the index when a
        fallback copy exists, so subsequent queries degrade loudly
        instead of trusting a damaged structure.
        """
        device = self.device
        problems: List[str] = []
        checksum_failures = 0
        dirty_journal = getattr(device, "needs_recovery", False)
        if dirty_journal:
            problems.append("journal: unrecovered crash — run recover() first")
        verify_pages = getattr(device, "verify_pages", None)
        if verify_pages is not None:
            for page_id, reason in verify_pages():
                checksum_failures += 1
                problems.append(f"page {page_id}: {reason}")
        else:
            for page in device.iter_pages():
                try:
                    page.validate()
                except StorageError as exc:
                    problems.append(f"page {page.page_id}: {exc}")
        if deep and not dirty_journal:
            verify = getattr(self._index, "verify", None)
            if verify is not None:
                schedule = getattr(device, "schedule", None)
                disarm = (
                    schedule.disarmed() if schedule is not None else nullcontext()
                )
                with disarm:  # fsck is offline: no injected faults mid-walk
                    problems.extend(verify())
        if problems and self.degrade and self._fallback is not None:
            self._quarantine(f"fsck found {len(problems)} problem(s)")
        return FsckReport(
            ok=not problems,
            engine=self.engine_name,
            pages_scanned=device.pages_in_use,
            checksum_failures=checksum_failures,
            problems=problems,
            quarantined=self._quarantined,
        )

    def rebuild(self) -> None:
        """Reformat the device and rebuild the index from the fallback copy.

        The way out of quarantine: corrupt structures may not even be
        safely traversable, so the old pages are dropped wholesale and
        the engine is bulk-rebuilt from the authoritative segment list.
        """
        if self._fallback is None:
            raise StorageError("no fallback copy to rebuild from")
        device = self.device
        segments = list(self._fallback)
        schedule = getattr(device, "schedule", None)
        disarm = schedule.disarmed() if schedule is not None else nullcontext()
        device._pages.clear()
        if isinstance(device, FaultyBlockDevice):
            device._fingerprints.clear()
            device._corrupt.clear()
        if self.buffer_pool is not None:
            self.buffer_pool._lru.clear()
        with disarm:
            self._index = self._build_engine(segments)
        self._quarantined = False
        self._quarantine_reason = None

    # ------------------------------------------------------------------
    # accounting & observability
    # ------------------------------------------------------------------
    def io_stats(self) -> IOStats:
        return self.device.snapshot()

    def io_report(self) -> dict:
        """Counters plus cache effectiveness, JSON-ready.

        Extends :meth:`io_stats` with the buffer pool's hit/miss counts
        and :attr:`~repro.iosim.buffer.LRUBufferPool.hit_rate` (``None``
        entries when the database runs without a pool).
        """
        out = self.io_stats().to_dict()
        out["space_in_blocks"] = self.space_in_blocks()
        pool = self.buffer_pool
        out["buffer"] = (
            {
                "capacity": pool.capacity,
                "hits": pool.hits,
                "misses": pool.misses,
                "hit_rate": pool.hit_rate,
                "pinned": pool.pinned_count,
            }
            if pool is not None
            else None
        )
        out["filter"] = filtered.filter_stats()
        fault_report = getattr(self.device, "fault_report", None)
        out["faults"] = fault_report() if fault_report is not None else None
        out["degraded_queries"] = self._degraded_queries
        out["quarantined"] = self._quarantined
        if self._quarantined:
            out["quarantine_reason"] = self._quarantine_reason
        return out

    @property
    def buffer_hit_rate(self) -> Optional[float]:
        """The pool's hit rate, or ``None`` without ``buffer_pages``."""
        return self.buffer_pool.hit_rate if self.buffer_pool is not None else None

    def reset_io_stats(self) -> None:
        self.device.reset_counters()

    def space_in_blocks(self) -> int:
        return self.device.pages_in_use

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def enable_metrics(self) -> MetricsRegistry:
        """Start recording per-operation metrics; returns the registry.

        Each query/insert feeds I/O-per-operation and result-size
        histograms; the buffer hit rate (when pooled) is kept as a
        gauge.  Idempotent: re-enabling returns the same registry.
        """
        if self.metrics is None:
            self.metrics = MetricsRegistry()
        return self.metrics

    def enable_slow_query_log(self, threshold_s: float,
                              capacity: int = 128) -> SlowQueryLog:
        """Start capturing queries slower than ``threshold_s`` seconds.

        Each captured entry records the query text, its latency, and a
        lazily computed ``explain()`` cost anatomy (the diagnosis runs
        only for queries already past the threshold, so fast traffic
        pays nothing beyond one clock read).  Idempotent for a given
        threshold: re-enabling replaces the threshold but keeps the log.
        """
        if self.slow_log is None:
            self.slow_log = SlowQueryLog(threshold_s, capacity=capacity)
        else:
            self.slow_log.threshold_s = threshold_s
        return self.slow_log

    def _explain_dict(self, q: VerticalQuery) -> dict:
        """A slow-log diagnosis: re-run ``q`` traced, without touching
        the metrics registry (the original run already counted)."""
        out, report = trace_call(
            self.device,
            lambda: self._index.query(q),
            engine=self.engine_name,
            description=str(q),
            buffer_pool=self.buffer_pool,
            timed=True,
        )
        return report.to_dict()

    def _explain_batch_dict(self, queries: List[VerticalQuery]) -> dict:
        """Slow-log diagnosis for a batch; see :meth:`_explain_dict`."""
        if not queries:
            return {}
        out, report = trace_call(
            self.device,
            lambda: self._index.query_batch(queries),
            engine=self.engine_name,
            description=f"batch of {len(queries)} queries",
            buffer_pool=self.buffer_pool,
            root_name="query-batch",
            timed=True,
        )
        report.results = sum(len(r) for r in out)
        return report.to_dict()

    def _record_op(self, op: str, diff: IOStats, results: Optional[int]) -> None:
        metrics = self.metrics
        metrics.counter(f"{op}.count").inc()
        metrics.histogram(f"{op}.ios").observe(diff.total)
        metrics.histogram(f"{op}.reads").observe(diff.reads)
        if results is not None:
            metrics.histogram(f"{op}.results").observe(results)
        if self.buffer_pool is not None:
            metrics.gauge("buffer.hit_rate").set(self.buffer_pool.hit_rate)
        self._sync_filter_metrics(metrics)

    def _sync_filter_metrics(self, metrics: MetricsRegistry) -> None:
        """Fold the filtered-arithmetic kernel's global counters into the
        registry as deltas (the kernel counters are process-wide; counters
        here stay monotone per database)."""
        fast, exact = filtered.STATS.snapshot()
        prev_fast, prev_exact = self._filter_snapshot
        self._filter_snapshot = (fast, exact)
        if fast > prev_fast:
            metrics.counter("filter.fast_hits").inc(fast - prev_fast)
        if exact > prev_exact:
            metrics.counter("filter.exact_fallbacks").inc(exact - prev_exact)
        total = (
            metrics.counter("filter.fast_hits").value
            + metrics.counter("filter.exact_fallbacks").value
        )
        if total:
            metrics.gauge("filter.hit_rate").set(
                metrics.counter("filter.fast_hits").value / total
            )

    def all_segments(self) -> List[Segment]:
        return self._index.all_segments()

    def __len__(self) -> int:
        return len(self._index)

    # ------------------------------------------------------------------
    # non-vertical directions (footnote 1)
    # ------------------------------------------------------------------
    @classmethod
    def with_direction(
        cls,
        segments: Iterable[Segment],
        slope: Coordinate,
        **kwargs,
    ) -> "DirectedSegmentDatabase":
        """A database answering queries of a fixed non-vertical direction.

        Data is stored in the sheared frame where the direction becomes
        vertical; :meth:`DirectedSegmentDatabase.query_through` takes query
        endpoints in the *original* frame.
        """
        frame = FixedDirectionFrame(slope)
        mapped = [frame.forward_segment(s) for s in segments]
        inner = cls.bulk_load(mapped, **kwargs)
        return DirectedSegmentDatabase(inner, frame)


class DirectedSegmentDatabase:
    """Wrapper translating fixed-direction queries to the vertical frame."""

    def __init__(self, inner: SegmentDatabase, frame: FixedDirectionFrame):
        self.inner = inner
        self.frame = frame

    def query_through(self, p1: Point, p2: Optional[Point] = None) -> List[Segment]:
        """Segments met by the query segment/line through the given points
        (which must realise the database's fixed slope)."""
        q = self.frame.forward_query(p1, p2)
        hits = self.inner.query(q)
        return [self.frame.inverse_segment(s) for s in hits]

    def insert(self, segment: Segment) -> None:
        self.inner.insert(self.frame.forward_segment(segment))

    def io_stats(self) -> IOStats:
        return self.inner.io_stats()

    def __len__(self) -> int:
        return len(self.inner)
