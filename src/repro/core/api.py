"""The public facade: :class:`SegmentDatabase`.

One object, one choice of engine, the paper's whole query surface::

    from repro import SegmentDatabase, Segment, VerticalQuery

    db = SegmentDatabase.bulk_load(segments, engine="solution2", block_capacity=64)
    hits = db.query(VerticalQuery.segment(x, ylo, yhi))
    db.insert(Segment.from_coords(0, 0, 5, 5, label="road-17"))
    print(db.io_stats(), db.space_in_blocks())

Engines
-------
``solution1``   Theorem 1 — binary 2LDS; O(n) space, supports deletions.
``solution2``   Theorem 2 — interval-tree 2LDS with fractional cascading;
                O(n log2 B) space, fastest queries, insert-only (the
                paper's semi-dynamic case).
``scan``        full-scan baseline.
``stab-filter`` stabbing structure over x-projections + y filter.
``grid``        uniform-grid spatial index.
``rtree``       STR-packed R-tree (the practical GIS workhorse).

Non-vertical fixed query directions reduce to the vertical case with
:meth:`SegmentDatabase.with_direction` (footnote 1 of the paper).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..baselines.grid import GridIndex
from ..baselines.naive import FullScanIndex
from ..baselines.rtree import RTreeIndex
from ..baselines.stab_filter import StabFilterIndex
from ..geometry import (
    Coordinate,
    FixedDirectionFrame,
    Point,
    Segment,
    VerticalQuery,
    validate_nct,
)
from ..geometry import filtered
from ..iosim import BlockDevice, IOStats, LRUBufferPool, Pager
from ..telemetry import ExplainReport, MetricsRegistry, trace_call
from .solution1.index import TwoLevelBinaryIndex
from .solution2.index import TwoLevelIntervalIndex

ENGINES = ("solution1", "solution2", "scan", "stab-filter", "grid", "rtree")


class SegmentDatabase:
    """A segment database over a simulated block device."""

    def __init__(
        self,
        engine: str = "solution2",
        block_capacity: int = 64,
        buffer_pages: Optional[int] = None,
        validate: bool = False,
    ):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; pick one of {ENGINES}")
        self.engine_name = engine
        self.device = BlockDevice(block_capacity)
        self.buffer_pool: Optional[LRUBufferPool] = (
            LRUBufferPool(self.device, buffer_pages)
            if buffer_pages is not None
            else None
        )
        self.pager = Pager(self.buffer_pool or self.device)
        self.validate = validate
        self.metrics: Optional[MetricsRegistry] = None
        self._filter_snapshot = filtered.STATS.snapshot()
        self._index = self._build_engine([])

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        segments: Iterable[Segment],
        engine: str = "solution2",
        block_capacity: int = 64,
        buffer_pages: Optional[int] = None,
        validate: bool = False,
    ) -> "SegmentDatabase":
        """Build a database from a full NCT segment set.

        With ``validate=True`` the set is checked for crossings first
        (O(N log N) via the plane sweep; raises
        :class:`~repro.geometry.nct.CrossingError`).
        """
        db = cls(
            engine=engine,
            block_capacity=block_capacity,
            buffer_pages=buffer_pages,
            validate=validate,
        )
        segments = list(segments)
        if validate:
            validate_nct(segments)
        db._index = db._build_engine(segments)
        db.device.reset_counters()
        return db

    def _build_engine(self, segments: List[Segment]):
        if self.engine_name == "solution1":
            return TwoLevelBinaryIndex.build(self.pager, segments)
        if self.engine_name == "solution2":
            return TwoLevelIntervalIndex.build(self.pager, segments)
        if self.engine_name == "scan":
            return FullScanIndex.build(self.pager, segments)
        if self.engine_name == "stab-filter":
            return StabFilterIndex.build(self.pager, segments)
        if self.engine_name == "rtree":
            return RTreeIndex.build(self.pager, segments)
        return GridIndex.build(self.pager, segments)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, q: VerticalQuery) -> List[Segment]:
        """All stored segments intersecting a generalized vertical segment."""
        if self.metrics is None:
            return self._index.query(q)
        before = self.device.snapshot()
        out = self._index.query(q)
        self._record_op("query", self.device.snapshot() - before, len(out))
        return out

    def query_batch(self, queries: Sequence[VerticalQuery]) -> List[List[Segment]]:
        """Answer many queries at once, amortizing the shared descent.

        The two paper engines sort the batch by query ``x`` and route it
        through the first level as groups, fetching each node on the
        union of search paths once per batch instead of once per query
        (DESIGN.md §8); the baselines fall back to a sequential loop.
        Results are returned in input order, and each entry equals what
        ``self.query(q)`` would have returned for that query.
        """
        queries = list(queries)
        if self.metrics is None:
            return self._index.query_batch(queries)
        before = self.device.snapshot()
        out = self._index.query_batch(queries)
        diff = self.device.snapshot() - before
        metrics = self.metrics
        metrics.counter("query_batch.count").inc()
        metrics.histogram("query_batch.size").observe(len(queries))
        metrics.histogram("query_batch.ios").observe(diff.total)
        if queries:
            metrics.histogram("query_batch.ios_per_query").observe(
                diff.total / len(queries)
            )
        metrics.histogram("query_batch.results").observe(
            sum(len(r) for r in out)
        )
        if self.buffer_pool is not None:
            metrics.gauge("buffer.hit_rate").set(self.buffer_pool.hit_rate)
            metrics.gauge("buffer.pinned").set(self.buffer_pool.pinned_count)
        self._sync_filter_metrics(metrics)
        return out

    def stab(self, x: Coordinate) -> List[Segment]:
        """Stabbing query: everything crossing the vertical line at ``x``."""
        return self.query(VerticalQuery.line(x))

    def explain(self, q: VerticalQuery) -> ExplainReport:
        """Run ``q`` traced and return its cost anatomy.

        The report's per-phase I/O counts sum exactly to the flat
        :class:`~repro.iosim.stats.IOStats` diff of the query (it is an
        accounting identity over the same simulated I/Os — see
        DESIGN.md §7), and include buffer hit/miss movement when the
        database was built with ``buffer_pages``.
        """
        out, report = trace_call(
            self.device,
            lambda: self._index.query(q),
            engine=self.engine_name,
            description=str(q),
            buffer_pool=self.buffer_pool,
        )
        if self.metrics is not None:
            self._record_op("query", report.io, len(out))
        return report

    def explain_batch(self, queries: Sequence[VerticalQuery]) -> ExplainReport:
        """Run a whole batch traced and return its cost anatomy.

        The same accounting identity as :meth:`explain` holds over the
        batch window: per-phase I/Os sum exactly to the flat counter
        diff, so the amortized first-level share is directly readable
        against the per-query second-level phases.  ``results`` counts
        reported segments across the whole batch.
        """
        queries = list(queries)
        out, report = trace_call(
            self.device,
            lambda: self._index.query_batch(queries),
            engine=self.engine_name,
            description=f"batch of {len(queries)} queries",
            buffer_pool=self.buffer_pool,
            root_name="query-batch",
        )
        report.results = sum(len(r) for r in out)
        return report

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, segment: Segment) -> None:
        """Insert a segment (must be NCT with the stored set).

        With ``validate=True`` the invariant is checked against every
        stored segment (O(N) — meant for tests and small data).
        """
        if self.validate:
            from ..geometry import segments_cross

            for other in self.all_segments():
                if segments_cross(segment, other):
                    raise ValueError(f"{segment!r} crosses stored {other!r}")
        if self.metrics is None:
            self._index.insert(segment)
            return
        before = self.device.snapshot()
        self._index.insert(segment)
        self._record_op("insert", self.device.snapshot() - before, None)

    def delete(self, segment: Segment) -> bool:
        """Delete a stored segment (``solution1`` and baselines only)."""
        return self._index.delete(segment)

    # ------------------------------------------------------------------
    # accounting & observability
    # ------------------------------------------------------------------
    def io_stats(self) -> IOStats:
        return self.device.snapshot()

    def io_report(self) -> dict:
        """Counters plus cache effectiveness, JSON-ready.

        Extends :meth:`io_stats` with the buffer pool's hit/miss counts
        and :attr:`~repro.iosim.buffer.LRUBufferPool.hit_rate` (``None``
        entries when the database runs without a pool).
        """
        out = self.io_stats().to_dict()
        out["space_in_blocks"] = self.space_in_blocks()
        pool = self.buffer_pool
        out["buffer"] = (
            {
                "capacity": pool.capacity,
                "hits": pool.hits,
                "misses": pool.misses,
                "hit_rate": pool.hit_rate,
                "pinned": pool.pinned_count,
            }
            if pool is not None
            else None
        )
        out["filter"] = filtered.filter_stats()
        return out

    @property
    def buffer_hit_rate(self) -> Optional[float]:
        """The pool's hit rate, or ``None`` without ``buffer_pages``."""
        return self.buffer_pool.hit_rate if self.buffer_pool is not None else None

    def reset_io_stats(self) -> None:
        self.device.reset_counters()

    def space_in_blocks(self) -> int:
        return self.device.pages_in_use

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def enable_metrics(self) -> MetricsRegistry:
        """Start recording per-operation metrics; returns the registry.

        Each query/insert feeds I/O-per-operation and result-size
        histograms; the buffer hit rate (when pooled) is kept as a
        gauge.  Idempotent: re-enabling returns the same registry.
        """
        if self.metrics is None:
            self.metrics = MetricsRegistry()
        return self.metrics

    def _record_op(self, op: str, diff: IOStats, results: Optional[int]) -> None:
        metrics = self.metrics
        metrics.counter(f"{op}.count").inc()
        metrics.histogram(f"{op}.ios").observe(diff.total)
        metrics.histogram(f"{op}.reads").observe(diff.reads)
        if results is not None:
            metrics.histogram(f"{op}.results").observe(results)
        if self.buffer_pool is not None:
            metrics.gauge("buffer.hit_rate").set(self.buffer_pool.hit_rate)
        self._sync_filter_metrics(metrics)

    def _sync_filter_metrics(self, metrics: MetricsRegistry) -> None:
        """Fold the filtered-arithmetic kernel's global counters into the
        registry as deltas (the kernel counters are process-wide; counters
        here stay monotone per database)."""
        fast, exact = filtered.STATS.snapshot()
        prev_fast, prev_exact = self._filter_snapshot
        self._filter_snapshot = (fast, exact)
        if fast > prev_fast:
            metrics.counter("filter.fast_hits").inc(fast - prev_fast)
        if exact > prev_exact:
            metrics.counter("filter.exact_fallbacks").inc(exact - prev_exact)
        total = (
            metrics.counter("filter.fast_hits").value
            + metrics.counter("filter.exact_fallbacks").value
        )
        if total:
            metrics.gauge("filter.hit_rate").set(
                metrics.counter("filter.fast_hits").value / total
            )

    def all_segments(self) -> List[Segment]:
        return self._index.all_segments()

    def __len__(self) -> int:
        return len(self._index)

    # ------------------------------------------------------------------
    # non-vertical directions (footnote 1)
    # ------------------------------------------------------------------
    @classmethod
    def with_direction(
        cls,
        segments: Iterable[Segment],
        slope: Coordinate,
        **kwargs,
    ) -> "DirectedSegmentDatabase":
        """A database answering queries of a fixed non-vertical direction.

        Data is stored in the sheared frame where the direction becomes
        vertical; :meth:`DirectedSegmentDatabase.query_through` takes query
        endpoints in the *original* frame.
        """
        frame = FixedDirectionFrame(slope)
        mapped = [frame.forward_segment(s) for s in segments]
        inner = cls.bulk_load(mapped, **kwargs)
        return DirectedSegmentDatabase(inner, frame)


class DirectedSegmentDatabase:
    """Wrapper translating fixed-direction queries to the vertical frame."""

    def __init__(self, inner: SegmentDatabase, frame: FixedDirectionFrame):
        self.inner = inner
        self.frame = frame

    def query_through(self, p1: Point, p2: Optional[Point] = None) -> List[Segment]:
        """Segments met by the query segment/line through the given points
        (which must realise the database's fixed slope)."""
        q = self.frame.forward_query(p1, p2)
        hits = self.inner.query(q)
        return [self.frame.inverse_segment(s) for s in hits]

    def insert(self, segment: Segment) -> None:
        self.inner.insert(self.frame.forward_segment(segment))

    def io_stats(self) -> IOStats:
        return self.inner.io_stats()

    def __len__(self) -> int:
        return len(self.inner)
