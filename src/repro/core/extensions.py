"""Extensions beyond the paper's results.

The paper closes (Section 5) with two open ends; this module provides
practical — explicitly *non-optimal* — implementations of both, so the
library covers the workflows even where optimal theory does not exist:

* :class:`ArbitraryQueryIndex` — queries by a segment of **any** slope
  (the paper's "future work ... query segments having arbitrary angular
  coefficients").  Strategy: an x-interval overlap structure generates the
  segments whose x-extents meet the query's, then the exact intersection
  predicate filters.  Cost is ``O(log_B n + t_x)`` I/Os where ``t_x``
  counts x-overlapping candidates — output-optimal only when the query is
  x-narrow, which is the regime arbitrary-slope probes usually live in.

* :class:`TombstoneDeletions` — deletions for insert-only engines
  (Solution 2 is semi-dynamic in the paper).  Deleted labels are kept in an
  in-memory tombstone set and filtered from answers; once tombstones exceed
  half the live size the wrapped engine is rebuilt without them.  This is
  the classical logical-deletion trick: ``O(1)`` per delete plus an
  amortised ``O(n/B)`` rebuild charge.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from ..geometry import Segment, VerticalQuery, segments_intersect
from ..iosim import Pager
from ..storage.bplus import BPlusTree
from ..storage.interval_tree import ExternalIntervalTree


class ArbitraryQueryIndex:
    """Segment-vs-segment intersection queries for arbitrary query slopes."""

    def __init__(self, pager: Pager, tree: ExternalIntervalTree, starts: BPlusTree):
        self.pager = pager
        self._tree = tree  # stabbing structure over x-extents
        self._starts = starts  # left endpoints, for the overlap sweep

    @classmethod
    def build(cls, pager: Pager, segments: Iterable[Segment]) -> "ArbitraryQueryIndex":
        segments = list(segments)
        intervals = [(s.xmin, s.xmax, s) for s in segments]
        tree = ExternalIntervalTree.build(pager, intervals)
        starts = BPlusTree.build(
            pager, sorted(((s.xmin, s) for s in segments), key=lambda kv: kv[0])
        )
        return cls(pager, tree, starts)

    def query_segment(self, query: Segment) -> List[Segment]:
        """All stored segments intersecting an arbitrary plane segment."""
        with self.pager.operation():
            candidates = self._x_overlapping(query.xmin, query.xmax)
            return [s for s in candidates if segments_intersect(s, query)]

    def query_vertical(self, q: VerticalQuery) -> List[Segment]:
        """The paper's VS query, for parity with the main engines.

        Unbounded ends are handled by the y-filter directly.
        """
        from ..geometry import vs_intersects

        with self.pager.operation():
            candidates = self._x_overlapping(q.x, q.x)
            return [s for s in candidates if vs_intersects(s, q)]

    def _x_overlapping(self, a, b) -> List[Segment]:
        """Stored segments whose x-extent meets ``[a, b]``, each once.

        ``stab(a)`` catches everything starting at or before ``a``;
        a left-endpoint range scan catches the rest.
        """
        out = [s for _l, _r, s in self.tree_stab(a)]
        for _key, s in self._starts.range_scan(a, b):
            if s.xmin > a:  # stab(a) already reported xmin <= a
                out.append(s)
        return out

    def tree_stab(self, x):
        return self._tree.stab(x)

    def insert(self, segment: Segment) -> None:
        with self.pager.operation():
            self._tree.insert(segment.xmin, segment.xmax, segment)
            self._starts.insert(segment.xmin, segment)

    def __len__(self) -> int:
        return len(self._tree)


class TombstoneDeletions:
    """Logical deletions over any insert-only engine.

    ``engine_factory(segments)`` must build a fresh engine from a segment
    list; the wrapped engine must expose ``query``/``insert``/
    ``all_segments``.
    """

    def __init__(self, engine_factory, segments: Iterable[Segment]):
        self._factory = engine_factory
        self._inner = engine_factory(list(segments))
        self._tombstones: Set = set()
        self._live = len(self._inner)

    def query(self, q: VerticalQuery) -> List[Segment]:
        return [
            s for s in self._inner.query(q) if s.label not in self._tombstones
        ]

    def insert(self, segment: Segment) -> None:
        self._tombstones.discard(segment.label)
        self._inner.insert(segment)
        self._live += 1

    def delete(self, segment: Segment) -> bool:
        """O(1): tombstone the label; amortised rebuild keeps space linear."""
        if segment.label in self._tombstones:
            return False
        if not any(s.label == segment.label for s in self._inner.all_segments()):
            return False
        self._tombstones.add(segment.label)
        self._live -= 1
        if len(self._tombstones) > max(8, self._live):
            self._rebuild()
        return True

    def _rebuild(self) -> None:
        survivors = [
            s for s in self._inner.all_segments()
            if s.label not in self._tombstones
        ]
        if hasattr(self._inner, "destroy"):
            self._inner.destroy()
        self._inner = self._factory(survivors)
        self._tombstones.clear()
        self._live = len(survivors)

    @property
    def tombstone_count(self) -> int:
        return len(self._tombstones)

    def all_segments(self) -> List[Segment]:
        return [
            s for s in self._inner.all_segments()
            if s.label not in self._tombstones
        ]

    def __len__(self) -> int:
        return self._live
