"""Solution 2 (Section 4, Theorem 2): the improved two-level structure.

First level: an external interval tree with branching factor ``b = B/4``
balanced over segment-endpoint x-values; an internal node partitions its
range into ``b + 1`` slabs.  Segments meeting at least one boundary stay at
the node; the rest descend into their slab's child, until leaves of at most
``B`` segments.  The height is ``O(log_B n)``.

Second level, per internal node (Section 4.2):

* ``C_i`` — segments lying on boundary ``s_i`` (disjoint y-intervals);
* ``L_i`` / ``R_i`` — short fragments hanging left/right off ``s_i``
  (external PSTs via :class:`~repro.core.linebased.index.LineBasedIndex`);
* ``G`` — long fragments in a segment tree over the inner slabs with
  fractional cascading (:class:`~repro.core.solution2.gtree.GTree`).

Costs (Theorem 2): space ``O(n log2 B)``; VS query
``O(log_B n (log_B n + log2 B + IL*(B)) + t)``; insertion
``O(log_B n + log2 B + (log_B n)/B)`` amortised.  Deletions are out of the
paper's scope ("semi-dynamic") and raise :class:`NotImplementedError`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ...geometry import Segment, VerticalBaseFrame, VerticalQuery, vs_intersects
from ...geometry.kernels import page_query_hits
from ...iosim import Pager
from ...storage.chain import PageChain
from ...storage.disjoint import DisjointIntervalIndex
from ..linebased.index import LineBasedIndex
from .gtree import GTree
from .slabs import boundary_index, choose_boundaries, slab_of, split_segment

#: Rebuild a subtree when one child holds this multiple of its fair share.
IMBALANCE_FACTOR = 4
#: Leaves are chains of up to this many blocks (scanning a leaf stays O(1)
#: I/Os while occupancy stays high near the bottom of the tree).
LEAF_PAGES = 2


class _NodeView:
    """Decoded record chain of one internal node."""

    __slots__ = ("pid", "head", "boundaries", "children", "c_roots",
                 "l_metas", "r_metas", "g_pid")

    def __init__(self, pid: int, records: List[Tuple]):
        self.pid = pid
        self.head = None
        self.boundaries: List = []
        self.children: List[int] = []
        self.c_roots: List[int] = []
        self.l_metas: List[Tuple] = []
        self.r_metas: List[Tuple] = []
        self.g_pid: Optional[int] = None
        for record in records:
            kind = record[0]
            if kind == "bound":
                self.boundaries.append(record[2])
            elif kind == "child":
                self.children.append(record[2])
            elif kind == "c":
                self.c_roots.append(record[2])
            elif kind == "lmeta":
                self.l_metas.append(record[2])
            elif kind == "rmeta":
                self.r_metas.append(record[2])
            elif kind == "g":
                self.g_pid = record[1]

    def records(self) -> List[Tuple]:
        out: List[Tuple] = []
        out.extend(("bound", i, s) for i, s in enumerate(self.boundaries))
        out.extend(("child", k, pid) for k, pid in enumerate(self.children))
        out.extend(("c", i, root) for i, root in enumerate(self.c_roots))
        out.extend(("lmeta", i, meta) for i, meta in enumerate(self.l_metas))
        out.extend(("rmeta", i, meta) for i, meta in enumerate(self.r_metas))
        out.append(("g", self.g_pid, None))
        return out


class TwoLevelIntervalIndex:
    """The paper's second (improved) solution for VS queries."""

    def __init__(self, pager: Pager, fanout: Optional[int] = None, blocked: bool = True):
        self.pager = pager
        capacity = pager.device.block_capacity
        self.fanout = fanout or max(2, capacity // 4)
        self.blocked = blocked
        self.root_pid: Optional[int] = None
        self.size = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        pager: Pager,
        segments: Iterable[Segment],
        fanout: Optional[int] = None,
        blocked: bool = True,
    ) -> "TwoLevelIntervalIndex":
        index = cls(pager, fanout=fanout, blocked=blocked)
        segments = list(segments)
        index.size = len(segments)
        if segments:
            index.root_pid = index._build_subtree(segments)
        return index

    def _build_subtree(self, segments: List[Segment]) -> int:
        capacity = self.pager.device.block_capacity
        if len(segments) <= LEAF_PAGES * capacity:
            return self._write_leaf(segments)
        # Shrink the fan-out near the bottom so children fill their leaves
        # instead of spawning a level of near-empty node structures.
        fanout = min(
            self.fanout,
            max(2, -(-len(segments) // (LEAF_PAGES * capacity))),
        )
        boundaries = choose_boundaries(segments, fanout)
        assigned: List[Segment] = []
        per_slab: List[List[Segment]] = [[] for _ in range(len(boundaries) + 1)]
        for s in segments:
            if split_segment(boundaries, s) is None:
                per_slab[slab_of(boundaries, s.xmin)].append(s)
            else:
                assigned.append(s)
        if any(len(slab) == len(segments) for slab in per_slab):
            return self._write_leaf(segments)  # defensive; quantiles split
        children = [self._build_subtree(slab) for slab in per_slab]
        return self._write_node(boundaries, children, assigned, len(segments))

    def _write_leaf(self, segments: List[Segment]) -> int:
        chain = PageChain.create(self.pager, segments)
        head = self.pager.fetch(chain.head_pid)
        head.set_header("kind", "leaf")
        head.set_header("weight", len(segments))
        self.pager.write(head)
        return chain.head_pid

    def _write_node(
        self, boundaries: List, children: List[int], assigned: List[Segment], weight: int
    ) -> int:
        n_bounds = len(boundaries)
        on_line: List[List[Tuple]] = [[] for _ in range(n_bounds)]
        left_parts: List[List] = [[] for _ in range(n_bounds)]
        right_parts: List[List] = [[] for _ in range(n_bounds)]
        longs: List[Tuple] = []
        for s in assigned:
            split = split_segment(boundaries, s)
            assert split is not None
            if split.on_line is not None:
                i, (ylo, yhi) = split.on_line
                on_line[i - 1].append((ylo, yhi, s))
            if split.left_short is not None:
                i, frag = split.left_short
                left_parts[i - 1].append(frag)
            if split.right_short is not None:
                j, frag = split.right_short
                right_parts[j - 1].append(frag)
            if split.long is not None:
                longs.append(split.long)

        c_roots = [
            DisjointIntervalIndex.build(self.pager, ivs).root_pid
            for ivs in on_line
        ]
        l_metas = [
            LineBasedIndex.build(self.pager, parts, blocked=self.blocked).metadata()
            for parts in left_parts
        ]
        r_metas = [
            LineBasedIndex.build(self.pager, parts, blocked=self.blocked).metadata()
            for parts in right_parts
        ]
        g = GTree.build(self.pager, boundaries, longs)

        chain = PageChain.create(self.pager, [])
        head = self.pager.fetch(chain.head_pid)
        head.set_header("kind", "node")
        head.set_header("weight", weight)
        self.pager.write(head)
        view = _NodeView(chain.head_pid, [])
        view.boundaries = boundaries
        view.children = children
        view.c_roots = c_roots
        view.l_metas = l_metas
        view.r_metas = r_metas
        view.g_pid = g.directory_pid if g is not None else None
        chain.replace(view.records())
        return chain.head_pid

    # ------------------------------------------------------------------
    # node access
    # ------------------------------------------------------------------
    def _read_view(self, pid: int) -> _NodeView:
        # Same fetch sequence as ``PageChain.to_list`` (head first, then
        # the tail pages), but keeps the head :class:`Page` so decoded
        # second-level attachments can be cached on it (``page.views``).
        records: List[Tuple] = []
        page = self.pager.fetch(pid)
        head = page
        while True:
            records.extend(page.items)
            nxt = page.get_header("next")
            if nxt is None:
                break
            page = self.pager.fetch(nxt)
        view = _NodeView(pid, records)
        view.head = head
        return view

    def _read_view_cached(self, pid: int) -> _NodeView:
        """:meth:`_read_view` with the decode memoised on the head page.

        The chain is still fetched page by page (identical I/O charges);
        only the record->view decode is reused.  Node rewrites go through
        ``chain.replace`` — ``put_items`` on the head — which drops
        ``head.views``.  Update paths must use the uncached read: they
        mutate the returned view's lists in place.
        """
        head = self.pager.fetch(pid)
        views = head.views
        if views is None:
            views = head.views = {}
        cached = views.get("nodeview")
        if cached is not None:
            nxt = head.get_header("next")
            while nxt is not None:  # same fetch walk as the uncached read
                nxt = self.pager.fetch(nxt).get_header("next")
            return cached
        records: List[Tuple] = []
        page = head
        while True:
            records.extend(page.items)
            nxt = page.get_header("next")
            if nxt is None:
                break
            page = self.pager.fetch(nxt)
        view = _NodeView(pid, records)
        view.head = head
        views["nodeview"] = view
        return view

    def _node_kind(self, pid: int) -> str:
        return self.pager.fetch(pid).get_header("kind")

    def _c_index(self, view: _NodeView, i: int) -> DisjointIntervalIndex:
        return DisjointIntervalIndex.attach(self.pager, view.c_roots[i - 1])

    def _l_index(self, view: _NodeView, i: int) -> LineBasedIndex:
        return LineBasedIndex.attach(self.pager, view.l_metas[i - 1])

    def _r_index(self, view: _NodeView, i: int) -> LineBasedIndex:
        return LineBasedIndex.attach(self.pager, view.r_metas[i - 1])

    # Read-only paths additionally memoise attached second-level
    # structures on the node's head page (``page.views``) with the
    # metadata in the key: attachment is a pure function of (pager,
    # metadata), and a node update rewrites the record chain through
    # ``put_items``, which drops ``head.views`` — a cached attachment
    # can never outlive the records it decodes.  Update paths must NOT
    # use these (they mutate the attached object in memory; a crash
    # rolls pages back but could not un-mutate a cached view).
    def _views(self, view: _NodeView) -> Dict:
        head = view.head
        views = head.views
        if views is None:
            views = head.views = {}
        return views

    def _c_index_cached(self, view: _NodeView, i: int) -> DisjointIntervalIndex:
        views = self._views(view)
        key = ("c", view.c_roots[i - 1], self.pager)
        index = views.get(key)
        if index is None:
            index = views[key] = self._c_index(view, i)
        return index

    def _lr_index_cached(self, view: _NodeView, meta: Tuple) -> LineBasedIndex:
        views = self._views(view)
        key = (meta, self.pager)
        index = views.get(key)
        if index is None:
            index = views[key] = LineBasedIndex.attach(self.pager, meta)
        return index

    def _frame(self, view: _NodeView, c, side: str) -> VerticalBaseFrame:
        views = self._views(view)
        key = ("frame", c, side)
        frame = views.get(key)
        if frame is None:
            frame = VerticalBaseFrame(c, side)
            views[key] = frame
        return frame

    def _g_tree(self, view: _NodeView) -> Optional[GTree]:
        if view.g_pid is None:
            return None
        return GTree(self.pager, view.g_pid, view.boundaries)

    def _sync_view(self, view: _NodeView) -> None:
        chain = PageChain(self.pager, view.pid)
        chain.replace(view.records())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, q: VerticalQuery, use_bridges: bool = True) -> List[Segment]:
        """All stored segments meeting the generalized vertical query.

        ``use_bridges=False`` runs the Lemma 4 variant (no fractional
        cascading) for the E6 ablation.
        """
        out: Dict = {}
        if self.root_pid is None:
            return []
        tagged = self.pager.device.tagged
        with self.pager.operation():
            pid = self.root_pid
            while True:
                with tagged("first-level"):
                    kind = self._node_kind(pid)
                if kind == "leaf":
                    with tagged("leaf"):
                        for page in PageChain(self.pager, pid).iter_pages():
                            for s in page_query_hits(page, q):
                                out[s.label] = s
                    break
                with tagged("first-level"):
                    view = self._read_view_cached(pid)
                g = self._g_tree(view)
                i = boundary_index(view.boundaries, q.x)
                if g is not None:
                    with tagged("G"):
                        for frag in g.query(q.x, q.ylo, q.yhi,
                                            use_bridges=use_bridges,
                                            qballs=q.balls()):
                            out[frag.payload.label] = frag.payload
                if i is not None:
                    self._report_on_boundary(view, i, q, out)
                    break
                k = slab_of(view.boundaries, q.x)
                with tagged("short-PST"):
                    if k >= 1:
                        frame = self._frame(view, view.boundaries[k - 1], "right")
                        r_index = self._lr_index_cached(view, view.r_metas[k - 1])
                        for hit in r_index.query(frame.to_hquery(q)):
                            out[hit.payload.label] = hit.payload
                    if k < len(view.boundaries):
                        frame = self._frame(view, view.boundaries[k], "left")
                        l_index = self._lr_index_cached(view, view.l_metas[k])
                        for hit in l_index.query(frame.to_hquery(q)):
                            out[hit.payload.label] = hit.payload
                pid = view.children[k]
        return list(out.values())

    def query_batch(
        self, queries: Iterable[VerticalQuery], use_bridges: bool = True
    ) -> List[List[Segment]]:
        """Answer many VS queries with one shared descent of the tree.

        The batch is sorted by query ``x`` and routed through the interval
        tree as *groups*: each first-level node on the union of paths is
        decoded exactly once per batch (head page, record chain and the
        G-tree's directory — the routing metadata every query through the
        node needs), so the ``log_B n`` descent term is paid once per
        group.  Per-query work — the G path search, C_i / L_i / R_i
        boundary structures and leaf filtering — stays individual, each
        query inside its own operation scope exactly as the sequential
        cost model charges it.  Results come back in input order and match
        ``[self.query(q) for q in queries]`` exactly.
        """
        queries = list(queries)
        outs: List[Dict] = [{} for _ in queries]
        if self.root_pid is not None and queries:
            group = sorted(range(len(queries)), key=lambda i: queries[i].x)
            self._query_group(self.root_pid, group, queries, outs, use_bridges)
        return [list(d.values()) for d in outs]

    def _query_group(
        self,
        pid: int,
        group: List[int],
        queries: List[VerticalQuery],
        outs: List[Dict],
        use_bridges: bool,
    ) -> None:
        """Route one x-sorted group of queries through the subtree at ``pid``."""
        tagged = self.pager.device.tagged
        with self.pager.pinning(pid):
            # One operation scope per node decode: the head fetch, the
            # record chain and the G directory are charged once for the
            # whole group, then the scope closes so per-query second-level
            # searches are accounted exactly like sequential queries.
            with self.pager.operation():
                with tagged("first-level"):
                    head = self.pager.fetch(pid)
                is_leaf = head.get_header("kind") == "leaf"
                if is_leaf:
                    with tagged("leaf"):
                        leaf_pages = list(PageChain(self.pager, pid).iter_pages())
                else:
                    with tagged("first-level"):
                        view = self._read_view_cached(pid)
                    g = self._g_tree(view)
                    gnodes: List = []
                    if g is not None:
                        with tagged("G"):
                            gnodes = g.read_directory()
            if is_leaf:
                for i in group:
                    q = queries[i]
                    out = outs[i]
                    for page in leaf_pages:
                        for s in page_query_hits(page, q):
                            out[s.label] = s
                return
            boundaries = view.boundaries
            per_slab: Dict[int, List[int]] = {}
            for i in group:
                q = queries[i]
                out = outs[i]
                with self.pager.operation():
                    if g is not None:
                        with tagged("G"):
                            for frag in g.query_cached(
                                gnodes, q.x, q.ylo, q.yhi,
                                use_bridges=use_bridges, qballs=q.balls()
                            ):
                                out[frag.payload.label] = frag.payload
                    bi = boundary_index(boundaries, q.x)
                    if bi is not None:
                        self._report_on_boundary(view, bi, q, out)
                        continue  # the search stops on a boundary line
                    k = slab_of(boundaries, q.x)
                    with tagged("short-PST"):
                        if k >= 1:
                            frame = self._frame(view, boundaries[k - 1], "right")
                            r_index = self._lr_index_cached(
                                view, view.r_metas[k - 1]
                            )
                            for hit in r_index.query(frame.to_hquery(q)):
                                out[hit.payload.label] = hit.payload
                        if k < len(boundaries):
                            frame = self._frame(view, boundaries[k], "left")
                            l_index = self._lr_index_cached(view, view.l_metas[k])
                            for hit in l_index.query(frame.to_hquery(q)):
                                out[hit.payload.label] = hit.payload
                per_slab.setdefault(k, []).append(i)
            for k in sorted(per_slab):
                self._query_group(
                    view.children[k], per_slab[k], queries, outs, use_bridges
                )

    def _report_on_boundary(self, view: _NodeView, i: int, q: VerticalQuery, out: Dict) -> None:
        """The query lies exactly on boundary ``s_i``: search C_i, L_i, R_i
        (all fragments touching the line) and stop — nothing below the node
        can reach a boundary."""
        tagged = self.pager.device.tagged
        with tagged("C"):
            c_index = self._c_index_cached(view, i)
            for _lo, _hi, s in c_index.overlap(q.ylo, q.yhi):
                out[s.label] = s
        h0 = self._frame(view, view.boundaries[i - 1], "left").to_hquery(q)
        with tagged("short-PST"):
            for hit in self._lr_index_cached(view, view.l_metas[i - 1]).query(h0):
                out[hit.payload.label] = hit.payload
            for hit in self._lr_index_cached(view, view.r_metas[i - 1]).query(h0):
                out[hit.payload.label] = hit.payload

    # ------------------------------------------------------------------
    # insertion (semi-dynamic)
    # ------------------------------------------------------------------
    def insert(self, segment: Segment) -> None:
        """Insert an NCT-compatible segment, amortised
        ``O(log_B n + log2 B + (log_B n)/B)`` I/Os (Theorem 2 iii)."""
        tagged = self.pager.device.tagged
        with self.pager.operation():
            self.size += 1
            if self.root_pid is None:
                self.root_pid = self._write_leaf([segment])
                return
            path: List[Tuple[int, Optional[int], Optional[int]]] = []
            pid = self.root_pid
            parent_pid: Optional[int] = None
            parent_slot: Optional[int] = None
            while True:
                with tagged("first-level"):
                    head = self.pager.fetch(pid)
                    head.set_header("weight", head.get_header("weight") + 1)
                    self.pager.write(head)
                self.pager.crash_point("solution2.insert.descent")
                if head.get_header("kind") == "leaf":
                    with tagged("leaf"):
                        self._insert_into_leaf(pid, segment, parent_pid, parent_slot)
                    break
                path.append((pid, parent_pid, parent_slot))
                with tagged("first-level"):
                    view = self._read_view(pid)
                split = split_segment(view.boundaries, segment)
                if split is not None:
                    with tagged("second-level"):
                        self._insert_at_node(view, split, segment)
                    break
                k = slab_of(view.boundaries, segment.xmin)
                parent_pid, parent_slot = pid, k
                pid = view.children[k]
            with tagged("rebuild"):
                self._rebalance_path(path)

    def _insert_at_node(self, view: _NodeView, split, segment: Segment) -> None:
        changed = False
        if split.on_line is not None:
            i, (ylo, yhi) = split.on_line
            c_index = self._c_index(view, i)
            c_index.insert(ylo, yhi, segment)
            if c_index.root_pid != view.c_roots[i - 1]:
                view.c_roots[i - 1] = c_index.root_pid
                changed = True
        if split.left_short is not None:
            i, frag = split.left_short
            l_index = self._l_index(view, i)
            l_index.insert(frag)
            new_meta = l_index.metadata()
            if new_meta != view.l_metas[i - 1]:
                view.l_metas[i - 1] = new_meta
                changed = True
        if split.right_short is not None:
            j, frag = split.right_short
            r_index = self._r_index(view, j)
            r_index.insert(frag)
            new_meta = r_index.metadata()
            if new_meta != view.r_metas[j - 1]:
                view.r_metas[j - 1] = new_meta
                changed = True
        if split.long is not None:
            i, j, frag = split.long
            g = self._g_tree(view)
            g.insert(i, j, frag)  # the directory pid is stable
        self.pager.crash_point("solution2.insert.second-level")
        if changed:
            self._sync_view(view)

    def _insert_into_leaf(
        self, pid: int, segment: Segment, parent_pid: Optional[int], parent_slot: Optional[int]
    ) -> None:
        chain = PageChain(self.pager, pid)
        chain.append(segment)
        capacity = self.pager.device.block_capacity
        if chain.count() <= LEAF_PAGES * capacity:
            return
        segments = [s for s in chain if isinstance(s, Segment)]
        chain.destroy()
        self.pager.crash_point("solution2.insert.leaf-rebuild")
        new_pid = self._build_subtree(segments)
        self._replace_child(parent_pid, parent_slot, pid, new_pid)

    def _replace_child(
        self, parent_pid: Optional[int], slot: Optional[int], old_pid: int, new_pid: int
    ) -> None:
        if parent_pid is None:
            assert self.root_pid == old_pid
            self.root_pid = new_pid
            return
        view = self._read_view(parent_pid)
        assert view.children[slot] == old_pid
        view.children[slot] = new_pid
        self._sync_view(view)

    def delete(self, segment: Segment) -> bool:
        raise NotImplementedError(
            "Solution 2 is semi-dynamic: the paper (Section 4.3) only "
            "extends it with insertions; use TwoLevelBinaryIndex for "
            "deletions"
        )

    # ------------------------------------------------------------------
    # balance maintenance
    # ------------------------------------------------------------------
    def _rebalance_path(self, path) -> None:
        for pid, parent_pid, parent_slot in path:
            view = self._read_view(pid)
            weights = [
                self.pager.fetch(child).get_header("weight")
                for child in view.children
            ]
            total = sum(weights)
            capacity = self.pager.device.block_capacity
            if total <= capacity:
                continue
            fair = total / len(view.children)
            if max(weights) > max(IMBALANCE_FACTOR * fair, capacity):
                segments = self._collect(pid)
                self._destroy_subtree(pid)
                self.pager.crash_point("solution2.rebalance")
                new_pid = self._build_subtree(segments)
                self._replace_child(parent_pid, parent_slot, pid, new_pid)
                return

    def _collect(self, pid: int) -> List[Segment]:
        if self._node_kind(pid) == "leaf":
            return list(PageChain(self.pager, pid))
        view = self._read_view(pid)
        out: Dict = {}
        for i in range(1, len(view.boundaries) + 1):
            for _lo, _hi, s in self._c_index(view, i).items():
                out[s.label] = s
            for lb in self._l_index(view, i).all_segments():
                out[lb.payload.label] = lb.payload
            for lb in self._r_index(view, i).all_segments():
                out[lb.payload.label] = lb.payload
        g = self._g_tree(view)
        if g is not None:
            for frag in g.real_fragments():
                out[frag.payload.label] = frag.payload
        segments = list(out.values())
        for child in view.children:
            segments.extend(self._collect(child))
        return segments

    def _destroy_subtree(self, pid: int) -> None:
        if self._node_kind(pid) == "leaf":
            PageChain(self.pager, pid).destroy()
            return
        view = self._read_view(pid)
        for i in range(1, len(view.boundaries) + 1):
            self._c_index(view, i).destroy()
            self._l_index(view, i).destroy()
            self._r_index(view, i).destroy()
        g = self._g_tree(view)
        if g is not None:
            g.destroy()
        for child in view.children:
            self._destroy_subtree(child)
        PageChain(self.pager, pid).destroy()

    def destroy(self) -> None:
        if self.root_pid is not None:
            self._destroy_subtree(self.root_pid)
            self.root_pid = None
            self.size = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def all_segments(self) -> List[Segment]:
        return self._collect(self.root_pid) if self.root_pid is not None else []

    def __len__(self) -> int:
        return self.size

    def height(self) -> int:
        h = 0
        pid = self.root_pid
        while pid is not None:
            h += 1
            if self._node_kind(pid) == "leaf":
                break
            pid = self._read_view(pid).children[0]
        return h

    def check_invariants(self, deep: bool = False) -> None:
        """Weights, placement of every fragment kind, child band bounds.

        With ``deep=True`` the per-boundary second-level structures are
        structurally checked too (the fsck walk); the G-tree partition
        invariants are always checked.
        """
        if self.root_pid is None:
            assert self.size == 0
            return
        total = self._check_subtree(self.root_pid, None, None, deep)
        assert total == self.size, f"size mismatch: {total} != {self.size}"

    def verify(self) -> List[str]:
        """Deep structural check; returns problems instead of raising."""
        from ...iosim import StorageError

        try:
            self.check_invariants(deep=True)
        except AssertionError as exc:
            return [f"solution2: invariant violated: {exc}"]
        except StorageError as exc:
            return [f"solution2: {type(exc).__name__}: {exc}"]
        return []

    # ------------------------------------------------------------------
    # recovery support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        """In-memory state to restore alongside a journal rollback."""
        return (self.root_pid, self.size)

    def restore_state(self, state: tuple) -> None:
        self.root_pid, self.size = state

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def snapshot_meta(self) -> dict:
        """Everything beyond the page store needed to re-attach the engine."""
        return {"root_pid": self.root_pid, "size": self.size,
                "fanout": self.fanout, "blocked": self.blocked}

    @classmethod
    def attach(cls, pager: Pager, meta: dict) -> "TwoLevelIntervalIndex":
        """Re-attach to an already-populated page store (no build I/O)."""
        index = cls(pager, fanout=meta["fanout"], blocked=meta["blocked"])
        index.root_pid = meta["root_pid"]
        index.size = meta["size"]
        return index

    def _check_subtree(self, pid: int, lo, hi, deep: bool = False) -> int:
        head = self.pager.fetch(pid)
        if head.get_header("kind") == "leaf":
            count = 0
            for s in PageChain(self.pager, pid):
                assert lo is None or s.xmin > lo
                assert hi is None or s.xmax < hi
                count += 1
            assert head.get_header("weight") == count
            return count
        view = self._read_view(pid)
        bounds = view.boundaries
        assert bounds == sorted(set(bounds))
        assert lo is None or bounds[0] > lo
        assert hi is None or bounds[-1] < hi
        here: Dict = {}
        for i in range(1, len(bounds) + 1):
            s_i = bounds[i - 1]
            for _l, _h, s in self._c_index(view, i).items():
                assert s.is_vertical and s.start.x == s_i
                here[s.label] = s
            for lb in self._l_index(view, i).all_segments():
                assert lb.payload.spans_x(s_i)
                here[lb.payload.label] = lb.payload
            for lb in self._r_index(view, i).all_segments():
                assert lb.payload.spans_x(s_i)
                here[lb.payload.label] = lb.payload
            if deep:
                self._c_index(view, i).check_invariants()
                self._l_index(view, i).check_invariants()
                self._r_index(view, i).check_invariants()
        g = self._g_tree(view)
        if g is not None:
            g.check_invariants()
            for frag in g.real_fragments():
                here[frag.payload.label] = frag.payload
        count = len(here)
        edges = [lo] + bounds + [hi]
        for k, child in enumerate(view.children):
            count += self._check_subtree(child, edges[k], edges[k + 1], deep)
        assert count == head.get_header("weight"), f"weight stale at {pid}"
        return count
