"""The segment tree ``G`` for long fragments, with fractional cascading.

One ``G`` lives in each internal node of Solution 2's first level
(Section 4.2).  It is a balanced binary tree over the node's *inner slabs*
``1..b-1`` (Figure 5); each G-node ``v`` represents the multislab ``I(v)``
(a contiguous slab range) and owns the ordered *multislab list* of long
fragments allocated to ``v``, cut on the boundaries of ``I(v)`` and kept in
a B+-tree.  A fragment spanning slabs ``a..c`` has ``O(log2 B)`` allocation
nodes, so ``G`` accounts for the ``O(n log2 B)`` space of Theorem 2.

Ordering and keys.  Following the paper, the list of an internal G-node is
ordered by the points where fragments meet the node's *middle boundary*
``s_m`` (the line splitting its multislab between its sons) — that is the
line every bridge construction merges on.  The B+-tree key packs the exact
fragment geometry ``(y_at_sm, y_left, x_left, y_right, x_right)`` so that a
monotone predicate "y at the query line >= a" can be evaluated on keys
alone during ``locate_first`` descents.

Fractional cascading (Section 4.3, Figure 7).  Bridges are built per
parent/son pair over the merged order at their shared boundary: every
``(d+1)``-th merged element becomes a bridge; a parent-origin bridge is cut
and copied into the son's list, a son-origin bridge is copied into the
parent's list (*augmented* entries, never reported).  Every entry of the
parent list then stores, per son, the physical position ``(leaf_pid, idx)``
of the nearest bridge in that son's list.  A query walks one root-to-leaf
path: one ``O(log_B n)`` search at the root, then O(1) amortised hops along
bridges — the ``O(log_B n + log2 B)`` long-fragment search of Theorem 2.

Navigation is *hint-based and self-correcting*: a hop lands near the
boundary and refines locally (real fragments are monotone along the list at
every x the multislab spans), falling back to a fresh ``locate_first`` when
hints are missing or stale.  Insertions (Section 4.3's semi-dynamic case)
append fragments without bridge refs and schedule an amortised bridge
rebuild every ``Θ(size)`` updates — our stand-in for the paper's [10]-style
list operations, with the same amortised bound (DESIGN.md §2).
"""

from __future__ import annotations

import bisect
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...geometry import kernels as _kernels
from ...geometry.filtered import STATS, ball, compare_interp
from ...iosim import DanglingPageError, Pager
from ...storage.bplus import BPlusTree
from ...storage.chain import PageChain
from ...telemetry import trace
from .slabs import LongFragment

#: The paper's d-property constant (``d >= 2``).  Any constant satisfies
#: Theorem 2; the E13 ablation measures the trade-off (small d = tighter
#: hops but more augmented copies to store and scan past) and 4 wins on
#: both space and I/O at practical block sizes.
BRIDGE_D = 4
#: Hint refinement gives up after this many pages and falls back to a
#: B+-tree search (keeps worst cases bounded even with stale hints).
MAX_HINT_PAGES = 4

Position = Tuple[int, int]  # (leaf_pid, index)


class GEntry:
    """One element of a multislab list: a fragment plus bridge references."""

    __slots__ = ("frag", "bridges")

    def __init__(self, frag: LongFragment):
        self.frag = frag
        self.bridges: Dict[int, Position] = {}  # son slot (0=left, 1=right) -> pos

    def __repr__(self) -> str:  # pragma: no cover
        return f"GEntry({self.frag.payload.label}, aug={self.frag.augmented})"


def _entry_key(frag: LongFragment, s_mid) -> Tuple:
    """B+-tree key: order by y at the node's middle boundary, with the full
    geometry embedded for predicate evaluation."""
    y_mid = frag.y_at_unchecked(s_mid)  # cut to the multislab: always in span
    return (y_mid, frag.y_left, frag.x_left, frag.y_right, frag.x_right)


def _key_y_at(key: Tuple, x):
    """Evaluate a key's fragment at ``x``, clamped to the fragment's span.

    Used where a total-order *value* is needed (bridge merges, the
    d-property check); query-time comparisons use :func:`_cmp_key_y`.
    """
    _y_mid, y_left, x_left, y_right, x_right = key
    if x <= x_left:
        return y_left
    if x >= x_right:
        return y_right
    return y_left + Fraction(y_right - y_left) * Fraction(x - x_left, x_right - x_left)


def _cmp_key_y(key: Tuple, x, bound, xb=None, bb=None) -> int:
    """Sign of ``_key_y_at(key, x) - bound`` without building the Fraction.

    The interpolating case runs through the filtered kernel; the clamped
    cases are plain endpoint comparisons.  ``xb``/``bb`` are the cached
    balls of ``x`` and ``bound`` (see :func:`repro.geometry.filtered.ball`).
    """
    _y_mid, y_left, x_left, y_right, x_right = key
    if x <= x_left:
        y = y_left
    elif x >= x_right:
        y = y_right
    else:
        return compare_interp(y_left, x_left, y_right, x_right, x, bound, xb, bb)
    if y > bound:
        return 1
    if y < bound:
        return -1
    return 0


class _QuerySignCache:
    """Per-query memo of whole-leaf vectorized key-sign tables.

    ``sign(leaf, idx, key, which)`` is a drop-in for
    ``_cmp_key_y(key, x0, bound, xb, bb)`` on row ``idx`` of ``leaf``
    (``which`` selects the lo/hi bound): the first consult of a
    (leaf, bound) pair computes one sign table for the whole page via
    :func:`repro.geometry.kernels.gkey_sign_table`; later consults —
    boundary refinement and the reporting scan revisit the same rows —
    index into it.  Telemetry is charged per *consult*, exactly as the
    scalar code charges per call: a row resolved through the
    interpolation kernel counts one fast hit per consult, a clamped row
    counts nothing, and an unresolved row falls through to the scalar
    comparison (which counts itself).  With vectorization off every
    table is ``None`` and every consult is the scalar call, so both
    modes make identical filter-telemetry contributions.
    """

    __slots__ = ("x0", "xb", "_bounds", "_bballs", "_tables")

    def __init__(self, x0, ylo, yhi, qballs: Tuple):
        self.x0 = x0
        self.xb = qballs[0]
        self._bounds = (ylo, yhi)
        self._bballs = (qballs[1], qballs[2])
        self._tables: Dict[Tuple[int, int], Optional[Tuple]] = {}

    def sign(self, leaf, idx: int, key: Tuple, which: int) -> int:
        memo_key = (leaf.page_id, which)
        table = self._tables.get(memo_key, False)
        if table is False:
            table = _kernels.gkey_sign_table(
                leaf, leaf.items, self.x0, self._bounds[which], self.xb,
                self._bballs[which])
            self._tables[memo_key] = table
        if table is not None:
            signs, resolved, interp = table
            if idx < signs.shape[0] and resolved[idx]:
                if interp[idx]:
                    STATS.fast_hits += 1
                return int(signs[idx])
        return _cmp_key_y(key, self.x0, self._bounds[which], self.xb,
                          self._bballs[which])


class _GNode:
    """Decoded record of one G-node."""

    __slots__ = ("idx", "lo", "hi", "left", "right", "root_pid", "count", "mid_x")

    def __init__(self, idx, lo, hi, left, right, root_pid, count, mid_x):
        self.idx = idx
        self.lo = lo  # inner-slab range (1-based, inclusive)
        self.hi = hi
        self.left = left  # son indices or None
        self.right = right
        self.root_pid = root_pid
        self.count = count  # real (non-augmented) fragments
        self.mid_x = mid_x  # the middle boundary the list is ordered on

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def as_tuple(self) -> Tuple:
        return (self.idx, self.lo, self.hi, self.left, self.right,
                self.root_pid, self.count, self.mid_x)


class GTree:
    """The long-fragment structure of one first-level node."""

    def __init__(self, pager: Pager, directory_pid: int, boundaries: Sequence):
        self.pager = pager
        self.directory_pid = directory_pid
        self.boundaries = list(boundaries)  # s_1..s_b of the owning node
        # Per-query scratch, reused across calls so the hot path does not
        # allocate a slab list and dedup set per query (results lists are
        # always fresh — callers own them).
        self._slab_scratch: List[int] = []
        self._seen_scratch: set = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, pager: Pager, boundaries: Sequence, fragments: List[Tuple[int, int, LongFragment]]
    ) -> Optional["GTree"]:
        """Build over inner slabs; ``fragments`` are ``(i, j, frag)`` from
        :func:`~repro.core.solution2.slabs.split_segment` (spanning inner
        slabs ``i..j-1``).  Returns ``None`` when there are no inner slabs.
        """
        n_inner = len(boundaries) - 1
        if n_inner < 1:
            if fragments:
                raise ValueError("long fragments exist but there are no inner slabs")
            return None
        nodes: List[List] = []
        cls._layout(boundaries, 1, n_inner, nodes)
        directory = PageChain.create(pager, [])
        directory_head = pager.fetch(directory.head_pid)
        directory_head.set_header("inserts", 0)
        directory_head.set_header("total", 0)
        pager.write(directory_head)
        tree = cls(pager, directory.head_pid, boundaries)

        per_node: List[List[LongFragment]] = [[] for _ in nodes]
        for i, j, frag in fragments:
            cls._allocate(nodes, boundaries, 0, i, j - 1, frag, per_node)

        for idx, raw in enumerate(nodes):
            if not per_node[idx]:
                continue  # lists are lazy: no pages until the first fragment
            s_mid = raw[7]
            entries = sorted(
                ((_entry_key(f, s_mid), GEntry(f)) for f in per_node[idx]),
                key=lambda kv: kv[0],
            )
            btree = BPlusTree.build(pager, entries)
            raw[5] = btree.root_pid
            raw[6] = len(per_node[idx])
        directory.replace([tuple(r) for r in nodes])
        head = pager.fetch(directory.head_pid)
        head.set_header("total", len(fragments))
        pager.write(head)
        tree.rebuild_bridges()
        return tree

    @classmethod
    def _layout(cls, boundaries, lo: int, hi: int, nodes: List[List]) -> int:
        """Allocate node records for slab range [lo, hi]; returns the index."""
        idx = len(nodes)
        # Middle boundary: for an internal node the split line between the
        # sons; for a leaf, the slab's left boundary.
        if lo == hi:
            nodes.append([idx, lo, hi, None, None, None, 0, boundaries[lo - 1]])
            return idx
        nodes.append([idx, lo, hi, None, None, None, 0, None])
        mid = (lo + hi) // 2
        left = cls._layout(boundaries, lo, mid, nodes)
        right = cls._layout(boundaries, mid + 1, hi, nodes)
        nodes[idx][3] = left
        nodes[idx][4] = right
        nodes[idx][7] = boundaries[mid]  # s_{mid+1}: line between the sons
        return idx

    @classmethod
    def _allocate(cls, nodes, boundaries, idx: int, a: int, c: int,
                  frag: LongFragment, per_node: List[List[LongFragment]]) -> None:
        """Standard segment-tree allocation of slab range [a, c]."""
        record = nodes[idx]
        lo, hi = record[1], record[2]
        if a <= lo and hi <= c:
            per_node[idx].append(frag.cut(boundaries[lo - 1], boundaries[hi]))
            return
        mid = (lo + hi) // 2
        if a <= mid:
            cls._allocate(nodes, boundaries, record[3], a, min(c, mid), frag, per_node)
        if c > mid:
            cls._allocate(nodes, boundaries, record[4], max(a, mid + 1), c, frag, per_node)

    # ------------------------------------------------------------------
    # node records
    # ------------------------------------------------------------------
    def _read_nodes(self) -> List[_GNode]:
        chain = PageChain(self.pager, self.directory_pid)
        return [_GNode(*t) for t in chain]

    def _read_nodes_cached(self) -> List[_GNode]:
        """:meth:`_read_nodes` with the decode memoised on the head page.

        The directory chain is still fetched page by page (identical I/O
        charges); only the tuple->:class:`_GNode` decode is reused.  Any
        directory rewrite goes through ``chain.replace``/``append``,
        which invalidate ``head.views`` via ``put_items``/``set_header``.
        Update paths must use the uncached read — they mutate the
        returned nodes in place before writing them back.
        """
        head = self.pager.fetch(self.directory_pid)
        views = head.views
        if views is None:
            views = head.views = {}
        cached = views.get("gnodes")
        if cached is not None:
            pid = head.get_header("next")
            while pid is not None:  # same fetch walk as the uncached read
                pid = self.pager.fetch(pid).get_header("next")
            return cached
        nodes: List[_GNode] = []
        page = head
        while True:
            nodes.extend(_GNode(*t) for t in page.items)
            pid = page.get_header("next")
            if pid is None:
                break
            page = self.pager.fetch(pid)
        views["gnodes"] = nodes
        return nodes

    def _write_nodes(self, nodes: List[_GNode]) -> None:
        chain = PageChain(self.pager, self.directory_pid)
        head = self.pager.fetch(self.directory_pid)
        inserts = head.get_header("inserts")
        total = head.get_header("total")
        chain.replace([n.as_tuple() for n in nodes])
        head = self.pager.fetch(self.directory_pid)
        head.set_header("inserts", inserts)
        head.set_header("total", total)
        self.pager.write(head)

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def query(self, x0, ylo, yhi, use_bridges: bool = True,
              qballs: Optional[Tuple] = None) -> List[LongFragment]:
        """Long fragments at ``x0`` with ordinate in ``[ylo, yhi]``.

        ``x0`` must lie within the inner-slab range ``[s_1, s_b]``.  When
        ``x0`` falls exactly on a boundary, fragments ending there live on
        the path to the slab on either side, so both paths are walked and
        duplicates removed.  ``use_bridges=False`` disables fractional
        cascading (every level pays a fresh B+-tree search) — the Lemma 4
        baseline for the E6 ablation.
        """
        nodes = self._read_nodes_cached()
        if not nodes:
            return []
        return self.query_cached(nodes, x0, ylo, yhi, use_bridges=use_bridges,
                                 qballs=qballs)

    def read_directory(self) -> List[_GNode]:
        """Decode the G-node directory once for reuse across a batch group.

        The directory chain is routing metadata shared by every query that
        reaches the owning first-level node; batched execution reads it a
        single time per group and feeds it to :meth:`query_cached`.
        """
        return self._read_nodes_cached()

    def query_cached(
        self, nodes: List[_GNode], x0, ylo, yhi, use_bridges: bool = True,
        qballs: Optional[Tuple] = None,
    ) -> List[LongFragment]:
        """:meth:`query` against an already-decoded directory.

        ``qballs`` lets the caller hand in the query's cached
        ``(ball(x0), ball(ylo), ball(yhi))`` — one G-tree is consulted
        per node on the first-level search path, and the balls are
        identical at every level.
        """
        if not nodes:
            return []
        slabs = self._inner_slabs_of(x0)
        if not slabs:
            return []
        if qballs is None:
            # Query balls for the filtered comparisons, built once per query.
            qballs = (
                ball(x0),
                ball(ylo) if ylo is not None else None,
                ball(yhi) if yhi is not None else None,
            )
        results: List[LongFragment] = []
        seen = self._seen_scratch
        seen.clear()
        cache = _QuerySignCache(x0, ylo, yhi, qballs)
        for k in slabs:
            self._query_path(nodes, k, x0, ylo, yhi, use_bridges, qballs,
                             results, seen, cache)
        return results

    def query_group(
        self, windows: Sequence[Tuple], use_bridges: bool = True
    ) -> List[List[LongFragment]]:
        """Answer many ``(x0, ylo, yhi)`` windows with one directory read.

        The per-window path searches (B+-tree descents, cascade hops and
        reporting scans) remain individual — only the directory decode is
        amortized, mirroring the shared-descent argument at this level.
        """
        nodes = self._read_nodes_cached()
        return [
            self.query_cached(nodes, x0, ylo, yhi, use_bridges=use_bridges)
            for x0, ylo, yhi in windows
        ]

    def _query_path(
        self, nodes, k: int, x0, ylo, yhi, use_bridges: bool, qballs: Tuple,
        results: List[LongFragment], seen: set,
        cache: _QuerySignCache,
    ) -> None:
        idx: Optional[int] = 0
        hint: Optional[Position] = None
        while idx is not None:
            node = nodes[idx]
            if node.is_leaf:
                son_slot = None
                next_idx = None
            elif k <= nodes[node.left].hi:
                son_slot, next_idx = 0, node.left
            else:
                son_slot, next_idx = 1, node.right
            if node.root_pid is None:
                hint = None  # empty list: nothing to report, no bridges
            else:
                tree = BPlusTree(self.pager, node.root_pid)
                hint = self._scan_node(
                    tree, x0, ylo, yhi, hint if use_bridges else None, son_slot,
                    results, seen, qballs, cache,
                )
            idx = next_idx

    def _inner_slabs_of(self, x0) -> List[int]:
        """Inner slabs (1-based) whose closed x-range contains ``x0``.

        One slab in general position, two when ``x0`` sits on an interior
        boundary, none outside ``[s_1, s_b]``.  Returns a scratch list
        reused by the next call — consume before re-entering."""
        slabs = self._slab_scratch
        slabs.clear()
        b = len(self.boundaries)
        if b < 2 or x0 < self.boundaries[0] or x0 > self.boundaries[-1]:
            return slabs
        k = bisect.bisect_right(self.boundaries, x0)  # 0-based outer slab
        if 1 <= k <= b - 1:
            slabs.append(k)
        if k >= 1 and x0 == self.boundaries[k - 1] and k - 1 >= 1:
            slabs.append(k - 1)
        if k == b and x0 == self.boundaries[-1]:
            slabs.append(b - 1)
        return slabs

    def _scan_node(
        self, tree: BPlusTree, x0, ylo, yhi, hint: Optional[Position],
        son_slot: Optional[int], results: List[LongFragment], seen: set,
        qballs: Tuple, cache: _QuerySignCache,
    ) -> Optional[Position]:
        """Report this node's hits; return the bridge hint for the next son."""
        start = self._boundary_position(tree, x0, ylo, hint, qballs, cache)
        # The reporting scan is the output-charged part of the G search:
        # every page it touches holds ~B reported fragments (phase
        # "scan", the ``t`` term of Theorem 2).
        with trace.span("scan"):
            return self._scan_entries(
                tree, start, x0, ylo, yhi, son_slot, results, seen, None,
                cache
            )

    def _scan_entries(
        self, tree: BPlusTree, start: Position, x0, ylo, yhi,
        son_slot: Optional[int], results: List[LongFragment], seen: set,
        last_entry_before: Optional[GEntry], cache: _QuerySignCache,
    ) -> Optional[Position]:
        next_hint: Optional[Position] = None
        for leaf_pid, idx, key, entry, leaf in self._iter_positions_from(tree, start):
            real = not entry.frag.augmented
            if ylo is not None and cache.sign(leaf, idx, key, 0) < 0:
                last_entry_before = entry
                continue  # only augmented stragglers can appear here
            if yhi is not None and real and cache.sign(leaf, idx, key, 1) > 0:
                if next_hint is None and son_slot is not None:
                    next_hint = entry.bridges.get(son_slot)
                break
            if real:
                # Dedup at the report site (a fragment on a boundary query
                # is scanned once per walked path): same output order as
                # the old collect-then-filter, without the per-path list.
                label = entry.frag.payload.label
                if label not in seen:
                    seen.add(label)
                    results.append(entry.frag)
            if next_hint is None and son_slot is not None:
                got = entry.bridges.get(son_slot)
                if got is not None:
                    next_hint = got
        if next_hint is None and son_slot is not None and last_entry_before is not None:
            next_hint = last_entry_before.bridges.get(son_slot)
        return next_hint

    def _boundary_position(
        self, tree: BPlusTree, x0, ylo, hint: Optional[Position],
        qballs: Tuple, cache: _QuerySignCache,
    ) -> Position:
        """Position of the first *real* entry with ``y_at(x0) >= ylo``.

        Phase anatomy: landing via a bridge hint and refining locally is
        the fractional-cascading hop (phase "cascade-hop", O(1) amortised
        pages, the ``log2 B`` term); the fallback B+-tree descent is a
        fresh search (phase "search", ``O(log_B n)`` per level — what
        cascading exists to avoid, and all the E6 ablation ever pays).
        """
        if ylo is None:
            with trace.span("search"):
                head = self._head_leaf(tree)
            return (head, 0)
        xb, lob = qballs[0], qballs[1]
        # ``locate_first`` evaluates the predicate on B+-tree routing
        # keys, which have no leaf row to index a sign table by — that
        # descent stays scalar; leaf rows go through the cache.
        pred = lambda key: _cmp_key_y(key, x0, ylo, xb, lob) >= 0  # noqa: E731
        row_pred = lambda leaf, idx, key: cache.sign(leaf, idx, key, 0) >= 0  # noqa: E731
        if hint is not None:
            with trace.span("cascade-hop"):
                refined = self._exact_boundary(tree, hint, row_pred,
                                               page_budget=MAX_HINT_PAGES)
            if refined is not None:
                return refined
        with trace.span("search"):
            boundary = self._exact_boundary(tree, tree.locate_first(pred),
                                            row_pred)
        assert boundary is not None  # no page budget: never gives up
        return boundary

    def _exact_boundary(
        self, tree, start: Position, row_pred,
        page_budget: Optional[int] = None
    ) -> Optional[Position]:
        """From ``start``, the position of the first real entry satisfying
        the monotone predicate (``row_pred(leaf, idx, key)``).

        Real fragments are monotone in ``y_at(x0)`` along the list order, so:
        if the first real entry at/after ``start`` fails the predicate, walk
        forward to the first real entry that satisfies it; if it satisfies
        it, walk backward while earlier real entries still satisfy it.  With
        a ``page_budget`` the search gives up (returns None) instead of
        walking far on a stale bridge hint; the caller then falls back to a
        B+-tree search.
        """
        leaf_pid, _idx = start
        try:
            self.pager.fetch(leaf_pid)
        except DanglingPageError:
            return None

        pages = [0]
        last_leaf = [None]

        def charge(pid) -> bool:
            if pid != last_leaf[0]:
                last_leaf[0] = pid
                pages[0] += 1
                if page_budget is not None and pages[0] > page_budget:
                    return False
            return True

        first_real: Optional[Tuple[Position, bool]] = None
        for pid, i, key, entry, leaf in self._iter_positions_from(tree, start):
            if not charge(pid):
                return None
            if entry.frag.augmented:
                continue
            first_real = ((pid, i), row_pred(leaf, i, key))
            break

        if first_real is not None and not first_real[1]:
            # Walk forward to the first satisfying real entry.
            for pid, i, key, entry, leaf in self._iter_positions_from(
                    tree, first_real[0]):
                if not charge(pid):
                    return None
                if entry.frag.augmented:
                    continue
                if row_pred(leaf, i, key):
                    return (pid, i)
            return self._end_position(tree)

        # Either the first real at/after start satisfies the predicate, or
        # there is no real entry ahead at all: in both cases the boundary
        # may lie further back.
        best: Optional[Position] = first_real[0] if first_real else None
        back_start = self._position_before(start)
        pages[0] = 0
        last_leaf[0] = None
        for pid, i, key, entry, leaf in self._iter_positions_back(tree, back_start):
            if not charge(pid):
                return None
            if entry.frag.augmented:
                continue
            if row_pred(leaf, i, key):
                best = (pid, i)
            else:
                break
        if best is not None:
            return best
        # Nothing satisfies the predicate anywhere near: the boundary is at
        # the end of the list (scans report nothing from there).
        return self._end_position(tree) if first_real is None else first_real[0]

    def _position_before(self, pos: Position) -> Optional[Position]:
        leaf_pid, idx = pos
        if idx > 0:
            return (leaf_pid, idx - 1)
        try:
            leaf = self.pager.fetch(leaf_pid)
        except DanglingPageError:
            return None
        prev = leaf.get_header("prev")
        if prev is None:
            return None
        prev_leaf = self.pager.fetch(prev)
        return (prev, len(prev_leaf.items) - 1)

    def _end_position(self, tree: BPlusTree) -> Position:
        page = self.pager.fetch(tree.root_pid)
        while not page.get_header("leaf"):
            page = self.pager.fetch(page.items[-1][1])
        return (page.page_id, len(page.items))

    def _iter_positions_from(
        self, tree: BPlusTree, start: Optional[Position]
    ) -> Iterator[Tuple[int, int, Tuple, GEntry, object]]:
        """Yield ``(leaf_pid, index, key, entry, leaf_page)`` forward from
        ``start`` — the leaf page rides along so consumers can reach its
        columnar sign tables without a second fetch."""
        if start is None:
            return
        pid, idx = start
        while pid is not None:
            try:
                leaf = self.pager.fetch(pid)
            except DanglingPageError:
                return
            for i in range(max(idx, 0), len(leaf.items)):
                key, entry = leaf.items[i]
                yield (pid, i, key, entry, leaf)
            pid = leaf.get_header("next")
            idx = 0

    def _iter_positions_back(
        self, tree: BPlusTree, start: Optional[Position]
    ) -> Iterator[Tuple[int, int, Tuple, GEntry, object]]:
        if start is None:
            return
        pid, idx = start
        while pid is not None:
            try:
                leaf = self.pager.fetch(pid)
            except DanglingPageError:
                return
            idx = min(idx, len(leaf.items) - 1)
            for i in range(idx, -1, -1):
                key, entry = leaf.items[i]
                yield (pid, i, key, entry, leaf)
            pid = leaf.get_header("prev")
            idx = 10**9

    # ------------------------------------------------------------------
    # insertion (semi-dynamic)
    # ------------------------------------------------------------------
    def insert(self, i: int, j: int, frag: LongFragment) -> None:
        """Insert one long fragment spanning inner slabs ``i..j-1``."""
        nodes = self._read_nodes()
        targets: List[Tuple[int, LongFragment]] = []
        self._collect_allocation(nodes, 0, i, j - 1, frag, targets)
        for idx, cut in targets:
            node = nodes[idx]
            if node.root_pid is None:
                tree = BPlusTree.build(
                    self.pager, [(_entry_key(cut, node.mid_x), GEntry(cut))]
                )
            else:
                tree = BPlusTree(self.pager, node.root_pid)
                tree.insert(_entry_key(cut, node.mid_x), GEntry(cut))
            node.root_pid = tree.root_pid
            node.count += 1
        self._write_nodes(nodes)
        head = self.pager.fetch(self.directory_pid)
        head.set_header("inserts", head.get_header("inserts") + 1)
        head.set_header("total", head.get_header("total") + 1)
        self.pager.write(head)
        capacity = self.pager.device.block_capacity
        if head.get_header("inserts") > max(capacity, head.get_header("total") // 4):
            self.rebuild_bridges()

    def _collect_allocation(self, nodes, idx, a, c, frag, out) -> None:
        node = nodes[idx]
        if a <= node.lo and node.hi <= c:
            out.append((idx, frag.cut(self.boundaries[node.lo - 1], self.boundaries[node.hi])))
            return
        mid = (node.lo + node.hi) // 2
        if a <= mid:
            self._collect_allocation(nodes, node.left, a, min(c, mid), frag, out)
        if c > mid:
            self._collect_allocation(nodes, node.right, max(a, mid + 1), c, frag, out)

    # ------------------------------------------------------------------
    # bridges
    # ------------------------------------------------------------------
    def rebuild_bridges(self) -> None:
        """(Re)build all augmented copies and bridge references.

        Runs post-order so that positions recorded in a son's list are never
        invalidated afterwards (all insertions into a list happen before or
        during the step that records references into it).
        """
        nodes = self._read_nodes()
        if not nodes:
            return
        # Strip previous augmented entries everywhere.
        for node in nodes:
            if node.root_pid is None:
                continue
            tree = BPlusTree(self.pager, node.root_pid)
            real = [(k, e) for k, e in tree.items() if not e.frag.augmented]
            for _k, e in real:
                e.bridges = {}
            tree.destroy()
            if real:
                node.root_pid = BPlusTree.build(self.pager, real).root_pid
            else:
                node.root_pid = None
        order = self._postorder(nodes, 0)
        for idx in order:
            node = nodes[idx]
            if node.is_leaf:
                continue
            for slot, son_idx in ((0, node.left), (1, node.right)):
                self._build_pair_bridges(nodes, node, slot, nodes[son_idx])
        self._write_nodes(nodes)
        head = self.pager.fetch(self.directory_pid)
        head.set_header("inserts", 0)
        self.pager.write(head)

    def _postorder(self, nodes, idx) -> List[int]:
        node = nodes[idx]
        if node.is_leaf:
            return [idx]
        return (
            self._postorder(nodes, node.left)
            + self._postorder(nodes, node.right)
            + [idx]
        )

    def _build_pair_bridges(self, nodes, parent: _GNode, slot: int, son: _GNode) -> None:
        """Bridges between one parent list and one son list (Figure 7)."""
        # The shared line: the left son's right boundary and the right son's
        # left boundary both equal the parent's split line.
        shared_x = parent.mid_x
        if parent.root_pid is None and son.root_pid is None:
            return
        ptree = (
            BPlusTree(self.pager, parent.root_pid)
            if parent.root_pid is not None
            else None
        )
        stree = (
            BPlusTree(self.pager, son.root_pid) if son.root_pid is not None else None
        )
        p_items = list(ptree.items()) if ptree is not None else []
        s_items = list(stree.items()) if stree is not None else []
        if not p_items and not s_items:
            return

        def at_shared(kv):
            return _key_y_at(kv[0], shared_x)

        merged: List[Tuple[object, int, Tuple]] = []  # (y, origin, item)
        merged.extend((at_shared(kv), 0, kv) for kv in p_items)
        merged.extend((at_shared(kv), 1, kv) for kv in s_items)
        merged.sort(key=lambda t: (t[0],))

        # Choose every (d+1)-th merged element as a bridge and create its
        # augmented copy on the other side.  Copies are tagged with a
        # bridge id so their final positions can be resolved afterwards.
        son_lo_x = self.boundaries[son.lo - 1]
        son_hi_x = self.boundaries[son.hi]

        def eligible(origin: int, frag: LongFragment) -> bool:
            # A bridge must be cuttable/evaluable on the other side.  A
            # parent entry works when it spans the son's multislab; a son
            # entry when it reaches the shared line.  Augmented entries
            # copied in from *other* pairs may do neither — skip those and
            # pick the next element (the gap grows by at most their run).
            if origin == 0:
                return frag.x_left <= son_lo_x and frag.x_right >= son_hi_x
            return frag.x_left <= shared_x <= frag.x_right

        bridge_ids: Dict[int, int] = {}  # id(entry object) -> bridge number
        copies_to_son: List[Tuple[Tuple, GEntry, int]] = []
        copies_to_parent: List[Tuple[Tuple, GEntry, int]] = []
        bridge_no = 0
        countdown = BRIDGE_D
        for _y, origin, (key, entry) in merged:
            if countdown > 0 or not eligible(origin, entry.frag):
                countdown = max(0, countdown - 1)
                continue
            countdown = BRIDGE_D
            if origin == 0:
                # Parent fragment: cut on the son's multislab and copy down.
                cut = entry.frag.cut(son_lo_x, son_hi_x).as_augmented()
                copy = GEntry(cut)
                copies_to_son.append((_entry_key(cut, son.mid_x), copy, bridge_no))
                bridge_ids[id(copy)] = bridge_no
                bridge_ids[id(entry)] = bridge_no  # the original is a bridge
            else:
                # Son fragment: copy up, positioned by its shared-line hit.
                up = entry.frag.as_augmented()
                copy = GEntry(up)
                copies_to_parent.append((_entry_key(up, parent.mid_x), copy, bridge_no))
                bridge_ids[id(copy)] = bridge_no
                bridge_ids[id(entry)] = bridge_no
            bridge_no += 1

        if copies_to_son and stree is None:
            stree = BPlusTree.create(self.pager)
        if copies_to_parent and ptree is None:
            ptree = BPlusTree.create(self.pager)
        for key, copy, _no in copies_to_son:
            stree.insert(key, copy)
        for key, copy, _no in copies_to_parent:
            ptree.insert(key, copy)
        if ptree is not None:
            parent.root_pid = ptree.root_pid
        if stree is not None:
            son.root_pid = stree.root_pid

        # Resolve bridge positions in the son's list.
        son_positions: Dict[int, Position] = {}
        pid = self._head_leaf(stree) if stree is not None else None
        while pid is not None:
            leaf = self.pager.fetch(pid)
            for i, (_key, entry) in enumerate(leaf.items):
                no = bridge_ids.get(id(entry))
                if no is not None:
                    son_positions[no] = (pid, i)
            pid = leaf.get_header("next")

        # Walk the parent's list assigning each entry the nearest bridge.
        pending: List[GEntry] = []  # entries before the first bridge
        current: Optional[Position] = None
        pid = self._head_leaf(ptree) if ptree is not None else None
        while pid is not None:
            leaf = self.pager.fetch(pid)
            for _key, entry in leaf.items:
                no = bridge_ids.get(id(entry))
                if no is not None and no in son_positions:
                    current = son_positions[no]
                    for waiting in pending:
                        waiting.bridges[slot] = current
                    pending = []
                if current is None:
                    pending.append(entry)
                else:
                    entry.bridges[slot] = current
            self.pager.write(leaf)
            pid = leaf.get_header("next")

    def _head_leaf(self, tree: BPlusTree) -> Optional[int]:
        page = self.pager.fetch(tree.root_pid)
        while not page.get_header("leaf"):
            page = self.pager.fetch(page.items[0][1])
        return page.page_id

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def real_fragments(self) -> List[LongFragment]:
        out = []
        for node in self._read_nodes():
            if node.root_pid is None:
                continue
            for _k, e in BPlusTree(self.pager, node.root_pid).items():
                if not e.frag.augmented:
                    out.append(e.frag)
        return out

    def total_count(self) -> int:
        return self.pager.fetch(self.directory_pid).get_header("total")

    def destroy(self) -> None:
        for node in self._read_nodes():
            if node.root_pid is not None:
                BPlusTree(self.pager, node.root_pid).destroy()
        PageChain(self.pager, self.directory_pid).destroy()

    def check_invariants(self) -> None:
        """Sorted lists, d-property over fresh bridges, allocation sanity."""
        nodes = self._read_nodes()
        for node in nodes:
            if node.root_pid is None:
                assert node.count == 0, f"count stale at empty G-node {node.idx}"
                continue
            tree = BPlusTree(self.pager, node.root_pid)
            tree.check_invariants()
            lo_x = self.boundaries[node.lo - 1]
            hi_x = self.boundaries[node.hi]
            reals = 0
            for key, entry in tree.items():
                assert entry.frag.x_left == lo_x and entry.frag.x_right == hi_x or \
                    entry.frag.augmented, (
                        f"fragment not cut to multislab at node {node.idx}"
                    )
                if not entry.frag.augmented:
                    reals += 1
            assert reals == node.count, f"count stale at G-node {node.idx}"

    def check_d_property(self) -> None:
        """After a fresh bridge build: between consecutive bridges of a
        parent/son pair there are at most ``2 * BRIDGE_D`` merged elements
        (counting both lists) — Figure 7's d-property."""
        nodes = self._read_nodes()
        for node in nodes:
            if node.is_leaf:
                continue
            for slot, son_idx in ((0, node.left), (1, node.right)):
                son = nodes[son_idx]
                shared_x = node.mid_x
                merged = []
                if node.root_pid is not None:
                    for _k, e in BPlusTree(self.pager, node.root_pid).items():
                        merged.append((_key_y_at(_k, shared_x), e))
                if son.root_pid is not None:
                    for _k, e in BPlusTree(self.pager, son.root_pid).items():
                        merged.append((_key_y_at(_k, shared_x), e))
                merged.sort(key=lambda t: t[0])
                gap = 0
                seen_any = False
                for _y, e in merged:
                    if e.frag.augmented:
                        gap = 0
                        seen_any = True
                    else:
                        gap += 1
                        assert gap <= 3 * (BRIDGE_D + 1) or not seen_any, (
                            f"d-property violated at G-node {node.idx}"
                        )
