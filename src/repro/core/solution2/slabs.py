"""Slab arithmetic and fragment splitting (Section 4.2, Figure 6).

An internal node of Solution 2's first level partitions its x-range with
boundaries ``s_1 < ... < s_b`` into ``b + 1`` slabs (slab ``k`` is
``[s_k, s_{k+1})`` with ``s_0 = -inf``, ``s_{b+1} = +inf``).  A segment
*assigned* to the node (it meets at least one boundary) splits into:

* an **on-line interval** when it lies on a boundary (vertical at ``s_i``);
* a **left short fragment** — from its left endpoint to the first boundary
  it meets (line-based, hanging left off ``s_i``; goes to PST ``L_i``);
* a **right short fragment** — from the last boundary to its right
  endpoint (goes to PST ``R_j``);
* a **long fragment** — the central part between the first and last
  boundaries, spanning inner slabs ``i..j-1`` completely (goes to the
  segment tree ``G``).

Totals match the paper: at most 1 long + 2 short fragments per segment.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from ...geometry import Segment, VerticalBaseFrame
from ...geometry.linebased import LineBasedSegment


@dataclass
class SplitResult:
    """Outcome of splitting one segment at a node's boundaries."""

    on_line: Optional[Tuple[int, Tuple]] = None  # (boundary idx, (ylo, yhi))
    left_short: Optional[Tuple[int, LineBasedSegment]] = None  # (i, fragment)
    right_short: Optional[Tuple[int, LineBasedSegment]] = None  # (j, fragment)
    long: Optional[Tuple[int, int, "LongFragment"]] = None  # (i, j, fragment)


@dataclass(frozen=True)
class LongFragment:
    """The central part of a segment, cut on boundaries ``s_i`` and ``s_j``.

    ``y_left`` / ``y_right`` are the exact ordinates at the cut lines; the
    payload is the original database segment (reported to the user).
    ``augmented`` marks fractional-cascading copies, which are never
    reported.
    """

    x_left: object
    x_right: object
    y_left: object
    y_right: object
    payload: Segment
    augmented: bool = False

    def y_at(self, x):
        """Exact ordinate at ``x`` (requires ``x_left <= x <= x_right``)."""
        if not (self.x_left <= x <= self.x_right):
            raise ValueError(f"x={x} outside fragment [{self.x_left}, {self.x_right}]")
        return self.y_at_unchecked(x)

    def y_at_unchecked(self, x):
        """:meth:`y_at` without the span validation (callers on the build
        and query hot paths have already established ``x`` is in range)."""
        if self.x_left == self.x_right:
            return self.y_left
        return self.y_left + Fraction(self.y_right - self.y_left) * Fraction(
            x - self.x_left, self.x_right - self.x_left
        )

    def cut(self, x_left, x_right) -> "LongFragment":
        """The sub-fragment between two lines inside this fragment's span."""
        return LongFragment(
            x_left,
            x_right,
            self.y_at_unchecked(x_left),
            self.y_at_unchecked(x_right),
            self.payload,
            augmented=self.augmented,
        )

    def as_augmented(self) -> "LongFragment":
        return LongFragment(
            self.x_left, self.x_right, self.y_left, self.y_right,
            self.payload, augmented=True,
        )


def slab_of(boundaries: Sequence, x) -> int:
    """Index of the slab containing ``x`` (``k`` when ``s_k <= x < s_{k+1}``,
    0-based with slab 0 before ``s_1``).  Boundaries are 1-indexed, so the
    returned slab ``k`` means ``x`` lies at/after boundary ``k``."""
    return bisect.bisect_right(boundaries, x)


def boundary_index(boundaries: Sequence, x) -> Optional[int]:
    """1-based index ``i`` with ``s_i == x``, or ``None``."""
    pos = bisect.bisect_left(boundaries, x)
    if pos < len(boundaries) and boundaries[pos] == x:
        return pos + 1
    return None


def boundaries_met(boundaries: Sequence, segment: Segment) -> Tuple[int, int]:
    """1-based indices ``(i, j)`` of the first/last boundary the segment
    meets, or ``(0, -1)`` when it meets none."""
    first = bisect.bisect_left(boundaries, segment.xmin)
    last = bisect.bisect_right(boundaries, segment.xmax) - 1
    if first > last:
        return (0, -1)
    return (first + 1, last + 1)


def split_segment(boundaries: Sequence, segment: Segment) -> Optional[SplitResult]:
    """Split an assigned segment; returns ``None`` when it meets no boundary."""
    i, j = boundaries_met(boundaries, segment)
    if j < i:
        return None
    result = SplitResult()
    if segment.is_vertical:
        # Meeting a boundary while vertical means lying on it.
        assert i == j
        result.on_line = (i, (segment.ymin, segment.ymax))
        return result
    s_i = boundaries[i - 1]
    s_j = boundaries[j - 1]
    if segment.xmin < s_i:
        part = Segment.from_coords(
            segment.start.x, segment.start.y, s_i, segment.y_at_unchecked(s_i),
            label=segment.label,
        ).with_label(segment.label)
        result.left_short = (
            i, VerticalBaseFrame(s_i, "left").to_line_based(part, payload=segment)
        )
    if segment.xmax > s_j:
        part = Segment.from_coords(
            s_j, segment.y_at_unchecked(s_j), segment.end.x, segment.end.y,
            label=segment.label,
        ).with_label(segment.label)
        result.right_short = (
            j, VerticalBaseFrame(s_j, "right").to_line_based(part, payload=segment)
        )
    if j > i:
        result.long = (
            i,
            j,
            LongFragment(
                s_i, s_j,
                segment.y_at_unchecked(s_i), segment.y_at_unchecked(s_j),
                segment,
            ),
        )
    return result


def choose_boundaries(segments: List[Segment], fanout: int) -> List:
    """Quantile boundaries over the endpoint x-multiset (distinct values)."""
    xs = sorted(x for s in segments for x in (s.xmin, s.xmax))
    boundaries: List = []
    for i in range(1, fanout + 1):
        value = xs[(len(xs) * i) // (fanout + 1)]
        if not boundaries or value > boundaries[-1]:
            boundaries.append(value)
    return boundaries
