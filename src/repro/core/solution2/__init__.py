"""Solution 2 (Theorem 2): interval-tree 2LDS with fractional cascading."""

from .gtree import BRIDGE_D, GEntry, GTree
from .index import TwoLevelIntervalIndex
from .slabs import (
    LongFragment,
    SplitResult,
    boundary_index,
    choose_boundaries,
    slab_of,
    split_segment,
)

__all__ = [
    "BRIDGE_D",
    "GEntry",
    "GTree",
    "LongFragment",
    "SplitResult",
    "TwoLevelIntervalIndex",
    "boundary_index",
    "choose_boundaries",
    "slab_of",
    "split_segment",
]
