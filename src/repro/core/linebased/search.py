"""Search over the external PST: the paper's ``Find`` and ``Report``.

The paper's Appendix A pseudocode (Figures 8–9) is partially corrupted in
the available text, so the algorithms are reconstructed here from the
invariant that makes them work — and that the paper states explicitly: the
search "is based on the comparison of the query with stored segments",
because no subtree bounds a rectangular region.

The invariant.  Non-crossing segments admit one global left-to-right order
(the base order): if ``base(s1) < base(s2)`` and both reach height ``h``,
then ``u_{s1}(h) <= u_{s2}(h)`` — otherwise they would cross between the
base line and ``h``.  Consequently every stored segment the search touches
is a *witness*:

* a touched segment reaching ``h`` with ``u(h) < ulo`` proves that **every**
  segment with a smaller-or-equal base key that reaches ``h`` also misses
  the query on the left;
* symmetrically on the right.

The search keeps the two tightest witnesses (``L*``, ``R*``) and prunes any
subtree whose base-key band falls entirely at-or-beyond one of them, plus
any subtree whose tallest segment (the routing copy ``v.left``/``v.right``)
does not reach ``h``.  This visits, per level, at most the two subtrees
straddling the answer's boundary — the paper's "Q refers at most two nodes
on each level" — plus subtrees that are guaranteed to report (charged to
the output): O(log n + t) I/Os in total, which benchmark E1 verifies.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...geometry import HQuery, LineBasedSegment
from ...geometry import kernels as _kernels
from ...geometry.filtered import compare_u_at
from ...telemetry import trace

#: Classification of a stored segment against a query.
BELOW = "below"  # does not reach the query height: no information
LEFT = "left"  # reaches the height, passes left of the query window
HIT = "hit"
RIGHT = "right"


def classify(segment: LineBasedSegment, query: HQuery) -> str:
    """Exact classification of one proper segment against the query.

    The two window tests run through the filtered comparison kernel
    (certified float fast path, rational fallback) with the query's
    cached float bounds — the hottest comparison in the PST search.
    """
    if segment.h1 < query.h:
        return BELOW
    hb, lob, hib = query.balls()
    if query.ulo is not None and compare_u_at(segment, query.h, query.ulo, hb, lob) < 0:
        return LEFT
    if query.uhi is not None and compare_u_at(segment, query.h, query.uhi, hb, hib) > 0:
        return RIGHT
    return HIT


class _Bounds:
    """The tightest left/right witnesses seen so far (base keys)."""

    __slots__ = ("left", "right")

    def __init__(self):
        self.left: Optional[Tuple] = None  # max base key proven left of window
        self.right: Optional[Tuple] = None  # min base key proven right of window

    def absorb(self, segment: LineBasedSegment, side: str) -> None:
        key = segment.base_order_key()
        if side == LEFT:
            if self.left is None or key > self.left:
                self.left = key
        elif side == RIGHT:
            if self.right is None or key < self.right:
                self.right = key

    def prunes_band(self, min_base: Tuple, max_base: Tuple) -> bool:
        """True when no segment with a base key in the band can be a hit."""
        if self.left is not None and max_base <= self.left:
            return True
        if self.right is not None and min_base >= self.right:
            return True
        return False


def pst_report(tree, query: HQuery) -> List[LineBasedSegment]:
    """The paper's ``Report``: every stored segment intersecting the query.

    Each reported segment appears exactly once; routing copies are never
    reported (they are re-found in their home nodes).
    """
    if tree.root_pid is None:
        return []
    hits: List[LineBasedSegment] = []
    bounds = _Bounds()
    _report_visit(tree, tree.root_pid, query, bounds, hits)
    return hits


def _report_visit(tree, pid: int, query: HQuery, bounds: _Bounds, hits: List) -> None:
    # Telemetry mirrors the paper's charging argument (Lemma 2): a node
    # visit that reports at least one segment is charged to the output
    # term ``t`` (phase "report"); the remaining visits are the search
    # path (phase "descent", the ``log n`` term).  The phase is only
    # known after classifying the node's items, so the visit's I/O delta
    # is recorded on the current span and *moved* — sum-preserving — once
    # the node's contribution is known.
    span = trace.current_span()
    reads_before = span.reads if span is not None else 0
    node = tree.read(pid)
    reported = False
    summary = _kernels.page_classify_summary(node.page, query, node.items)
    if summary is None:
        for segment in node.items:
            side = classify(segment, query)
            if side == HIT:
                hits.append(segment)
                reported = True
            else:
                bounds.absorb(segment, side)
    else:
        # Witness reduction: items are sorted by base key, so the last
        # LEFT row carries the page's tightest left witness and the first
        # RIGHT row the tightest right witness — absorbing just those two
        # yields the same final bounds as absorbing every non-hit row.
        items = node.items
        hit_rows, last_left, first_right = summary
        if hit_rows:
            reported = True
            for i in hit_rows:
                hits.append(items[i])
        if last_left is not None:
            bounds.absorb(items[last_left], LEFT)
        if first_right is not None:
            bounds.absorb(items[first_right], RIGHT)
    if span is not None:
        span.move("report" if reported else "descent",
                  reads=span.reads - reads_before)
    # Routing copies are witnesses too — absorb them all before deciding
    # which children to enter, then re-check each child just before entry
    # (a left sibling's subtree may have tightened the bounds meanwhile).
    for child in node.children:
        side = classify(child.top, query)
        if side != HIT:
            bounds.absorb(child.top, side)
    for child in node.children:
        if child.top.h1 < query.h:
            continue  # nothing below reaches the query height
        if bounds.prunes_band(child.min_base, child.max_base):
            continue
        _report_visit(tree, child.pid, query, bounds, hits)


FindResult = Tuple[LineBasedSegment, int]  # (segment, node pid)


def pst_find(tree, query: HQuery, side: str = "left") -> Optional[FindResult]:
    """The paper's ``Find``: the extreme segment intersected by the query.

    ``side="left"`` returns the hit with the smallest base key (the
    deepest-leftmost in storage position) and the pid of the node storing
    it; ``side="right"`` is the mirror.  Returns ``None`` when nothing
    intersects.  O(log n) I/Os: on top of the witness pruning of
    :func:`pst_report`, subtrees that cannot improve on the best hit found
    so far are skipped, so no subtree charged to "output" is ever entered.
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    if tree.root_pid is None:
        return None
    bounds = _Bounds()
    best: List[Optional[FindResult]] = [None]
    _find_visit(tree, tree.root_pid, query, bounds, best, side)
    return best[0]


def _improves(candidate_key: Tuple, best: Optional[FindResult], side: str) -> bool:
    if best is None:
        return True
    best_key = best[0].base_order_key()
    return candidate_key < best_key if side == "left" else candidate_key > best_key


def _find_visit(tree, pid, query, bounds: _Bounds, best: List, side: str) -> None:
    # ``Find`` never reports: every visit belongs to the descent term.
    span = trace.current_span()
    reads_before = span.reads if span is not None else 0
    node = tree.read(pid)
    if span is not None:
        span.move("descent", reads=span.reads - reads_before)
    summary = _kernels.page_classify_summary(node.page, query, node.items)
    if summary is None:
        for segment in node.items:
            kind = classify(segment, query)
            if kind == HIT:
                if _improves(segment.base_order_key(), best[0], side):
                    best[0] = (segment, pid)
            else:
                bounds.absorb(segment, kind)
    else:
        items = node.items
        hit_rows, last_left, first_right = summary
        for i in hit_rows:
            segment = items[i]
            if _improves(segment.base_order_key(), best[0], side):
                best[0] = (segment, pid)
        if last_left is not None:
            bounds.absorb(items[last_left], LEFT)
        if first_right is not None:
            bounds.absorb(items[first_right], RIGHT)
    for child in node.children:
        kind = classify(child.top, query)
        if kind != HIT:
            bounds.absorb(child.top, kind)
    # Enter promising children, nearest-to-the-answer first.
    ordered = node.children if side == "left" else list(reversed(node.children))
    for child in ordered:
        if child.top.h1 < query.h:
            continue
        if bounds.prunes_band(child.min_base, child.max_base):
            continue
        if side == "left":
            if not _improves(child.min_base, best[0], side):
                continue
        else:
            if not _improves(child.max_base, best[0], side):
                continue
        _find_visit(tree, child.pid, query, bounds, best, side)
