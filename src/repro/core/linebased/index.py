"""The complete Section-2 structure for one base line.

A line-based set may contain segments *lying on* the base line (both
endpoints on it).  Those are interior-disjoint 1-D intervals (NCT) and are
kept in a :class:`~repro.storage.disjoint.DisjointIntervalIndex`; proper
segments go to the external PST.  This mirrors exactly how the two-level
structures of Sections 3–4 treat them (``C(v)`` vs ``L(v)``/``R(v)``).

Costs (Lemmas 2–3): space ``O(n)``; query ``O(log2 n + t)`` with the binary
PST or ``O(log_B n + t)`` with the blocked PST; updates ``O(height)``
amortised.
"""

from __future__ import annotations

from typing import Iterable, List

from ...geometry import HQuery, LineBasedSegment, lb_cross
from ...iosim import Pager
from ...storage.disjoint import DisjointIntervalIndex
from .pst import BlockedPST, ExternalPST


class LineBasedIndex:
    """Query/update index over one line-based segment set."""

    def __init__(
        self,
        pager: Pager,
        blocked: bool = False,
        validate_inserts: bool = False,
    ):
        self.pager = pager
        self.blocked = blocked
        self.validate_inserts = validate_inserts
        self.pst: ExternalPST = (
            BlockedPST(pager) if blocked else ExternalPST(pager, fanout=2)
        )
        self.on_line = DisjointIntervalIndex(pager)

    @classmethod
    def build(
        cls,
        pager: Pager,
        segments: Iterable[LineBasedSegment],
        blocked: bool = False,
        validate_inserts: bool = False,
    ) -> "LineBasedIndex":
        index = cls(pager, blocked=blocked, validate_inserts=validate_inserts)
        proper = []
        flat = []
        for s in segments:
            (flat if s.on_base_line else proper).append(s)
        if blocked:
            index.pst = BlockedPST.build_blocked(pager, proper)
        else:
            index.pst = ExternalPST.build(pager, proper, fanout=2)
        if flat:
            index.on_line = DisjointIntervalIndex.build(
                pager,
                [(min(s.u0, s.u1), max(s.u0, s.u1), s) for s in flat],
            )
        return index

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, q: HQuery) -> List[LineBasedSegment]:
        """All stored segments intersecting the parallel query ``q``."""
        with self.pager.operation():
            hits = self.pst.query(q)
            if q.h == 0:
                hits.extend(s for _lo, _hi, s in self.on_line.overlap(q.ulo, q.uhi))
        return hits

    def find_leftmost(self, q: HQuery):
        with self.pager.operation():
            return self.pst.find_leftmost(q)

    def find_rightmost(self, q: HQuery):
        with self.pager.operation():
            return self.pst.find_rightmost(q)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, segment: LineBasedSegment) -> None:
        """Insert one segment (NCT with the stored set, per the paper's
        update model; set ``validate_inserts`` to check it — O(N))."""
        if self.validate_inserts:
            for other in self.all_segments():
                if lb_cross(segment, other):
                    raise ValueError(f"{segment!r} crosses stored {other!r}")
        with self.pager.operation():
            if segment.on_base_line:
                lo, hi = min(segment.u0, segment.u1), max(segment.u0, segment.u1)
                self.on_line.insert(lo, hi, segment)
            else:
                self.pst.insert(segment)

    def delete(self, segment: LineBasedSegment) -> bool:
        with self.pager.operation():
            if segment.on_base_line:
                lo, hi = min(segment.u0, segment.u1), max(segment.u0, segment.u1)
                return self.on_line.delete(lo, hi)
            return self.pst.delete(segment)

    # ------------------------------------------------------------------
    # persistence (used by the two-level structures, whose first-level
    # nodes store second-level structures by reference)
    # ------------------------------------------------------------------
    def metadata(self) -> tuple:
        """O(1) words describing this index, storable in a page header."""
        return (
            self.blocked,
            self.pst.root_pid,
            self.pst.size,
            self.pst.fanout,
            self.pst._updates_since_rebuild,
            self.on_line.root_pid,
        )

    @classmethod
    def attach(cls, pager: Pager, metadata: tuple) -> "LineBasedIndex":
        """Reconstruct a view from :meth:`metadata` (no I/O)."""
        blocked, pst_root, pst_size, fanout, pending, online_root = metadata
        index = cls.__new__(cls)
        index.pager = pager
        index.blocked = blocked
        index.validate_inserts = False
        index.pst = (
            BlockedPST(pager) if blocked else ExternalPST(pager, fanout=fanout)
        )
        index.pst.fanout = fanout
        index.pst.root_pid = pst_root
        index.pst.size = pst_size
        index.pst._updates_since_rebuild = pending
        index.on_line = DisjointIntervalIndex.attach(pager, online_root)
        return index

    def destroy(self) -> None:
        """Free every page of both component structures."""
        if self.pst.root_pid is not None:
            self.pst._free_subtree(self.pst.root_pid)
            self.pst.root_pid = None
            self.pst.size = 0
        self.on_line.destroy()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert both components: PST heap/x-order and on-line disjointness."""
        self.pst.check_invariants()
        self.on_line.check_invariants()

    def all_segments(self) -> List[LineBasedSegment]:
        out = list(self.pst.all_segments())
        out.extend(s for _lo, _hi, s in self.on_line.items())
        return out

    def __len__(self) -> int:
        return len(self.pst) + sum(1 for _ in self.on_line.items())
