"""The external priority search tree for line-based segments (Section 2).

Construction (Figure 3): the node keeps the ``B`` tallest segments of its
set, ordered by their intersections with the base line; the rest are split
into equal-size parts by base order and built recursively, and a copy of
each part's tallest segment is kept in the node for routing (the paper's
``v.left`` / ``v.right``).  The resulting tree has the *heap property on
apex heights* and *contiguous base-order bands* per subtree; ``v.low``
separates the node's segments from everything below.

Two fan-outs matter:

* ``fanout=2`` — the paper's binary tree: height ``O(log2 n)``, one block
  per node, query ``O(log2 n + t)`` I/Os (Lemmas 1–2).
* ``fanout=Θ(B)`` — :class:`BlockedPST`, our stand-in for the P-range-tree
  acceleration: height ``O(log_B n)``, two blocks per node, query
  ``O(log_B n + t)`` I/Os (Lemma 3; see DESIGN.md §2 for why this
  substitution is faithful).

Only *proper* segments (``h1 > 0``) are stored; segments lying on the base
line belong in a :class:`~repro.storage.disjoint.DisjointIntervalIndex`
(that is where the two-level structures put them too).  The
:class:`~repro.core.linebased.index.LineBasedIndex` facade combines both.

Updates use the amortised scheme of DESIGN.md: single insertions sift
through the height heap along the base-order path (``O(height)`` I/Os);
leaf overflows rebuild the leaf locally; a whole-tree rebuild runs every
``max(B, size/2)`` updates to restore balance (``O(1/B)`` amortised I/Os).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional, Tuple

from ...geometry import HQuery, LineBasedSegment
from ...iosim import Pager
from .node import (
    ChildRef,
    NodeView,
    free_node,
    read_node,
    read_node_cached,
    write_node,
)
from .search import pst_find, pst_report


def _key(segment: LineBasedSegment) -> Tuple:
    return segment.base_order_key()


def _height_order(segment: LineBasedSegment) -> Tuple:
    """Deterministic total order on apex heights (tallest last)."""
    return (segment.h1, segment.base_order_key())


class ExternalPST:
    """External-memory priority search tree over proper line-based segments."""

    def __init__(self, pager: Pager, fanout: int = 2):
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.pager = pager
        self.fanout = fanout
        self.root_pid: Optional[int] = None
        self.size = 0
        self._updates_since_rebuild = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        pager: Pager,
        segments: Iterable[LineBasedSegment],
        fanout: int = 2,
    ) -> "ExternalPST":
        tree = cls(pager, fanout=fanout)
        ordered = sorted(segments, key=_key)
        for s in ordered:
            if s.on_base_line:
                raise ValueError(
                    f"{s!r} lies on the base line; store it in a "
                    f"DisjointIntervalIndex (see LineBasedIndex)"
                )
        tree.size = len(ordered)
        if ordered:
            tree.root_pid = tree._build_subtree(ordered)
        return tree

    def _node_capacity(self) -> int:
        return self.pager.device.block_capacity

    def _parts_for(self, rest: int) -> int:
        """Fan-out for splitting ``rest`` remaining segments.

        Shrinks near the bottom of the tree (a child should be worth at
        least a couple of blocks) so leaf occupancy stays high instead of
        spawning ``fanout`` near-empty subtrees.
        """
        capacity = self._node_capacity()
        return max(2, min(self.fanout, rest, -(-rest // (2 * capacity))))

    def _build_subtree(self, ordered: List[LineBasedSegment]) -> int:
        """Build from base-key-sorted segments; returns the node pid."""
        capacity = self._node_capacity()
        if len(ordered) <= capacity:
            node = write_node(self.pager, ordered, [], low=0)
            return node.pid

        # The B tallest stay here; ties broken deterministically.
        by_height = sorted(ordered, key=_height_order, reverse=True)
        here = set(id(s) for s in by_height[:capacity])
        items = [s for s in ordered if id(s) in here]
        rest = [s for s in ordered if id(s) not in here]
        low = max(s.h1 for s in rest)

        n_parts = self._parts_for(len(rest))
        children: List[ChildRef] = []
        part_size = math.ceil(len(rest) / n_parts)
        for start in range(0, len(rest), part_size):
            part = rest[start : start + part_size]
            child_pid = self._build_subtree(part)
            top = max(part, key=_height_order)
            children.append(
                ChildRef(
                    pid=child_pid,
                    top=top,
                    min_base=_key(part[0]),
                    max_base=_key(part[-1]),
                    count=len(part),
                    split_key=_key(part[0]),
                )
            )
        node = write_node(self.pager, items, children, low=low)
        return node.pid

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def read_root(self) -> Optional[NodeView]:
        if self.root_pid is None:
            return None
        return read_node(self.pager, self.root_pid)

    def read(self, pid: int) -> NodeView:
        # Query-path reads (the search module) come through here and may
        # reuse the page-cached decode; update paths call ``read_node``
        # directly because they mutate the view's lists in place.
        return read_node_cached(self.pager, pid)

    def height(self) -> int:
        """Tree height in nodes (diagnostics; walks the leftmost path)."""
        h = 0
        pid = self.root_pid
        while pid is not None:
            h += 1
            node = read_node(self.pager, pid)
            pid = node.children[0].pid if node.children else None
        return h

    def all_segments(self) -> Iterator[LineBasedSegment]:
        """Every stored segment (pre-order; diagnostics and rebuilds)."""
        if self.root_pid is None:
            return
        stack = [self.root_pid]
        while stack:
            node = read_node(self.pager, stack.pop())
            yield from node.items
            stack.extend(c.pid for c in node.children)

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # queries — delegated to the search module
    # ------------------------------------------------------------------
    def query(self, query: HQuery) -> List[LineBasedSegment]:
        """All stored segments intersecting ``query`` (each exactly once)."""
        return pst_report(self, query)

    def find_leftmost(self, query: HQuery):
        """The paper's ``Find``: deepest-leftmost intersected segment."""
        return pst_find(self, query, side="left")

    def find_rightmost(self, query: HQuery):
        return pst_find(self, query, side="right")

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, segment: LineBasedSegment) -> None:
        """Insert one proper segment (amortised ``O(height)`` I/Os).

        The caller is responsible for the new segment being non-crossing
        with the stored set (the paper's update model); use
        :func:`repro.geometry.lb_cross` to validate externally when needed.
        """
        if segment.on_base_line:
            raise ValueError("on-base-line segments go to the on-line index")
        self.size += 1
        if self.root_pid is None:
            self.root_pid = self._build_subtree([segment])
            self._updates_since_rebuild = 0
            return
        self._sift_insert(self.root_pid, segment)
        self._maybe_rebuild()

    def _sift_insert(self, pid: int, segment: LineBasedSegment) -> None:
        node = read_node(self.pager, pid)
        capacity = self._node_capacity()
        # Place the segment in this node; evict the shortest on overflow.
        items = node.items
        items.append(segment)
        items.sort(key=_key)
        if len(items) <= capacity:
            write_node(self.pager, items, node.children, node.low,
                       items_page=self.pager.fetch(pid))
            return
        evicted = min(items, key=_height_order)
        items.remove(evicted)

        if node.is_leaf:
            # Split the overflowing leaf into a node with children.
            everything = sorted(items + [evicted], key=_key)
            new_pid = self._rebuild_at(pid, everything)
            assert new_pid == pid
            return

        # Route the evicted segment to a child by base key.
        slot = self._route_slot(node.children, _key(evicted))
        child = node.children[slot]
        child.count += 1
        if _height_order(evicted) > _height_order(child.top):
            child.top = evicted
        child.min_base = min(child.min_base, _key(evicted))
        child.max_base = max(child.max_base, _key(evicted))
        new_low = max(node.low, evicted.h1)
        write_node(self.pager, items, node.children, new_low,
                   items_page=self.pager.fetch(pid))
        # The parent now routes to a child that does not hold the evicted
        # segment yet — the classic torn-update window.
        self.pager.crash_point("pst.insert.sift")
        self._sift_insert(child.pid, evicted)

    @staticmethod
    def _route_slot(children: List[ChildRef], key: Tuple) -> int:
        slot = 0
        for i, child in enumerate(children):
            if key >= child.split_key:
                slot = i
            else:
                break
        return slot

    def _rebuild_at(self, pid: int, ordered: List[LineBasedSegment]) -> int:
        """Rebuild the subtree rooted at ``pid`` in place from ``ordered``."""
        node = read_node(self.pager, pid)
        for child in node.children:
            self._free_subtree(child.pid)
        capacity = self._node_capacity()
        page = self.pager.fetch(pid)
        if len(ordered) <= capacity:
            write_node(self.pager, ordered, [], low=0, items_page=page)
            return pid
        by_height = sorted(ordered, key=_height_order, reverse=True)
        here = set(id(s) for s in by_height[:capacity])
        items = [s for s in ordered if id(s) in here]
        rest = [s for s in ordered if id(s) not in here]
        low = max(s.h1 for s in rest)
        n_parts = self._parts_for(len(rest))
        part_size = math.ceil(len(rest) / n_parts)
        children = []
        for start in range(0, len(rest), part_size):
            part = rest[start : start + part_size]
            child_pid = self._build_subtree(part)
            children.append(
                ChildRef(
                    pid=child_pid,
                    top=max(part, key=_height_order),
                    min_base=_key(part[0]),
                    max_base=_key(part[-1]),
                    count=len(part),
                    split_key=_key(part[0]),
                )
            )
        write_node(self.pager, items, children, low, items_page=page)
        return pid

    def _free_subtree(self, pid: int) -> None:
        node = read_node(self.pager, pid)
        for child in node.children:
            self._free_subtree(child.pid)
        free_node(self.pager, node)

    def delete(self, segment: LineBasedSegment) -> bool:
        """Delete one segment by identity (label + geometry).

        Walks the base-order path; on removal, the tallest segment of the
        children is pulled up to keep the height heap intact.
        """
        if self.root_pid is None:
            return False
        removed = self._delete_below(self.root_pid, segment)
        if removed:
            self.pager.crash_point("pst.delete")
            self.size -= 1
            root = read_node(self.pager, self.root_pid)
            if not root.items and root.is_leaf and self.size == 0:
                free_node(self.pager, root)
                self.root_pid = None
            self._maybe_rebuild()
        return removed

    def _delete_below(self, pid: int, segment: LineBasedSegment) -> bool:
        node = read_node(self.pager, pid)
        if segment in node.items:
            node.items.remove(segment)
            self._pull_up(node)
            return True
        if node.is_leaf:
            return False
        key = _key(segment)
        for child in node.children:
            if child.min_base <= key <= child.max_base:
                if self._delete_below(child.pid, segment):
                    child.count -= 1
                    if child.count == 0:
                        self._free_subtree(child.pid)
                        node.children.remove(child)
                    elif segment == child.top:
                        child.top = self._subtree_top(child.pid)
                    write_node(
                        self.pager, node.items, node.children, node.low,
                        items_page=self.pager.fetch(pid),
                    )
                    return True
        return False

    def _pull_up(self, node: NodeView) -> None:
        """Refill ``node`` with the tallest child-subtree segment."""
        while node.children:
            best = max(
                (c for c in node.children if c.count > 0),
                key=lambda c: _height_order(c.top),
                default=None,
            )
            if best is None:
                node.children = []
                break
            promoted = best.top
            node.items.append(promoted)
            node.items.sort(key=_key)
            removed = self._delete_below(best.pid, promoted)
            assert removed, "routing top desynchronised"
            best.count -= 1
            if best.count == 0:
                self._free_subtree(best.pid)
                node.children.remove(best)
            else:
                best.top = self._subtree_top(best.pid)
            break
        low = max((c.top.h1 for c in node.children if c.count > 0), default=0)
        write_node(
            self.pager, node.items, node.children, low,
            items_page=self.pager.fetch(node.pid),
        )

    def _subtree_top(self, pid: int) -> Optional[LineBasedSegment]:
        node = read_node(self.pager, pid)
        if not node.items:
            return None
        return max(node.items, key=_height_order)

    def _maybe_rebuild(self) -> None:
        self._updates_since_rebuild += 1
        threshold = max(self._node_capacity(), self.size // 2)
        if self._updates_since_rebuild >= threshold and self.root_pid is not None:
            everything = sorted(self.all_segments(), key=_key)
            self._free_subtree(self.root_pid)
            # Every page of the old tree is freed, the new one not built.
            self.pager.crash_point("pst.rebuild")
            self.root_pid = self._build_subtree(everything) if everything else None
            self._updates_since_rebuild = 0

    # ------------------------------------------------------------------
    # invariants (tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert the heap property, band consistency and routing copies."""
        if self.root_pid is None:
            assert self.size == 0
            return
        count = self._check_subtree(self.root_pid)
        assert count == self.size, f"size mismatch: {count} != {self.size}"

    def _check_subtree(self, pid: int) -> int:
        node = read_node(self.pager, pid)
        keys = [_key(s) for s in node.items]
        assert keys == sorted(keys), f"node {pid} items not in base order"
        count = len(node.items)
        min_here = min((s.h1 for s in node.items), default=None)
        for child in node.children:
            child_node = read_node(self.pager, pid=child.pid)
            actual_top = max(child_node.items, key=_height_order)
            # Heap property: everything below is no taller than this node's
            # shortest (ties allowed), and the routing copy is the true top.
            sub_count = self._check_subtree(child.pid)
            assert sub_count == child.count, f"child count stale at {pid}"
            assert child.top.h1 <= (min_here if min_here is not None else child.top.h1)
            assert child.top == actual_top, f"routing top stale at {pid}"
            subtree_keys = self._subtree_keys(child.pid)
            # Bands may be conservative (supersets) after deletions; they
            # must always *cover* the subtree.
            assert child.min_base <= min(subtree_keys), f"min_base broken at {pid}"
            assert child.max_base >= max(subtree_keys), f"max_base broken at {pid}"
            count += sub_count
        return count

    def _subtree_keys(self, pid: int) -> List[Tuple]:
        node = read_node(self.pager, pid)
        keys = [_key(s) for s in node.items]
        for child in node.children:
            keys.extend(self._subtree_keys(child.pid))
        return keys


class BlockedPST(ExternalPST):
    """The Lemma-3 variant: fan-out ``Θ(B)`` shortens the path to
    ``O(log_B n)`` I/Os, standing in for the P-range-tree acceleration."""

    def __init__(self, pager: Pager):
        super().__init__(pager, fanout=max(2, pager.device.block_capacity // 4))

    @classmethod
    def build_blocked(
        cls, pager: Pager, segments: Iterable[LineBasedSegment]
    ) -> "BlockedPST":
        tree = cls(pager)
        ordered = sorted(segments, key=_key)
        for s in ordered:
            if s.on_base_line:
                raise ValueError("on-base-line segments go to the on-line index")
        tree.size = len(ordered)
        if ordered:
            tree.root_pid = tree._build_subtree(ordered)
        return tree
