"""Section 2: external priority search trees for line-based segments."""

from .index import LineBasedIndex
from .node import ChildRef, NodeView, read_node, write_node
from .pst import BlockedPST, ExternalPST
from .search import classify, pst_find, pst_report

__all__ = [
    "BlockedPST",
    "ChildRef",
    "ExternalPST",
    "LineBasedIndex",
    "NodeView",
    "classify",
    "pst_find",
    "pst_report",
    "read_node",
    "write_node",
]
