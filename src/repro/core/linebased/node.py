"""On-disk layout of external-PST nodes.

A PST node stores up to ``B`` line-based segments (the tallest of its
subtree) in one *items page*, plus routing information about its children:
for each child, a copy of the child subtree's tallest segment (the paper's
``v.left`` / ``v.right``), the child's base-key band, and its subtree size.

For the binary tree of Section 2 the routing fits in the page header, so a
node occupies exactly one block, as the paper requires.  For the blocked
variant (fan-out Θ(B), our stand-in for the P-range acceleration of
Lemma 3) the routing records go to a second page; a node then occupies two
blocks — still O(1).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ...geometry import LineBasedSegment
from ...iosim import Page, Pager

#: Routing fits in the header up to this many children (each child
#: contributes one record; the header allows 64 entries total).
HEADER_ROUTING_LIMIT = 2


class ChildRef:
    """Routing record for one child subtree."""

    __slots__ = ("pid", "top", "min_base", "max_base", "count", "split_key")

    def __init__(
        self,
        pid: int,
        top: LineBasedSegment,
        min_base: Tuple,
        max_base: Tuple,
        count: int,
        split_key: Tuple,
    ):
        self.pid = pid
        self.top = top  # copy of the tallest segment in the child's subtree
        self.min_base = min_base
        self.max_base = max_base
        self.count = count
        self.split_key = split_key  # lower base-key boundary of the child's band

    def as_tuple(self) -> Tuple:
        return (
            self.pid,
            self.top,
            self.min_base,
            self.max_base,
            self.count,
            self.split_key,
        )

    @classmethod
    def from_tuple(cls, data: Tuple) -> "ChildRef":
        return cls(*data)


class NodeView:
    """An in-memory view of one PST node (items + routing)."""

    __slots__ = ("pid", "items", "children", "low", "routing_pid", "page")

    def __init__(
        self,
        pid: int,
        items: List[LineBasedSegment],
        children: List[ChildRef],
        low: Any,
        routing_pid: Optional[int],
        page: Optional[Page] = None,
    ):
        self.pid = pid
        self.items = items  # sorted by base_order_key
        self.children = children
        self.low = low  # separator height: max apex height below this node
        self.routing_pid = routing_pid
        # The backing items page, kept so scan kernels can reuse its
        # columnar cache (``items`` is a copy; row order matches).
        self.page = page

    @property
    def is_leaf(self) -> bool:
        return not self.children


def write_node(
    pager: Pager,
    items: List[LineBasedSegment],
    children: List[ChildRef],
    low: Any,
    items_page: Optional[Page] = None,
) -> NodeView:
    """Persist a node; returns its view.  Reuses ``items_page`` if given."""
    page = items_page if items_page is not None else pager.alloc()
    page.put_items(items)
    page.set_header("kind", "pst")
    page.set_header("low", low)
    old_routing = page.get_header("routing")
    if len(children) <= HEADER_ROUTING_LIMIT:
        page.set_header("children", [c.as_tuple() for c in children])
        page.set_header("routing", None)
        if old_routing is not None:
            pager.free(old_routing)
        routing_pid = None
    else:
        if old_routing is not None:
            routing = pager.fetch(old_routing)
        else:
            routing = pager.alloc()
        routing.put_items([c.as_tuple() for c in children])
        pager.write(routing)
        page.set_header("children", None)
        page.set_header("routing", routing.page_id)
        routing_pid = routing.page_id
    pager.write(page)
    return NodeView(page.page_id, list(items), children, low, routing_pid, page)


def read_node(pager: Pager, pid: int) -> NodeView:
    """Fetch a node (1 block, or 2 for wide fan-outs)."""
    page = pager.fetch(pid)
    low = page.get_header("low")
    routing_pid = page.get_header("routing")
    if routing_pid is None:
        raw = page.get_header("children") or []
    else:
        raw = pager.fetch(routing_pid).items
    children = [ChildRef.from_tuple(t) for t in raw]
    return NodeView(pid, list(page.items), children, low, routing_pid, page)


def read_node_cached(pager: Pager, pid: int) -> NodeView:
    """:func:`read_node` with the decode memoised on the page.

    Query paths re-read hot nodes constantly; the block fetches (and
    their I/O charges) still happen on every call — only the routing
    decode and the items copy are reused.  The decode is a pure function
    of page content, and ``write_node`` always goes through
    ``put_items``/``set_header``, which drop ``page.views`` — so a
    cached view can never outlive the bytes it decodes.  Update paths
    must keep using :func:`read_node`: they mutate the returned view's
    lists in place, which must never alias a cached copy.
    """
    page = pager.fetch(pid)
    views = page.views
    if views is None:
        views = page.views = {}
    node = views.get("pst")
    if node is not None:
        if node.routing_pid is not None:
            pager.fetch(node.routing_pid)  # same I/O as the uncached read
        return node
    low = page.get_header("low")
    routing_pid = page.get_header("routing")
    if routing_pid is None:
        raw = page.get_header("children") or []
    else:
        raw = pager.fetch(routing_pid).items
    children = [ChildRef.from_tuple(t) for t in raw]
    node = NodeView(pid, list(page.items), children, low, routing_pid, page)
    views["pst"] = node
    return node


def free_node(pager: Pager, node: NodeView) -> None:
    if node.routing_pid is not None:
        pager.free(node.routing_pid)
    pager.free(node.pid)
