"""The paper's contribution: indexes for vertical-segment queries."""

from .api import DirectedSegmentDatabase, ENGINES, SegmentDatabase
from .extensions import ArbitraryQueryIndex, TombstoneDeletions
from .linebased import BlockedPST, ExternalPST, LineBasedIndex
from .solution1 import TwoLevelBinaryIndex
from .solution2 import GTree, TwoLevelIntervalIndex

__all__ = [
    "ArbitraryQueryIndex",
    "BlockedPST",
    "DirectedSegmentDatabase",
    "ENGINES",
    "ExternalPST",
    "GTree",
    "LineBasedIndex",
    "SegmentDatabase",
    "TombstoneDeletions",
    "TwoLevelBinaryIndex",
    "TwoLevelIntervalIndex",
]
