"""Typed results for degraded service and index verification.

When the storage layer surfaces unrecoverable corruption
(:class:`~repro.iosim.errors.ChecksumError`) the database must never
return a silently wrong answer.  Instead it quarantines the damaged
index and serves queries from an authoritative in-memory segment list
(standing in for the base data a production system would keep outside
the index), wrapping each answer in a :class:`DegradedResult` so callers
can tell a degraded answer from a healthy one — the answer itself is
still exact.

:class:`FsckReport` is the output of ``SegmentDatabase.fsck()``: the
offline checksum scan of every page plus each engine's deep
``verify()`` walk (DESIGN.md §10 lists the invariants per engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


class DegradedResult(list):
    """A query answer served by the fallback path of a quarantined index.

    Behaves exactly like the ``List[Segment]`` a healthy query returns
    (it *is* one), with provenance attached:

    ``degraded``
        Always ``True`` — ``getattr(result, "degraded", False)`` is the
        uniform health check.
    ``reason``
        Why the index could not serve this query (e.g. the checksum
        failure that triggered quarantine).
    ``source``
        Which fallback produced the answer (``"scan-fallback"``).
    """

    degraded = True

    def __init__(self, results, reason: str, source: str = "scan-fallback"):
        super().__init__(results)
        self.reason = reason
        self.source = source

    def __repr__(self) -> str:
        return (
            f"DegradedResult({list.__repr__(self)}, reason={self.reason!r}, "
            f"source={self.source!r})"
        )


@dataclass
class FsckReport:
    """The result of an index fsck (``SegmentDatabase.fsck()``)."""

    ok: bool
    engine: str
    pages_scanned: int
    checksum_failures: int
    problems: List[str] = field(default_factory=list)
    quarantined: bool = False

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "engine": self.engine,
            "pages_scanned": self.pages_scanned,
            "checksum_failures": self.checksum_failures,
            "problems": list(self.problems),
            "quarantined": self.quarantined,
        }

    def __str__(self) -> str:
        status = "clean" if self.ok else f"{len(self.problems)} problem(s)"
        lines = [
            f"fsck({self.engine}): {status}; "
            f"{self.pages_scanned} pages scanned, "
            f"{self.checksum_failures} checksum failure(s)"
            + (", index quarantined" if self.quarantined else "")
        ]
        lines.extend(f"  - {p}" for p in self.problems)
        return "\n".join(lines)
