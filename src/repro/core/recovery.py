"""Typed results for degraded service and index verification.

When the storage layer surfaces unrecoverable corruption
(:class:`~repro.iosim.errors.ChecksumError`) the database must never
return a silently wrong answer.  Instead it quarantines the damaged
index and serves queries from an authoritative in-memory segment list
(standing in for the base data a production system would keep outside
the index), wrapping each answer in a :class:`DegradedResult` so callers
can tell a degraded answer from a healthy one — the answer itself is
still exact.

:class:`FsckReport` is the output of ``SegmentDatabase.fsck()``: the
offline checksum scan of every page plus each engine's deep
``verify()`` walk (DESIGN.md §10 lists the invariants per engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


class DegradedResult(list):
    """A query answer served by the fallback path of a quarantined index.

    Behaves exactly like the ``List[Segment]`` a healthy query returns
    (it *is* one), with provenance attached:

    ``degraded``
        Always ``True`` — ``getattr(result, "degraded", False)`` is the
        uniform health check.
    ``reason``
        Why the index could not serve this query (e.g. the checksum
        failure that triggered quarantine).
    ``source``
        Which fallback produced the answer (``"scan-fallback"``).
    """

    degraded = True

    def __init__(self, results, reason: str, source: str = "scan-fallback"):
        super().__init__(results)
        self.reason = reason
        self.source = source

    def __repr__(self) -> str:
        return (
            f"DegradedResult({list.__repr__(self)}, reason={self.reason!r}, "
            f"source={self.source!r})"
        )


class DegradedBatch(list):
    """A batch answer in which one or more shards could not serve.

    Returned by the sharded ``query_batch`` when worker supervision
    exhausted its retries (or a circuit is open) for some shard: the
    batch *is* the usual ``List[List[Segment]]``, but queries routed to
    a dead shard carry :class:`DegradedResult` entries holding only the
    segments the live shards contributed, and the batch itself states
    exactly which shards answered:

    ``degraded``
        Always ``True`` — same uniform health check as
        :class:`DegradedResult`.
    ``shard_coverage``
        ``{shard_index: "ok"}`` for shards that served, or a
        ``"down: <reason>"`` string for shards that did not.  Only
        shards the batch actually routed to appear, so the map is an
        exact statement of what the answer covers.
    ``reason``
        Human-readable one-liner summarizing the failed shards.
    """

    degraded = True

    def __init__(self, results, shard_coverage: dict, reason: str):
        super().__init__(results)
        self.shard_coverage = dict(shard_coverage)
        self.reason = reason

    @property
    def complete(self) -> bool:
        """Did every routed shard serve?  (``False`` for real batches —
        a fully-covered batch is returned as a plain list instead.)"""
        return all(v == "ok" for v in self.shard_coverage.values())

    def __repr__(self) -> str:
        return (
            f"DegradedBatch({len(self)} queries, "
            f"coverage={self.shard_coverage!r}, reason={self.reason!r})"
        )


@dataclass
class FsckReport:
    """The result of an index fsck (``SegmentDatabase.fsck()``)."""

    ok: bool
    engine: str
    pages_scanned: int
    checksum_failures: int
    problems: List[str] = field(default_factory=list)
    quarantined: bool = False

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "engine": self.engine,
            "pages_scanned": self.pages_scanned,
            "checksum_failures": self.checksum_failures,
            "problems": list(self.problems),
            "quarantined": self.quarantined,
        }

    def __str__(self) -> str:
        status = "clean" if self.ok else f"{len(self.problems)} problem(s)"
        lines = [
            f"fsck({self.engine}): {status}; "
            f"{self.pages_scanned} pages scanned, "
            f"{self.checksum_failures} checksum failure(s)"
            + (", index quarantined" if self.quarantined else "")
        ]
        lines.extend(f"  - {p}" for p in self.problems)
        return "\n".join(lines)
