"""Solution 1 (Theorem 1): binary two-level structure for NCT segments."""

from .index import ALPHA, TwoLevelBinaryIndex, split_at_line

__all__ = ["ALPHA", "TwoLevelBinaryIndex", "split_at_line"]
