"""Solution 1 (Section 3, Theorem 1): the binary two-level structure.

First level: a binary tree over vertical *base lines*.  The root's line is
the median of all segment-endpoint x-values; segments intersected by the
line stay at the root, the rest go left/right, recursively, until a leaf
holds at most ``B`` segments in one block.

Second level, per internal node ``v`` with base line ``x = c``:

* ``C(v)`` — segments lying *on* the line (vertical segments at ``x = c``),
  as interior-disjoint y-intervals in a
  :class:`~repro.storage.disjoint.DisjointIntervalIndex`;
* ``L(v)`` / ``R(v)`` — the left/right *parts* of segments crossing the
  line, as line-based segments in
  :class:`~repro.core.linebased.index.LineBasedIndex` (external PSTs).

Costs (Theorem 1): space ``O(n)``; VS query
``O(log2 n · (log_B n + IL*(B)) + t)``; updates ``O(log2 n + (log_B n)/B)``
amortised.  For updates the paper replaces the binary tree with a
``BB[α]``-tree; we maintain the same weight-balance invariant, restoring it
by amortised subtree rebuilds (each rebuild is charged to the insertions
that unbalanced it — the standard equivalent of rotation-with-secondary-
structure-rebuild).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ...geometry import (
    HQuery,
    Segment,
    VerticalBaseFrame,
    VerticalQuery,
)
from ...geometry.kernels import page_query_hits
from ...iosim import Pager, StorageError
from ...storage.disjoint import DisjointIntervalIndex
from ..linebased.index import LineBasedIndex

#: BB[alpha] balance parameter: a child may hold at most (1 - ALPHA) of the
#: endpoint weight routed below its parent (paper: 0 < alpha < 1 - 1/sqrt(2)).
ALPHA = 0.25
#: Slack before tiny subtrees trigger rebuilds.
BALANCE_SLACK = 8


def split_at_line(segment: Segment, c) -> Tuple[Optional[Tuple], Optional[object], Optional[object]]:
    """Split a segment intersected by the vertical line ``x = c``.

    Returns ``(on_line, left_part, right_part)``: the y-interval when the
    segment lies on the line, else the line-based left/right parts (either
    may be ``None`` when the segment only touches the line from one side).
    """
    if segment.is_vertical and segment.start.x == c:
        return ((segment.ymin, segment.ymax), None, None)
    if not segment.spans_x(c):
        raise ValueError(f"{segment!r} does not meet the line x={c}")
    y_c = segment.y_at_unchecked(c)  # non-vertical, spans c: checks redundant
    left = right = None
    if segment.xmin < c:
        left = VerticalBaseFrame(c, "left").to_line_based(
            _part(segment, segment.start, c, y_c), payload=segment
        )
    if segment.xmax > c:
        right = VerticalBaseFrame(c, "right").to_line_based(
            _part(segment, segment.end, c, y_c), payload=segment
        )
    return (None, left, right)


def _part(original: Segment, far_endpoint, c, y_c) -> Segment:
    return Segment.from_coords(
        far_endpoint.x, far_endpoint.y, c, y_c, label=original.label
    ).with_label(original.label)


class TwoLevelBinaryIndex:
    """The paper's first solution for VS queries over NCT segments."""

    def __init__(self, pager: Pager, blocked: bool = True):
        self.pager = pager
        self.blocked = blocked
        self.root_pid: Optional[int] = None
        self.size = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, pager: Pager, segments: Iterable[Segment], blocked: bool = True
    ) -> "TwoLevelBinaryIndex":
        index = cls(pager, blocked=blocked)
        segments = list(segments)
        index.size = len(segments)
        if segments:
            index.root_pid = index._build_subtree(segments)
        return index

    def _build_subtree(self, segments: List[Segment]) -> int:
        capacity = self.pager.device.block_capacity
        if len(segments) <= capacity:
            return self._write_leaf(segments)
        c = self._median_x(segments)
        here, lefts, rights = self._partition(segments, c)
        if not lefts and not rights:
            # Every segment meets the median line; no recursion needed, but
            # the node must still exist to host C/L/R.
            pass
        left_pid = self._build_subtree(lefts) if lefts else self._write_leaf([])
        right_pid = self._build_subtree(rights) if rights else self._write_leaf([])
        return self._write_node(c, here, left_pid, right_pid, len(segments))

    @staticmethod
    def _median_x(segments: List[Segment]):
        xs = sorted(x for s in segments for x in (s.xmin, s.xmax))
        return xs[len(xs) // 2]

    @staticmethod
    def _partition(segments: List[Segment], c):
        here, lefts, rights = [], [], []
        for s in segments:
            if s.xmax < c:
                lefts.append(s)
            elif s.xmin > c:
                rights.append(s)
            else:
                here.append(s)
        return here, lefts, rights

    def _write_leaf(self, segments: List[Segment]) -> int:
        page = self.pager.alloc()
        page.set_header("kind", "leaf")
        page.set_header("weight", len(segments))
        page.put_items(segments)
        self.pager.write(page)
        return page.page_id

    def _write_node(
        self, c, here: List[Segment], left_pid: int, right_pid: int, weight: int
    ) -> int:
        on_line: List[Tuple] = []
        left_parts = []
        right_parts = []
        for s in here:
            interval, lpart, rpart = split_at_line(s, c)
            if interval is not None:
                on_line.append((interval[0], interval[1], s))
            if lpart is not None:
                left_parts.append(lpart)
            if rpart is not None:
                right_parts.append(rpart)
        c_index = DisjointIntervalIndex.build(self.pager, on_line)
        l_index = LineBasedIndex.build(self.pager, left_parts, blocked=self.blocked)
        r_index = LineBasedIndex.build(self.pager, right_parts, blocked=self.blocked)

        page = self.pager.alloc()
        page.set_header("kind", "node")
        page.set_header("x", c)
        page.set_header("left", left_pid)
        page.set_header("right", right_pid)
        page.set_header("weight", weight)
        page.set_header("here", len(here))
        page.set_header("c_root", c_index.root_pid)
        page.set_header("l_meta", l_index.metadata())
        page.set_header("r_meta", r_index.metadata())
        self.pager.write(page)
        return page.page_id

    # ------------------------------------------------------------------
    # node access helpers
    # ------------------------------------------------------------------
    def _c_index(self, page) -> DisjointIntervalIndex:
        return DisjointIntervalIndex.attach(self.pager, page.get_header("c_root"))

    def _lr_index(self, page, side: str) -> LineBasedIndex:
        return LineBasedIndex.attach(self.pager, page.get_header(f"{side}_meta"))

    # Read-only paths additionally memoise the attached views on the
    # page (``page.views``) — the decode is pure and header-driven, and
    # the cache is dropped on every header write, so a cached view can
    # never outlive the routing words it decodes.  Update paths must NOT
    # use these: they mutate the attached object in memory, and a
    # mid-operation crash rolls the pages back but could not un-mutate a
    # cached view.  Attached views also bind the pager they charge I/O
    # through, so the pager is part of the key (a re-attached engine
    # over the same device must not reuse a view whose operation scopes
    # live on the old pager).  Queries revisit hot nodes constantly;
    # re-attaching per visit was a measurable tax.

    def _c_index_cached(self, page) -> DisjointIntervalIndex:
        views = page.views
        if views is None:
            views = page.views = {}
        key = ("c", self.pager)
        index = views.get(key)
        if index is None:
            index = views[key] = self._c_index(page)
        return index

    def _lr_index_cached(self, page, side: str) -> LineBasedIndex:
        views = page.views
        if views is None:
            views = page.views = {}
        key = (side, self.pager)
        index = views.get(key)
        if index is None:
            index = views[key] = self._lr_index(page, side)
        return index

    def _frame(self, page, side: str) -> VerticalBaseFrame:
        views = page.views
        if views is None:
            views = page.views = {}
        frame = views.get(("frame", side))
        if frame is None:
            frame = VerticalBaseFrame(page.get_header("x"), side)
            views[("frame", side)] = frame
        return frame

    def _sync_node(self, page, c_index, l_index, r_index) -> None:
        page.set_header("c_root", c_index.root_pid)
        page.set_header("l_meta", l_index.metadata())
        page.set_header("r_meta", r_index.metadata())
        self.pager.write(page)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, q: VerticalQuery) -> List[Segment]:
        """All stored segments intersecting the generalized vertical query."""
        out: List[Segment] = []
        if self.root_pid is None:
            return out
        tagged = self.pager.device.tagged
        with self.pager.operation():
            pid = self.root_pid
            while True:
                with tagged("first-level"):
                    page = self.pager.fetch(pid)
                if page.get_header("kind") == "leaf":
                    with tagged("leaf"):
                        out.extend(page_query_hits(page, q))
                    return out
                c = page.get_header("x")
                if q.x == c:
                    self._report_on_line_node(page, q, out)
                    return out
                with tagged("PST"):
                    if q.x < c:
                        frame = self._frame(page, "left")
                        hits = self._lr_index_cached(page, "l").query(frame.to_hquery(q))
                        out.extend(h.payload for h in hits)
                        pid = page.get_header("left")
                    else:
                        frame = self._frame(page, "right")
                        hits = self._lr_index_cached(page, "r").query(frame.to_hquery(q))
                        out.extend(h.payload for h in hits)
                        pid = page.get_header("right")

    def query_batch(self, queries: Iterable[VerticalQuery]) -> List[List[Segment]]:
        """Answer many VS queries with one shared descent of the tree.

        The batch is sorted by query ``x`` and routed through the binary
        tree as *groups*: every first-level node on the union of search
        paths is fetched exactly once per batch, no matter how many
        queries pass through it — the ``log`` descent term is paid once
        per group.  The per-query second-level searches (C / L / R) and
        the ``+t`` output term are irreducible and stay per-query, each
        inside its own operation scope so the I/O accounting matches the
        sequential cost model (no batch-wide dedupe masquerading as
        amortization).  Results come back in input order and match
        ``[self.query(q) for q in queries]`` exactly.
        """
        queries = list(queries)
        out: List[List[Segment]] = [[] for _ in queries]
        if self.root_pid is None or not queries:
            return out
        group = sorted(range(len(queries)), key=lambda i: queries[i].x)
        self._query_group(self.root_pid, group, queries, out)
        return out

    def _query_group(
        self,
        pid: int,
        group: List[int],
        queries: List[VerticalQuery],
        out: List[List[Segment]],
    ) -> None:
        """Route one x-sorted group of queries through the subtree at ``pid``."""
        tagged = self.pager.device.tagged
        with tagged("first-level"):
            page = self.pager.fetch(pid)
        with self.pager.pinning(pid):
            if page.get_header("kind") == "leaf":
                items = page.items
                with tagged("leaf"):
                    for i in group:
                        out[i].extend(page_query_hits(page, queries[i], items))
                return
            c = page.get_header("x")
            on_line: List[int] = []
            lefts: List[int] = []
            rights: List[int] = []
            for i in group:
                x = queries[i].x
                if x == c:
                    on_line.append(i)
                elif x < c:
                    lefts.append(i)
                else:
                    rights.append(i)
            for i in on_line:
                with self.pager.operation():
                    self._report_on_line_node(page, queries[i], out[i])
            if lefts:
                l_index = self._lr_index_cached(page, "l")
                frame = self._frame(page, "left")
                with tagged("PST"):
                    for i in lefts:
                        with self.pager.operation():
                            hits = l_index.query(frame.to_hquery(queries[i]))
                        out[i].extend(h.payload for h in hits)
            if rights:
                r_index = self._lr_index_cached(page, "r")
                frame = self._frame(page, "right")
                with tagged("PST"):
                    for i in rights:
                        with self.pager.operation():
                            hits = r_index.query(frame.to_hquery(queries[i]))
                        out[i].extend(h.payload for h in hits)
            if lefts:
                self._query_group(page.get_header("left"), lefts, queries, out)
            if rights:
                self._query_group(page.get_header("right"), rights, queries, out)

    def _report_on_line_node(self, page, q: VerticalQuery, out: List[Segment]) -> None:
        """The query lies exactly on this node's base line (search stops)."""
        tagged = self.pager.device.tagged
        seen: Dict = {}
        with tagged("C"):
            c_index = self._c_index_cached(page)
            for _lo, _hi, s in c_index.overlap(q.ylo, q.yhi):
                seen[s.label] = s
        h0 = HQuery(0, q.ylo, q.yhi)
        with tagged("PST"):
            for side in ("l", "r"):
                for hit in self._lr_index_cached(page, side).query(h0):
                    seen[hit.payload.label] = hit.payload  # crossers occur twice
        out.extend(seen.values())

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, segment: Segment) -> None:
        """Insert an NCT-compatible segment (amortised ``O(log n)`` +
        second-level costs; BB[α]-style rebuilds restore balance)."""
        tagged = self.pager.device.tagged
        with self.pager.operation():
            self.size += 1
            if self.root_pid is None:
                self.root_pid = self._write_leaf([segment])
                return
            path: List[Tuple[Optional[int], Optional[str]]] = []
            pid = self.root_pid
            parent_pid: Optional[int] = None
            parent_side: Optional[str] = None
            while True:
                with tagged("first-level"):
                    page = self.pager.fetch(pid)
                    page.set_header("weight", page.get_header("weight") + 1)
                    self.pager.write(page)
                self.pager.crash_point("solution1.insert.descent")
                if page.get_header("kind") == "leaf":
                    # Leaves are not on the rebalance path: an overflowing
                    # leaf is rebuilt (and freed) right here.
                    with tagged("leaf"):
                        self._insert_into_leaf(page, segment, parent_pid, parent_side)
                    break
                path.append((pid, parent_pid, parent_side))
                c = page.get_header("x")
                if segment.spans_x(c):
                    with tagged("second-level"):
                        self._insert_at_node(page, segment, c)
                    break
                parent_pid, parent_side = pid, ("left" if segment.xmax < c else "right")
                pid = page.get_header(parent_side)
            with tagged("rebuild"):
                self._rebalance_path(path)

    def _insert_at_node(self, page, segment: Segment, c) -> None:
        page.set_header("here", page.get_header("here") + 1)
        self.pager.write(page)
        interval, lpart, rpart = split_at_line(segment, c)
        c_index = self._c_index(page)
        l_index = self._lr_index(page, "l")
        r_index = self._lr_index(page, "r")
        if interval is not None:
            c_index.insert(interval[0], interval[1], segment)
        if lpart is not None:
            l_index.insert(lpart)
        self.pager.crash_point("solution1.insert.second-level")
        if rpart is not None:
            r_index.insert(rpart)
        self._sync_node(page, c_index, l_index, r_index)

    def _insert_into_leaf(
        self, page, segment: Segment, parent_pid: Optional[int], parent_side: Optional[str]
    ) -> None:
        capacity = self.pager.device.block_capacity
        items = list(page.items) + [segment]
        if len(items) <= capacity:
            page.put_items(items)
            self.pager.write(page)
            return
        # Leaf overflow: rebuild this leaf into a proper subtree.
        self.pager.free(page.page_id)
        self.pager.crash_point("solution1.insert.leaf-rebuild")
        new_pid = self._build_subtree(items)
        self._replace_child(parent_pid, parent_side, page.page_id, new_pid)

    def _replace_child(
        self, parent_pid: Optional[int], side: Optional[str], old_pid: int, new_pid: int
    ) -> None:
        if parent_pid is None:
            assert self.root_pid == old_pid
            self.root_pid = new_pid
            return
        parent = self.pager.fetch(parent_pid)
        assert parent.get_header(side) == old_pid
        parent.set_header(side, new_pid)
        self.pager.write(parent)

    def delete(self, segment: Segment) -> bool:
        """Delete a stored segment (located by its x-extent and label)."""
        if self.root_pid is None:
            return False
        tagged = self.pager.device.tagged
        with self.pager.operation():
            path = []
            pid = self.root_pid
            parent_pid: Optional[int] = None
            parent_side: Optional[str] = None
            removed = False
            while True:
                with tagged("first-level"):
                    page = self.pager.fetch(pid)
                self.pager.crash_point("solution1.delete.descent")
                if page.get_header("kind") == "leaf":
                    with tagged("leaf"):
                        removed = self._delete_from_leaf(page, segment)
                        if removed:
                            page.set_header("weight", page.get_header("weight") - 1)
                            self.pager.write(page)
                    break
                path.append((pid, parent_pid, parent_side))
                c = page.get_header("x")
                if segment.spans_x(c):
                    with tagged("second-level"):
                        removed = self._delete_at_node(page, segment, c)
                    break
                parent_pid, parent_side = pid, ("left" if segment.xmax < c else "right")
                pid = page.get_header(parent_side)
            if removed:
                self.size -= 1
                with tagged("first-level"):
                    for node_pid, _pp, _ps in path:
                        node = self.pager.fetch(node_pid)
                        node.set_header("weight", node.get_header("weight") - 1)
                        self.pager.write(node)
                with tagged("rebuild"):
                    self._rebalance_path(path)
            return removed

    def _delete_from_leaf(self, page, segment: Segment) -> bool:
        items = list(page.items)
        for i, s in enumerate(items):
            if s == segment:
                del items[i]
                page.put_items(items)
                self.pager.write(page)
                return True
        return False

    def _delete_at_node(self, page, segment: Segment, c) -> bool:
        interval, lpart, rpart = split_at_line(segment, c)
        c_index = self._c_index(page)
        l_index = self._lr_index(page, "l")
        r_index = self._lr_index(page, "r")
        removed = False
        if interval is not None:
            removed = c_index.delete(interval[0], interval[1])
        else:
            if lpart is not None:
                removed = l_index.delete(lpart)
            if rpart is not None:
                removed = r_index.delete(rpart) or removed
        if removed:
            page.set_header("here", page.get_header("here") - 1)
            self.pager.crash_point("solution1.delete.second-level")
            self._sync_node(page, c_index, l_index, r_index)
        return removed

    # ------------------------------------------------------------------
    # balance maintenance
    # ------------------------------------------------------------------
    def _rebalance_path(self, path) -> None:
        """Rebuild the topmost BB[α]-violating subtree on the update path."""
        for pid, parent_pid, parent_side in path:
            page = self.pager.fetch(pid)
            if page.get_header("kind") == "leaf":
                continue
            left = self.pager.fetch(page.get_header("left"))
            right = self.pager.fetch(page.get_header("right"))
            wl = left.get_header("weight")
            wr = right.get_header("weight")
            total = wl + wr
            if total <= BALANCE_SLACK:
                continue
            if max(wl, wr) > (1 - ALPHA) * total:
                segments = self._collect(pid)
                self._destroy_subtree(pid)
                self.pager.crash_point("solution1.rebalance")
                new_pid = self._build_subtree(segments)
                self._replace_child(parent_pid, parent_side, pid, new_pid)
                return

    def _collect(self, pid: int) -> List[Segment]:
        page = self.pager.fetch(pid)
        if page.get_header("kind") == "leaf":
            return list(page.items)
        out: Dict = {}
        for _lo, _hi, s in self._c_index(page).items():
            out[s.label] = s
        for side in ("l", "r"):
            for lb in self._lr_index(page, side).all_segments():
                out[lb.payload.label] = lb.payload
        segments = list(out.values())
        segments.extend(self._collect(page.get_header("left")))
        segments.extend(self._collect(page.get_header("right")))
        return segments

    def _destroy_subtree(self, pid: int) -> None:
        page = self.pager.fetch(pid)
        if page.get_header("kind") == "node":
            self._c_index(page).destroy()
            self._lr_index(page, "l").destroy()
            self._lr_index(page, "r").destroy()
            self._destroy_subtree(page.get_header("left"))
            self._destroy_subtree(page.get_header("right"))
        self.pager.free(pid)

    def destroy(self) -> None:
        if self.root_pid is not None:
            self._destroy_subtree(self.root_pid)
            self.root_pid = None
            self.size = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def all_segments(self) -> List[Segment]:
        return self._collect(self.root_pid) if self.root_pid is not None else []

    def __len__(self) -> int:
        return self.size

    def height(self) -> int:
        h = 0
        pid = self.root_pid
        while pid is not None:
            h += 1
            page = self.pager.fetch(pid)
            pid = (
                page.get_header("left")
                if page.get_header("kind") == "node"
                else None
            )
        return h

    def check_invariants(self, deep: bool = False) -> None:
        """Verify weights, segment placement and band separation.

        With ``deep=True`` every node's second-level structures are also
        checked (PST heap/x-order, B+-tree order of the on-line index) —
        the fsck walk.
        """
        if self.root_pid is None:
            assert self.size == 0
            return
        total = self._check_subtree(self.root_pid, None, None, deep)
        assert total == self.size, f"size mismatch: {total} != {self.size}"

    def verify(self) -> List[str]:
        """Deep structural check; returns problems instead of raising."""
        try:
            self.check_invariants(deep=True)
        except AssertionError as exc:
            return [f"solution1: invariant violated: {exc}"]
        except StorageError as exc:
            return [f"solution1: {type(exc).__name__}: {exc}"]
        return []

    def _check_subtree(self, pid: int, lo, hi, deep: bool = False) -> int:
        page = self.pager.fetch(pid)
        if page.get_header("kind") == "leaf":
            for s in page.items:
                assert lo is None or s.xmin > lo, f"leaf segment out of band: {s!r}"
                assert hi is None or s.xmax < hi, f"leaf segment out of band: {s!r}"
            assert page.get_header("weight") == len(page.items)
            return len(page.items)
        c = page.get_header("x")
        assert lo is None or c > lo
        assert hi is None or c < hi
        here = set()
        for _l, _h, s in self._c_index(page).items():
            assert s.is_vertical and s.start.x == c
            here.add(s.label)
        for side, frame_side in (("l", "left"), ("r", "right")):
            for lb in self._lr_index(page, side).all_segments():
                s = lb.payload
                assert s.spans_x(c), f"{s!r} misplaced at line x={c}"
                here.add(s.label)
        if deep:
            self._c_index(page).check_invariants()
            self._lr_index(page, "l").check_invariants()
            self._lr_index(page, "r").check_invariants()
        count = len(here)
        assert count == page.get_header("here"), f"here-count stale at {pid}"
        count += self._check_subtree(page.get_header("left"), lo, c, deep)
        count += self._check_subtree(page.get_header("right"), c, hi, deep)
        assert count == page.get_header("weight"), f"weight stale at {pid}"
        return count

    # ------------------------------------------------------------------
    # recovery support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        """In-memory state to restore alongside a journal rollback."""
        return (self.root_pid, self.size)

    def restore_state(self, state: tuple) -> None:
        self.root_pid, self.size = state

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def snapshot_meta(self) -> dict:
        """Everything beyond the page store needed to re-attach the engine."""
        return {"root_pid": self.root_pid, "size": self.size,
                "blocked": self.blocked}

    @classmethod
    def attach(cls, pager: Pager, meta: dict) -> "TwoLevelBinaryIndex":
        """Re-attach to an already-populated page store (no build I/O)."""
        index = cls(pager, blocked=meta["blocked"])
        index.root_pid = meta["root_pid"]
        index.size = meta["size"]
        return index
