"""Mergeable log-bucketed latency histograms.

The exact :class:`~repro.telemetry.metrics.Histogram` keeps every
observation — fine for thousands of I/O counts, wrong for a serving
daemon observing millions of wall-clock samples.  This module adds the
serving-grade variant: a histogram over *log-spaced* buckets whose
memory is bounded by the bucket count regardless of how many samples it
absorbs, whose quantiles carry a guaranteed relative error bound, and
whose merge is associative and commutative — so per-worker histograms
shipped across process boundaries combine into exactly the histogram a
single process would have built.

Design (the HdrHistogram/DDSketch family, reduced to its core):

* bucket ``i`` covers ``[min_value * gamma**i, min_value * gamma**(i+1))``
  with ``gamma = 2 ** (1 / buckets_per_octave)``;
* a sample is counted in the bucket holding it, and a quantile is
  answered with the bucket's *geometric midpoint*, so any reported
  quantile is within a factor ``sqrt(gamma)`` of the true sample —
  a relative error of at most ``sqrt(gamma) - 1`` (~4.4% at the default
  8 buckets per octave);
* samples below ``min_value`` land in a single underflow bucket
  (reported as ``min_value``; latencies that small are noise here) and
  samples at or above ``max_value`` clamp into the top bucket;
* ``count`` / ``sum`` / ``min`` / ``max`` are tracked exactly, so means
  and totals carry no bucketing error at all.

The default range (1 microsecond to ~2 minutes) needs at most
``ceil(log2(2**27)) * 8 = 216`` buckets, stored sparsely.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple

#: Quantiles every exporter reports, as (label, p) pairs.
REPORTED_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 50.0), ("p95", 95.0), ("p99", 99.0),
)


class LatencyHistogram:
    """Bounded-memory log-bucketed histogram of positive values (seconds).

    Two histograms with the same geometry merge bucket-by-bucket;
    :meth:`merge` is associative and commutative, and merging is exactly
    equivalent to having observed both sample streams in one histogram.
    """

    __slots__ = ("name", "min_value", "max_value", "buckets_per_octave",
                 "_gamma", "_log_gamma", "_bucket_limit", "_buckets",
                 "count", "sum", "min", "max")

    def __init__(self, name: str = "", *, min_value: float = 1e-6,
                 max_value: float = 128.0, buckets_per_octave: int = 8):
        if min_value <= 0 or max_value <= min_value:
            raise ValueError("need 0 < min_value < max_value")
        if buckets_per_octave < 1:
            raise ValueError("buckets_per_octave must be >= 1")
        self.name = name
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.buckets_per_octave = int(buckets_per_octave)
        self._gamma = 2.0 ** (1.0 / buckets_per_octave)
        self._log_gamma = math.log(self._gamma)
        # Bucket index of max_value: everything at or above clamps here.
        self._bucket_limit = int(
            math.ceil(math.log(max_value / min_value) / self._log_gamma)
        )
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def relative_error_bound(self) -> float:
        """Worst-case relative quantile error (inside the bucket range)."""
        return math.sqrt(self._gamma) - 1.0

    @property
    def max_buckets(self) -> int:
        """The hard cap on distinct buckets (underflow included)."""
        return self._bucket_limit + 2

    @property
    def bucket_count(self) -> int:
        """Distinct buckets currently occupied."""
        return len(self._buckets)

    def _index_of(self, value: float) -> int:
        if value < self.min_value:
            return -1  # underflow bucket
        idx = int(math.log(value / self.min_value) / self._log_gamma)
        return min(idx, self._bucket_limit)

    def _bucket_value(self, index: int) -> float:
        """The representative (geometric midpoint) of a bucket."""
        if index < 0:
            return self.min_value
        mid = self.min_value * self._gamma ** (index + 0.5)
        return min(mid, self.max_value)

    def _same_geometry(self, other: "LatencyHistogram") -> bool:
        return (self.min_value == other.min_value
                and self.max_value == other.max_value
                and self.buckets_per_octave == other.buckets_per_octave)

    # ------------------------------------------------------------------
    # recording and merging
    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency cannot be negative: {value}")
        value = float(value)
        idx = self._index_of(value)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into ``self`` (in place; returns ``self``).

        Requires identical bucket geometry.  ``a.merge(b)`` leaves ``a``
        equal to a histogram that observed both sample streams, which is
        what makes the operation associative and commutative.
        """
        if not self._same_geometry(other):
            raise ValueError(
                f"cannot merge histograms with different geometry: "
                f"({self.min_value}, {self.max_value}, "
                f"{self.buckets_per_octave}) vs ({other.min_value}, "
                f"{other.max_value}, {other.buckets_per_octave})"
            )
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        return self

    @classmethod
    def merged(cls, histograms: Iterable["LatencyHistogram"],
               name: str = "") -> "LatencyHistogram":
        """A fresh histogram equal to the merge of ``histograms``."""
        out: Optional[LatencyHistogram] = None
        for h in histograms:
            if out is None:
                out = cls(name or h.name, min_value=h.min_value,
                          max_value=h.max_value,
                          buckets_per_octave=h.buckets_per_octave)
            out.merge(h)
        return out if out is not None else cls(name)

    # ------------------------------------------------------------------
    # quantiles
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> Optional[float]:
        """The value at percentile ``p`` (nearest-rank over buckets).

        Within a factor ``sqrt(gamma)`` of the exact sample percentile
        for values inside ``[min_value, max_value)``; the extreme ranks
        are answered with the exactly-tracked ``min``/``max``.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return None
        if p == 0:
            return self.min
        if p == 100:
            return self.max
        rank = max(1, math.ceil(p * self.count / 100.0))
        seen = 0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                # Clamp to the exact extremes: a one-bucket histogram
                # must not report a midpoint outside [min, max].
                value = self._bucket_value(idx)
                return max(self.min, min(self.max, value))
        return self.max  # pragma: no cover - rank <= count by construction

    # ------------------------------------------------------------------
    # (de)serialization — for crossing process boundaries
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = {
            "type": "latency_histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {str(i): n for i, n in sorted(self._buckets.items())},
            "geometry": {
                "min_value": self.min_value,
                "max_value": self.max_value,
                "buckets_per_octave": self.buckets_per_octave,
            },
        }
        for label, p in REPORTED_QUANTILES:
            out[label] = self.percentile(p)
        return out

    @classmethod
    def from_dict(cls, data: dict, name: str = "") -> "LatencyHistogram":
        geo = data["geometry"]
        h = cls(name, min_value=geo["min_value"], max_value=geo["max_value"],
                buckets_per_octave=geo["buckets_per_octave"])
        h._buckets = {int(i): int(n) for i, n in data["buckets"].items()}
        h.count = int(data["count"])
        h.sum = float(data["sum"])
        h.min = data["min"]
        h.max = data["max"]
        return h

    def summary(self) -> dict:
        """The compact form benchmarks archive: count/mean/quantiles in ms."""
        out = {
            "count": self.count,
            "mean_ms": round(self.mean * 1e3, 3),
            "min_ms": None if self.min is None else round(self.min * 1e3, 3),
            "max_ms": None if self.max is None else round(self.max * 1e3, 3),
        }
        for label, p in REPORTED_QUANTILES:
            q = self.percentile(p)
            out[f"{label}_ms"] = None if q is None else round(q * 1e3, 3)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LatencyHistogram({self.name!r}, count={self.count}, "
                f"p50={self.percentile(50)}, p99={self.percentile(99)})")
