"""A small metrics registry: counters, gauges and histograms.

Benchmarks and the :class:`~repro.core.api.SegmentDatabase` facade feed
operation-level measurements (I/Os per query, buffer hit rate, result
sizes, node fan-outs) into a :class:`MetricsRegistry`; the registry
renders them as JSON (machine-readable archives under
``benchmarks/results/``) or Markdown (human-readable report sections).

Everything here is driven by the simulated-I/O layer — observations are
integers or exact fractions of I/O counts, never wall-clock samples — so
registries are deterministic and comparable across runs.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .latency import LatencyHistogram


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (e.g. buffer hit rate, height, blocks used)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value) -> None:
        self.value = value

    def to_dict(self) -> dict:
        value = self.value
        if value is not None and not isinstance(value, (int, float)):
            value = float(value)  # Fractions and other exact numerics
        return {"type": "gauge", "value": value}


class Histogram:
    """A distribution of observed values with exact summary statistics.

    Observations are kept (the workloads here are thousands of queries,
    not millions of requests), so percentiles are exact rather than
    bucket-approximated.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str):
        self.name = name
        self._values: List = []

    def observe(self, value) -> None:
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self):
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self._values else 0.0

    @property
    def min(self):
        return min(self._values) if self._values else None

    @property
    def max(self):
        return max(self._values) if self._values else None

    def percentile(self, p: float):
        """Exact nearest-rank percentile, ``p`` in [0, 100]."""
        if not self._values:
            return None
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self._values)
        rank = max(0, -(-int(p * len(ordered)) // 100) - 1) if p else 0
        return ordered[min(rank, len(ordered) - 1)]

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": float(self.sum),
            "mean": self.mean,
            "min": None if self.min is None else float(self.min),
            "max": None if self.max is None else float(self.max),
            "p50": None if self.count == 0 else float(self.percentile(50)),
            "p90": None if self.count == 0 else float(self.percentile(90)),
            "p99": None if self.count == 0 else float(self.percentile(99)),
        }


class MetricsRegistry:
    """Named metrics with find-or-create accessors and exporters."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._latencies: Dict[str, LatencyHistogram] = {}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        got = self._counters.get(name)
        if got is None:
            got = self._counters[name] = Counter(name)
        return got

    def gauge(self, name: str) -> Gauge:
        got = self._gauges.get(name)
        if got is None:
            got = self._gauges[name] = Gauge(name)
        return got

    def histogram(self, name: str) -> Histogram:
        got = self._histograms.get(name)
        if got is None:
            got = self._histograms[name] = Histogram(name)
        return got

    def latency(self, name: str) -> LatencyHistogram:
        """A log-bucketed wall-clock histogram (seconds, bounded memory).

        Unlike :meth:`histogram` these hold non-deterministic wall-clock
        samples; keeping the kinds separate keeps the exact-I/O metrics
        reproducible run-to-run while latency still gets p50/p95/p99.
        """
        got = self._latencies.get(name)
        if got is None:
            got = self._latencies[name] = LatencyHistogram(name)
        return got

    def merge_latency(self, name: str, other: LatencyHistogram) -> None:
        """Fold a (possibly remote) latency histogram into ``name``."""
        self.latency(name).merge(other)

    def names(self) -> List[str]:
        return sorted(
            list(self._counters) + list(self._gauges)
            + list(self._histograms) + list(self._latencies)
        )

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {}
        for store in (self._counters, self._gauges, self._histograms,
                      self._latencies):
            for name, metric in store.items():
                out[name] = metric.to_dict()
        return {name: out[name] for name in sorted(out)}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_markdown(self) -> str:
        """One Markdown table per metric kind (omitting empty kinds)."""
        sections: List[str] = []
        if self._counters:
            rows = [
                f"| {name} | {c.value} |"
                for name, c in sorted(self._counters.items())
            ]
            sections.append(
                "| counter | value |\n|---|---|\n" + "\n".join(rows)
            )
        if self._gauges:
            rows = [
                f"| {name} | {_fmt(g.value)} |"
                for name, g in sorted(self._gauges.items())
            ]
            sections.append("| gauge | value |\n|---|---|\n" + "\n".join(rows))
        if self._histograms:
            rows = []
            for name, h in sorted(self._histograms.items()):
                rows.append(
                    f"| {name} | {h.count} | {_fmt(h.mean)} | {_fmt(h.min)} "
                    f"| {_fmt(h.percentile(50))} | {_fmt(h.percentile(90))} "
                    f"| {_fmt(h.max)} |"
                )
            sections.append(
                "| histogram | count | mean | min | p50 | p90 | max |\n"
                "|---|---|---|---|---|---|---|\n" + "\n".join(rows)
            )
        if self._latencies:
            rows = []
            for name, h in sorted(self._latencies.items()):
                s = h.summary()
                rows.append(
                    f"| {name} | {s['count']} | {_fmt(s['mean_ms'])} "
                    f"| {_fmt(s['p50_ms'])} | {_fmt(s['p95_ms'])} "
                    f"| {_fmt(s['p99_ms'])} | {_fmt(s['max_ms'])} |"
                )
            sections.append(
                "| latency (ms) | count | mean | p50 | p95 | p99 | max |\n"
                "|---|---|---|---|---|---|---|\n" + "\n".join(rows)
            )
        return "\n\n".join(sections) if sections else "(no metrics recorded)"


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
