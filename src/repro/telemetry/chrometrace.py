"""Chrome-trace-event / Perfetto JSON export of wall-clock spans.

Renders a list of :class:`~repro.telemetry.spans.SpanRecord` as the
Trace Event Format consumed by ``chrome://tracing``, Perfetto
(https://ui.perfetto.dev) and Speedscope: a JSON object with a
``traceEvents`` array of complete ("ph": "X") events, timestamps and
durations in *microseconds*, grouped by pid/tid lanes.  Process
metadata events name each lane so a multi-process serving run reads as
``parent`` plus one ``worker`` row per pool process, making dispatch,
pickle and cold-attach costs visible as gaps and blocks on one shared
time axis.

The exporter is pure data-in/data-out (no I/O beyond
:func:`write_chrome_trace`), so tests can validate the schema directly.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from .spans import SpanRecord

#: Schema constants of the Trace Event Format.
COMPLETE_EVENT = "X"
METADATA_EVENT = "M"
DISPLAY_UNIT = "ms"


def _as_record(span) -> SpanRecord:
    if isinstance(span, SpanRecord):
        return span
    return SpanRecord.from_dict(span)


def to_chrome_trace(spans: Iterable, *, parent_pid: Optional[int] = None,
                    metadata: Optional[dict] = None) -> dict:
    """Convert span records (objects or dicts) to a trace-event document.

    ``parent_pid`` names that process's lane "parent" (workers are named
    ``worker-<pid>``); extra ``metadata`` lands in the document's
    ``otherData`` block, which Perfetto shows in the trace info panel.
    """
    records = [_as_record(s) for s in spans]
    events: List[dict] = []
    seen_pids: Dict[int, bool] = {}
    origin = min((r.start for r in records), default=0.0)
    for r in records:
        events.append({
            "name": r.name,
            "cat": r.category or "span",
            "ph": COMPLETE_EVENT,
            "ts": round((r.start - origin) * 1e6, 3),
            "dur": round(r.duration * 1e6, 3),
            "pid": r.pid,
            "tid": r.tid,
            "args": dict(r.args, trace_id=r.trace_id, span_id=r.span_id,
                         parent_id=r.parent_id),
        })
        seen_pids.setdefault(r.pid, True)
    for pid in sorted(seen_pids):
        name = "parent" if pid == parent_pid else f"worker-{pid}"
        events.append({
            "name": "process_name",
            "ph": METADATA_EVENT,
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        })
    other = {"origin_epoch_s": origin}
    if metadata:
        other.update(metadata)
    return {
        "traceEvents": events,
        "displayTimeUnit": DISPLAY_UNIT,
        "otherData": other,
    }


def write_chrome_trace(path: str, spans: Iterable, *,
                       parent_pid: Optional[int] = None,
                       metadata: Optional[dict] = None) -> dict:
    """Write the trace-event JSON to ``path``; returns the document."""
    doc = to_chrome_trace(spans, parent_pid=parent_pid, metadata=metadata)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return doc


def validate_chrome_trace(doc: dict) -> List[str]:
    """Schema problems in a trace-event document ([] when valid).

    Checks the subset of the Trace Event Format this exporter emits:
    every event needs ``name``/``ph``/``pid``/``tid``; complete events
    need non-negative microsecond ``ts`` and ``dur``; the document must
    be JSON-serializable.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in (COMPLETE_EVENT, METADATA_EVENT):
            problems.append(f"event {i}: unexpected ph {ph!r}")
        if ph == COMPLETE_EVENT:
            for key in ("ts", "dur"):
                value = ev.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"event {i}: bad {key}: {value!r}")
    try:
        json.dumps(doc)
    except (TypeError, ValueError) as exc:
        problems.append(f"not JSON-serializable: {exc}")
    return problems


def phase_totals(spans: Sequence, names: Sequence[str]) -> Dict[str, float]:
    """Total seconds per listed span name (0.0 for absent names)."""
    totals = {name: 0.0 for name in names}
    for span in spans:
        r = _as_record(span)
        if r.name in totals:
            totals[r.name] += r.duration
    return totals
