"""Cost-anatomy reports: ``EXPLAIN`` for simulated-I/O queries.

:func:`trace_call` runs one operation under a fresh
:class:`~repro.telemetry.trace.TraceContext` while diffing the device's
flat counters, and packages both views into an :class:`ExplainReport`.
Because the I/O layer charges every block transfer to the innermost open
span, the per-phase counts of the report sum *exactly* to the flat
:class:`~repro.iosim.stats.IOStats` diff — the report is an accounting
identity, not a sample.

The phase names map onto the paper's cost terms (see DESIGN.md §7):
first-level routing is the ``log_B n`` descent, the PST ``descent``
phase is the second-level search, ``report``/``leaf`` phases are the
output term ``t``, and the G-tree's ``search`` vs ``cascade-hop`` split
is the ``log_B n`` vs ``log2 B`` trade of fractional cascading.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from . import trace


class PhaseStats:
    """Events attributed to one phase path (exclusive of sub-phases)."""

    __slots__ = ("reads", "writes", "hits", "misses", "pins", "seconds")

    def __init__(self, reads: int = 0, writes: int = 0, hits: int = 0,
                 misses: int = 0, pins: int = 0, seconds: float = 0.0):
        self.reads = reads
        self.writes = writes
        self.hits = hits
        self.misses = misses
        self.pins = pins
        self.seconds = seconds  # wall-clock self time; 0.0 unless timed

    @property
    def io_total(self) -> int:
        return self.reads + self.writes

    @classmethod
    def from_span(cls, span: trace.Span) -> "PhaseStats":
        return cls(reads=span.reads, writes=span.writes, hits=span.hits,
                   misses=span.misses, pins=span.pins, seconds=span.seconds)

    def to_dict(self) -> dict:
        out = {
            "reads": self.reads,
            "writes": self.writes,
            "hits": self.hits,
            "misses": self.misses,
            "pins": self.pins,
            "total": self.io_total,
        }
        if self.seconds:
            out["seconds"] = self.seconds
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseStats(reads={self.reads}, writes={self.writes})"


class ExplainReport:
    """The structured cost anatomy of one traced operation.

    Attributes
    ----------
    engine:
        Which engine/structure answered the operation.
    description:
        Human-readable description of the operation (usually the query).
    results:
        Number of reported segments.
    io:
        The flat :class:`~repro.iosim.stats.IOStats` diff of the window.
    phases:
        Ordered ``path -> PhaseStats``; paths are ``/``-joined span names
        below the root, the root's own (otherwise-unattributed) I/O
        appearing under its plain name.  Phases sum exactly to ``io``.
    buffer:
        ``{"hits", "misses", "hit_rate"}`` for the traced window when a
        buffer pool sits under the engine, else ``None``.
    """

    def __init__(self, engine: str, description: str, results: int,
                 io, phases: "Dict[str, PhaseStats]",
                 buffer: Optional[dict] = None):
        self.engine = engine
        self.description = description
        self.results = results
        self.io = io
        self.phases = phases
        self.buffer = buffer

    # ------------------------------------------------------------------
    # the accounting identity
    # ------------------------------------------------------------------
    @property
    def phase_io_total(self) -> int:
        return sum(p.io_total for p in self.phases.values())

    @property
    def balanced(self) -> bool:
        """True when per-phase I/Os sum exactly to the flat diff."""
        return self.phase_io_total == self.io.total

    @property
    def seconds_total(self) -> float:
        """Wall-clock seconds over all phases (0.0 unless traced timed)."""
        return sum(p.seconds for p in self.phases.values())

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "description": self.description,
            "results": self.results,
            "io": self.io.to_dict(),
            "io_total": self.io.total,
            "phases": {path: p.to_dict() for path, p in self.phases.items()},
            "phase_io_total": self.phase_io_total,
            "balanced": self.balanced,
            "buffer": self.buffer,
        }

    def top_level(self) -> "Dict[str, int]":
        """Charged I/O per top-level phase (sub-phases rolled up).

        "Top level" means the first span below the root; the root's own
        unattributed I/O stays under the root's plain name.
        """
        out: Dict[str, int] = {}
        for path, stats in self.phases.items():
            parts = path.split("/")
            head = parts[1] if len(parts) > 1 else parts[0]
            out[head] = out.get(head, 0) + stats.io_total
        return out

    def to_markdown(self) -> str:
        lines = [
            f"## EXPLAIN — {self.description}",
            "",
            f"- engine: `{self.engine}`",
            f"- results: {self.results}",
            f"- I/O: {self.io} (total {self.io.total})",
        ]
        if self.buffer is not None:
            lines.append(
                f"- buffer: {self.buffer['hits']} hits / "
                f"{self.buffer['misses']} misses "
                f"(hit rate {self.buffer['hit_rate']:.1%})"
            )
        lines += [
            f"- phase sum: {self.phase_io_total} "
            f"({'balanced' if self.balanced else 'UNBALANCED'})",
            "",
            "| phase | reads | writes | I/O | share |",
            "|---|---|---|---|---|",
        ]
        total = self.io.total
        for path, stats in self.phases.items():
            if stats.io_total == 0 and stats.hits == 0 and stats.pins == 0:
                continue
            share = stats.io_total / total if total else 0.0
            lines.append(
                f"| {path} | {stats.reads} | {stats.writes} "
                f"| {stats.io_total} | {share:.0%} |"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_markdown()


def collect_phases(ctx: trace.TraceContext) -> "Dict[str, PhaseStats]":
    """Flatten a trace into ordered ``path -> PhaseStats``.

    Every span is included (even all-zero ones are dropped only by the
    renderers, not here) so the sum identity holds structurally.
    """
    phases: Dict[str, PhaseStats] = {}
    for path, span in ctx.root.walk():
        phases[path] = PhaseStats.from_span(span)
    return phases


def trace_call(device, fn: Callable[[], object], *, engine: str = "",
               description: str = "", buffer_pool=None,
               root_name: str = "query",
               timed: bool = False) -> Tuple[object, ExplainReport]:
    """Run ``fn`` traced and measured; return ``(result, report)``.

    ``device`` must be the :class:`~repro.iosim.disk.BlockDevice` whose
    counters the operation is charged to (pass the *device*, not the
    buffer pool, so the flat diff counts real block transfers).  When a
    ``buffer_pool`` is given, its hit/miss movement over the window is
    reported alongside.  ``timed=True`` also attributes wall-clock self
    time to every phase (used by the slow-query log; the default keeps
    reports exactly reproducible).
    """
    pool_hits = pool_misses = 0
    if buffer_pool is not None:
        pool_hits, pool_misses = buffer_pool.hits, buffer_pool.misses
    before = device.snapshot()
    with trace.tracing(root_name, timed=timed) as ctx:
        result = fn()
    stats = device.snapshot() - before
    buffer = None
    if buffer_pool is not None:
        hits = buffer_pool.hits - pool_hits
        misses = buffer_pool.misses - pool_misses
        touched = hits + misses
        buffer = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / touched if touched else 0.0,
        }
    try:
        results = len(result)  # type: ignore[arg-type]
    except TypeError:
        results = 0
    report = ExplainReport(
        engine=engine,
        description=description,
        results=results,
        io=stats,
        phases=collect_phases(ctx),
        buffer=buffer,
    )
    return result, report
