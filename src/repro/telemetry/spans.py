"""Wall-clock spans with cross-process trace propagation.

:mod:`repro.telemetry.trace` deliberately measures *simulated I/Os* and
nothing else — reproducible, but blind to where real time goes.  The E17
serving cliff (a process pool far slower than the synchronous path) is a
wall-clock phenomenon: time spent pickling batches, dispatching tasks and
cold-loading snapshots inside workers never shows up in an I/O count.
This module is the latency-domain twin of the I/O tracer:

* a :class:`SpanRecord` is one timed interval — name, wall-clock start
  and duration, the process/thread that ran it, and the ``trace_id`` of
  the request it belongs to;
* a :class:`WallTracer` collects records in one process; the module-level
  :func:`timed_span` hook records into the installed tracer and is a
  no-op when none is installed (same zero-cost-off contract as the I/O
  tracer);
* a :class:`SpanContext` is the picklable capsule a parent sends across
  a process boundary; the worker opens its own tracer *continuing the
  parent's trace id*, and ships its records back with the results, so the
  parent reassembles one coherent multi-process timeline.

Timestamps are ``time.time()`` (shared epoch clock) so spans from
different processes on the same host line up on one axis; durations are
measured with ``time.perf_counter()`` so they do not suffer wall-clock
steps.  Export with :mod:`repro.telemetry.chrometrace`.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from typing import Dict, Iterator, List, Optional

from contextlib import contextmanager


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (unique per request/run)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class SpanRecord:
    """One completed timed span, plain-data and picklable."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "pid", "tid",
                 "start", "duration", "category", "args")

    def __init__(self, name: str, trace_id: str, start: float,
                 duration: float, *, span_id: Optional[str] = None,
                 parent_id: Optional[str] = None, pid: Optional[int] = None,
                 tid: Optional[int] = None, category: str = "",
                 args: Optional[dict] = None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id or new_span_id()
        self.parent_id = parent_id
        self.pid = os.getpid() if pid is None else pid
        self.tid = threading.get_ident() if tid is None else tid
        self.start = start          # epoch seconds
        self.duration = duration    # seconds
        self.category = category
        self.args = dict(args) if args else {}

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "start": self.start,
            "duration": self.duration,
            "category": self.category,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(
            data["name"], data["trace_id"], data["start"], data["duration"],
            span_id=data.get("span_id"), parent_id=data.get("parent_id"),
            pid=data.get("pid"), tid=data.get("tid"),
            category=data.get("category", ""), args=data.get("args"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanRecord({self.name!r}, trace={self.trace_id}, "
                f"pid={self.pid}, {self.duration * 1e3:.3f}ms)")


class SpanContext:
    """The picklable trace coordinates handed to a worker process."""

    __slots__ = ("trace_id", "parent_id")

    def __init__(self, trace_id: str, parent_id: Optional[str] = None):
        self.trace_id = trace_id
        self.parent_id = parent_id

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "parent_id": self.parent_id}

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> Optional["SpanContext"]:
        if data is None:
            return None
        return cls(data["trace_id"], data.get("parent_id"))


#: The installed tracer, or ``None`` (the zero-cost-off slot).
_ACTIVE: Optional["WallTracer"] = None


def active() -> Optional["WallTracer"]:
    return _ACTIVE


class WallTracer:
    """Collects :class:`SpanRecord` objects for one process.

    A tracer carries one ``trace_id``; spans opened through it nest via
    an explicit stack so each record knows its parent.  Records shipped
    back from workers are adopted with :meth:`extend` — a worker span
    created from this tracer's :meth:`context` carries the same trace id,
    which is what the propagation tests pin.
    """

    def __init__(self, trace_id: Optional[str] = None,
                 parent_id: Optional[str] = None):
        self.trace_id = trace_id or new_trace_id()
        self.records: List[SpanRecord] = []
        self._parent_stack: List[Optional[str]] = [parent_id]

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, category: str = "",
             **args) -> Iterator[SpanRecord]:
        """Time a scope; the record is appended when the scope exits."""
        record = SpanRecord(
            name, self.trace_id, time.time(), 0.0,
            parent_id=self._parent_stack[-1], category=category, args=args,
        )
        self._parent_stack.append(record.span_id)
        t0 = time.perf_counter()
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - t0
            self._parent_stack.pop()
            self.records.append(record)

    def add(self, name: str, start: float, duration: float,
            category: str = "", **args) -> SpanRecord:
        """Record an interval measured externally (e.g. a dispatch gap)."""
        record = SpanRecord(
            name, self.trace_id, start, duration,
            parent_id=self._parent_stack[-1], category=category, args=args,
        )
        self.records.append(record)
        return record

    def extend(self, records: List[dict]) -> None:
        """Adopt serialized span records shipped back from a worker."""
        for data in records:
            self.records.append(SpanRecord.from_dict(data))

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def context(self) -> SpanContext:
        """The capsule to pickle into a worker task."""
        return SpanContext(self.trace_id, self._parent_stack[-1])

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def by_name(self) -> Dict[str, float]:
        """Total seconds per span name (the phase decomposition)."""
        out: Dict[str, float] = {}
        for r in self.records:
            out[r.name] = out.get(r.name, 0.0) + r.duration
        return out

    def to_dicts(self) -> List[dict]:
        return [r.to_dict() for r in self.records]


# ----------------------------------------------------------------------
# module-level surface
# ----------------------------------------------------------------------
@contextmanager
def wall_tracing(trace_id: Optional[str] = None,
                 parent_id: Optional[str] = None) -> Iterator[WallTracer]:
    """Install a :class:`WallTracer` for the scope (nesting shadows)."""
    global _ACTIVE
    previous = _ACTIVE
    tracer = WallTracer(trace_id, parent_id)
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _NoopSpan()


def timed_span(name: str, category: str = "", **args):
    """Open a wall-clock span in the installed tracer (no-op when off)."""
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer.span(name, category, **args)
