"""A threshold-triggered slow-query log.

Latency histograms say *that* a p99 exists; the slow-query log says
*which queries* live in it and *where their time went*.  When an
operation's wall-clock latency crosses the configured threshold, the log
captures the query, the latency, and a cost breakdown (the ``explain()``
anatomy when the caller can produce one), in a bounded ring buffer so a
long-running server cannot grow it without limit.

Entries are plain dicts so they pickle across the worker boundary: the
sharded serving paths run shard-local logs inside worker processes and
ship fresh entries back to the parent with each batch's results.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

DEFAULT_CAPACITY = 128


class SlowQueryLog:
    """Bounded ring of slow-operation records.

    ``threshold_s`` is the latency at or above which an operation is
    logged.  ``record`` is cheap for fast operations (one comparison);
    the explain callback only runs for operations that crossed the
    threshold, so the common path never pays for the diagnosis.
    """

    def __init__(self, threshold_s: float, capacity: int = DEFAULT_CAPACITY):
        if threshold_s < 0:
            raise ValueError("threshold_s must be >= 0")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_s = float(threshold_s)
        self.capacity = int(capacity)
        self._entries: Deque[dict] = deque(maxlen=capacity)
        self.dropped = 0       # evicted by the ring bound
        self.recorded = 0      # total entries ever logged

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, kind: str, description: str, latency_s: float, *,
               explain=None, **extra) -> Optional[dict]:
        """Log one operation if it was slow; returns the entry or ``None``.

        ``explain`` may be a ready dict or a zero-argument callable
        producing one (run only past the threshold; exceptions inside it
        are captured into the entry rather than failing the query path).
        """
        if latency_s < self.threshold_s:
            return None
        breakdown = None
        if explain is not None:
            if callable(explain):
                try:
                    breakdown = explain()
                except Exception as exc:  # diagnosis must not break serving
                    breakdown = {"error": f"{type(exc).__name__}: {exc}"}
            else:
                breakdown = explain
        entry = {
            "kind": kind,
            "description": description,
            "latency_s": float(latency_s),
            "threshold_s": self.threshold_s,
            "explain": breakdown,
        }
        entry.update(extra)
        if len(self._entries) == self.capacity:
            self.dropped += 1
        self._entries.append(entry)
        self.recorded += 1
        return entry

    def absorb(self, entries: List[dict]) -> None:
        """Adopt entries shipped back from a worker-side log."""
        for entry in entries:
            if len(self._entries) == self.capacity:
                self.dropped += 1
            self._entries.append(entry)
            self.recorded += 1

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def entries(self) -> List[dict]:
        return list(self._entries)

    def drain(self) -> List[dict]:
        """Return and clear the buffered entries (the worker ship-back)."""
        out = list(self._entries)
        self._entries.clear()
        return out

    def __len__(self) -> int:
        return len(self._entries)

    def to_dict(self) -> dict:
        return {
            "threshold_s": self.threshold_s,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "entries": self.entries(),
        }
