"""Per-query I/O tracing: spans, phases and the active trace context.

The paper's cost claims are *decompositions*: a VS query costs
``O(log_B n + IL*(B) + t)`` because the descent, the acceleration
structure and the output each stay within their own budget.  A flat
I/O counter can verify the sum but not the parts.  This module adds the
parts: while a :class:`TraceContext` is installed, every simulated I/O
(block read/write from :class:`~repro.iosim.disk.BlockDevice`, buffer
hit/miss from :class:`~repro.iosim.buffer.LRUBufferPool`, pin re-use
from :class:`~repro.iosim.pager.Pager`) is charged to the innermost
open *span*, and spans nest into a tree of named phases.

Cost model, not wall clock.  Spans deliberately record **no timestamps**:
the unit of cost throughout the library is the simulated I/O, so traces
are exactly reproducible run-to-run.

Zero cost when disabled.  Tracing is off by default: the module-level
``_ACTIVE`` slot is ``None``, and every hook is a single global-load +
``None`` check.  Nothing is allocated, no context managers are entered
on the I/O path, and the I/O *counts* of every operation are identical
with tracing on or off (spans observe the device; they never touch it).

Usage::

    from repro.telemetry import trace

    with trace.tracing() as ctx:
        with trace.span("descent"):
            index.query(q)
    print(ctx.phases())   # {"descent": SpanStats(reads=7, ...)}

Engines attribute finer costs either by opening nested spans
(``with trace.span("cascade-hop"): ...``) or — when the destination
phase is only known *after* the I/O happened, as in the PST search where
a node visit is charged to the output only if it reported a hit — by
moving already-recorded counts with :func:`attribute` /
:meth:`Span.move`, which preserves the total by construction.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple

#: Names of the event counters every span keeps.
EVENT_FIELDS = ("reads", "writes", "hits", "misses", "pins")

#: The module-level enabled flag: the installed context, or ``None``.
#: I/O-layer hooks check this slot directly; when it is ``None`` tracing
#: costs one global load per I/O and nothing else.
_ACTIVE: Optional["TraceContext"] = None


def active() -> Optional["TraceContext"]:
    """The installed trace context, or ``None`` when tracing is off."""
    return _ACTIVE


def is_tracing() -> bool:
    return _ACTIVE is not None


class Span:
    """One named phase: exclusive event counters plus named children.

    Counters are *self* counts — I/O recorded while this span was the
    innermost open one.  Children with the same name are merged on
    creation (:meth:`child` is find-or-create), so a phase that is
    entered many times during one query accumulates into one node and
    the span tree is already the aggregated cost anatomy.
    """

    __slots__ = ("name", "reads", "writes", "hits", "misses", "pins",
                 "seconds", "_children")

    def __init__(self, name: str):
        self.name = name
        self.reads = 0
        self.writes = 0
        self.hits = 0
        self.misses = 0
        self.pins = 0
        #: Wall-clock self time, populated only under ``tracing(timed=True)``
        #: (the default trace records no timestamps, keeping I/O anatomies
        #: exactly reproducible run-to-run).
        self.seconds = 0.0
        self._children: Dict[str, "Span"] = {}

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def child(self, name: str) -> "Span":
        """The child span of that name, created on first use."""
        got = self._children.get(name)
        if got is None:
            got = Span(name)
            self._children[name] = got
        return got

    @property
    def children(self) -> List["Span"]:
        return list(self._children.values())

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    @property
    def io_total(self) -> int:
        """Charged I/Os (reads + writes) recorded directly on this span."""
        return self.reads + self.writes

    def deep_total(self) -> int:
        """Charged I/Os of this span and every descendant."""
        return self.io_total + sum(c.deep_total() for c in self._children.values())

    def move(self, name: str, *, reads: int = 0, writes: int = 0,
             hits: int = 0, misses: int = 0, pins: int = 0) -> None:
        """Re-attribute already-recorded counts to the child ``name``.

        The sum over the tree is invariant: whatever is subtracted here
        is added to the child.  Used when the right phase for an I/O is
        only known after the fact (e.g. a PST node visit is charged to
        the output phase only once it turned out to report a hit).
        """
        if not (reads or writes or hits or misses or pins):
            return
        child = self.child(name)
        self.reads -= reads
        child.reads += reads
        self.writes -= writes
        child.writes += writes
        self.hits -= hits
        child.hits += hits
        self.misses -= misses
        child.misses += misses
        self.pins -= pins
        child.pins += pins

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = {field: getattr(self, field) for field in EVENT_FIELDS}
        out["name"] = self.name
        if self.seconds:
            out["seconds"] = self.seconds
        if self._children:
            out["children"] = [c.to_dict() for c in self._children.values()]
        return out

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, "Span"]]:
        """Yield ``(path, span)`` pairs, paths ``/``-joined below the root."""
        path = f"{prefix}/{self.name}" if prefix else self.name
        yield (path, self)
        for c in self._children.values():
            yield from c.walk(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, reads={self.reads}, writes={self.writes}, "
            f"children={list(self._children)})"
        )


class TraceContext:
    """A span tree plus the stack of currently open spans.

    Installed with :func:`tracing`; the I/O layer records events against
    ``self.current`` (the innermost open span, the root by default), so
    **every** I/O inside the traced window lands somewhere in the tree
    and the tree's total equals the flat counter diff exactly.
    """

    def __init__(self, root_name: str = "query", timed: bool = False):
        self.root = Span(root_name)
        self._stack: List[Span] = [self.root]
        #: With ``timed=True`` every span also accumulates wall-clock
        #: *self* time (time while it was innermost), so the tree's
        #: seconds sum to the traced window like its I/Os do.  Off by
        #: default: wall samples would make traces non-reproducible.
        self.timed = timed
        self._last_tick: Optional[float] = None

    # ------------------------------------------------------------------
    # span scoping
    # ------------------------------------------------------------------
    @property
    def current(self) -> Span:
        return self._stack[-1]

    def _tick(self) -> None:
        """Charge wall time since the last stack change to the current span."""
        now = perf_counter()
        if self._last_tick is not None:
            self._stack[-1].seconds += now - self._last_tick
        self._last_tick = now

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open (or re-enter) the child phase ``name`` of the current span."""
        if self.timed:
            self._tick()
        sp = self._stack[-1].child(name)
        self._stack.append(sp)
        try:
            yield sp
        finally:
            if self.timed:
                self._tick()
            self._stack.pop()

    # ------------------------------------------------------------------
    # event recording (called by the iosim layer)
    # ------------------------------------------------------------------
    def record_read(self) -> None:
        self._stack[-1].reads += 1

    def record_write(self) -> None:
        self._stack[-1].writes += 1

    def record_hit(self) -> None:
        self._stack[-1].hits += 1

    def record_miss(self) -> None:
        self._stack[-1].misses += 1

    def record_pin(self) -> None:
        self._stack[-1].pins += 1

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def phases(self) -> "Dict[str, Span]":
        """Flat ``path -> span`` view of the tree (self counts only).

        The root's own path is its name; phases opened under it get
        ``parent/child`` paths.  Summing ``io_total`` over the values
        reproduces the device's read+write diff for the traced window.
        """
        return dict(self.root.walk())

    def total(self) -> int:
        """All charged I/Os recorded in this trace."""
        return self.root.deep_total()

    def to_dict(self) -> dict:
        return self.root.to_dict()


# ----------------------------------------------------------------------
# module-level surface used by engines and the I/O layer
# ----------------------------------------------------------------------
@contextmanager
def tracing(root_name: str = "query",
            timed: bool = False) -> Iterator[TraceContext]:
    """Install a fresh :class:`TraceContext` for the scope.

    Nested installations shadow the outer one (the outer context resumes
    when the inner scope exits) so explain() can run inside an already
    traced program without double counting.  ``timed=True`` additionally
    attributes wall-clock self time to every span (see
    :class:`TraceContext`).
    """
    global _ACTIVE
    previous = _ACTIVE
    ctx = TraceContext(root_name, timed=timed)
    _ACTIVE = ctx
    if timed:
        ctx._tick()
    try:
        yield ctx
    finally:
        if timed:
            ctx._tick()
        _ACTIVE = previous


class _NoopSpan:
    """Shared do-nothing context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _NoopSpan()


def span(name: str):
    """Context manager opening phase ``name`` (no-op when tracing is off)."""
    ctx = _ACTIVE
    if ctx is None:
        return _NOOP
    return ctx.span(name)


def current_span() -> Optional[Span]:
    """The innermost open span, or ``None`` when tracing is off.

    Engines that need delta-based attribution snapshot counters off this
    object around an I/O and then :meth:`Span.move` the delta.
    """
    ctx = _ACTIVE
    return ctx._stack[-1] if ctx is not None else None


def attribute(name: str, *, reads: int = 0, writes: int = 0,
              hits: int = 0, misses: int = 0, pins: int = 0) -> None:
    """Move counts from the current span into its child ``name``.

    No-op when tracing is off; sum-preserving when on.
    """
    ctx = _ACTIVE
    if ctx is not None:
        ctx._stack[-1].move(name, reads=reads, writes=writes, hits=hits,
                            misses=misses, pins=pins)
