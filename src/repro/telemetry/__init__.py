"""Observability for the simulated-I/O index stack.

Three layers (see DESIGN.md §7):

* :mod:`repro.telemetry.trace` — per-query span tracing; the I/O layer
  charges every block transfer to the innermost open span, so a trace
  is an exact decomposition of the flat counters.  Off by default,
  near-zero cost when off.
* :mod:`repro.telemetry.metrics` — counters/gauges/histograms with JSON
  and Markdown exporters, for benchmark archives and the facade.
* :mod:`repro.telemetry.explain` — ``EXPLAIN`` reports: one traced
  operation rendered as a cost anatomy whose phases sum exactly to the
  measured :class:`~repro.iosim.stats.IOStats` diff.
"""

from . import trace
from .chrometrace import (
    phase_totals,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .explain import ExplainReport, PhaseStats, collect_phases, trace_call
from .latency import LatencyHistogram
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .slowlog import SlowQueryLog
from .spans import (
    SpanContext,
    SpanRecord,
    WallTracer,
    new_trace_id,
    timed_span,
    wall_tracing,
)
from .trace import Span, TraceContext, attribute, current_span, span, tracing

__all__ = [
    "Counter",
    "ExplainReport",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "PhaseStats",
    "SlowQueryLog",
    "Span",
    "SpanContext",
    "SpanRecord",
    "TraceContext",
    "WallTracer",
    "attribute",
    "collect_phases",
    "current_span",
    "new_trace_id",
    "phase_totals",
    "span",
    "timed_span",
    "to_chrome_trace",
    "trace",
    "trace_call",
    "tracing",
    "validate_chrome_trace",
    "wall_tracing",
    "write_chrome_trace",
]
