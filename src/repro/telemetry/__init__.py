"""Observability for the simulated-I/O index stack.

Three layers (see DESIGN.md §7):

* :mod:`repro.telemetry.trace` — per-query span tracing; the I/O layer
  charges every block transfer to the innermost open span, so a trace
  is an exact decomposition of the flat counters.  Off by default,
  near-zero cost when off.
* :mod:`repro.telemetry.metrics` — counters/gauges/histograms with JSON
  and Markdown exporters, for benchmark archives and the facade.
* :mod:`repro.telemetry.explain` — ``EXPLAIN`` reports: one traced
  operation rendered as a cost anatomy whose phases sum exactly to the
  measured :class:`~repro.iosim.stats.IOStats` diff.
"""

from . import trace
from .explain import ExplainReport, PhaseStats, collect_phases, trace_call
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import Span, TraceContext, attribute, current_span, span, tracing

__all__ = [
    "Counter",
    "ExplainReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseStats",
    "Span",
    "TraceContext",
    "attribute",
    "collect_phases",
    "current_span",
    "span",
    "trace",
    "trace_call",
    "tracing",
]
