"""An external R-tree — the practical spatial-index comparator.

The reproduction notes observe that in practice "spatial indexes cover
practical needs"; the R-tree is the canonical one (and, unlike the grid,
handles long segments without replication).  This implementation is the
standard external-memory variant:

* **bulk load** with Sort-Tile-Recursive packing (near-100% page
  occupancy);
* **queries** by rectangle overlap against the vertical query segment's
  bounding box, with the exact predicate filtering at the leaves;
* **insertions** by least-area-enlargement descent with linear splits.

No worst-case query bound exists (that is the paper's opening argument for
purpose-built structures); on well-behaved data it is very competitive,
and benchmark E10 shows both sides.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

from ..geometry import Segment, VerticalQuery, vs_intersects
from ..geometry.kernels import rtree_subset_hits
from ..iosim import Pager
from ..telemetry import trace

BBox = Tuple  # (xmin, ymin, xmax, ymax), exact coordinates


def segment_bbox(s: Segment) -> BBox:
    return (s.xmin, s.ymin, s.xmax, s.ymax)


def bbox_union(a: BBox, b: BBox) -> BBox:
    return (min(a[0], b[0]), min(a[1], b[1]), max(a[2], b[2]), max(a[3], b[3]))


def bbox_area(a: BBox):
    return (a[2] - a[0]) * (a[3] - a[1])


def query_overlaps(bbox: BBox, q: VerticalQuery) -> bool:
    """Does a rectangle meet the (possibly unbounded) vertical query?"""
    if not (bbox[0] <= q.x <= bbox[2]):
        return False
    if q.ylo is not None and bbox[3] < q.ylo:
        return False
    if q.yhi is not None and bbox[1] > q.yhi:
        return False
    return True


class RTreeIndex:
    """An R-tree over one pager; entries are ``(bbox, payload_or_child)``."""

    def __init__(self, pager: Pager, root_pid: Optional[int] = None):
        self.pager = pager
        self.root_pid = root_pid
        self.size = 0

    # ------------------------------------------------------------------
    # construction (Sort-Tile-Recursive)
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, pager: Pager, segments: Iterable[Segment]) -> "RTreeIndex":
        index = cls(pager)
        segments = list(segments)
        index.size = len(segments)
        if not segments:
            return index
        entries = [(segment_bbox(s), s) for s in segments]
        level = index._pack_leaves(entries)
        while len(level) > 1:
            level = index._pack_internal(level)
        index.root_pid = level[0][1]
        return index

    def _capacity(self) -> int:
        return self.pager.device.block_capacity

    def _str_order(self, entries: List[Tuple]) -> List[Tuple]:
        """Sort-Tile-Recursive ordering: x-slices, then y within a slice."""
        capacity = self._capacity()
        n_pages = math.ceil(len(entries) / capacity)
        n_slices = max(1, math.ceil(math.sqrt(n_pages)))
        per_slice = math.ceil(len(entries) / n_slices)
        by_x = sorted(entries, key=lambda e: (e[0][0] + e[0][2], e[0][0]))
        ordered: List[Tuple] = []
        for start in range(0, len(by_x), per_slice):
            chunk = by_x[start : start + per_slice]
            chunk.sort(key=lambda e: (e[0][1] + e[0][3], e[0][1]))
            ordered.extend(chunk)
        return ordered

    def _pack_leaves(self, entries: List[Tuple]) -> List[Tuple]:
        return self._pack(self._str_order(entries), leaf=True)

    def _pack_internal(self, child_entries: List[Tuple]) -> List[Tuple]:
        return self._pack(self._str_order(child_entries), leaf=False)

    def _pack(self, ordered: List[Tuple], leaf: bool) -> List[Tuple]:
        capacity = self._capacity()
        out: List[Tuple] = []
        for start in range(0, len(ordered), capacity):
            chunk = ordered[start : start + capacity]
            page = self.pager.alloc()
            page.set_header("leaf", leaf)
            page.put_items(chunk)
            self.pager.write(page)
            bbox = chunk[0][0]
            for entry_bbox, _x in chunk[1:]:
                bbox = bbox_union(bbox, entry_bbox)
            out.append((bbox, page.page_id))
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, q: VerticalQuery) -> List[Segment]:
        out: List[Segment] = []
        if self.root_pid is None:
            return out
        with self.pager.operation():
            stack = [self.root_pid]
            while stack:
                # Whether a page visit is routing or output is known only
                # after the fetch: move its I/O delta to the right phase.
                span = trace.current_span()
                reads_before = span.reads if span is not None else 0
                page = self.pager.fetch(stack.pop())
                if span is not None:
                    phase = "leaf" if page.get_header("leaf") else "descent"
                    span.move(phase, reads=span.reads - reads_before)
                if page.get_header("leaf"):
                    items = page.items
                    # The bbox prefilter is a plain float compare; only
                    # its survivors reach the (filtered) geometry test.
                    idx = [i for i, (bbox, _s) in enumerate(items)
                           if query_overlaps(bbox, q)]
                    hits = rtree_subset_hits(page, q, idx, items)
                    if hits is None:
                        for i in idx:
                            segment = items[i][1]
                            if vs_intersects(segment, q):
                                out.append(segment)
                    else:
                        out.extend(hits)
                    continue
                for bbox, child in page.items:
                    if query_overlaps(bbox, q):
                        stack.append(child)
        return out

    def query_batch(self, queries: Iterable[VerticalQuery]) -> List[List[Segment]]:
        """Sequential loop fallback (uniform batch API, no shared descent)."""
        return [self.query(q) for q in queries]

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, segment: Segment) -> None:
        self.size += 1
        entry = (segment_bbox(segment), segment)
        with self.pager.operation():
            if self.root_pid is None:
                page = self.pager.alloc()
                page.set_header("leaf", True)
                page.put_items([entry])
                self.pager.write(page)
                self.root_pid = page.page_id
                return
            split = self._insert_below(self.root_pid, entry)
            if split is not None:
                old_root = self.pager.fetch(self.root_pid)
                old_bbox = self._page_bbox(old_root)
                new_root = self.pager.alloc()
                new_root.set_header("leaf", False)
                new_root.put_items([(old_bbox, self.root_pid), split])
                self.pager.write(new_root)
                self.root_pid = new_root.page_id

    def _insert_below(self, pid: int, entry: Tuple) -> Optional[Tuple]:
        page = self.pager.fetch(pid)
        if page.get_header("leaf"):
            page.items.append(entry)
            if len(page.items) <= page.capacity:
                self.pager.write(page)
                return None
            return self._split(page)
        # Least-area-enlargement child.
        best_idx, best_cost, best_area = 0, None, None
        for idx, (bbox, _child) in enumerate(page.items):
            grown = bbox_union(bbox, entry[0])
            cost = bbox_area(grown) - bbox_area(bbox)
            area = bbox_area(bbox)
            if best_cost is None or (cost, area) < (best_cost, best_area):
                best_idx, best_cost, best_area = idx, cost, area
        child_bbox, child_pid = page.items[best_idx]
        split = self._insert_below(child_pid, entry)
        page.items[best_idx] = (bbox_union(child_bbox, entry[0]), child_pid)
        if split is not None:
            page.items.append(split)
        if len(page.items) <= page.capacity:
            self.pager.write(page)
            return None
        return self._split(page)

    def _split(self, page) -> Tuple:
        """Linear split along the longer spread axis; keeps both halves
        balanced.  The original page keeps the lower half."""
        items = page.items
        xs = [e[0][0] + e[0][2] for e in items]
        ys = [e[0][1] + e[0][3] for e in items]
        axis = 0 if (max(xs) - min(xs)) >= (max(ys) - min(ys)) else 1
        items.sort(key=lambda e: e[0][axis] + e[0][axis + 2])
        mid = len(items) // 2
        right_items = items[mid:]
        page.put_items(items[:mid])
        self.pager.write(page)
        sibling = self.pager.alloc()
        sibling.set_header("leaf", page.get_header("leaf"))
        sibling.put_items(right_items)
        self.pager.write(sibling)
        return (self._page_bbox(sibling), sibling.page_id)

    def _page_bbox(self, page) -> BBox:
        bbox = page.items[0][0]
        for entry_bbox, _x in page.items[1:]:
            bbox = bbox_union(bbox, entry_bbox)
        return bbox

    # ------------------------------------------------------------------
    # maintenance / inspection
    # ------------------------------------------------------------------
    def delete(self, segment: Segment) -> bool:
        raise NotImplementedError(
            "the R-tree baseline is insert-only here; wrap it in "
            "TombstoneDeletions for logical deletes"
        )

    def all_segments(self) -> List[Segment]:
        out: List[Segment] = []
        if self.root_pid is None:
            return out
        stack = [self.root_pid]
        while stack:
            page = self.pager.fetch(stack.pop())
            if page.get_header("leaf"):
                out.extend(s for _bbox, s in page.items)
            else:
                stack.extend(child for _bbox, child in page.items)
        return out

    def __len__(self) -> int:
        return self.size

    def height(self) -> int:
        h = 0
        pid = self.root_pid
        while pid is not None:
            h += 1
            page = self.pager.fetch(pid)
            pid = None if page.get_header("leaf") else page.items[0][1]
        return h

    def check_invariants(self) -> None:
        """Every child bbox must be covered by its parent entry's bbox."""
        if self.root_pid is None:
            return
        count = self._check(self.root_pid, None)
        assert count == self.size, f"size mismatch: {count} != {self.size}"

    def verify(self) -> List[str]:
        from ..iosim import StorageError

        try:
            self.check_invariants()
        except AssertionError as exc:
            return [f"rtree: invariant violated: {exc}"]
        except StorageError as exc:
            return [f"rtree: {type(exc).__name__}: {exc}"]
        return []

    def snapshot_state(self) -> tuple:
        return (self.root_pid, self.size)

    def restore_state(self, state: tuple) -> None:
        self.root_pid, self.size = state

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def snapshot_meta(self) -> dict:
        return {"root_pid": self.root_pid, "size": self.size}

    @classmethod
    def attach(cls, pager: Pager, meta: dict) -> "RTreeIndex":
        index = cls(pager, root_pid=meta["root_pid"])
        index.size = meta["size"]
        return index

    def _check(self, pid: int, outer: Optional[BBox]) -> int:
        page = self.pager.fetch(pid)
        bbox = self._page_bbox(page)
        if outer is not None:
            assert (
                outer[0] <= bbox[0] and outer[1] <= bbox[1]
                and bbox[2] <= outer[2] and bbox[3] <= outer[3]
            ), f"child bbox escapes parent at page {pid}"
        if page.get_header("leaf"):
            for entry_bbox, segment in page.items:
                assert entry_bbox == segment_bbox(segment)
            return len(page.items)
        return sum(self._check(child, entry_bbox)
                   for entry_bbox, child in page.items)
