"""The full-scan baseline: no index at all.

Stores the segments in a page chain and answers every query by scanning all
``n`` blocks.  This is both the correctness oracle for integration tests
and the lower anchor of the benchmark comparisons (it wins only when the
output is a large fraction of the database).
"""

from __future__ import annotations

from typing import Iterable, List

from ..geometry import Segment, VerticalQuery
from ..geometry.kernels import page_query_hits
from ..iosim import Pager, StorageError
from ..storage.chain import PageChain


class FullScanIndex:
    """O(n) blocks, O(n) I/Os per query, O(1) amortised insertion."""

    def __init__(self, pager: Pager, chain: PageChain):
        self.pager = pager
        self.chain = chain
        self.size = 0

    @classmethod
    def build(cls, pager: Pager, segments: Iterable[Segment]) -> "FullScanIndex":
        segments = list(segments)
        index = cls(pager, PageChain.create(pager, segments))
        index.size = len(segments)
        return index

    def query(self, q: VerticalQuery) -> List[Segment]:
        with self.pager.operation():
            with self.pager.device.tagged("scan"):
                out: List[Segment] = []
                for page in self.chain.iter_pages():
                    out.extend(page_query_hits(page, q))
                return out

    def query_batch(self, queries: Iterable[VerticalQuery]) -> List[List[Segment]]:
        """Sequential loop fallback: a full scan has no descent to share."""
        return [self.query(q) for q in queries]

    def insert(self, segment: Segment) -> None:
        with self.pager.operation():
            self.chain.append(segment)
            self.size += 1

    def delete(self, segment: Segment) -> bool:
        with self.pager.operation():
            kept = [s for s in self.chain if s != segment]
            removed = len(kept) < self.size
            if removed:
                self.chain.replace(kept)
                self.size = len(kept)
            return removed

    def all_segments(self) -> List[Segment]:
        return self.chain.to_list()

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # verification & recovery support
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """The chain's stored count and the index size must agree."""
        stored = self.chain.count()
        actual = sum(1 for _ in self.chain)
        assert stored == actual, f"chain count stale: {stored} != {actual}"
        assert actual == self.size, f"size mismatch: {actual} != {self.size}"

    def verify(self) -> List[str]:
        try:
            self.check_invariants()
        except AssertionError as exc:
            return [f"scan: invariant violated: {exc}"]
        except StorageError as exc:
            return [f"scan: {type(exc).__name__}: {exc}"]
        return []

    def snapshot_state(self) -> tuple:
        return (self.size,)

    def restore_state(self, state: tuple) -> None:
        (self.size,) = state

    # ------------------------------------------------------------------
    # persistence support
    # ------------------------------------------------------------------
    def snapshot_meta(self) -> dict:
        return {"head_pid": self.chain.head_pid, "size": self.size}

    @classmethod
    def attach(cls, pager: Pager, meta: dict) -> "FullScanIndex":
        index = cls(pager, PageChain(pager, meta["head_pid"]))
        index.size = meta["size"]
        return index
